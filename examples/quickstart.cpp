// Quickstart: obfuscate a circuit so that two viable functions are both
// plausible, then validate the result.
//
//   build/examples/example_quickstart
//
// Walks the full three-phase flow on a pair of optimal 4-bit S-boxes and
// narrates every artifact: the merged specification (Fig. 2), the
// synthesized gate netlist, the camouflaged netlist with its per-function
// dopant configurations, and the ModelSim-style validation.

#include <cstdio>

#include "flow/obfuscation_flow.hpp"
#include "sbox/sbox_data.hpp"
#include "sim/netlist_sim.hpp"

int main() {
    using namespace mvf;

    // 1. Pick the viable functions the adversary knows about.
    const auto sboxes = sbox::present_viable_set(2);  // G0 and G1
    const auto functions = flow::from_sboxes(sboxes);
    std::printf("viable functions: %s, %s (4-bit optimal S-boxes)\n",
                sboxes[0].name.c_str(), sboxes[1].name.c_str());

    // 2. Run the flow: merge -> GA pin assignment -> camouflage mapping.
    flow::ObfuscationFlow obfuscator;
    flow::FlowParams params;
    params.ga.population = 16;
    params.ga.generations = 10;
    params.seed = 1;
    const flow::FlowResult result = obfuscator.run(functions, params);

    std::printf("\nPhase II (pin assignment search):\n");
    std::printf("  random pin assignments: avg %.1f GE, best %.1f GE\n",
                result.random_avg, result.random_best);
    std::printf("  genetic algorithm:      %.1f GE after %d evaluations\n",
                result.ga_area, result.ga.history.evaluations);

    std::printf("\nPhase III (camouflage technology mapping, Algorithm 1):\n");
    std::printf("  final area:            %.1f GE (%.1f%% below best random)\n",
                result.ga_tm_area, result.improvement_percent());
    std::printf("  camouflaged cells:     %d\n", result.camo_stats.num_cells);
    std::printf("  selects eliminated:    %d\n", result.camo_stats.selects_eliminated);
    std::printf("  attacker config space: 2^%.0f possibilities\n",
                result.camo_stats.config_space_bits);

    // 3. Validation: each viable function is realized by a recorded dopant
    //    configuration (the paper's ModelSim check).
    std::printf("\nvalidation: %s\n",
                result.verified ? "every viable function replays correctly"
                                : "FAILED");

    // 4. Inspect one configuration by hand: code 0 must implement G0 under
    //    the GA's pin assignment.
    const flow::MergedSpec spec(functions, result.ga.best);
    const auto config = result.camouflaged->configuration_for_code(0);
    const auto outs = sim::simulate_camo_full(*result.camouflaged, config);
    std::printf("\ncamouflaged outputs under configuration 0 (hex truth tables):\n");
    for (std::size_t q = 0; q < outs.size(); ++q) {
        std::printf("  o%zu = 0x%s\n", q, outs[q].to_hex().c_str());
    }
    return result.verified ? 0 : 1;
}
