// Fig. 3 demo: why pin assignment matters for logic sharing.
//
//   build/examples/example_pin_assignment_demo
//
// Merges the paper's two example functions f0 = (AB+CD)E and f1 = (FG+HI)+J
// and shows how the shared-input placement changes the synthesized area:
// the aligned placement of Fig. 3a lets the (AB+CD)/(FG+HI) core be shared,
// the scrambled placement of Fig. 3b does not, and the genetic algorithm
// recovers a good placement automatically.

#include <cstdio>

#include "flow/obfuscation_flow.hpp"
#include "io/blif.hpp"
#include "logic/truth_table.hpp"

#include <iostream>

int main() {
    using namespace mvf;
    using logic::TruthTable;

    const int n = 5;
    const TruthTable core = (TruthTable::var(0, n) & TruthTable::var(1, n)) |
                            (TruthTable::var(2, n) & TruthTable::var(3, n));
    flow::ViableFunction f0;
    f0.name = "(AB+CD)E";
    f0.num_inputs = n;
    f0.num_outputs = 1;
    f0.outputs = {core & TruthTable::var(4, n)};
    flow::ViableFunction f1;
    f1.name = "(FG+HI)+J";
    f1.num_inputs = n;
    f1.num_outputs = 1;
    f1.outputs = {core | TruthTable::var(4, n)};
    const std::vector<flow::ViableFunction> fns{f0, f1};

    flow::ObfuscationFlow obfuscator;

    const auto report = [&](const char* label, const ga::PinAssignment& pa) {
        const flow::MergedSpec spec(fns, pa);
        const tech::Netlist nl = obfuscator.synthesize(spec, synth::Effort::kDefault);
        std::printf("  %-28s %6.2f GE  (%d gates)\n", label, nl.area(), nl.num_cells());
        return nl.area();
    };

    std::printf("merging %s and %s over one shared 5-bit input bus:\n\n",
                f0.name.c_str(), f1.name.c_str());

    const ga::PinAssignment aligned = ga::PinAssignment::identity(2, n, 1);
    const double good = report("aligned placement (Fig. 3a):", aligned);

    ga::PinAssignment scrambled = aligned;
    scrambled.input_perms[1] = {2, 0, 1, 3, 4};  // A/G, B/H, C/F of Fig. 3b
    const double bad = report("scrambled placement (Fig. 3b):", scrambled);

    ga::GaParams params;
    params.population = 16;
    params.generations = 12;
    const ga::GaResult g = ga::run_ga(2, n, 1, [&](const ga::PinAssignment& pa) {
        return obfuscator.evaluate_area(fns, pa, synth::Effort::kDefault);
    }, params);
    std::printf("  %-28s %6.2f GE\n", "genetic algorithm:", g.best_area);

    std::printf("\nsharing bonus of the aligned placement: %.2f GE (%.0f%%)\n",
                bad - good, (bad - good) / bad * 100.0);

    // Dump the aligned merged netlist as BLIF for inspection.
    std::printf("\nBLIF of the aligned merged circuit:\n\n");
    const flow::MergedSpec spec(fns, aligned);
    const tech::Netlist nl = obfuscator.synthesize(spec, synth::Effort::kDefault);
    io::write_blif(nl, "fig3_merged", std::cout);
    return 0;
}
