// DES S-box obfuscation: the paper's larger workload (6-input, 4-output
// S-boxes, ~150 GE each).
//
//   build/examples/example_des_obfuscation [n] [seed]
//
// Merges the first n DES S-boxes (default 4, max 8) so that an adversary
// who knows the chip contains *some* DES S-box cannot tell which one.

#include <cstdio>
#include <cstdlib>

#include "flow/obfuscation_flow.hpp"
#include "sbox/sbox_data.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
    using namespace mvf;
    const int n = argc > 1 ? std::atoi(argv[1]) : 4;
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
    if (n < 2 || n > 8) {
        std::fprintf(stderr, "n must be in [2, 8]\n");
        return 2;
    }

    flow::ObfuscationFlow obfuscator;
    flow::FlowParams params;
    params.ga.population = 10;
    params.ga.generations = 6;
    params.seed = seed;

    std::printf("merging DES S-boxes S1..S%d (6->4 bits each)\n", n);
    util::Stopwatch sw;
    const flow::FlowResult r =
        obfuscator.run(flow::from_sboxes(sbox::des_viable_set(n)), params);

    std::printf("\nrandom avg / best : %.1f / %.1f GE\n", r.random_avg, r.random_best);
    std::printf("GA                : %.1f GE\n", r.ga_area);
    std::printf("GA+TM             : %.1f GE  (%.1f%% below best random)\n",
                r.ga_tm_area, r.improvement_percent());
    std::printf("verified          : %s\n", r.verified ? "yes" : "NO");
    std::printf("camouflaged cells : %d (config space 2^%.0f)\n",
                r.camo_stats.num_cells, r.camo_stats.config_space_bits);
    std::printf("runtime           : %.1fs\n", sw.elapsed_seconds());

    // Per-function sanity: the paper estimates ~150 GE per DES S-box; the
    // merged circuit amortizes that cost across all n functions.
    std::printf("\narea per plausible function: %.1f GE (standalone S-box would\n"
                "need its own full implementation)\n",
                r.ga_tm_area / n);
    return r.verified ? 0 : 1;
}
