// PRESENT-style obfuscation at scale: merge up to all sixteen optimal 4-bit
// S-box class representatives into a single camouflaged circuit.
//
//   build/examples/example_present_obfuscation [n] [seed]
//
// n = number of merged S-boxes (default 8, max 16).  Prints a Table-I style
// summary plus security metrics, and writes the synthesized netlist BLIF to
// present_obfuscated.blif in the working directory.

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "flow/obfuscation_flow.hpp"
#include "io/blif.hpp"
#include "sbox/sbox_data.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
    using namespace mvf;
    const int n = argc > 1 ? std::atoi(argv[1]) : 8;
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
    if (n < 2 || n > 16) {
        std::fprintf(stderr, "n must be in [2, 16]\n");
        return 2;
    }

    const auto sboxes = sbox::present_viable_set(n);
    std::printf("viable set (%d optimal S-boxes):", n);
    for (const auto& s : sboxes) std::printf(" %s", s.name.c_str());
    std::printf("\n");

    flow::ObfuscationFlow obfuscator;
    flow::FlowParams params;
    params.ga.population = 16;
    params.ga.generations = 12;
    params.seed = seed;

    util::Stopwatch sw;
    const flow::FlowResult r = obfuscator.run(flow::from_sboxes(sboxes), params);

    std::printf("\n%-24s %10s\n", "stage", "area (GE)");
    std::printf("------------------------------------\n");
    std::printf("%-24s %10.1f\n", "random avg", r.random_avg);
    std::printf("%-24s %10.1f\n", "random best", r.random_best);
    std::printf("%-24s %10.1f\n", "GA", r.ga_area);
    std::printf("%-24s %10.1f\n", "GA+TM (camouflaged)", r.ga_tm_area);
    std::printf("improvement over best random: %.1f%%\n", r.improvement_percent());
    std::printf("verified: %s;  camo cells: %d;  config space: 2^%.0f;  "
                "selects eliminated: %d\n",
                r.verified ? "yes" : "NO", r.camo_stats.num_cells,
                r.camo_stats.config_space_bits, r.camo_stats.selects_eliminated);
    std::printf("runtime: %.1fs (%d GA evaluations)\n", sw.elapsed_seconds(),
                r.ga.history.evaluations);

    std::ofstream blif("present_obfuscated.blif");
    io::write_blif(*r.synthesized, "present_merged", blif);
    std::printf("\nwrote synthesized netlist to present_obfuscated.blif\n");
    return r.verified ? 0 : 1;
}
