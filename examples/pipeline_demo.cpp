// Composing a custom experiment pipeline.
//
//   build/pipeline_demo
//
// The staged flow API (flow/pipeline.hpp) exists so experiments that do
// NOT fit ObfuscationFlow::run need no bespoke bench code.  This demo
// builds a pipeline that skips the random baseline work entirely, attacks
// the camouflaged result with BOTH registered adversaries, reports
// per-stage progress, and then re-runs just the attack stage against a
// second adversary panel without repeating synthesis.

#include <cstdio>

#include "attack/adversary.hpp"
#include "flow/pipeline.hpp"
#include "sbox/sbox_data.hpp"

int main() {
    using namespace mvf;

    const auto fns = flow::from_sboxes(sbox::present_viable_set(4));

    flow::FlowParams params;
    params.ga.population = 10;
    params.ga.generations = 5;
    params.run_random_baseline = false;
    // Keep survivor counting quick: capped enumeration instead of the
    // (uncapped) default projected counter -- a merged 4-S-box netlist is
    // dense enough that the exact counter would burn its decision budget
    // before falling back.
    params.oracle.count_mode = attack::CountMode::kEnumerate;
    params.oracle.max_survivors = 256;
    params.seed = 42;

    flow::ObfuscationFlow engine;
    flow::FlowContext ctx(engine, fns, params);
    ctx.progress = [](const flow::StageEvent& e) {
        std::printf("  [%d/%d] %-10s %.2fs\n", e.index + 1, e.total,
                    std::string(e.stage).c_str(), e.seconds);
    };

    // Stage list built by hand: no baseline inside PinSearchStage (flag
    // above), validation kept, CEGAR-only attack panel.
    flow::Pipeline pipeline;
    pipeline.add_stage<flow::PinSearchStage>()
        .add_stage<flow::SynthesizeStage>()
        .add_stage<flow::CamoCoverStage>()
        .add_stage<flow::ValidateStage>()
        .add_stage<flow::AttackStage>(std::vector<std::string>{"cegar"});

    std::printf("running a custom 5-stage pipeline on %zu viable functions:\n",
                fns.size());
    const flow::PipelineStatus status = pipeline.run(ctx);
    std::printf("completed=%s, %d stages\n\n", status.completed ? "yes" : "no",
                status.stages_run);

    std::printf("%.1f GE camouflaged, %d cells, verified=%s\n",
                ctx.result.ga_tm_area, ctx.result.camo_stats.num_cells,
                ctx.result.verified ? "yes" : "no");

    // Re-run ONLY the attack stage with a different panel: the context
    // still holds the camouflaged netlist, so nothing is resynthesized.
    flow::AttackStage plausibility_only({"plausibility"});
    plausibility_only.run(ctx);

    std::printf("\nadversary panel results:\n");
    for (const attack::AdversaryReport& report : ctx.result.attack_reports) {
        std::printf("  %-13s %-8s %s (%d queries, %llu survivors, %.2fs)\n",
                    report.adversary.c_str(),
                    report.success ? "SUCCESS" : "defended",
                    report.outcome.c_str(), report.queries,
                    static_cast<unsigned long long>(report.survivors),
                    report.seconds);
        std::printf("%s\n", report.to_json().dump(2).c_str());
    }
    return 0;
}
