// Attacker's-eye view: SAT-based de-camouflaging of an obfuscated circuit.
//
//   build/examples/example_attacker_analysis
//
// Plays the adversary of the paper's threat model: knows the cell library
// (including camouflaged look-alikes), has the full netlist, knows the set
// of viable functions -- but cannot probe internal signals.  For each
// candidate function she solves "exists a dopant configuration making the
// circuit implement f?".  Compares our flow's output against a randomly
// camouflaged baseline.

#include <cstdio>

#include "attack/plausibility.hpp"
#include "attack/random_camo.hpp"
#include "flow/obfuscation_flow.hpp"
#include "sbox/sbox_data.hpp"
#include "util/stopwatch.hpp"

int main() {
    using namespace mvf;

    const int n_viable = 4;
    flow::ObfuscationFlow obfuscator;

    std::printf("== target 1: circuit produced by our flow (merging %d S-boxes) ==\n",
                n_viable);
    flow::FlowParams params;
    params.ga.population = 10;
    params.ga.generations = 5;
    params.run_random_baseline = false;
    const auto fns = flow::from_sboxes(sbox::present_viable_set(n_viable));
    const flow::FlowResult r = obfuscator.run(fns, params);
    const flow::MergedSpec spec(fns, r.ga.best);
    std::printf("   %.1f GE, %d camouflaged cells, configuration space 2^%.0f\n\n",
                r.ga_tm_area, r.camo_stats.num_cells, r.camo_stats.config_space_bits);

    for (int k = 0; k < n_viable; ++k) {
        util::Stopwatch sw;
        const auto targets = spec.expected_outputs_for_code(k);
        const attack::PlausibilityResult res =
            attack::is_plausible(*r.camouflaged, targets);
        std::printf("   is %s plausible?  %s   (%llu conflicts, %.0f ms)\n",
                    sbox::leander_poschmann_16()[static_cast<std::size_t>(k)].name.c_str(),
                    res.plausible ? "YES -- cannot rule it out" : "no",
                    static_cast<unsigned long long>(res.sat_stats.conflicts),
                    sw.elapsed_ms());
    }
    std::printf("   => the attacker learns nothing about which S-box the chip uses.\n\n");

    std::printf("== target 2: random camouflaging of a plain G0 circuit ==\n");
    const auto g0 = flow::from_sboxes(sbox::present_viable_set(1));
    const flow::MergedSpec g0_spec(g0, ga::PinAssignment::identity(1, 4, 4));
    const tech::Netlist mapped = obfuscator.synthesize(g0_spec, synth::Effort::kDefault);
    util::Rng rng(17);
    const attack::RandomCamoResult rc =
        attack::random_camouflage(mapped, obfuscator.camo_library(), 0.5, rng);
    std::printf("   %d of %d gates replaced by camouflaged look-alikes\n\n",
                rc.camouflaged_cells, rc.netlist.num_cells());

    for (int k = 0; k < n_viable; ++k) {
        const auto targets =
            sbox::leander_poschmann_16()[static_cast<std::size_t>(k)].output_tts();
        const attack::PlausibilityResult res =
            attack::is_plausible(rc.netlist, targets, &rc.fixed_nominal);
        std::printf("   is %s plausible?  %s\n",
                    sbox::leander_poschmann_16()[static_cast<std::size_t>(k)].name.c_str(),
                    res.plausible ? "YES" : "no -- ruled out");
    }
    std::printf("   => despite exponentially many plausible functions, the attacker\n"
                "      rules out every viable function except the true one. Random\n"
                "      camouflaging does not defeat an adversary with prior knowledge\n"
                "      (the paper's section-I motivation).\n");
    return 0;
}
