// mvf -- experiment driver for the multiple-viable-function flow.
//
// New workloads need zero C++: scenarios are described by flags or a plain
// text spec file and executed through the same flow::Pipeline /
// flow::BatchRunner API the library exposes.
//
//   mvf run    [scenario flags]           one scenario, human-readable summary
//   mvf attack [scenario flags]           run + red-team with --adversaries
//   mvf batch  --spec FILE --jobs N       N-way parallel scenario batch
//   mvf serve  --listen ADDR              persistent experiment server
//   mvf submit --connect ADDR --spec FILE submit a spec to a server
//   mvf watch  --connect ADDR --job ID    stream a running job
//   mvf status --connect ADDR             server job + cache status
//   mvf cancel --connect ADDR --job ID    cancel a server job
//   mvf shutdown --connect ADDR           stop a server
//   mvf adversaries                       list the registered adversaries
//   mvf check-report FILE                 validate a batch JSON report
//   mvf check-trace FILE                  validate an NDJSON/Chrome trace
//   mvf verify-proof FILE                 verify an --emit-proof artifact
//
// Scenario flags (run/attack): --funcs FAMILY:N --seed S --population P
// --generations G --quick --no-baseline --no-camo --no-verify
// --adversaries a,b --json FILE; or --circuit FILE with --camo-density,
// --camo-cells, --camo-seed, --camo-policy to attack an imported
// BLIF/AIGER/.bench benchmark instead of a merged S-box function set.
//
// Observability (run/attack/batch): --trace FILE --trace-format ndjson|chrome
// --metrics
//
// Exit codes: 0 success; 1 scenario/validation failure; 2 usage error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "attack/adversary.hpp"
#include "audit/attack_proof.hpp"
#include "camo/camo_cell.hpp"
#include "camo/inject.hpp"
#include "flow/batch_runner.hpp"
#include "flow/stage_io.hpp"
#include "map/gate_library.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/json.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/socket.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace mvf;

int usage() {
    std::fprintf(
        stderr,
        "usage: mvf <command> [options]\n"
        "\n"
        "commands:\n"
        "  run          run one scenario end to end\n"
        "  attack       run one scenario and red-team it (default: every\n"
        "               registered adversary; with --circuit only the\n"
        "               oracle-granted ones: cegar, random-sampling)\n"
        "  batch        run a scenario spec file, optionally in parallel\n"
        "  serve        start the persistent experiment server\n"
        "  submit       submit a spec file to a running server\n"
        "  watch        attach to a running server job's progress stream\n"
        "  status       show a server's jobs and stage-cache stats\n"
        "  cancel       cancel a server job\n"
        "  shutdown     stop a running server\n"
        "  adversaries  list the registered adversaries\n"
        "  check-report validate a batch JSON report\n"
        "  check-trace  validate a trace file written by --trace\n"
        "  verify-proof verify an attack-proof artifact written by\n"
        "               --emit-proof (chip-free replay + commitment check)\n"
        "\n"
        "scenario options (run/attack):\n"
        "  --funcs FAMILY:N   viable set: present:2..16 or des:1..8 (default present:2)\n"
        "  --circuit FILE     import a benchmark circuit (BLIF, AIGER aag/aig,\n"
        "                     or ISCAS .bench) instead of merging a viable\n"
        "                     set; camouflage it with --camo-* and attack it\n"
        "                     (excludes --funcs and the GA/baseline flags)\n"
        "  --camo-density D   camouflage this fraction of the mapped cells,\n"
        "                     D in (0, 1] (default 0.1; --circuit only)\n"
        "  --camo-cells N     camouflage exactly N cells instead of a\n"
        "                     fraction (excludes --camo-density)\n"
        "  --camo-seed S      cell-selection seed (default: the --seed value)\n"
        "  --camo-policy P    which cells to pick: random (default), fanout\n"
        "                     (highest fanout first), depth (deepest first)\n"
        "  --seed S           RNG seed (default 1)\n"
        "  --population P     GA population (default 48)\n"
        "  --generations G    GA generations (default 60)\n"
        "  --quick            small budgets (population 8, generations 4)\n"
        "  --no-baseline      skip the equal-budget random baseline\n"
        "  --no-camo          skip camouflage covering (Phase III)\n"
        "  --no-verify        skip configuration replay validation\n"
        "  --adversaries A,B  adversaries for the attack stage\n"
        "  --count-mode M     CEGAR survivor counting: exact (projected model\n"
        "                     counter, uncapped; default), approx (ApproxMC-\n"
        "                     style (eps,delta) estimate), enumerate (legacy\n"
        "                     capped model enumeration)\n"
        "  --count-cache-mb N component-cache budget for exact counting\n"
        "                     (default 64)\n"
        "  --count-max-decisions N\n"
        "                     exact-counter branch budget before falling back\n"
        "                     to capped enumeration (default 100000; 0 = off)\n"
        "  --epsilon E        approx tolerance (default 0.8; approx only)\n"
        "  --delta D          approx error probability (default 0.2; approx only)\n"
        "  --max-survivors N  cap the enumerate count (implies\n"
        "                     --count-mode enumerate; --quick caps at 256)\n"
        "  --no-enumerate     skip survivor counting entirely\n"
        "  --no-preprocess    disable SAT preprocessing/inprocessing\n"
        "  --no-shared-miter  legacy two-copy CEGAR encoding\n"
        "  --canonical-inputs lex-min distinguishing inputs (deterministic\n"
        "                     attack transcripts; costly at 16+ PIs)\n"
        "  --attack-threads N worker threads for the attack: portfolio CEGAR\n"
        "                     members and cube-and-conquer counter workers\n"
        "                     (default 1 = serial; counts bit-identical)\n"
        "  --portfolio N      pin the CEGAR portfolio member count (0 =\n"
        "                     follow --attack-threads, 1 = force serial)\n"
        "  --cube-vars K      selector-cube width for the parallel counter\n"
        "                     (0 = auto from --attack-threads; max 16)\n"
        "  --elim-occ N       BVE occurrence bound (default 32)\n"
        "  --elim-growth N    BVE clause-growth bound (default 8)\n"
        "\n"
        "oracle threat-model options (run/attack):\n"
        "  --query-budget N   the chip answers at most N patterns; the CEGAR\n"
        "                     attack then terminates honestly with status\n"
        "                     \"query budget\" (N > 0)\n"
        "  --oracle-noise P   flip each answered output bit with probability\n"
        "                     P in [0, 1) (measurement error)\n"
        "  --oracle-cache     dedupe repeated patterns before they reach the\n"
        "                     budget/chip\n"
        "  --save-transcript FILE\n"
        "                     record the attacker-visible oracle transcript\n"
        "                     as JSON\n"
        "  --replay-transcript FILE\n"
        "                     replay a recorded transcript instead of\n"
        "                     consulting the chip (contradicts --oracle-noise)\n"
        "  --emit-proof FILE  write a verifiable attack-proof artifact for\n"
        "                     the CEGAR run (commitment-chained transcript;\n"
        "                     check it with mvf verify-proof)\n"
        "  --random-warmup N  CEGAR warm-up: N random patterns queried in\n"
        "                     word-parallel blocks before the loop\n"
        "  --neighborhood-queries N\n"
        "                     additionally query N single-bit-flip neighbors\n"
        "                     of each distinguishing input (survivor-\n"
        "                     preserving extra pruning)\n"
        "  --random-queries N pattern budget of the random-sampling baseline\n"
        "                     adversary (default 128)\n"
        "\n"
        "  --json FILE        also write the JSON record(s) to FILE\n"
        "\n"
        "observability options (run/attack/batch):\n"
        "  --trace FILE       stream structured span/counter events to FILE\n"
        "                     (per CEGAR iteration, pipeline stage, scenario)\n"
        "  --trace-format F   ndjson (default; one JSON record per line) or\n"
        "                     chrome (load in Perfetto / chrome://tracing)\n"
        "  --metrics          collect latency histograms and counters; the\n"
        "                     registry snapshot is printed (and embedded in\n"
        "                     the --json report as \"metrics\")\n"
        "\n"
        "batch options:\n"
        "  --spec FILE        scenario spec (required); see README for the format\n"
        "  --jobs N           worker threads (default 1)\n"
        "  --json FILE        write the batch report to FILE\n"
        "  --verbose          per-scenario progress on stderr\n"
        "\n"
        "serve options:\n"
        "  --listen ADDR      unix:/path.sock or tcp:host:port (port 0 =\n"
        "                     kernel-assigned; the bound address is printed)\n"
        "  --jobs N           scheduler worker threads (default 2)\n"
        "  --cache-mb N       in-memory stage-cache budget (default 256)\n"
        "  --cache-dir DIR    spill stage snapshots to DIR (cache survives\n"
        "                     restarts and memory eviction)\n"
        "  --verbose          per-request logging on stderr\n"
        "\n"
        "client options (submit/watch/status/cancel/shutdown):\n"
        "  --connect ADDR     server address (required)\n"
        "  --spec FILE        scenario spec to submit (submit)\n"
        "  --job ID           job id (watch/cancel; optional for status)\n"
        "  --stream           stream NDJSON progress records (submit)\n"
        "  --trace-out FILE   tee streamed records to FILE (implies --stream;\n"
        "                     the file passes mvf check-trace)\n"
        "  --no-wait          return after the ack, don't wait for results\n"
        "  --timeout S        server-side job deadline in seconds\n"
        "  --json FILE        write the results report to FILE\n");
    return 2;
}

bool next_value(int argc, char** argv, int* i, std::string* out) {
    if (*i + 1 >= argc) {
        std::fprintf(stderr, "mvf: %s needs a value\n", argv[*i]);
        return false;
    }
    *out = argv[++*i];
    return true;
}

/// std::stoi with a usage error instead of an uncaught exception on junk.
bool parse_int_flag(const std::string& value, const char* flag, int* out) {
    try {
        std::size_t used = 0;
        const int parsed = std::stoi(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        *out = parsed;
        return true;
    } catch (const std::exception&) {
        std::fprintf(stderr, "mvf: %s expects an integer, got \"%s\"\n", flag,
                     value.c_str());
        return false;
    }
}

bool parse_u64_flag(const std::string& value, const char* flag,
                    std::uint64_t* out) {
    try {
        std::size_t used = 0;
        const std::uint64_t parsed = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        *out = parsed;
        return true;
    } catch (const std::exception&) {
        std::fprintf(stderr, "mvf: %s expects an unsigned integer, got \"%s\"\n",
                     flag, value.c_str());
        return false;
    }
}

bool parse_double_flag(const std::string& value, const char* flag,
                       double* out) {
    try {
        std::size_t used = 0;
        const double parsed = std::stod(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        *out = parsed;
        return true;
    } catch (const std::exception&) {
        std::fprintf(stderr, "mvf: %s expects a number, got \"%s\"\n", flag,
                     value.c_str());
        return false;
    }
}

/// Process-level observability switches (run/attack/batch).
struct ObsFlags {
    std::string trace_path;  ///< empty = tracing off
    obs::TraceFormat trace_format = obs::TraceFormat::kNdjson;
    bool metrics = false;
};

/// Parses the shared scenario flags into `scenario`; `json_path` receives
/// --json.  Returns false (after printing) on a bad flag.
bool parse_scenario_flags(int argc, char** argv, int start,
                          flow::Scenario* scenario, std::string* json_path,
                          int* jobs, std::string* spec_path, bool* verbose,
                          ObsFlags* obs_flags) {
    // --quick provides defaults, applied after the loop so an explicit
    // --population/--generations/--max-survivors wins regardless of the
    // order the flags appear in.
    bool quick = false;
    bool population_set = false;
    bool generations_set = false;
    bool survivors_set = false;
    bool count_mode_set = false;
    bool eps_delta_set = false;
    bool cache_mb_set = false;
    bool decisions_set = false;
    bool no_enumerate_set = false;
    bool noise_set = false;
    bool funcs_set = false;
    bool camo_density_set = false;
    bool camo_cells_set = false;
    // Any --camo-* flag: they configure the injection pass, which only
    // exists on the --circuit path.
    bool camo_flag_set = false;
    // Flags that steer the S-box synthesis flow, which --circuit skips;
    // remembered by name for the error message.
    std::string sbox_only_flag;
    const auto note_sbox_only = [&sbox_only_flag](const char* flag) {
        if (sbox_only_flag.empty()) sbox_only_flag = flag;
    };
    for (int i = start; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--circuit") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (value.empty()) {
                std::fprintf(stderr, "mvf: --circuit expects a file path\n");
                return false;
            }
            scenario->params.circuit.path = value;
        } else if (arg == "--camo-density") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_double_flag(value, "--camo-density",
                                   &scenario->params.circuit.camo_density)) {
                return false;
            }
            if (!(scenario->params.circuit.camo_density > 0.0 &&
                  scenario->params.circuit.camo_density <= 1.0)) {
                std::fprintf(stderr, "mvf: --camo-density must be in (0, 1]\n");
                return false;
            }
            camo_density_set = true;
            camo_flag_set = true;
        } else if (arg == "--camo-cells") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_int_flag(value, "--camo-cells",
                                &scenario->params.circuit.camo_cells)) {
                return false;
            }
            if (scenario->params.circuit.camo_cells < 1) {
                std::fprintf(stderr, "mvf: --camo-cells must be >= 1\n");
                return false;
            }
            camo_cells_set = true;
            camo_flag_set = true;
        } else if (arg == "--camo-seed") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_u64_flag(value, "--camo-seed",
                                &scenario->params.circuit.camo_seed)) {
                return false;
            }
            camo_flag_set = true;
        } else if (arg == "--camo-policy") {
            if (!next_value(argc, argv, &i, &value)) return false;
            camo::InjectPolicy policy;
            if (!camo::inject_policy_from_name(value, &policy)) {
                std::fprintf(stderr,
                             "mvf: --camo-policy expects random, fanout or "
                             "depth, got \"%s\"\n",
                             value.c_str());
                return false;
            }
            scenario->params.circuit.camo_policy = value;
            camo_flag_set = true;
        } else if (arg == "--funcs") {
            funcs_set = true;
            if (!next_value(argc, argv, &i, &value)) return false;
            const std::size_t colon = value.find(':');
            if (colon == std::string::npos) {
                std::fprintf(stderr, "mvf: --funcs expects FAMILY:N\n");
                return false;
            }
            scenario->family = value.substr(0, colon);
            try {
                scenario->n = std::stoi(value.substr(colon + 1));
            } catch (const std::exception&) {
                std::fprintf(stderr, "mvf: bad --funcs width in \"%s\"\n",
                             value.c_str());
                return false;
            }
        } else if (arg == "--seed") {
            if (!next_value(argc, argv, &i, &value)) return false;
            scenario->params.seed = std::strtoull(value.c_str(), nullptr, 10);
        } else if (arg == "--population") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_int_flag(value, "--population",
                                &scenario->params.ga.population)) {
                return false;
            }
            population_set = true;
            note_sbox_only("--population");
        } else if (arg == "--generations") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_int_flag(value, "--generations",
                                &scenario->params.ga.generations)) {
                return false;
            }
            generations_set = true;
            note_sbox_only("--generations");
        } else if (arg == "--quick") {
            quick = true;
        } else if (arg == "--max-survivors") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_u64_flag(value, "--max-survivors",
                                &scenario->params.oracle.max_survivors)) {
                return false;
            }
            survivors_set = true;
        } else if (arg == "--count-mode") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!attack::count_mode_from_name(
                    value, &scenario->params.oracle.count_mode)) {
                std::fprintf(stderr,
                             "mvf: --count-mode expects exact, approx or "
                             "enumerate, got \"%s\"\n",
                             value.c_str());
                return false;
            }
            count_mode_set = true;
        } else if (arg == "--count-cache-mb") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_int_flag(value, "--count-cache-mb",
                                &scenario->params.oracle.count_cache_mb)) {
                return false;
            }
            if (scenario->params.oracle.count_cache_mb <= 0) {
                std::fprintf(stderr, "mvf: --count-cache-mb must be > 0\n");
                return false;
            }
            cache_mb_set = true;
        } else if (arg == "--count-max-decisions") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_u64_flag(
                    value, "--count-max-decisions",
                    &scenario->params.oracle.count_max_decisions)) {
                return false;
            }
            cache_mb_set = true;  // same exact-only applicability rule
            decisions_set = true;
        } else if (arg == "--epsilon") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_double_flag(value, "--epsilon",
                                   &scenario->params.oracle.epsilon)) {
                return false;
            }
            if (!(scenario->params.oracle.epsilon > 0.0)) {
                std::fprintf(stderr, "mvf: --epsilon must be > 0\n");
                return false;
            }
            eps_delta_set = true;
        } else if (arg == "--delta") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_double_flag(value, "--delta",
                                   &scenario->params.oracle.delta)) {
                return false;
            }
            if (!(scenario->params.oracle.delta > 0.0 &&
                  scenario->params.oracle.delta < 1.0)) {
                std::fprintf(stderr, "mvf: --delta must be in (0, 1)\n");
                return false;
            }
            eps_delta_set = true;
        } else if (arg == "--no-enumerate") {
            scenario->params.oracle.enumerate_survivors = false;
            no_enumerate_set = true;
        } else if (arg == "--no-preprocess") {
            scenario->params.oracle.solver.preprocess = false;
        } else if (arg == "--no-shared-miter") {
            scenario->params.oracle.shared_miter = false;
        } else if (arg == "--canonical-inputs") {
            scenario->params.oracle.canonical_inputs = true;
        } else if (arg == "--attack-threads") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_int_flag(value, "--attack-threads",
                                &scenario->params.oracle.attack_threads)) {
                return false;
            }
            if (scenario->params.oracle.attack_threads < 1) {
                std::fprintf(stderr, "mvf: --attack-threads must be >= 1\n");
                return false;
            }
        } else if (arg == "--portfolio") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_int_flag(value, "--portfolio",
                                &scenario->params.oracle.portfolio)) {
                return false;
            }
            if (scenario->params.oracle.portfolio < 0) {
                std::fprintf(stderr, "mvf: --portfolio must be >= 0\n");
                return false;
            }
        } else if (arg == "--cube-vars") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_int_flag(value, "--cube-vars",
                                &scenario->params.oracle.cube_vars)) {
                return false;
            }
            if (scenario->params.oracle.cube_vars < 0 ||
                scenario->params.oracle.cube_vars > 16) {
                std::fprintf(stderr, "mvf: --cube-vars must be in 0..16\n");
                return false;
            }
        } else if (arg == "--elim-occ") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_int_flag(value, "--elim-occ",
                                &scenario->params.oracle.solver.elim_occ_limit)) {
                return false;
            }
        } else if (arg == "--elim-growth") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_int_flag(value, "--elim-growth",
                                &scenario->params.oracle.solver.elim_growth)) {
                return false;
            }
        } else if (arg == "--query-budget") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_u64_flag(value, "--query-budget",
                                &scenario->params.oracle_model.query_budget)) {
                return false;
            }
            if (scenario->params.oracle_model.query_budget == 0) {
                std::fprintf(stderr,
                             "mvf: --query-budget must be > 0 (omit the flag "
                             "for an unlimited oracle)\n");
                return false;
            }
        } else if (arg == "--oracle-noise") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_double_flag(value, "--oracle-noise",
                                   &scenario->params.oracle_model.noise)) {
                return false;
            }
            if (!(scenario->params.oracle_model.noise >= 0.0 &&
                  scenario->params.oracle_model.noise < 1.0)) {
                std::fprintf(stderr, "mvf: --oracle-noise must be in [0, 1)\n");
                return false;
            }
            noise_set = true;
        } else if (arg == "--oracle-cache") {
            scenario->params.oracle_model.cache = true;
        } else if (arg == "--save-transcript") {
            if (!next_value(argc, argv, &i, &value)) return false;
            scenario->params.save_transcript = value;
        } else if (arg == "--replay-transcript") {
            if (!next_value(argc, argv, &i, &value)) return false;
            scenario->params.replay_transcript = value;
        } else if (arg == "--emit-proof") {
            if (!next_value(argc, argv, &i, &value)) return false;
            scenario->params.emit_proof = value;
        } else if (arg == "--neighborhood-queries") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_int_flag(value, "--neighborhood-queries",
                                &scenario->params.oracle.neighborhood_queries)) {
                return false;
            }
            if (scenario->params.oracle.neighborhood_queries < 0) {
                std::fprintf(stderr,
                             "mvf: --neighborhood-queries must be >= 0\n");
                return false;
            }
        } else if (arg == "--random-warmup") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_int_flag(value, "--random-warmup",
                                &scenario->params.oracle.random_warmup)) {
                return false;
            }
            if (scenario->params.oracle.random_warmup < 0) {
                std::fprintf(stderr, "mvf: --random-warmup must be >= 0\n");
                return false;
            }
        } else if (arg == "--random-queries") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_int_flag(value, "--random-queries",
                                &scenario->params.random_queries)) {
                return false;
            }
            if (scenario->params.random_queries <= 0) {
                std::fprintf(stderr, "mvf: --random-queries must be > 0\n");
                return false;
            }
        } else if (arg == "--no-baseline") {
            scenario->params.run_random_baseline = false;
            note_sbox_only("--no-baseline");
        } else if (arg == "--no-camo") {
            scenario->params.run_camo_mapping = false;
        } else if (arg == "--no-verify") {
            scenario->params.verify = false;
            note_sbox_only("--no-verify");
        } else if (arg == "--adversaries") {
            if (!next_value(argc, argv, &i, &value)) return false;
            scenario->params.adversaries.clear();
            std::istringstream in(value);
            std::string item;
            while (std::getline(in, item, ',')) {
                if (!item.empty()) scenario->params.adversaries.push_back(item);
            }
        } else if (arg == "--trace" && obs_flags) {
            if (!next_value(argc, argv, &i, &value)) return false;
            obs_flags->trace_path = value;
        } else if (arg == "--trace-format" && obs_flags) {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!obs::trace_format_from_name(value,
                                             &obs_flags->trace_format)) {
                std::fprintf(stderr,
                             "mvf: --trace-format expects ndjson or chrome, "
                             "got \"%s\"\n",
                             value.c_str());
                return false;
            }
        } else if (arg == "--metrics" && obs_flags) {
            obs_flags->metrics = true;
        } else if (arg == "--json" && json_path) {
            if (!next_value(argc, argv, &i, &value)) return false;
            *json_path = value;
        } else if (arg == "--jobs" && jobs) {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_int_flag(value, "--jobs", jobs)) return false;
        } else if (arg == "--spec" && spec_path) {
            if (!next_value(argc, argv, &i, &value)) return false;
            *spec_path = value;
        } else if (arg == "--verbose" && verbose) {
            *verbose = true;
        } else {
            std::fprintf(stderr, "mvf: unknown option %s\n", arg.c_str());
            return false;
        }
    }
    // Circuit scenarios are file-based: the subject comes from the
    // benchmark, so --funcs and the S-box synthesis flags contradict
    // --circuit, and the --camo-* knobs require it (mirrors
    // parse_scenario_spec for the spec-file keys).
    const bool is_circuit = !scenario->params.circuit.path.empty();
    if (is_circuit && funcs_set) {
        std::fprintf(stderr,
                     "mvf: --circuit and --funcs name two different "
                     "subjects; pick one\n");
        return false;
    }
    if (!is_circuit && camo_flag_set) {
        std::fprintf(stderr,
                     "mvf: --camo-density/--camo-cells/--camo-seed/"
                     "--camo-policy require --circuit (the S-box flow "
                     "camouflages via Phase III covering)\n");
        return false;
    }
    if (is_circuit && !sbox_only_flag.empty()) {
        std::fprintf(stderr,
                     "mvf: %s steers the S-box synthesis flow, which "
                     "--circuit scenarios skip\n",
                     sbox_only_flag.c_str());
        return false;
    }
    if (camo_density_set && camo_cells_set) {
        std::fprintf(stderr,
                     "mvf: --camo-density and --camo-cells both size the "
                     "camouflage budget; pick one\n");
        return false;
    }
    if (is_circuit) {
        // The plausibility attacker needs the viable-function targets,
        // which only the S-box flow has.
        for (const std::string& adv : scenario->params.adversaries) {
            if (adv == "plausibility") {
                std::fprintf(stderr,
                             "mvf: adversary \"%s\" needs the viable-"
                             "function set; --circuit scenarios support "
                             "oracle-granted adversaries (cegar, "
                             "random-sampling)\n",
                             adv.c_str());
                return false;
            }
        }
        scenario->family = "circuit";
        scenario->n = 0;
    }
    // Contradictory counting flags are a usage error, never silently
    // ignored: each flag only applies to one --count-mode.
    using attack::CountMode;
    if (survivors_set) {
        if (count_mode_set &&
            scenario->params.oracle.count_mode != CountMode::kEnumerate) {
            std::fprintf(stderr,
                         "mvf: --max-survivors only applies to --count-mode "
                         "enumerate\n");
            return false;
        }
        // A survivor cap is a request for capped enumeration.
        scenario->params.oracle.count_mode = CountMode::kEnumerate;
    }
    if (eps_delta_set &&
        (!count_mode_set ||
         scenario->params.oracle.count_mode != CountMode::kApprox)) {
        std::fprintf(stderr,
                     "mvf: --epsilon/--delta require --count-mode approx\n");
        return false;
    }
    if (cache_mb_set &&
        scenario->params.oracle.count_mode != CountMode::kExact) {
        std::fprintf(stderr,
                     "mvf: --count-cache-mb/--count-max-decisions only apply "
                     "to --count-mode exact\n");
        return false;
    }
    if (no_enumerate_set &&
        (count_mode_set || survivors_set || cache_mb_set || eps_delta_set)) {
        std::fprintf(stderr,
                     "mvf: --no-enumerate skips survivor counting; it "
                     "contradicts the --count-mode/--max-survivors/"
                     "--count-cache-mb/--count-max-decisions/--epsilon/"
                     "--delta flags\n");
        return false;
    }
    // Replay serves recorded answers; fresh measurement noise on top would
    // corrupt a transcript that already embeds the noise it was recorded
    // under.
    if (noise_set && !scenario->params.replay_transcript.empty()) {
        std::fprintf(stderr,
                     "mvf: --replay-transcript replays recorded answers; it "
                     "contradicts --oracle-noise\n");
        return false;
    }
    // A cache above a replaying transcript desynchronizes the replay
    // cursor on duplicate patterns.
    if (scenario->params.oracle_model.cache &&
        !scenario->params.replay_transcript.empty()) {
        std::fprintf(stderr,
                     "mvf: --replay-transcript contradicts --oracle-cache\n");
        return false;
    }
    // A transcript is one member's ordered view; racing a portfolio over a
    // replay is contradictory.
    if (scenario->params.oracle.portfolio > 1 &&
        !scenario->params.replay_transcript.empty()) {
        std::fprintf(stderr,
                     "mvf: --replay-transcript contradicts --portfolio\n");
        return false;
    }
    // A proof certifies a fresh serial CEGAR run: replaying a transcript
    // proves nothing new, and portfolio members interleave their queries
    // into a non-replayable sequence.
    if (!scenario->params.emit_proof.empty()) {
        if (!scenario->params.replay_transcript.empty()) {
            std::fprintf(stderr,
                         "mvf: --emit-proof contradicts --replay-transcript\n");
            return false;
        }
        const int members =
            scenario->params.oracle.portfolio > 0
                ? scenario->params.oracle.portfolio
                : std::max(1, scenario->params.oracle.attack_threads);
        if (members > 1) {
            std::fprintf(stderr,
                         "mvf: --emit-proof requires a serial CEGAR attack "
                         "(use --portfolio 1 or --attack-threads 1)\n");
            return false;
        }
    }
    if (quick) {
        if (!population_set) scenario->params.ga.population = 8;
        if (!generations_set) scenario->params.ga.generations = 4;
        // Enumerating a million survivors dominates quick runs on big
        // configuration spaces; a small cap still shows the shape.  The
        // cap governs enumerate mode AND the exact counter's fallback
        // path, so it is lowered regardless of the counting mode -- and
        // so is the exact decision budget, which is otherwise a few
        // seconds of burn on dense instances.
        if (!survivors_set) scenario->params.oracle.max_survivors = 256;
        if (!decisions_set) {
            scenario->params.oracle.count_max_decisions = 20'000;
        }
    }
    return true;
}

void print_record(const flow::ScenarioRecord& r) {
    if (r.family == "circuit") {
        std::printf("scenario %s (circuit seed=%llu)\n", r.name.c_str(),
                    static_cast<unsigned long long>(r.seed));
    } else {
        std::printf("scenario %s (funcs=%s:%d seed=%llu)\n", r.name.c_str(),
                    r.family.c_str(), r.n,
                    static_cast<unsigned long long>(r.seed));
    }
    if (!r.ok) {
        std::printf("  FAILED: %s\n", r.error.c_str());
        return;
    }
    if (r.random_best > 0.0) {
        std::printf("  random      %8.1f GE avg, %8.1f GE best\n", r.random_avg,
                    r.random_best);
    }
    std::printf("  GA          %8.1f GE\n", r.ga_area);
    if (r.ga_tm_area > 0.0) {
        std::printf("  GA+TM       %8.1f GE  (%.0f%% vs best random)\n",
                    r.ga_tm_area, r.improvement_percent);
        std::printf("  camouflage  %d cells, configuration space 2^%.0f, %s\n",
                    r.camo_cells, r.config_space_bits,
                    r.verified ? "all configurations verified"
                               : "NOT verified");
    }
    for (const attack::AdversaryReport& a : r.attacks) {
        // survivors_str carries full precision (counting adversaries can
        // exceed uint64); fall back to the numeric field for the others.
        const std::string survivors = a.survivors_str.empty()
                                          ? std::to_string(a.survivors)
                                          : a.survivors_str;
        std::printf("  adversary %-13s %-7s %s: %d queries, %s survivors%s%s, %.2fs\n",
                    a.adversary.c_str(), a.success ? "SUCCESS" : "failed",
                    a.outcome.c_str(), a.queries, survivors.c_str(),
                    a.count_mode.empty() ? "" : " via ",
                    a.count_mode.c_str(), a.seconds);
        if (!(a.oracle == attack::OracleStats{})) {
            std::printf(
                "    oracle: %llu patterns (%llu scalar, %llu block calls), "
                "%llu cache hits, %llu noisy bits%s\n",
                static_cast<unsigned long long>(a.oracle.patterns),
                static_cast<unsigned long long>(a.oracle.scalar_queries),
                static_cast<unsigned long long>(a.oracle.block_queries),
                static_cast<unsigned long long>(a.oracle.cache_hits),
                static_cast<unsigned long long>(a.oracle.noisy_bits),
                a.oracle.budget_exhausted ? ", budget exhausted" : "");
        }
    }
    std::printf("  %.1fs\n", r.seconds);
}

int write_report(const std::string& path,
                 const std::vector<flow::ScenarioRecord>& records,
                 double total_seconds, const report::Json* metrics) {
    report::Json doc = flow::batch_report(records, total_seconds);
    if (metrics) doc.set("metrics", *metrics);
    const report::JsonWriter writer(path);
    if (!writer.write(doc)) {
        std::fprintf(stderr, "mvf: cannot write %s\n", path.c_str());
        return 1;
    }
    return 0;
}

int run_scenarios(const std::vector<flow::Scenario>& scenarios, int jobs,
                  bool verbose, const std::string& json_path,
                  const ObsFlags& obs_flags) {
    // The sink outlives the batch; uninstall before it is destroyed so no
    // late event races the close.
    std::optional<obs::TraceSink> sink;
    if (!obs_flags.trace_path.empty()) {
        sink.emplace(obs_flags.trace_path, obs_flags.trace_format);
        if (!sink->ok()) {
            std::fprintf(stderr, "mvf: cannot open trace file %s\n",
                         obs_flags.trace_path.c_str());
            return 2;
        }
        obs::set_trace_sink(&*sink);
    }
    if (obs_flags.metrics) {
        obs::MetricsRegistry::global().reset();
        obs::set_metrics_enabled(true);
    }

    util::Stopwatch sw;
    flow::BatchParams batch;
    batch.jobs = jobs;
    batch.verbose = verbose;
    const std::vector<flow::ScenarioRecord> records =
        flow::BatchRunner(batch).run(scenarios);
    const double total = sw.elapsed_seconds();

    if (sink) {
        obs::set_trace_sink(nullptr);
        sink->flush();
    }
    std::optional<report::Json> metrics;
    if (obs_flags.metrics) {
        obs::set_metrics_enabled(false);
        metrics = obs::MetricsRegistry::global().snapshot_json();
    }

    int failures = 0;
    for (const flow::ScenarioRecord& r : records) {
        print_record(r);
        if (!r.ok) ++failures;
    }
    std::printf("%d scenario%s, %d failure%s, %.1fs (jobs=%d)\n",
                static_cast<int>(records.size()),
                records.size() == 1 ? "" : "s", failures,
                failures == 1 ? "" : "s", total, jobs);
    if (metrics) {
        std::printf("metrics:\n%s\n", metrics->dump(2).c_str());
    }
    if (sink) {
        std::printf("trace written to %s (%llu events, %s)\n",
                    sink->path().c_str(),
                    static_cast<unsigned long long>(sink->events()),
                    std::string(obs::trace_format_name(sink->format())).c_str());
    }
    if (!json_path.empty()) {
        const int rc = write_report(json_path, records, total,
                                    metrics ? &*metrics : nullptr);
        if (rc != 0) return rc;
        std::printf("report written to %s\n", json_path.c_str());
    }
    return failures == 0 ? 0 : 1;
}

/// "bench/c17.bench" -> "c17": default scenario name for --circuit runs.
std::string file_stem(const std::string& path) {
    const std::size_t slash = path.find_last_of("/\\");
    std::string stem =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = stem.find_last_of('.');
    if (dot != std::string::npos && dot > 0) stem = stem.substr(0, dot);
    return stem;
}

int cmd_run(int argc, char** argv, bool force_attack) {
    flow::Scenario scenario;
    std::string json_path;
    ObsFlags obs_flags;
    if (!parse_scenario_flags(argc, argv, 2, &scenario, &json_path, nullptr,
                              nullptr, nullptr, &obs_flags)) {
        return 2;
    }
    const bool is_circuit = !scenario.params.circuit.path.empty();
    if (force_attack && scenario.params.adversaries.empty()) {
        if (is_circuit) {
            // Imported circuits have no viable-function set, so only the
            // oracle-granted adversaries apply.
            scenario.params.adversaries = {"cegar", "random-sampling"};
        } else {
            scenario.params.adversaries =
                attack::AdversaryRegistry::instance().names();
        }
    }
    if (scenario.name.empty()) {
        scenario.name =
            is_circuit
                ? file_stem(scenario.params.circuit.path) + "-s" +
                      std::to_string(scenario.params.seed)
                : scenario.family + std::to_string(scenario.n) + "-s" +
                      std::to_string(scenario.params.seed);
    }
    return run_scenarios({scenario}, /*jobs=*/1, /*verbose=*/false, json_path,
                         obs_flags);
}

int cmd_batch(int argc, char** argv) {
    flow::Scenario ignored;
    std::string json_path;
    std::string spec_path;
    int jobs = 1;
    bool verbose = false;
    ObsFlags obs_flags;
    if (!parse_scenario_flags(argc, argv, 2, &ignored, &json_path, &jobs,
                              &spec_path, &verbose, &obs_flags)) {
        return 2;
    }
    if (spec_path.empty()) {
        std::fprintf(stderr, "mvf batch: --spec FILE is required\n");
        return 2;
    }
    std::vector<flow::Scenario> scenarios;
    try {
        scenarios = flow::load_scenario_spec(spec_path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mvf batch: %s\n", e.what());
        return 2;
    }
    if (scenarios.empty()) {
        std::fprintf(stderr, "mvf batch: %s contains no scenarios\n",
                     spec_path.c_str());
        return 2;
    }
    return run_scenarios(scenarios, jobs, verbose, json_path, obs_flags);
}

int cmd_adversaries() {
    attack::AdversaryRegistry& registry = attack::AdversaryRegistry::instance();
    const attack::AdversaryOptions probe;  // factories only need options at attack time
    for (const std::string& name : registry.names()) {
        const auto adversary = registry.create(name, probe);
        std::printf("%-14s knowledge: %s\n", name.c_str(),
                    std::string(knowledge_name(adversary->knowledge())).c_str());
    }
    return 0;
}

int cmd_check_report(int argc, char** argv) {
    if (argc < 3) {
        std::fprintf(stderr, "usage: mvf check-report FILE\n");
        return 2;
    }
    const std::string path = argv[2];
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "mvf check-report: cannot open %s\n", path.c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        const report::Json doc = report::Json::parse(text.str());
        const std::size_t declared = doc.at("scenario_count").as_uint();
        const report::Json& scenarios = doc.at("scenarios");
        if (scenarios.size() != declared) {
            std::fprintf(stderr,
                         "mvf check-report: scenario_count %zu != %zu records\n",
                         declared, scenarios.size());
            return 1;
        }
        int failures = 0;
        for (const report::Json& s : scenarios.items()) {
            // Field presence/type checks; throws JsonError when malformed.
            s.at("name").as_string();
            s.at("seconds").as_number();
            if (!s.at("ok").as_bool()) ++failures;
            for (const report::Json& a : s.at("attacks").items()) {
                attack::AdversaryReport::from_json(a);  // full round-trip check
                // The round trip alone cannot see a hand-edited
                // disagreement between the clamped numeric survivors field
                // and its authoritative decimal mirror (parsing rebuilds
                // the former from the latter); cross-check the raw
                // document explicitly.
                const std::string mismatch = attack::survivors_mismatch(a);
                if (!mismatch.empty()) {
                    std::fprintf(stderr, "mvf check-report: %s\n",
                                 mismatch.c_str());
                    return 1;
                }
            }
        }
        if (failures != doc.at("failures").as_int()) {
            std::fprintf(stderr,
                         "mvf check-report: failure count mismatch\n");
            return 1;
        }
        if (failures > 0) {
            std::fprintf(stderr, "mvf check-report: %d scenario(s) failed\n",
                         failures);
            return 1;
        }
        std::printf("%s: %zu scenario record(s), all ok\n", path.c_str(),
                    scenarios.size());
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mvf check-report: malformed report: %s\n",
                     e.what());
        return 1;
    }
}

int cmd_verify_proof(int argc, char** argv) {
    if (argc < 3) {
        std::fprintf(stderr, "usage: mvf verify-proof FILE\n");
        return 2;
    }
    const std::string path = argv[2];
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "mvf verify-proof: cannot open %s\n",
                     path.c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        // Strict parse: a proof with duplicate keys is ambiguous evidence,
        // not a last-wins document.
        const report::Json doc = report::Json::parse_strict(text.str());
        const audit::AttackProof proof = audit::AttackProof::from_json(doc);
        const camo::CamoNetlist netlist = flow::camo_netlist_from_json(
            proof.netlist,
            camo::CamoLibrary::from_gate_library(tech::GateLibrary::standard()));
        const audit::ProofVerification v = proof.verify(netlist);
        std::printf("proof %s\n", path.c_str());
        std::printf("  adversary   %s\n", proof.report.adversary.c_str());
        std::printf("  queries     %zu committed\n",
                    proof.transcript.entries.size());
        std::printf("  merkle root %s\n", proof.merkle_root.c_str());
        if (!proof.spec_hash.empty()) {
            std::printf("  spec hash   %s\n", proof.spec_hash.c_str());
        }
        std::printf("  commitments %s\n", v.commitments_ok ? "ok" : "MISMATCH");
        std::printf("  replay      %s\n", v.replay_ok ? "ok" : "MISMATCH");
        for (const std::string& f : v.failures) {
            std::fprintf(stderr, "mvf verify-proof: %s\n", f.c_str());
        }
        // Machine-parsable verdict line, mirroring check-report.
        std::printf("verify-proof: %s %s\n", v.ok ? "PASS" : "FAIL",
                    path.c_str());
        return v.ok ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mvf verify-proof: malformed proof: %s\n",
                     e.what());
        std::printf("verify-proof: FAIL %s\n", path.c_str());
        return 1;
    }
}

// ------------------------------------------------------------- serve --

int cmd_serve(int argc, char** argv) {
    serve::ServerParams params;
    std::string listen;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--listen") {
            if (!next_value(argc, argv, &i, &value)) return 2;
            listen = value;
        } else if (arg == "--jobs") {
            if (!next_value(argc, argv, &i, &value)) return 2;
            if (!parse_int_flag(value, "--jobs", &params.workers)) return 2;
            if (params.workers <= 0) {
                std::fprintf(stderr, "mvf serve: --jobs must be > 0\n");
                return 2;
            }
        } else if (arg == "--cache-mb") {
            if (!next_value(argc, argv, &i, &value)) return 2;
            int mb = 0;
            if (!parse_int_flag(value, "--cache-mb", &mb)) return 2;
            if (mb <= 0) {
                std::fprintf(stderr, "mvf serve: --cache-mb must be > 0\n");
                return 2;
            }
            params.cache.max_bytes = static_cast<std::size_t>(mb) << 20;
        } else if (arg == "--cache-dir") {
            if (!next_value(argc, argv, &i, &value)) return 2;
            params.cache.spill_dir = value;
        } else if (arg == "--verbose") {
            params.verbose = true;
        } else {
            std::fprintf(stderr, "mvf serve: unknown option %s\n", arg.c_str());
            return 2;
        }
    }
    if (listen.empty()) {
        std::fprintf(stderr, "mvf serve: --listen ADDR is required\n");
        return 2;
    }
    try {
        params.listen = util::SocketAddr::parse(listen);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mvf serve: %s\n", e.what());
        return 2;
    }
    try {
        serve::Server server(std::move(params));
        server.bind();
        // The resolved address (tcp port 0 in particular) on stdout, so
        // scripts can capture where to connect.
        std::printf("listening on %s\n", server.bound_addr().to_string().c_str());
        std::fflush(stdout);
        server.run();
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mvf serve: %s\n", e.what());
        return 1;
    }
}

/// Shared client-side flag parse for submit/watch/status/cancel/shutdown.
struct ClientFlags {
    std::string connect;
    std::string spec_path;
    std::string job;
    std::string json_path;
    std::string trace_out;
    double timeout_s = 0.0;
    bool stream = false;
    bool no_wait = false;
};

bool parse_client_flags(int argc, char** argv, const char* command,
                        ClientFlags* flags) {
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--connect") {
            if (!next_value(argc, argv, &i, &value)) return false;
            flags->connect = value;
        } else if (arg == "--spec") {
            if (!next_value(argc, argv, &i, &value)) return false;
            flags->spec_path = value;
        } else if (arg == "--job") {
            if (!next_value(argc, argv, &i, &value)) return false;
            flags->job = value;
        } else if (arg == "--json") {
            if (!next_value(argc, argv, &i, &value)) return false;
            flags->json_path = value;
        } else if (arg == "--trace-out") {
            if (!next_value(argc, argv, &i, &value)) return false;
            flags->trace_out = value;
            flags->stream = true;
        } else if (arg == "--stream" || arg == "--watch") {
            flags->stream = true;
        } else if (arg == "--no-wait") {
            flags->no_wait = true;
        } else if (arg == "--timeout") {
            if (!next_value(argc, argv, &i, &value)) return false;
            if (!parse_double_flag(value, "--timeout", &flags->timeout_s)) {
                return false;
            }
        } else {
            std::fprintf(stderr, "mvf %s: unknown option %s\n", command,
                         arg.c_str());
            return false;
        }
    }
    if (flags->connect.empty()) {
        std::fprintf(stderr, "mvf %s: --connect ADDR is required\n", command);
        return false;
    }
    return true;
}

std::optional<util::SocketAddr> parse_connect(const std::string& text,
                                              const char* command) {
    try {
        return util::SocketAddr::parse(text);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mvf %s: %s\n", command, e.what());
        return std::nullopt;
    }
}

/// One machine-parsable summary line for submit/watch, consumed by the
/// serve-smoke CI job (grep for job=/records_hash=/cache_hits=).
int print_client_result(const serve::ClientResult& result,
                        const std::string& json_path) {
    if (!result.ok) {
        std::fprintf(stderr, "mvf: %s\n", result.error.c_str());
        if (!result.job.empty()) std::printf("job=%s ok=0\n", result.job.c_str());
        return 1;
    }
    std::string state;
    std::string records_hash;
    int cache_hits = 0;
    double seconds = 0.0;
    if (const report::Json* s = result.results.find("state");
        s && s->is_string()) {
        state = s->as_string();
    }
    if (const report::Json* h = result.results.find("records_hash");
        h && h->is_string()) {
        records_hash = h->as_string();
    }
    if (const report::Json* c = result.results.find("cache_hits");
        c && c->is_number()) {
        cache_hits = c->as_int();
    }
    if (const report::Json* s = result.results.find("seconds");
        s && s->is_number()) {
        seconds = s->as_number();
    }
    std::printf(
        "job=%s ok=%d state=%s records_hash=%s cache_hits=%d seconds=%.3f "
        "trace_lines=%d\n",
        result.job.c_str(), state == "done" ? 1 : 0, state.c_str(),
        records_hash.c_str(), cache_hits, seconds, result.trace_lines);
    if (!json_path.empty()) {
        if (const report::Json* rep = result.results.find("report")) {
            const report::JsonWriter writer(json_path);
            if (!writer.write(*rep)) {
                std::fprintf(stderr, "mvf: cannot write %s\n",
                             json_path.c_str());
                return 1;
            }
            std::printf("report written to %s\n", json_path.c_str());
        }
    }
    return state == "done" ? 0 : 1;
}

/// Opens --trace-out and returns an observer appending raw NDJSON lines.
serve::TraceLineFn trace_tee(std::ofstream* out) {
    if (!out || !out->is_open()) return {};
    return [out](const std::string& line) { *out << line << '\n'; };
}

int cmd_submit(int argc, char** argv) {
    ClientFlags flags;
    if (!parse_client_flags(argc, argv, "submit", &flags)) return 2;
    if (flags.spec_path.empty()) {
        std::fprintf(stderr, "mvf submit: --spec FILE is required\n");
        return 2;
    }
    std::ifstream in(flags.spec_path);
    if (!in) {
        std::fprintf(stderr, "mvf submit: cannot open %s\n",
                     flags.spec_path.c_str());
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::optional<util::SocketAddr> addr =
        parse_connect(flags.connect, "submit");
    if (!addr) return 2;
    std::ofstream trace_file;
    if (!flags.trace_out.empty()) {
        trace_file.open(flags.trace_out);
        if (!trace_file) {
            std::fprintf(stderr, "mvf submit: cannot open %s\n",
                         flags.trace_out.c_str());
            return 2;
        }
    }
    const serve::Client client(*addr);
    const serve::ClientResult result =
        client.submit(text.str(), /*wait=*/!flags.no_wait, flags.stream,
                      flags.timeout_s, trace_tee(&trace_file));
    if (flags.no_wait) {
        if (!result.ok) {
            std::fprintf(stderr, "mvf submit: %s\n", result.error.c_str());
            return 1;
        }
        std::printf("job=%s ok=1 state=queued\n", result.job.c_str());
        return 0;
    }
    return print_client_result(result, flags.json_path);
}

int cmd_watch(int argc, char** argv) {
    ClientFlags flags;
    if (!parse_client_flags(argc, argv, "watch", &flags)) return 2;
    if (flags.job.empty()) {
        std::fprintf(stderr, "mvf watch: --job ID is required\n");
        return 2;
    }
    const std::optional<util::SocketAddr> addr =
        parse_connect(flags.connect, "watch");
    if (!addr) return 2;
    std::ofstream trace_file;
    if (!flags.trace_out.empty()) {
        trace_file.open(flags.trace_out);
        if (!trace_file) {
            std::fprintf(stderr, "mvf watch: cannot open %s\n",
                         flags.trace_out.c_str());
            return 2;
        }
    }
    const serve::Client client(*addr);
    const serve::ClientResult result =
        client.watch(flags.job, trace_tee(&trace_file));
    return print_client_result(result, flags.json_path);
}

/// status/cancel/shutdown: print the server's response as indented JSON.
int print_response(const report::Json& response) {
    const report::Json* ok = response.find("ok");
    if (!ok || !ok->is_bool() || !ok->as_bool()) {
        const report::Json* e = response.find("error");
        std::fprintf(stderr, "mvf: %s\n",
                     e && e->is_string() ? e->as_string().c_str()
                                         : "request failed");
        return 1;
    }
    std::printf("%s\n", response.dump(2).c_str());
    return 0;
}

int cmd_status(int argc, char** argv) {
    ClientFlags flags;
    if (!parse_client_flags(argc, argv, "status", &flags)) return 2;
    const std::optional<util::SocketAddr> addr =
        parse_connect(flags.connect, "status");
    if (!addr) return 2;
    return print_response(serve::Client(*addr).status(flags.job));
}

int cmd_cancel(int argc, char** argv) {
    ClientFlags flags;
    if (!parse_client_flags(argc, argv, "cancel", &flags)) return 2;
    if (flags.job.empty()) {
        std::fprintf(stderr, "mvf cancel: --job ID is required\n");
        return 2;
    }
    const std::optional<util::SocketAddr> addr =
        parse_connect(flags.connect, "cancel");
    if (!addr) return 2;
    return print_response(serve::Client(*addr).cancel(flags.job));
}

int cmd_shutdown(int argc, char** argv) {
    ClientFlags flags;
    if (!parse_client_flags(argc, argv, "shutdown", &flags)) return 2;
    const std::optional<util::SocketAddr> addr =
        parse_connect(flags.connect, "shutdown");
    if (!addr) return 2;
    return print_response(serve::Client(*addr).shutdown());
}

int cmd_check_trace(int argc, char** argv) {
    if (argc < 3) {
        std::fprintf(stderr, "usage: mvf check-trace FILE\n");
        return 2;
    }
    const std::string path = argv[2];
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "mvf check-trace: cannot open %s\n", path.c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const obs::TraceValidation v = obs::validate_trace(text.str());
    if (!v.ok) {
        std::fprintf(stderr, "mvf check-trace: %s: %s\n", path.c_str(),
                     v.error.c_str());
        return 1;
    }
    std::printf("%s: %d record(s), %d open span(s), ok\n", path.c_str(),
                v.records, v.open_spans);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    if (command == "run") return cmd_run(argc, argv, /*force_attack=*/false);
    if (command == "attack") return cmd_run(argc, argv, /*force_attack=*/true);
    if (command == "batch") return cmd_batch(argc, argv);
    if (command == "serve") return cmd_serve(argc, argv);
    if (command == "submit") return cmd_submit(argc, argv);
    if (command == "watch") return cmd_watch(argc, argv);
    if (command == "status") return cmd_status(argc, argv);
    if (command == "cancel") return cmd_cancel(argc, argv);
    if (command == "shutdown") return cmd_shutdown(argc, argv);
    if (command == "adversaries") return cmd_adversaries();
    if (command == "check-report") return cmd_check_report(argc, argv);
    if (command == "check-trace") return cmd_check_trace(argc, argv);
    if (command == "verify-proof") return cmd_verify_proof(argc, argv);
    if (command == "--help" || command == "-h" || command == "help") {
        usage();
        return 0;
    }
    std::fprintf(stderr, "mvf: unknown command \"%s\"\n", command.c_str());
    return usage();
}
