#include "report/json.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace mvf::report {

namespace {

[[noreturn]] void fail(const std::string& what) { throw JsonError(what); }

void append_escaped(std::string* out, const std::string& s) {
    out->push_back('"');
    for (const char ch : s) {
        switch (ch) {
            case '"': *out += "\\\""; break;
            case '\\': *out += "\\\\"; break;
            case '\b': *out += "\\b"; break;
            case '\f': *out += "\\f"; break;
            case '\n': *out += "\\n"; break;
            case '\r': *out += "\\r"; break;
            case '\t': *out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(ch)));
                    *out += buf;
                } else {
                    out->push_back(ch);
                }
        }
    }
    out->push_back('"');
}

void append_number(std::string* out, double v) {
    if (!std::isfinite(v)) fail("Json: cannot serialize non-finite number");
    // Integral values within the exactly-representable range print without
    // a fractional part (counts, seeds, survivor totals).
    constexpr double kExactLimit = 9007199254740992.0;  // 2^53
    if (v == std::floor(v) && std::fabs(v) < kExactLimit) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
        *out += buf;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    *out += buf;
}

class Parser {
public:
    explicit Parser(const std::string& text, bool reject_duplicate_keys = false)
        : text_(text), reject_duplicate_keys_(reject_duplicate_keys) {}

    /// Containers deeper than this are rejected instead of letting the
    /// recursive-descent parser run the thread out of stack on adversarial
    /// input (e.g. a megabyte of '[').  Far above anything our reports or
    /// any sane hand-written document nest to.
    static constexpr int kMaxDepth = 200;

    Json parse_document() {
        Json value = parse_value();
        skip_ws();
        if (pos_ != text_.size()) error("trailing characters after document");
        return value;
    }

private:
    [[noreturn]] void error(const std::string& what) {
        fail("Json parse error at offset " + std::to_string(pos_) + ": " + what);
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) error("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (pos_ >= text_.size() || text_[pos_] != c) {
            error(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool consume_literal(const char* lit) {
        std::size_t n = 0;
        while (lit[n] != '\0') ++n;
        if (text_.compare(pos_, n, lit) != 0) return false;
        pos_ += n;
        return true;
    }

    Json parse_value() {
        skip_ws();
        const char c = peek();
        switch (c) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Json(parse_string());
            case 't':
                if (!consume_literal("true")) error("invalid literal");
                return Json(true);
            case 'f':
                if (!consume_literal("false")) error("invalid literal");
                return Json(false);
            case 'n':
                if (!consume_literal("null")) error("invalid literal");
                return Json();
            default: return parse_number();
        }
    }

    Json parse_object() {
        expect('{');
        if (++depth_ > kMaxDepth) error("nesting deeper than 200 levels");
        Json obj = Json::object();
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return obj;
        }
        while (true) {
            skip_ws();
            if (peek() != '"') error("expected member name");
            std::string key = parse_string();
            skip_ws();
            expect(':');
            // Duplicate member names follow set() semantics: last one wins
            // -- unless the caller asked for strict parsing, where two
            // values for one field make the document ambiguous.
            if (reject_duplicate_keys_ && obj.find(key) != nullptr) {
                error("duplicate object key \"" + key + "\"");
            }
            obj.set(key, parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            --depth_;
            return obj;
        }
    }

    Json parse_array() {
        expect('[');
        if (++depth_ > kMaxDepth) error("nesting deeper than 200 levels");
        Json arr = Json::array();
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return arr;
        }
        while (true) {
            arr.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            --depth_;
            return arr;
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) error("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) error("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) error("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else error("invalid \\u escape");
                    }
                    // UTF-8 encode the BMP code point (surrogate pairs are
                    // not needed by our own reports; pass them through as
                    // separate code points).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    } else {
                        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    }
                    break;
                }
                default: error("invalid escape character");
            }
        }
    }

    Json parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) error("invalid value");
        double v = 0.0;
        const auto [ptr, ec] =
            std::from_chars(text_.data() + start, text_.data() + pos_, v);
        if (ec != std::errc() || ptr != text_.data() + pos_) {
            error("invalid number");
        }
        return Json(v);
    }

    const std::string& text_;
    bool reject_duplicate_keys_ = false;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

}  // namespace

bool Json::as_bool() const {
    if (type_ != Type::kBool) fail("Json: not a bool");
    return bool_;
}

double Json::as_number() const {
    if (type_ != Type::kNumber) fail("Json: not a number");
    return num_;
}

std::int64_t Json::as_int() const {
    return static_cast<std::int64_t>(as_number());
}

std::uint64_t Json::as_uint() const {
    const double v = as_number();
    if (v < 0) fail("Json: negative value for unsigned field");
    return static_cast<std::uint64_t>(v);
}

const std::string& Json::as_string() const {
    if (type_ != Type::kString) fail("Json: not a string");
    return str_;
}

std::size_t Json::size() const {
    if (type_ == Type::kArray) return arr_.size();
    if (type_ == Type::kObject) return obj_.size();
    fail("Json: size() on a scalar");
}

void Json::push_back(Json value) {
    if (type_ == Type::kNull) type_ = Type::kArray;
    if (type_ != Type::kArray) fail("Json: push_back on a non-array");
    arr_.push_back(std::move(value));
}

const Json& Json::at(std::size_t i) const {
    if (type_ != Type::kArray) fail("Json: element access on a non-array");
    if (i >= arr_.size()) fail("Json: array index out of range");
    return arr_[i];
}

const std::vector<Json>& Json::items() const {
    if (type_ != Type::kArray) fail("Json: items() on a non-array");
    return arr_;
}

void Json::set(const std::string& key, Json value) {
    if (type_ == Type::kNull) type_ = Type::kObject;
    if (type_ != Type::kObject) fail("Json: set() on a non-object");
    for (auto& [k, v] : obj_) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    obj_.emplace_back(key, std::move(value));
}

bool Json::contains(const std::string& key) const {
    return find(key) != nullptr;
}

const Json& Json::at(const std::string& key) const {
    const Json* found = find(key);
    if (!found) fail("Json: missing member \"" + key + "\"");
    return *found;
}

const Json* Json::find(const std::string& key) const {
    if (type_ != Type::kObject) return nullptr;
    for (const auto& [k, v] : obj_) {
        if (k == key) return &v;
    }
    return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
    if (type_ != Type::kObject) fail("Json: members() on a non-object");
    return obj_;
}

void Json::dump_to(std::string* out, int indent, int depth) const {
    const bool pretty = indent >= 0;
    const auto newline_pad = [&](int d) {
        if (!pretty) return;
        out->push_back('\n');
        out->append(static_cast<std::size_t>(indent * d), ' ');
    };
    switch (type_) {
        case Type::kNull: *out += "null"; break;
        case Type::kBool: *out += bool_ ? "true" : "false"; break;
        case Type::kNumber: append_number(out, num_); break;
        case Type::kString: append_escaped(out, str_); break;
        case Type::kArray: {
            if (arr_.empty()) {
                *out += "[]";
                break;
            }
            out->push_back('[');
            for (std::size_t i = 0; i < arr_.size(); ++i) {
                if (i > 0) out->push_back(',');
                newline_pad(depth + 1);
                arr_[i].dump_to(out, indent, depth + 1);
            }
            newline_pad(depth);
            out->push_back(']');
            break;
        }
        case Type::kObject: {
            if (obj_.empty()) {
                *out += "{}";
                break;
            }
            out->push_back('{');
            for (std::size_t i = 0; i < obj_.size(); ++i) {
                if (i > 0) out->push_back(',');
                newline_pad(depth + 1);
                append_escaped(out, obj_[i].first);
                *out += pretty ? ": " : ":";
                obj_[i].second.dump_to(out, indent, depth + 1);
            }
            newline_pad(depth);
            out->push_back('}');
            break;
        }
    }
}

std::string Json::dump(int indent) const {
    std::string out;
    dump_to(&out, indent, 0);
    return out;
}

Json Json::parse(const std::string& text) {
    return Parser(text).parse_document();
}

Json Json::parse_strict(const std::string& text) {
    return Parser(text, /*reject_duplicate_keys=*/true).parse_document();
}

Json canonicalized(const Json& j) {
    switch (j.type()) {
        case Json::Type::kArray: {
            Json out = Json::array();
            for (const Json& item : j.items()) out.push_back(canonicalized(item));
            return out;
        }
        case Json::Type::kObject: {
            std::vector<std::pair<std::string, Json>> sorted;
            sorted.reserve(j.members().size());
            for (const auto& [key, value] : j.members()) {
                sorted.emplace_back(key, canonicalized(value));
            }
            std::sort(sorted.begin(), sorted.end(),
                      [](const auto& a, const auto& b) { return a.first < b.first; });
            Json out = Json::object();
            for (auto& [key, value] : sorted) out.set(key, std::move(value));
            return out;
        }
        default:
            return j;
    }
}

bool JsonWriter::write(const Json& document, int indent) const {
    std::ofstream out(path_);
    if (!out) return false;
    out << document.dump(indent) << '\n';
    return static_cast<bool>(out);
}

}  // namespace mvf::report
