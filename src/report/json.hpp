#pragma once
// Structured experiment records: a small JSON value type with emission and
// parsing, plus a file writer.
//
// The batch runner and the mvf CLI report one JSON record per scenario
// (machine-readable counterpart of the bench harnesses' CSV output), and
// adversary reports round-trip through JSON so downstream tooling -- and
// the CI smoke job -- can validate them without C++.  Objects preserve
// insertion order so reports diff cleanly; numbers that are integral are
// emitted without a fractional part.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mvf::report {

/// Thrown by Json::parse and the typed accessors on malformed input.
class JsonError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

class Json {
public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Json() = default;  // null
    Json(bool b) : type_(Type::kBool), bool_(b) {}
    Json(double v) : type_(Type::kNumber), num_(v) {}
    Json(int v) : type_(Type::kNumber), num_(v) {}
    Json(std::int64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
    Json(std::uint64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
    Json(const char* s) : type_(Type::kString), str_(s) {}
    Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

    static Json array() {
        Json j;
        j.type_ = Type::kArray;
        return j;
    }
    static Json object() {
        Json j;
        j.type_ = Type::kObject;
        return j;
    }

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::kNull; }
    bool is_bool() const { return type_ == Type::kBool; }
    bool is_number() const { return type_ == Type::kNumber; }
    bool is_string() const { return type_ == Type::kString; }
    bool is_array() const { return type_ == Type::kArray; }
    bool is_object() const { return type_ == Type::kObject; }

    /// Typed accessors; throw JsonError on type mismatch.
    bool as_bool() const;
    double as_number() const;
    std::int64_t as_int() const;
    std::uint64_t as_uint() const;
    const std::string& as_string() const;

    // --- arrays ---
    std::size_t size() const;  ///< elements (array) or members (object)
    void push_back(Json value);
    const Json& at(std::size_t i) const;
    const std::vector<Json>& items() const;

    // --- objects ---
    /// Inserts or overwrites member `key`.
    void set(const std::string& key, Json value);
    bool contains(const std::string& key) const;
    /// Member access; throws JsonError when absent.
    const Json& at(const std::string& key) const;
    /// Member access returning nullptr when absent.
    const Json* find(const std::string& key) const;
    const std::vector<std::pair<std::string, Json>>& members() const;

    /// Serializes; indent < 0 gives the compact single-line form, otherwise
    /// pretty-printed with `indent` spaces per level.
    std::string dump(int indent = -1) const;

    /// Parses a complete JSON document (trailing garbage is an error).
    /// Throws JsonError with an offset-annotated message on malformed
    /// input, including containers nested deeper than 200 levels (the
    /// recursive parser refuses rather than exhausting the stack).
    /// Duplicate object keys follow set() semantics: the last value wins.
    static Json parse(const std::string& text);

    /// Like parse(), but duplicate object keys throw JsonError instead of
    /// last-wins.  Documents that feed verification (transcripts, attack
    /// proofs) are loaded through this: a duplicate key is two candidate
    /// values for one field, and silently preferring either would let an
    /// artifact show different content to different parsers.
    static Json parse_strict(const std::string& text);

    bool operator==(const Json&) const = default;

private:
    void dump_to(std::string* out, int indent, int depth) const;

    Type type_ = Type::kNull;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;  // insertion-ordered
};

/// Recursively sorts object members by key (arrays keep their order).
/// Two documents that differ only in member order canonicalize to equal
/// values -- the property spec hashing and the serve stage cache key on.
Json canonicalized(const Json& j);

/// Writes one JSON document to a file (pretty-printed, trailing newline).
/// Mirrors util::CsvWriter's shape: construct with a path, check ok().
class JsonWriter {
public:
    explicit JsonWriter(std::string path) : path_(std::move(path)) {}

    /// Serializes `document` to the path; returns false on I/O failure.
    bool write(const Json& document, int indent = 2) const;

    const std::string& path() const { return path_; }

private:
    std::string path_;
};

}  // namespace mvf::report
