#include "attack/adversary.hpp"

#include <algorithm>
#include <stdexcept>

#include "attack/plausibility.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace mvf::attack {

namespace {

void accumulate(sat::Solver::Stats* into, const sat::Solver::Stats& from) {
    into->conflicts += from.conflicts;
    into->decisions += from.decisions;
    into->propagations += from.propagations;
    into->restarts += from.restarts;
    into->learned += from.learned;
    into->reduces += from.reduces;
    into->learned_removed += from.learned_removed;
    into->preprocess_runs += from.preprocess_runs;
    into->eliminated_vars += from.eliminated_vars;
    into->subsumed_clauses += from.subsumed_clauses;
    into->strengthened_lits += from.strengthened_lits;
    into->solves += from.solves;
    into->solve_seconds += from.solve_seconds;
    // A maximum, not a total: the deepest level any aggregated call reached.
    into->max_decision_level =
        std::max(into->max_decision_level, from.max_decision_level);
}

}  // namespace

std::string_view knowledge_name(Knowledge k) {
    switch (k) {
        case Knowledge::kNetlistOnly: return "netlist-only";
        case Knowledge::kViableSet: return "viable-set";
        case Knowledge::kWorkingChip: return "working-chip";
    }
    return "unknown";
}

report::Json AdversaryReport::to_json() const {
    report::Json j = report::Json::object();
    j.set("adversary", adversary);
    j.set("success", success);
    j.set("outcome", outcome);
    j.set("queries", queries);
    // JSON numbers are doubles: values beyond 2^53 would not round-trip
    // (and casting their parse back to uint64 is UB at 2^64).  The numeric
    // field is a dashboard convenience pinned to 2^53; survivors_str below
    // carries full precision and wins on parse.
    j.set("survivors", std::min(survivors, std::uint64_t{1} << 53));
    j.set("seconds", seconds);
    if (!spec_hash.empty()) {
        j.set("spec_hash", spec_hash);
    }
    if (!count_mode.empty()) {
        report::Json c = report::Json::object();
        c.set("mode", count_mode);
        c.set("survivors_str", survivors_str);
        c.set("decisions", count.decisions);
        c.set("propagations", count.propagations);
        c.set("components", count.components);
        c.set("cache_hits", count.cache_hits);
        c.set("cache_stores", count.cache_stores);
        c.set("cache_evictions", count.cache_evictions);
        c.set("sat_checks", count.sat_checks);
        c.set("cache_entries", static_cast<std::uint64_t>(count.cache_entries));
        c.set("cache_peak_bytes",
              static_cast<std::uint64_t>(count.cache_peak_bytes));
        c.set("approx_xor_levels", approx_xor_levels);
        c.set("approx_rounds", approx_rounds);
        j.set("count", std::move(c));
    }
    if (!(oracle == OracleStats{})) {
        report::Json o = report::Json::object();
        o.set("scalar_queries", oracle.scalar_queries);
        o.set("block_queries", oracle.block_queries);
        o.set("patterns", oracle.patterns);
        o.set("cache_hits", oracle.cache_hits);
        o.set("noisy_bits", oracle.noisy_bits);
        o.set("budget", oracle.budget);
        o.set("budget_exhausted", oracle.budget_exhausted);
        j.set("oracle", std::move(o));
    }
    if (!metrics.empty()) {
        j.set("metrics", metrics.to_json());
    }
    if (!audit_merkle_root.empty()) {
        report::Json a = report::Json::object();
        a.set("merkle_root", audit_merkle_root);
        a.set("committed", audit_committed);
        j.set("audit", std::move(a));
    }
    report::Json s = report::Json::object();
    s.set("conflicts", sat.conflicts);
    s.set("decisions", sat.decisions);
    s.set("propagations", sat.propagations);
    s.set("restarts", sat.restarts);
    s.set("learned", sat.learned);
    s.set("reduces", sat.reduces);
    s.set("learned_removed", sat.learned_removed);
    s.set("preprocess_runs", sat.preprocess_runs);
    s.set("eliminated_vars", sat.eliminated_vars);
    s.set("subsumed_clauses", sat.subsumed_clauses);
    s.set("strengthened_lits", sat.strengthened_lits);
    s.set("solves", sat.solves);
    s.set("solve_seconds", sat.solve_seconds);
    s.set("max_decision_level", sat.max_decision_level);
    j.set("sat", std::move(s));
    return j;
}

AdversaryReport AdversaryReport::from_json(const report::Json& j) {
    AdversaryReport r;
    r.adversary = j.at("adversary").as_string();
    r.success = j.at("success").as_bool();
    r.outcome = j.at("outcome").as_string();
    r.queries = static_cast<int>(j.at("queries").as_int());
    r.survivors = j.at("survivors").as_uint();
    r.seconds = j.at("seconds").as_number();
    // Provenance stamping postdates the serve subsystem; tolerate its
    // absence so archived reports keep parsing.
    if (const report::Json* f = j.find("spec_hash")) {
        r.spec_hash = f->as_string();
    }
    const report::Json& s = j.at("sat");
    r.sat.conflicts = s.at("conflicts").as_uint();
    r.sat.decisions = s.at("decisions").as_uint();
    r.sat.propagations = s.at("propagations").as_uint();
    r.sat.restarts = s.at("restarts").as_uint();
    r.sat.learned = s.at("learned").as_uint();
    r.sat.reduces = s.at("reduces").as_uint();
    r.sat.learned_removed = s.at("learned_removed").as_uint();
    // Preprocessing counters postdate the first report format; tolerate
    // their absence so archived reports keep parsing.
    if (const report::Json* f = s.find("preprocess_runs")) {
        r.sat.preprocess_runs = f->as_uint();
    }
    if (const report::Json* f = s.find("eliminated_vars")) {
        r.sat.eliminated_vars = f->as_uint();
    }
    if (const report::Json* f = s.find("subsumed_clauses")) {
        r.sat.subsumed_clauses = f->as_uint();
    }
    if (const report::Json* f = s.find("strengthened_lits")) {
        r.sat.strengthened_lits = f->as_uint();
    }
    // Solve-call telemetry postdates the observability layer; tolerate its
    // absence so archived reports keep parsing.
    if (const report::Json* f = s.find("solves")) {
        r.sat.solves = f->as_uint();
    }
    if (const report::Json* f = s.find("solve_seconds")) {
        r.sat.solve_seconds = f->as_number();
    }
    if (const report::Json* f = s.find("max_decision_level")) {
        r.sat.max_decision_level = f->as_uint();
    }
    // The metrics block is only present when the run collected latency
    // histograms; tolerate its absence.
    if (const report::Json* m = j.find("metrics")) {
        r.metrics = obs::AttackMetrics::from_json(*m);
    }
    // The audit block postdates commitment-based proofs; tolerate its
    // absence so archived reports keep parsing.
    if (const report::Json* a = j.find("audit")) {
        r.audit_merkle_root = a->at("merkle_root").as_string();
        r.audit_committed = a->at("committed").as_uint();
    }
    // The oracle-stats block postdates the first-class oracle layer;
    // tolerate its absence so archived reports keep parsing.
    if (const report::Json* o = j.find("oracle")) {
        r.oracle.scalar_queries = o->at("scalar_queries").as_uint();
        r.oracle.block_queries = o->at("block_queries").as_uint();
        r.oracle.patterns = o->at("patterns").as_uint();
        r.oracle.cache_hits = o->at("cache_hits").as_uint();
        r.oracle.noisy_bits = o->at("noisy_bits").as_uint();
        r.oracle.budget = o->at("budget").as_uint();
        r.oracle.budget_exhausted = o->at("budget_exhausted").as_bool();
    }
    // The counting block postdates the enumeration-only report format;
    // tolerate its absence so archived reports keep parsing.
    if (const report::Json* c = j.find("count")) {
        r.count_mode = c->at("mode").as_string();
        r.survivors_str = c->at("survivors_str").as_string();
        count::Count128 full;
        if (count::Count128::from_string(r.survivors_str, &full)) {
            // The string is authoritative; the numeric field saturates and
            // goes through double, so rebuild it from the string.
            r.survivors = full.to_u64_saturating();
        }
        r.count.decisions = c->at("decisions").as_uint();
        r.count.propagations = c->at("propagations").as_uint();
        r.count.components = c->at("components").as_uint();
        r.count.cache_hits = c->at("cache_hits").as_uint();
        r.count.cache_stores = c->at("cache_stores").as_uint();
        r.count.cache_evictions = c->at("cache_evictions").as_uint();
        r.count.sat_checks = c->at("sat_checks").as_uint();
        r.count.cache_entries =
            static_cast<std::size_t>(c->at("cache_entries").as_uint());
        r.count.cache_peak_bytes =
            static_cast<std::size_t>(c->at("cache_peak_bytes").as_uint());
        r.approx_xor_levels =
            static_cast<int>(c->at("approx_xor_levels").as_int());
        r.approx_rounds = static_cast<int>(c->at("approx_rounds").as_int());
    }
    return r;
}

std::string survivors_mismatch(const report::Json& report_json) {
    const report::Json* c = report_json.find("count");
    if (c == nullptr) return "";  // non-counting report: nothing to mirror
    const std::string& full_str = c->at("survivors_str").as_string();
    count::Count128 full;
    if (!count::Count128::from_string(full_str, &full)) {
        return "count.survivors_str (\"" + full_str +
               "\") is not a decimal count";
    }
    // The numeric field is the string's uint64 saturation pinned to 2^53
    // (to_json writes exactly this); from_json rebuilds it from the string,
    // so only the RAW document can reveal a hand-edited disagreement.
    const std::uint64_t expected =
        std::min(full.to_u64_saturating(), std::uint64_t{1} << 53);
    const std::uint64_t actual = report_json.at("survivors").as_uint();
    if (actual != expected) {
        return "survivors (" + std::to_string(actual) +
               ") disagrees with count.survivors_str (\"" + full_str +
               "\", which mirrors to " + std::to_string(expected) + ")";
    }
    return "";
}

bool AdversaryReport::operator==(const AdversaryReport& o) const {
    return adversary == o.adversary && success == o.success &&
           outcome == o.outcome && queries == o.queries &&
           survivors == o.survivors && survivors_str == o.survivors_str &&
           count_mode == o.count_mode && count == o.count &&
           approx_xor_levels == o.approx_xor_levels &&
           approx_rounds == o.approx_rounds && oracle == o.oracle &&
           metrics == o.metrics && seconds == o.seconds &&
           spec_hash == o.spec_hash &&
           audit_merkle_root == o.audit_merkle_root &&
           audit_committed == o.audit_committed &&
           sat.conflicts == o.sat.conflicts && sat.decisions == o.sat.decisions &&
           sat.propagations == o.sat.propagations &&
           sat.restarts == o.sat.restarts && sat.learned == o.sat.learned &&
           sat.reduces == o.sat.reduces &&
           sat.learned_removed == o.sat.learned_removed &&
           sat.preprocess_runs == o.sat.preprocess_runs &&
           sat.eliminated_vars == o.sat.eliminated_vars &&
           sat.subsumed_clauses == o.sat.subsumed_clauses &&
           sat.strengthened_lits == o.sat.strengthened_lits &&
           sat.solves == o.sat.solves &&
           sat.solve_seconds == o.sat.solve_seconds &&
           sat.max_decision_level == o.sat.max_decision_level;
}

AdversaryReport PlausibilityAdversary::attack(const camo::CamoNetlist& netlist,
                                              Oracle* /*oracle*/) {
    if (targets_.empty()) {
        throw std::invalid_argument(
            "PlausibilityAdversary: the viable-set threat model requires "
            "viable_targets; none were provided");
    }
    util::Stopwatch sw;
    AdversaryReport report;
    report.adversary = std::string(name());
    std::uint64_t plausible = 0;
    for (const auto& targets : targets_) {
        const PlausibilityResult res = is_plausible(netlist, targets);
        if (res.plausible) ++plausible;
        accumulate(&report.sat, res.sat_stats);
        ++report.queries;
    }
    report.survivors = plausible;
    report.success = plausible < targets_.size();
    report.outcome =
        std::to_string(plausible) + " of " + std::to_string(targets_.size()) +
        " viable functions remain plausible";
    report.seconds = sw.elapsed_seconds();
    return report;
}

AdversaryReport CegarAdversary::attack(const camo::CamoNetlist& netlist,
                                       Oracle* oracle) {
    if (oracle == nullptr) {
        throw std::invalid_argument(
            "CegarAdversary: the working-chip threat model requires an "
            "oracle; none was provided");
    }
    const OracleAttackResult res = oracle_attack(netlist, *oracle, params_);
    AdversaryReport report;
    report.adversary = std::string(name());
    report.success = res.solved();
    report.outcome = std::string(attack_status_name(res.status));
    // Total oracle patterns issued: warm-up blocks + distinguishing inputs.
    report.queries = res.queries + res.warmup_queries;
    report.survivors = res.surviving_configs;
    if (res.counted) {
        report.survivors_str = res.survivors.to_string();
        report.count_mode = std::string(count_mode_name(res.count_mode));
        report.count = res.count_stats;
        report.approx_xor_levels = res.approx_xor_levels;
        report.approx_rounds = res.approx_rounds;
    }
    report.metrics = res.metrics;
    report.seconds = res.seconds;
    report.sat = res.sat_stats;
    last_result_ = res;
    return report;
}

AdversaryReport RandomSamplingAdversary::attack(
    const camo::CamoNetlist& netlist, Oracle* oracle) {
    if (oracle == nullptr) {
        throw std::invalid_argument(
            "RandomSamplingAdversary: the working-chip threat model requires "
            "an oracle; none was provided");
    }
    if (num_queries_ <= 0) {
        throw std::invalid_argument(
            "RandomSamplingAdversary: num_queries must be > 0");
    }
    util::Stopwatch sw;
    const int m = netlist.num_pis();
    OracleAttackResult result;
    std::vector<std::vector<bool>> inputs;
    std::vector<std::vector<bool>> answers;

    util::Rng rng(seed_);
    try {
        if (oracle->scripted_pattern() != nullptr) {
            // Transcript replay: re-issue the recorded sequence one by one.
            const std::vector<bool>* scripted = nullptr;
            while (static_cast<int>(inputs.size()) < num_queries_ &&
                   (scripted = oracle->scripted_pattern()) != nullptr) {
                std::vector<bool> in = *scripted;
                answers.push_back(oracle->query(in));
                inputs.push_back(std::move(in));
            }
        } else {
            int remaining = num_queries_;
            while (remaining > 0) {
                const int count = std::min(remaining, kQueryBlockWidth);
                std::vector<std::uint64_t> words(static_cast<std::size_t>(m));
                for (std::uint64_t& w : words) w = rng.next_u64();
                try {
                    const std::vector<std::uint64_t> po_words =
                        oracle->query_block(words, count);
                    for (int k = 0; k < count; ++k) {
                        inputs.push_back(unpack_lane(words, k));
                        answers.push_back(unpack_lane(po_words, k));
                    }
                } catch (const OracleBudgetExceeded&) {
                    // Blocks are all-or-nothing; drain the remaining budget
                    // with scalar queries over the same pattern sequence so
                    // the whole allowance is spent before giving up.
                    for (int k = 0; k < count; ++k) {
                        std::vector<bool> in = unpack_lane(words, k);
                        answers.push_back(oracle->query(in));
                        inputs.push_back(std::move(in));
                    }
                }
                remaining -= count;
            }
        }
    } catch (const OracleBudgetExceeded&) {
        result.status = OracleAttackResult::Status::kQueryBudget;
    }
    result.queries = static_cast<int>(inputs.size());

    const bool budget_tripped =
        result.status == OracleAttackResult::Status::kQueryBudget;
    if (!budget_tripped && params_.enumerate_survivors) {
        count_consistent_configs(netlist, inputs, answers, params_, &result);
    }
    result.distinguishing_inputs = std::move(inputs);
    result.seconds = sw.elapsed_seconds();

    AdversaryReport report;
    report.adversary = std::string(name());
    report.queries = result.queries;
    // Random probing alone pinned the chip down to one configuration.
    report.success = result.counted && result.surviving_configs == 1 &&
                     result.status == OracleAttackResult::Status::kSolved;
    report.outcome = budget_tripped
                         ? std::string(attack_status_name(result.status))
                         : std::to_string(result.queries) +
                               " random queries, " +
                               (result.counted ? result.survivors.to_string()
                                               : std::string("uncounted")) +
                               " survivors";
    report.survivors = result.surviving_configs;
    if (result.counted) {
        report.survivors_str = result.survivors.to_string();
        report.count_mode = std::string(count_mode_name(result.count_mode));
        report.count = result.count_stats;
        report.approx_xor_levels = result.approx_xor_levels;
        report.approx_rounds = result.approx_rounds;
    }
    report.seconds = result.seconds;
    last_result_ = std::move(result);
    return report;
}

AdversaryRegistry::AdversaryRegistry() {
    factories_.emplace_back("plausibility", [](const AdversaryOptions& opt) {
        return std::make_unique<PlausibilityAdversary>(opt.viable_targets);
    });
    factories_.emplace_back("cegar", [](const AdversaryOptions& opt) {
        return std::make_unique<CegarAdversary>(opt.oracle);
    });
    factories_.emplace_back("random-sampling", [](const AdversaryOptions& opt) {
        return std::make_unique<RandomSamplingAdversary>(
            opt.oracle, opt.random_queries, opt.random_seed);
    });
}

AdversaryRegistry& AdversaryRegistry::instance() {
    static AdversaryRegistry registry;
    return registry;
}

void AdversaryRegistry::register_adversary(std::string name,
                                           AdversaryFactory factory) {
    for (auto& [existing, f] : factories_) {
        if (existing == name) {
            f = std::move(factory);
            return;
        }
    }
    factories_.emplace_back(std::move(name), std::move(factory));
}

bool AdversaryRegistry::contains(const std::string& name) const {
    for (const auto& [existing, f] : factories_) {
        if (existing == name) return true;
    }
    return false;
}

std::unique_ptr<Adversary> AdversaryRegistry::create(
    const std::string& name, const AdversaryOptions& options) const {
    for (const auto& [existing, factory] : factories_) {
        if (existing == name) return factory(options);
    }
    std::string known;
    for (const std::string& n : names()) {
        if (!known.empty()) known += ", ";
        known += n;
    }
    throw std::invalid_argument("unknown adversary \"" + name +
                                "\" (registered: " + known + ")");
}

std::vector<std::string> AdversaryRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) out.push_back(name);
    return out;
}

}  // namespace mvf::attack
