#include "attack/adversary.hpp"

#include <stdexcept>

#include "attack/plausibility.hpp"
#include "util/stopwatch.hpp"

namespace mvf::attack {

namespace {

void accumulate(sat::Solver::Stats* into, const sat::Solver::Stats& from) {
    into->conflicts += from.conflicts;
    into->decisions += from.decisions;
    into->propagations += from.propagations;
    into->restarts += from.restarts;
    into->learned += from.learned;
    into->reduces += from.reduces;
    into->learned_removed += from.learned_removed;
    into->preprocess_runs += from.preprocess_runs;
    into->eliminated_vars += from.eliminated_vars;
    into->subsumed_clauses += from.subsumed_clauses;
    into->strengthened_lits += from.strengthened_lits;
}

const char* status_name(OracleAttackResult::Status s) {
    switch (s) {
        case OracleAttackResult::Status::kSolved: return "solved";
        case OracleAttackResult::Status::kNoSurvivor: return "no survivor";
        case OracleAttackResult::Status::kIterationLimit: return "iteration limit";
        case OracleAttackResult::Status::kSurvivorLimit: return "survivor limit";
    }
    return "unknown";
}

}  // namespace

std::string_view knowledge_name(Knowledge k) {
    switch (k) {
        case Knowledge::kNetlistOnly: return "netlist-only";
        case Knowledge::kViableSet: return "viable-set";
        case Knowledge::kWorkingChip: return "working-chip";
    }
    return "unknown";
}

report::Json AdversaryReport::to_json() const {
    report::Json j = report::Json::object();
    j.set("adversary", adversary);
    j.set("success", success);
    j.set("outcome", outcome);
    j.set("queries", queries);
    j.set("survivors", survivors);
    j.set("seconds", seconds);
    report::Json s = report::Json::object();
    s.set("conflicts", sat.conflicts);
    s.set("decisions", sat.decisions);
    s.set("propagations", sat.propagations);
    s.set("restarts", sat.restarts);
    s.set("learned", sat.learned);
    s.set("reduces", sat.reduces);
    s.set("learned_removed", sat.learned_removed);
    s.set("preprocess_runs", sat.preprocess_runs);
    s.set("eliminated_vars", sat.eliminated_vars);
    s.set("subsumed_clauses", sat.subsumed_clauses);
    s.set("strengthened_lits", sat.strengthened_lits);
    j.set("sat", std::move(s));
    return j;
}

AdversaryReport AdversaryReport::from_json(const report::Json& j) {
    AdversaryReport r;
    r.adversary = j.at("adversary").as_string();
    r.success = j.at("success").as_bool();
    r.outcome = j.at("outcome").as_string();
    r.queries = static_cast<int>(j.at("queries").as_int());
    r.survivors = j.at("survivors").as_uint();
    r.seconds = j.at("seconds").as_number();
    const report::Json& s = j.at("sat");
    r.sat.conflicts = s.at("conflicts").as_uint();
    r.sat.decisions = s.at("decisions").as_uint();
    r.sat.propagations = s.at("propagations").as_uint();
    r.sat.restarts = s.at("restarts").as_uint();
    r.sat.learned = s.at("learned").as_uint();
    r.sat.reduces = s.at("reduces").as_uint();
    r.sat.learned_removed = s.at("learned_removed").as_uint();
    // Preprocessing counters postdate the first report format; tolerate
    // their absence so archived reports keep parsing.
    if (const report::Json* f = s.find("preprocess_runs")) {
        r.sat.preprocess_runs = f->as_uint();
    }
    if (const report::Json* f = s.find("eliminated_vars")) {
        r.sat.eliminated_vars = f->as_uint();
    }
    if (const report::Json* f = s.find("subsumed_clauses")) {
        r.sat.subsumed_clauses = f->as_uint();
    }
    if (const report::Json* f = s.find("strengthened_lits")) {
        r.sat.strengthened_lits = f->as_uint();
    }
    return r;
}

bool AdversaryReport::operator==(const AdversaryReport& o) const {
    return adversary == o.adversary && success == o.success &&
           outcome == o.outcome && queries == o.queries &&
           survivors == o.survivors && seconds == o.seconds &&
           sat.conflicts == o.sat.conflicts && sat.decisions == o.sat.decisions &&
           sat.propagations == o.sat.propagations &&
           sat.restarts == o.sat.restarts && sat.learned == o.sat.learned &&
           sat.reduces == o.sat.reduces &&
           sat.learned_removed == o.sat.learned_removed &&
           sat.preprocess_runs == o.sat.preprocess_runs &&
           sat.eliminated_vars == o.sat.eliminated_vars &&
           sat.subsumed_clauses == o.sat.subsumed_clauses &&
           sat.strengthened_lits == o.sat.strengthened_lits;
}

AdversaryReport PlausibilityAdversary::attack(const camo::CamoNetlist& netlist,
                                              Oracle* /*oracle*/) {
    if (targets_.empty()) {
        throw std::invalid_argument(
            "PlausibilityAdversary: the viable-set threat model requires "
            "viable_targets; none were provided");
    }
    util::Stopwatch sw;
    AdversaryReport report;
    report.adversary = std::string(name());
    std::uint64_t plausible = 0;
    for (const auto& targets : targets_) {
        const PlausibilityResult res = is_plausible(netlist, targets);
        if (res.plausible) ++plausible;
        accumulate(&report.sat, res.sat_stats);
        ++report.queries;
    }
    report.survivors = plausible;
    report.success = plausible < targets_.size();
    report.outcome =
        std::to_string(plausible) + " of " + std::to_string(targets_.size()) +
        " viable functions remain plausible";
    report.seconds = sw.elapsed_seconds();
    return report;
}

AdversaryReport CegarAdversary::attack(const camo::CamoNetlist& netlist,
                                       Oracle* oracle) {
    if (oracle == nullptr) {
        throw std::invalid_argument(
            "CegarAdversary: the working-chip threat model requires an "
            "oracle; none was provided");
    }
    const OracleAttackResult res = oracle_attack(netlist, *oracle, params_);
    AdversaryReport report;
    report.adversary = std::string(name());
    report.success = res.solved();
    report.outcome = status_name(res.status);
    report.queries = res.queries;
    report.survivors = res.surviving_configs;
    report.seconds = res.seconds;
    report.sat = res.sat_stats;
    last_result_ = res;
    return report;
}

AdversaryRegistry::AdversaryRegistry() {
    factories_.emplace_back("plausibility", [](const AdversaryOptions& opt) {
        return std::make_unique<PlausibilityAdversary>(opt.viable_targets);
    });
    factories_.emplace_back("cegar", [](const AdversaryOptions& opt) {
        return std::make_unique<CegarAdversary>(opt.oracle);
    });
}

AdversaryRegistry& AdversaryRegistry::instance() {
    static AdversaryRegistry registry;
    return registry;
}

void AdversaryRegistry::register_adversary(std::string name,
                                           AdversaryFactory factory) {
    for (auto& [existing, f] : factories_) {
        if (existing == name) {
            f = std::move(factory);
            return;
        }
    }
    factories_.emplace_back(std::move(name), std::move(factory));
}

bool AdversaryRegistry::contains(const std::string& name) const {
    for (const auto& [existing, f] : factories_) {
        if (existing == name) return true;
    }
    return false;
}

std::unique_ptr<Adversary> AdversaryRegistry::create(
    const std::string& name, const AdversaryOptions& options) const {
    for (const auto& [existing, factory] : factories_) {
        if (existing == name) return factory(options);
    }
    std::string known;
    for (const std::string& n : names()) {
        if (!known.empty()) known += ", ";
        known += n;
    }
    throw std::invalid_argument("unknown adversary \"" + name +
                                "\" (registered: " + known + ")");
}

std::vector<std::string> AdversaryRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) out.push_back(name);
    return out;
}

}  // namespace mvf::attack
