#include "attack/oracle_attack.hpp"

#include <cassert>

#include "sat/cnf_builder.hpp"
#include "sim/netlist_sim.hpp"
#include "util/stopwatch.hpp"

namespace mvf::attack {

using camo::CamoNetlist;

std::vector<bool> SimOracle::query(const std::vector<bool>& inputs) {
    return sim::simulate_camo_pattern(*netlist_, config_, inputs);
}

namespace {

void pin_outputs(sat::Solver* solver, const sat::CnfBuilder::Copy& copy,
                 const std::vector<bool>& outputs) {
    for (std::size_t q = 0; q < copy.po.size(); ++q) {
        solver->add_unit(outputs[q] ? copy.po[q] : sat::lit_not(copy.po[q]));
    }
}

// Stamps a constant-input copy and pins its outputs to the oracle's answer.
void add_io_constraint(sat::Solver* solver, sat::CnfBuilder* builder,
                       const std::vector<bool>& inputs,
                       const std::vector<bool>& outputs, bool fold) {
    pin_outputs(solver, builder->add_copy(inputs, fold), outputs);
}

/// Replaces the model's distinguishing input with the lexicographically
/// smallest one admitted by the current constraints (PI 0 is the most
/// significant position).  Walks the bits in order, keeping the latest
/// model as a witness: a witness 0 needs no solver call, a witness 1 costs
/// one incremental solve to test whether 0 is feasible under the fixed
/// prefix.  `assumptions` carries any standing activation literals and is
/// extended in place with the prefix.
void canonicalize_pattern(sat::Solver* solver,
                          const std::vector<sat::Lit>& shared_x,
                          std::vector<sat::Lit>* assumptions,
                          std::vector<bool>* pattern) {
    const int m = static_cast<int>(shared_x.size());
    for (int i = 0; i < m; ++i) {
        const sat::Lit xi = shared_x[static_cast<std::size_t>(i)];
        if (!(*pattern)[static_cast<std::size_t>(i)]) {
            assumptions->push_back(sat::lit_not(xi));
            continue;
        }
        assumptions->push_back(sat::lit_not(xi));
        if (solver->solve(*assumptions) == sat::Solver::Result::kSat) {
            (*pattern)[static_cast<std::size_t>(i)] = false;
            for (int j = i + 1; j < m; ++j) {
                (*pattern)[static_cast<std::size_t>(j)] = solver->model_value(
                    sat::lit_var(shared_x[static_cast<std::size_t>(j)]));
            }
        } else {
            assumptions->back() = xi;  // 0 infeasible under this prefix
        }
    }
}

}  // namespace

OracleAttackResult oracle_attack(const CamoNetlist& netlist, Oracle& oracle,
                                 const OracleAttackParams& params) {
    const int m = netlist.num_pis();
    const int r = netlist.num_pos();
    util::Stopwatch sw;
    OracleAttackResult result;

    // Two selector families in one incremental solver, mitered over shared
    // symbolic inputs: a model is (config A, config B, input X) with A and B
    // disagreeing at X while both satisfy every I/O constraint so far.
    sat::Solver solver;
    sat::CnfBuilder family_a(netlist, &solver, params.fixed_nominal);
    sat::CnfBuilder family_b(netlist, &solver, params.fixed_nominal);

    std::vector<sat::Lit> shared_x;
    shared_x.reserve(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) shared_x.push_back(sat::mk_lit(solver.new_var()));
    sat::CnfBuilder::Copy miter_a, miter_b;
    if (params.shared_miter) {
        sat::CnfBuilder::SharedCopy sc =
            sat::CnfBuilder::add_shared_copies(family_a, family_b, shared_x);
        result.shared_cells += static_cast<std::uint64_t>(sc.shared_cells);
        miter_a = std::move(sc.a);
        miter_b = std::move(sc.b);
    } else {
        miter_a = family_a.add_copy(shared_x);
        miter_b = family_b.add_copy(shared_x);
    }

    // diff_q -> (a_q != b_q); at least one diff_q holds.  One direction of
    // the XOR suffices: any model must exhibit a real output difference.
    std::vector<sat::Lit> any_diff;
    any_diff.reserve(static_cast<std::size_t>(r));
    std::vector<sat::Lit> assumptions;
    for (int q = 0; q < r; ++q) {
        const sat::Lit d = sat::mk_lit(solver.new_var());
        const sat::Lit a = miter_a.po[static_cast<std::size_t>(q)];
        const sat::Lit b = miter_b.po[static_cast<std::size_t>(q)];
        solver.add_ternary(sat::lit_not(d), a, b);
        solver.add_ternary(sat::lit_not(d), sat::lit_not(a), sat::lit_not(b));
        any_diff.push_back(d);
    }
    solver.add_clause(any_diff);

    // Preprocess the miter core once (BVE + subsumption + strengthening),
    // then run the light sweep whenever the database has outgrown the last
    // simplified size: the per-pattern copies below get pinned down by
    // level-0 propagation, and physically removing the satisfied clauses
    // keeps watch lists short without disturbing the learned database.
    const auto make_preprocessor = [&]() {
        sat::Preprocessor pre(&solver, params.solver);
        const std::vector<sat::Var> fa = family_a.frozen_vars();
        const std::vector<sat::Var> fb = family_b.frozen_vars();
        pre.freeze_all(fa);
        pre.freeze_all(fb);
        pre.freeze_lits(shared_x);
        return pre;
    };
    std::size_t preprocessed_size = 0;
    if (params.solver.preprocess) {
        make_preprocessor().run();
        preprocessed_size = solver.num_clauses();
    }

    // CEGAR refinement: each distinguishing input and the oracle's answer
    // constrain BOTH families, shrinking the still-viable set on each side.
    std::vector<bool> pattern(static_cast<std::size_t>(m));
    std::vector<std::vector<bool>> answers;
    while (true) {
        assumptions.clear();
        if (solver.solve() != sat::Solver::Result::kSat) break;
        if (params.max_iterations > 0 &&
            result.queries >= params.max_iterations) {
            result.status = OracleAttackResult::Status::kIterationLimit;
            break;
        }
        if (params.forced_queries &&
            static_cast<std::size_t>(result.queries) < params.forced_queries->size()) {
            pattern = (*params.forced_queries)[static_cast<std::size_t>(result.queries)];
            assert(static_cast<int>(pattern.size()) == m);
        } else {
            for (int i = 0; i < m; ++i) {
                pattern[static_cast<std::size_t>(i)] = solver.model_value(
                    sat::lit_var(shared_x[static_cast<std::size_t>(i)]));
            }
            if (params.canonical_inputs) {
                canonicalize_pattern(&solver, shared_x, &assumptions, &pattern);
            }
        }
        std::vector<bool> answer = oracle.query(pattern);
        assert(static_cast<int>(answer.size()) == r);
        ++result.queries;
        if (params.shared_miter) {
            sat::CnfBuilder::SharedCopy sc =
                sat::CnfBuilder::add_shared_copies(family_a, family_b, pattern);
            result.shared_cells += static_cast<std::uint64_t>(sc.shared_cells);
            pin_outputs(&solver, sc.a, answer);
            pin_outputs(&solver, sc.b, answer);
        } else {
            add_io_constraint(&solver, &family_a, pattern, answer, false);
            add_io_constraint(&solver, &family_b, pattern, answer, false);
        }
        result.distinguishing_inputs.push_back(pattern);
        answers.push_back(std::move(answer));
        if (params.solver.preprocess && params.solver.inprocess_growth > 1.0 &&
            static_cast<double>(solver.num_clauses()) >
                params.solver.inprocess_growth *
                    static_cast<double>(preprocessed_size)) {
            make_preprocessor().run_light();
            preprocessed_size = solver.num_clauses();
        }
    }

    result.sat_stats = solver.stats();

    // UNSAT: every configuration consistent with the collected I/O pairs is
    // functionally equivalent to the oracle (if any disagreed anywhere, the
    // miter would have found the disagreeing input).  Count them by model
    // enumeration over a single fresh selector family, projected onto the
    // cells with a structural path to a PO: a cell outside every output
    // cone cannot influence any output, so its choices multiply the count
    // exactly instead of being enumerated one by one.  With shared_miter
    // the copies fold their selector-independent constant cones; with
    // preprocessing the instance is simplified before the model loop.
    if (result.status != OracleAttackResult::Status::kIterationLimit &&
        params.enumerate_survivors) {
        std::vector<bool> in_po_cone(static_cast<std::size_t>(netlist.num_nodes()),
                                     false);
        std::vector<int> stack;
        for (int q = 0; q < r; ++q) stack.push_back(netlist.po(q));
        while (!stack.empty()) {
            const int id = stack.back();
            stack.pop_back();
            if (in_po_cone[static_cast<std::size_t>(id)]) continue;
            in_po_cone[static_cast<std::size_t>(id)] = true;
            for (const int f : netlist.node(id).fanins) stack.push_back(f);
        }

        sat::Solver counter;
        sat::CnfBuilder family(netlist, &counter, params.fixed_nominal);
        for (std::size_t i = 0; i < answers.size(); ++i) {
            add_io_constraint(&counter, &family, result.distinguishing_inputs[i],
                              answers[i], params.shared_miter);
        }
        if (params.solver.preprocess) {
            sat::Preprocessor pre(&counter, params.solver);
            const std::vector<sat::Var> fv = family.frozen_vars();
            pre.freeze_all(fv);
            pre.run();
        }
        unsigned __int128 dead_freedom = 1;
        for (int id = 0; id < netlist.num_nodes(); ++id) {
            const std::size_t choices = family.selectors(id).size();
            if (choices == 0 || in_po_cone[static_cast<std::size_t>(id)]) continue;
            dead_freedom *= choices;
            if (dead_freedom > params.max_survivors) break;  // saturates below
        }

        unsigned __int128 total = 0;
        while (counter.solve() == sat::Solver::Result::kSat) {
            const std::vector<int> config = family.config_from_model();
            if (total == 0) result.witness_config = config;
            total += dead_freedom;
            if (total >= params.max_survivors) {
                result.status = OracleAttackResult::Status::kSurvivorLimit;
                total = params.max_survivors;
                break;
            }
            if (!family.block_config(config, &in_po_cone)) break;
        }
        result.surviving_configs = static_cast<std::uint64_t>(total);
        if (total == 0) {
            result.status = OracleAttackResult::Status::kNoSurvivor;
        }
    }

    result.seconds = sw.elapsed_seconds();
    return result;
}

}  // namespace mvf::attack
