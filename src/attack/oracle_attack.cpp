#include "attack/oracle_attack.hpp"

#include <cassert>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <mutex>

#include "count/approx_counter.hpp"
#include "count/cnf.hpp"
#include "obs/trace.hpp"
#include "sat/clause_exchange.hpp"
#include "sat/cnf_builder.hpp"
#include "sim/netlist_sim.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace mvf::attack {

using camo::CamoNetlist;

std::string_view count_mode_name(CountMode m) {
    switch (m) {
        case CountMode::kExact: return "exact";
        case CountMode::kApprox: return "approx";
        case CountMode::kEnumerate: return "enumerate";
    }
    return "unknown";
}

bool count_mode_from_name(std::string_view name, CountMode* out) {
    if (name == "exact") *out = CountMode::kExact;
    else if (name == "approx") *out = CountMode::kApprox;
    else if (name == "enumerate") *out = CountMode::kEnumerate;
    else return false;
    return true;
}

std::string_view attack_status_name(OracleAttackResult::Status s) {
    switch (s) {
        case OracleAttackResult::Status::kSolved: return "solved";
        case OracleAttackResult::Status::kNoSurvivor: return "no survivor";
        case OracleAttackResult::Status::kIterationLimit: return "iteration limit";
        case OracleAttackResult::Status::kSurvivorLimit: return "survivor limit";
        case OracleAttackResult::Status::kApproxSolved: return "approx solved";
        case OracleAttackResult::Status::kQueryBudget: return "query budget";
    }
    return "unknown";
}

namespace {

std::string pattern_bits(const std::vector<bool>& pattern) {
    std::string s;
    s.reserve(pattern.size());
    for (const bool b : pattern) s.push_back(b ? '1' : '0');
    return s;
}

double us_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

void pin_outputs(sat::Solver* solver, const sat::CnfBuilder::Copy& copy,
                 const std::vector<bool>& outputs) {
    for (std::size_t q = 0; q < copy.po.size(); ++q) {
        solver->add_unit(outputs[q] ? copy.po[q] : sat::lit_not(copy.po[q]));
    }
}

// Stamps a constant-input copy and pins its outputs to the oracle's answer.
void add_io_constraint(sat::Solver* solver, sat::CnfBuilder* builder,
                       const std::vector<bool>& inputs,
                       const std::vector<bool>& outputs, bool fold) {
    pin_outputs(solver, builder->add_copy(inputs, fold), outputs);
}

/// Replaces the model's distinguishing input with the lexicographically
/// smallest one admitted by the current constraints (PI 0 is the most
/// significant position).  Walks the bits in order, keeping the latest
/// model as a witness: a witness 0 needs no solver call, a witness 1 costs
/// one incremental solve to test whether 0 is feasible under the fixed
/// prefix.  `assumptions` carries any standing activation literals and is
/// extended in place with the prefix.
void canonicalize_pattern(sat::Solver* solver,
                          const std::vector<sat::Lit>& shared_x,
                          std::vector<sat::Lit>* assumptions,
                          std::vector<bool>* pattern) {
    const int m = static_cast<int>(shared_x.size());
    for (int i = 0; i < m; ++i) {
        const sat::Lit xi = shared_x[static_cast<std::size_t>(i)];
        if (!(*pattern)[static_cast<std::size_t>(i)]) {
            assumptions->push_back(sat::lit_not(xi));
            continue;
        }
        assumptions->push_back(sat::lit_not(xi));
        if (solver->solve(*assumptions) == sat::Solver::Result::kSat) {
            (*pattern)[static_cast<std::size_t>(i)] = false;
            for (int j = i + 1; j < m; ++j) {
                (*pattern)[static_cast<std::size_t>(j)] = solver->model_value(
                    sat::lit_var(shared_x[static_cast<std::size_t>(j)]));
            }
        } else {
            assumptions->back() = xi;  // 0 infeasible under this prefix
        }
    }
}

/// Legacy survivor counting (CountMode::kEnumerate): SAT model enumeration
/// over the selector family, projected onto the cells with a structural
/// path to a PO -- a cell outside every output cone cannot influence any
/// output, so its choices multiply the count instead of being enumerated.
/// Capped at params.max_survivors; all arithmetic is overflow-checked (the
/// per-node freedom product alone can dwarf uint64_t) and saturates to the
/// cap instead of wrapping.
void enumerate_survivor_count(const CamoNetlist& netlist, sat::Solver* counter,
                              sat::CnfBuilder* family,
                              const OracleAttackParams& params,
                              OracleAttackResult* result) {
    std::vector<bool> in_po_cone(static_cast<std::size_t>(netlist.num_nodes()),
                                 false);
    std::vector<int> stack;
    for (int q = 0; q < netlist.num_pos(); ++q) stack.push_back(netlist.po(q));
    while (!stack.empty()) {
        const int id = stack.back();
        stack.pop_back();
        if (in_po_cone[static_cast<std::size_t>(id)]) continue;
        in_po_cone[static_cast<std::size_t>(id)] = true;
        for (const int f : netlist.node(id).fanins) stack.push_back(f);
    }

    std::uint64_t dead_freedom = 1;
    bool dead_saturated = false;
    for (int id = 0; id < netlist.num_nodes(); ++id) {
        const std::size_t choices = family->selectors(id).size();
        if (choices == 0 || in_po_cone[static_cast<std::size_t>(id)]) continue;
        dead_saturated |= count::mul_overflow_u64(
            dead_freedom, static_cast<std::uint64_t>(choices), &dead_freedom);
        if (dead_saturated || dead_freedom > params.max_survivors) {
            break;  // saturates below
        }
    }

    std::uint64_t total = 0;
    while (counter->solve() == sat::Solver::Result::kSat) {
        const std::vector<int> config = family->config_from_model();
        if (total == 0) result->witness_config = config;
        const bool overflow =
            dead_saturated || count::add_overflow_u64(total, dead_freedom, &total);
        if (overflow || total >= params.max_survivors) {
            result->status = OracleAttackResult::Status::kSurvivorLimit;
            total = params.max_survivors;
            break;
        }
        if (!family->block_config(config, &in_po_cone)) break;
    }
    result->surviving_configs = total;
    result->survivors = count::Count128(total);
    if (total == 0) {
        result->status = OracleAttackResult::Status::kNoSurvivor;
    }
}

}  // namespace

void count_consistent_configs(const CamoNetlist& netlist,
                              const std::vector<std::vector<bool>>& inputs,
                              const std::vector<std::vector<bool>>& answers,
                              const OracleAttackParams& params,
                              OracleAttackResult* result) {
    assert(inputs.size() == answers.size());
    OracleAttackResult& res = *result;
    report::Json span_args;
    if (obs::tracing()) {
        span_args = report::Json::object();
        span_args.set("mode", std::string(count_mode_name(params.count_mode)));
        span_args.set("constraints", static_cast<std::uint64_t>(inputs.size()));
    }
    obs::Span span("count-survivors", "count", std::move(span_args));
    const auto finish_span = [&]() {
        if (!span) return;
        report::Json ea = report::Json::object();
        ea.set("survivors", res.survivors.to_string());
        ea.set("mode", std::string(count_mode_name(res.count_mode)));
        ea.set("status", std::string(attack_status_name(res.status)));
        span.set_end_args(std::move(ea));
    };
    res.counted = true;
    res.count_mode = params.count_mode;
    sat::Solver counter;
    sat::CnfBuilder family(netlist, &counter, params.fixed_nominal);
    for (std::size_t i = 0; i < answers.size(); ++i) {
        add_io_constraint(&counter, &family, inputs[i], answers[i],
                          params.shared_miter);
    }
    if (params.solver.preprocess) {
        sat::Preprocessor pre(&counter, params.solver);
        const std::vector<sat::Var> fv = family.frozen_vars();
        pre.freeze_all(fv);
        pre.run();
    }

    if (params.count_mode == CountMode::kEnumerate) {
        enumerate_survivor_count(netlist, &counter, &family, params, &res);
        finish_span();
        return;
    }
    // Projection = every selector variable: the count is over whole
    // configurations, dead-cone cells included (their freedom falls out of
    // component decomposition -- a cell whose support collapsed to
    // constants is one tiny component contributing a factor of #choices).
    std::vector<sat::Var> projection;
    for (int id = 0; id < netlist.num_nodes(); ++id) {
        const std::vector<sat::Var>& sel = family.selectors(id);
        projection.insert(projection.end(), sel.begin(), sel.end());
    }
    const count::Cnf cnf = count::cnf_from_solver(counter, projection);
    // One model for the witness and the emptiness check (the counters
    // report numbers, not assignments).
    if (counter.solve() != sat::Solver::Result::kSat) {
        res.status = OracleAttackResult::Status::kNoSurvivor;
        finish_span();
        return;
    }
    res.witness_config = family.config_from_model();
    if (params.count_mode == CountMode::kExact) {
        count::CounterConfig cc;
        cc.cache_bytes =
            params.count_cache_mb > 0
                ? static_cast<std::size_t>(params.count_cache_mb) << 20
                : 1u << 20;
        cc.max_decisions = params.count_max_decisions;
        // Cube-and-conquer: attack_threads > 1 splits the projection into
        // selector cubes counted in parallel (bit-identical to serial).
        cc.threads = params.attack_threads;
        cc.cube_vars = params.cube_vars;
        cc.pool = params.pool;
        count::ProjectedCounter pc(cnf, cc);
        const count::ProjectedCounter::Result pcr = pc.count();
        res.count_stats = pcr.stats;
        res.survivors = pcr.count;
        if (!pcr.exact && pcr.count.saturated()) {
            // Saturated beyond 2^128 - 1: still a hard bound.
            res.status = OracleAttackResult::Status::kSurvivorLimit;
        } else if (!pcr.exact) {
            // Decision budget exhausted (dense, decomposition-resistant
            // instance): fall back to the capped enumeration so the
            // attack still terminates with a sound figure.  count_mode
            // records the switch.
            res.count_mode = CountMode::kEnumerate;
            enumerate_survivor_count(netlist, &counter, &family, params, &res);
        }
    } else {
        count::ApproxConfig ac;
        ac.epsilon = params.epsilon;
        ac.delta = params.delta;
        ac.seed = params.count_seed;
        count::ApproxCounter apc(cnf, ac);
        const count::ApproxResult acr = apc.count();
        res.survivors = acr.estimate;
        res.approx_xor_levels = acr.xor_levels;
        res.approx_rounds = acr.rounds;
        if (!acr.ok) {
            // Every hash round failed; the witness still proves at least
            // one survivor.
            res.status = OracleAttackResult::Status::kSurvivorLimit;
            res.survivors = count::Count128(1);
        } else if (!acr.exact) {
            res.status = OracleAttackResult::Status::kApproxSolved;
        }
    }
    res.surviving_configs = res.survivors.to_u64_saturating();
    finish_span();
}

namespace {

// ---------------------------------------------------------------------------
// Portfolio CEGAR (attack_threads / portfolio > 1).
//
// N members race the CEGAR loop on one netlist.  Soundness and replay hinge
// on one discipline: a shared append-only ANSWER LOG of (input, answer)
// pairs, which every member stamps into its solver IN LOG ORDER, exactly one
// stamp per solve.  Member formulas are therefore prefixes of one monotone
// chain -- same clauses, same variable ids at equal stamp counts -- which is
// what makes sat::ClauseExchange sharing sound (see clause_exchange.hpp).
// It also makes the winner's transcript a valid serial attack transcript:
// incorporation order == transcript order == stamp order, every solve sits
// between consecutive stamps, and imported clauses are entailed by stamped
// prefixes (so removing them -- which is what a replay does -- changes no
// verdict).  Adding constraints only shrinks the model set, so the one
// wrinkle (a live member solving once per stamp where its warm-up region
// stamped a batch) cannot flip an intermediate SAT to UNSAT either.
// ---------------------------------------------------------------------------

/// The shared constraint sequence.  Append-only and deliberately WITHOUT
/// deduplication: the serial attack stamps duplicate warm-up patterns
/// twice, and the replay loop consumes exactly one transcript entry per
/// solve, so the log must preserve multiplicity to replay bit-identically.
struct AnswerLog {
    std::mutex mutex;
    std::vector<OracleTranscript::Entry> entries;

    void append(const std::vector<bool>& in, const std::vector<bool>& out) {
        std::lock_guard lock(mutex);
        entries.push_back({in, out});
    }
    std::size_t size() {
        std::lock_guard lock(mutex);
        return entries.size();
    }
    OracleTranscript::Entry get(std::size_t i) {
        std::lock_guard lock(mutex);
        return entries[i];  // append-only: i < size() is stable
    }
};

struct PortfolioShared {
    const CamoNetlist* netlist = nullptr;
    const OracleAttackParams* params = nullptr;
    /// Shared, locking; wraps the caller's oracle so every member sees one
    /// answer per pattern and repeats cost no budget.
    CachingOracle* cache = nullptr;
    AnswerLog log;
    sat::ClauseExchange exchange;
    std::atomic<bool> cancel{false};

    explicit PortfolioShared(int members) : exchange(members) {}
};

struct MemberOutcome {
    OracleAttackResult result;
    std::vector<std::vector<bool>> constraint_inputs;
    std::vector<std::vector<bool>> answers;
    OracleTranscript transcript;
    bool converged = false;  ///< proved the miter UNSAT (not cancelled/parked)
};

/// splitmix64 finalizer over (seed, member): decorrelated diversification
/// seeds.  Member 0 always gets the serial attack's exact trajectory.
std::uint64_t portfolio_mix(std::uint64_t seed, int member) {
    std::uint64_t z =
        seed + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(member) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

void run_portfolio_member(int member, PortfolioShared* shared,
                          MemberOutcome* out) {
    const CamoNetlist& netlist = *shared->netlist;
    const OracleAttackParams& params = *shared->params;
    const int m = netlist.num_pis();
    OracleAttackResult& result = out->result;

    // Identical construction order to the serial attack => identical
    // variable ids across members at equal stamp counts.
    sat::Solver solver;
    if (member > 0) {
        solver.set_phase_seed(portfolio_mix(params.warmup_seed, member));
    }
    sat::CnfBuilder family_a(netlist, &solver, params.fixed_nominal);
    sat::CnfBuilder family_b(netlist, &solver, params.fixed_nominal);
    std::vector<sat::Lit> shared_x;
    shared_x.reserve(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) shared_x.push_back(sat::mk_lit(solver.new_var()));
    sat::CnfBuilder::Copy miter_a, miter_b;
    if (params.shared_miter) {
        sat::CnfBuilder::SharedCopy sc =
            sat::CnfBuilder::add_shared_copies(family_a, family_b, shared_x);
        result.shared_cells += static_cast<std::uint64_t>(sc.shared_cells);
        miter_a = std::move(sc.a);
        miter_b = std::move(sc.b);
    } else {
        miter_a = family_a.add_copy(shared_x);
        miter_b = family_b.add_copy(shared_x);
    }
    std::vector<sat::Lit> any_diff;
    for (int q = 0; q < netlist.num_pos(); ++q) {
        const sat::Lit d = sat::mk_lit(solver.new_var());
        const sat::Lit a = miter_a.po[static_cast<std::size_t>(q)];
        const sat::Lit b = miter_b.po[static_cast<std::size_t>(q)];
        solver.add_ternary(sat::lit_not(d), a, b);
        solver.add_ternary(sat::lit_not(d), sat::lit_not(a), sat::lit_not(b));
        any_diff.push_back(d);
    }
    solver.add_clause(any_diff);
    solver.set_clause_exchange(&shared->exchange, member);

    const auto make_preprocessor = [&]() {
        sat::Preprocessor pre(&solver, params.solver);
        const std::vector<sat::Var> fa = family_a.frozen_vars();
        const std::vector<sat::Var> fb = family_b.frozen_vars();
        pre.freeze_all(fa);
        pre.freeze_all(fb);
        pre.freeze_lits(shared_x);
        return pre;
    };
    std::size_t preprocessed_size = 0;
    if (params.solver.preprocess) {
        make_preprocessor().run();
        preprocessed_size = solver.num_clauses();
    }

    const auto constrain_both = [&](const std::vector<bool>& in,
                                    const std::vector<bool>& answer) {
        if (params.shared_miter) {
            sat::CnfBuilder::SharedCopy sc =
                sat::CnfBuilder::add_shared_copies(family_a, family_b, in);
            result.shared_cells += static_cast<std::uint64_t>(sc.shared_cells);
            pin_outputs(&solver, sc.a, answer);
            pin_outputs(&solver, sc.b, answer);
        } else {
            add_io_constraint(&solver, &family_a, in, answer, false);
            add_io_constraint(&solver, &family_b, in, answer, false);
        }
    };

    // Per-member recorder above the shared cache: the member's transcript
    // is exactly the pairs it stamped, in stamp order.
    TranscriptOracle recorder(*shared->cache);
    std::size_t stamped = 0;
    const auto incorporate_one = [&]() -> bool {
        const OracleTranscript::Entry e = shared->log.get(stamped);
        std::vector<bool> answer;
        try {
            // Through the recorder, which forwards to the shared cache: a
            // guaranteed hit (the appender queried through the cache), so
            // incorporating foreign pairs costs no chip access or budget.
            answer = recorder.query(e.inputs);
        } catch (const OracleBudgetExceeded&) {
            result.status = OracleAttackResult::Status::kQueryBudget;
            return false;
        }
        constrain_both(e.inputs, answer);
        out->constraint_inputs.push_back(e.inputs);
        out->answers.push_back(std::move(answer));
        ++stamped;
        solver.set_exchange_epoch(stamped);
        if (result.warmup_queries < params.random_warmup) {
            ++result.warmup_queries;
        } else {
            ++result.queries;
            result.distinguishing_inputs.push_back(e.inputs);
        }
        return true;
    };

    // Warm-up: every member contributes its own (diversified) random
    // patterns to the log, then stamps its quota -- without intermediate
    // solves, mirroring both the serial loop and the replay path.
    bool stopped = false;
    if (params.random_warmup > 0) {
        util::Rng wrng(member == 0
                           ? params.warmup_seed
                           : portfolio_mix(params.warmup_seed ^ 0x77a9u, member));
        int remaining = params.random_warmup;
        while (remaining > 0 && !stopped) {
            const int count = std::min(remaining, kQueryBlockWidth);
            std::vector<std::uint64_t> words(static_cast<std::size_t>(m));
            for (std::uint64_t& w : words) w = wrng.next_u64();
            try {
                const std::vector<std::uint64_t> po_words =
                    shared->cache->query_block(words, count);
                for (int k = 0; k < count; ++k) {
                    shared->log.append(unpack_lane(words, k),
                                       unpack_lane(po_words, k));
                }
            } catch (const OracleBudgetExceeded&) {
                try {
                    // Blocks are all-or-nothing: drain the remaining budget
                    // with scalar queries over the same patterns.
                    for (int k = 0; k < count; ++k) {
                        const std::vector<bool> in = unpack_lane(words, k);
                        shared->log.append(in, shared->cache->query(in));
                    }
                } catch (const OracleBudgetExceeded&) {
                    result.status = OracleAttackResult::Status::kQueryBudget;
                    stopped = true;
                }
            }
            remaining -= count;
        }
        while (!stopped && result.warmup_queries < params.random_warmup &&
               stamped < shared->log.size()) {
            if (!incorporate_one()) stopped = true;
        }
    }

    // CEGAR race: sliced solves (bounded cancellation latency; learned
    // clauses persist across kUnknown returns, so slicing only costs the
    // cancel checks), one stamped pair per solve.
    std::vector<bool> pattern(static_cast<std::size_t>(m));
    std::vector<sat::Lit> assumptions;
    constexpr std::uint64_t kSliceConflicts = 2000;
    while (!stopped) {
        if (shared->cancel.load(std::memory_order_relaxed)) break;
        sat::Solver::Result sr;
        for (;;) {
            solver.set_conflict_budget(kSliceConflicts);
            sr = solver.solve();
            if (sr != sat::Solver::Result::kUnknown) break;
            if (shared->cancel.load(std::memory_order_relaxed)) break;
        }
        solver.set_conflict_budget(0);
        if (sr == sat::Solver::Result::kUnknown) break;  // cancelled mid-solve
        if (sr == sat::Solver::Result::kUnsat) {
            out->converged = true;
            break;
        }
        if (params.max_iterations > 0 &&
            result.queries >= params.max_iterations) {
            result.status = OracleAttackResult::Status::kIterationLimit;
            break;
        }
        if (stamped >= shared->log.size()) {
            // Nothing pending to incorporate: contribute our own
            // distinguishing input.  (A stamped pair excludes its pattern
            // from the miter's models, so this is always genuinely new.)
            for (int i = 0; i < m; ++i) {
                pattern[static_cast<std::size_t>(i)] = solver.model_value(
                    sat::lit_var(shared_x[static_cast<std::size_t>(i)]));
            }
            if (params.canonical_inputs) {
                assumptions.clear();
                canonicalize_pattern(&solver, shared_x, &assumptions, &pattern);
            }
            try {
                shared->log.append(pattern, shared->cache->query(pattern));
            } catch (const OracleBudgetExceeded&) {
                result.status = OracleAttackResult::Status::kQueryBudget;
                break;
            }
        }
        if (!incorporate_one()) break;
        if (params.solver.preprocess && params.solver.inprocess_growth > 1.0 &&
            static_cast<double>(solver.num_clauses()) >
                params.solver.inprocess_growth *
                    static_cast<double>(preprocessed_size)) {
            make_preprocessor().run_light();
            preprocessed_size = solver.num_clauses();
        }
    }
    result.sat_stats = solver.stats();
    out->transcript = recorder.transcript();
}

OracleAttackResult portfolio_attack(const CamoNetlist& netlist, Oracle& oracle,
                                    const OracleAttackParams& params,
                                    int members) {
    util::Stopwatch sw;
    report::Json span_args;
    if (obs::tracing()) {
        span_args = report::Json::object();
        span_args.set("members", members);
        span_args.set("pis", netlist.num_pis());
        span_args.set("pos", netlist.num_pos());
    }
    obs::Span span("portfolio-attack", "attack", std::move(span_args));
    if (obs::metrics_enabled()) {
        obs::MetricsRegistry::global().counter("attack.runs").add();
    }

    CachingOracle cache(oracle);
    PortfolioShared shared(members);
    shared.netlist = &netlist;
    shared.params = &params;
    shared.cache = &cache;

    std::vector<MemberOutcome> outs(static_cast<std::size_t>(members));
    std::atomic<int> winner{-1};
    const auto race = [&](int mi) {
        run_portfolio_member(mi, &shared, &outs[static_cast<std::size_t>(mi)]);
        if (outs[static_cast<std::size_t>(mi)].converged) {
            int expected = -1;
            if (winner.compare_exchange_strong(expected, mi)) {
                // First UNSAT wins; everyone else parks at their next
                // cancel check.
                shared.cancel.store(true, std::memory_order_relaxed);
            }
        }
    };

    util::ThreadPool local_pool(params.pool ? 1 : members - 1);
    util::ThreadPool* pool = params.pool ? params.pool : &local_pool;
    std::vector<std::future<void>> futures;
    futures.reserve(static_cast<std::size_t>(members - 1));
    for (int mi = 1; mi < members; ++mi) {
        futures.push_back(pool->submit([&race, mi] { race(mi); }));
    }
    race(0);  // the caller is always member 0
    for (std::future<void>& f : futures) {
        // Helping-wait: when the pool is saturated (batch jobs occupying
        // every worker) the pending members run on this thread instead of
        // deadlocking.
        using namespace std::chrono_literals;
        while (f.wait_for(0s) != std::future_status::ready) {
            if (!pool->run_one()) f.wait_for(1ms);
        }
        f.get();
    }

    const int win = winner.load();
    const std::size_t chosen = static_cast<std::size_t>(win >= 0 ? win : 0);
    OracleAttackResult result = std::move(outs[chosen].result);
    result.winner = win;
    if (win >= 0) {
        result.winner_transcript = std::move(outs[chosen].transcript);
        if (params.enumerate_survivors) {
            count_consistent_configs(netlist, outs[chosen].constraint_inputs,
                                     outs[chosen].answers, params, &result);
        }
    }
    // win < 0: nobody converged (budget/iteration caps); member 0's parked
    // status stands and, as in the serial attack, no counting runs.
    result.seconds = sw.elapsed_seconds();
    if (span) {
        report::Json ea = report::Json::object();
        ea.set("winner", result.winner);
        ea.set("status", std::string(attack_status_name(result.status)));
        ea.set("queries", result.queries);
        if (result.counted) ea.set("survivors", result.survivors.to_string());
        span.set_end_args(std::move(ea));
    }
    return result;
}

}  // namespace

OracleAttackResult oracle_attack(const CamoNetlist& netlist, Oracle& oracle,
                                 const OracleAttackParams& params) {
    // Portfolio dispatch: one knob (attack_threads) unless portfolio pins
    // the member count explicitly.  A replaying transcript always takes
    // the serial path below -- a transcript is one member's view.
    const int members = params.portfolio > 0 ? params.portfolio
                                             : std::max(1, params.attack_threads);
    if (members > 1 && oracle.scripted_pattern() == nullptr) {
        return portfolio_attack(netlist, oracle, params, members);
    }
    const int m = netlist.num_pis();
    const int r = netlist.num_pos();
    util::Stopwatch sw;
    OracleAttackResult result;

    // Latency metrics: local histograms snapshot into result.metrics; when
    // the process-global switch is on they feed the shared registry too
    // (same samples, one timing call).  `collect` off keeps the hot path at
    // one branch per site -- no clock reads.
    const bool collect = params.collect_metrics || obs::metrics_enabled();
    obs::Histogram oracle_hist, solve_hist;
    obs::Histogram* reg_oracle_hist = nullptr;
    obs::Histogram* reg_solve_hist = nullptr;
    if (obs::metrics_enabled()) {
        obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
        reg.counter("attack.runs").add();
        reg_oracle_hist = &reg.histogram("attack.oracle_query_us");
        reg_solve_hist = &reg.histogram("attack.sat_solve_us");
    }
    const auto observe_query = [&](double us) {
        if (!collect) return;
        oracle_hist.observe(us);
        if (reg_oracle_hist) reg_oracle_hist->observe(us);
    };
    const auto observe_solve = [&](double us) {
        if (!collect) return;
        solve_hist.observe(us);
        if (reg_solve_hist) reg_solve_hist->observe(us);
    };

    report::Json attack_args;
    if (obs::tracing()) {
        attack_args = report::Json::object();
        attack_args.set("pis", m);
        attack_args.set("pos", r);
        attack_args.set("nodes", netlist.num_nodes());
    }
    obs::Span attack_span("oracle-attack", "attack", std::move(attack_args));

    // Two selector families in one incremental solver, mitered over shared
    // symbolic inputs: a model is (config A, config B, input X) with A and B
    // disagreeing at X while both satisfy every I/O constraint so far.
    sat::Solver solver;
    sat::CnfBuilder family_a(netlist, &solver, params.fixed_nominal);
    sat::CnfBuilder family_b(netlist, &solver, params.fixed_nominal);

    std::vector<sat::Lit> shared_x;
    shared_x.reserve(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) shared_x.push_back(sat::mk_lit(solver.new_var()));
    sat::CnfBuilder::Copy miter_a, miter_b;
    if (params.shared_miter) {
        sat::CnfBuilder::SharedCopy sc =
            sat::CnfBuilder::add_shared_copies(family_a, family_b, shared_x);
        result.shared_cells += static_cast<std::uint64_t>(sc.shared_cells);
        miter_a = std::move(sc.a);
        miter_b = std::move(sc.b);
    } else {
        miter_a = family_a.add_copy(shared_x);
        miter_b = family_b.add_copy(shared_x);
    }

    // diff_q -> (a_q != b_q); at least one diff_q holds.  One direction of
    // the XOR suffices: any model must exhibit a real output difference.
    std::vector<sat::Lit> any_diff;
    any_diff.reserve(static_cast<std::size_t>(r));
    std::vector<sat::Lit> assumptions;
    for (int q = 0; q < r; ++q) {
        const sat::Lit d = sat::mk_lit(solver.new_var());
        const sat::Lit a = miter_a.po[static_cast<std::size_t>(q)];
        const sat::Lit b = miter_b.po[static_cast<std::size_t>(q)];
        solver.add_ternary(sat::lit_not(d), a, b);
        solver.add_ternary(sat::lit_not(d), sat::lit_not(a), sat::lit_not(b));
        any_diff.push_back(d);
    }
    solver.add_clause(any_diff);

    // Preprocess the miter core once (BVE + subsumption + strengthening),
    // then run the light sweep whenever the database has outgrown the last
    // simplified size: the per-pattern copies below get pinned down by
    // level-0 propagation, and physically removing the satisfied clauses
    // keeps watch lists short without disturbing the learned database.
    const auto make_preprocessor = [&]() {
        sat::Preprocessor pre(&solver, params.solver);
        const std::vector<sat::Var> fa = family_a.frozen_vars();
        const std::vector<sat::Var> fb = family_b.frozen_vars();
        pre.freeze_all(fa);
        pre.freeze_all(fb);
        pre.freeze_lits(shared_x);
        return pre;
    };
    std::size_t preprocessed_size = 0;
    if (params.solver.preprocess) {
        make_preprocessor().run();
        preprocessed_size = solver.num_clauses();
    }

    // Stamps one I/O pair as constraints into BOTH families.
    const auto constrain_both = [&](const std::vector<bool>& in,
                                    const std::vector<bool>& out) {
        if (params.shared_miter) {
            sat::CnfBuilder::SharedCopy sc =
                sat::CnfBuilder::add_shared_copies(family_a, family_b, in);
            result.shared_cells += static_cast<std::uint64_t>(sc.shared_cells);
            pin_outputs(&solver, sc.a, out);
            pin_outputs(&solver, sc.b, out);
        } else {
            add_io_constraint(&solver, &family_a, in, out, false);
            add_io_constraint(&solver, &family_b, in, out, false);
        }
    };

    // All constraint pairs in query order: random warm-up first, then the
    // distinguishing inputs (result.distinguishing_inputs holds only the
    // latter).  The counting tail replays the whole list.
    std::vector<std::vector<bool>> constraint_inputs;
    std::vector<std::vector<bool>> answers;

    // Random warm-up through the batched word-parallel path: every
    // answered pattern prunes the configurations disagreeing with the
    // chip on it, shrinking the viable set before any distinguishing
    // input is solved for.
    bool budget_tripped = false;
    if (params.random_warmup > 0) {
        report::Json warm_args;
        if (obs::tracing()) {
            warm_args = report::Json::object();
            warm_args.set("patterns", params.random_warmup);
        }
        obs::Span warm_span("warmup", "attack", std::move(warm_args));
        util::Rng wrng(params.warmup_seed);
        int remaining = params.random_warmup;
        const auto take_answer = [&](const std::vector<std::uint64_t>& words,
                                     int k, std::vector<bool> out) {
            std::vector<bool> in = unpack_lane(words, k);
            assert(static_cast<int>(out.size()) == r);
            constrain_both(in, out);
            constraint_inputs.push_back(std::move(in));
            answers.push_back(std::move(out));
            ++result.warmup_queries;
        };
        // Replay: the transcript prescribes the warm-up patterns.  (A
        // portfolio winner's warm-up region interleaves patterns it
        // incorporated from other members, which no local RNG regenerates;
        // for a serial recording the scripted patterns ARE the wrng
        // sequence, so this path is equivalent to regenerating them.)
        while (remaining > 0 && !budget_tripped &&
               oracle.scripted_pattern() != nullptr) {
            std::vector<bool> in = *oracle.scripted_pattern();
            try {
                std::vector<bool> out = oracle.query(in);
                constrain_both(in, out);
                constraint_inputs.push_back(std::move(in));
                answers.push_back(std::move(out));
                ++result.warmup_queries;
            } catch (const OracleBudgetExceeded&) {
                result.status = OracleAttackResult::Status::kQueryBudget;
                budget_tripped = true;
            }
            --remaining;
        }
        if (remaining > 0 && !budget_tripped &&
            result.warmup_queries > 0) {
            // Scripted warm-up ran but the transcript ended early:
            // terminate honestly (a replayed chip answers exactly its
            // recorded queries), instead of inventing fresh patterns the
            // replay below could never answer.
            result.status = OracleAttackResult::Status::kQueryBudget;
            budget_tripped = true;
        }
        while (remaining > 0 && !budget_tripped) {
            const int count = std::min(remaining, kQueryBlockWidth);
            std::vector<std::uint64_t> words(static_cast<std::size_t>(m));
            for (std::uint64_t& w : words) w = wrng.next_u64();
            try {
                const auto q0 = collect ? std::chrono::steady_clock::now()
                                        : std::chrono::steady_clock::time_point();
                const std::vector<std::uint64_t> po_words =
                    oracle.query_block(words, count);
                if (collect) observe_query(us_since(q0));
                for (int k = 0; k < count; ++k) {
                    take_answer(words, k, unpack_lane(po_words, k));
                }
            } catch (const OracleBudgetExceeded&) {
                // The whole block overran the remaining budget (blocks are
                // all-or-nothing); drain what is left with scalar queries
                // over the SAME pattern sequence so the full allowance is
                // spent before terminating honestly.
                try {
                    for (int k = 0; k < count; ++k) {
                        const auto q0 =
                            collect ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point();
                        std::vector<bool> out = oracle.query(unpack_lane(words, k));
                        if (collect) observe_query(us_since(q0));
                        take_answer(words, k, std::move(out));
                    }
                } catch (const OracleBudgetExceeded&) {
                    result.status = OracleAttackResult::Status::kQueryBudget;
                    budget_tripped = true;
                }
            }
            remaining -= count;
        }
    }

    // CEGAR refinement: each distinguishing input and the oracle's answer
    // constrain BOTH families, shrinking the still-viable set on each side.
    std::vector<bool> pattern(static_cast<std::size_t>(m));
    while (!budget_tripped) {
        assumptions.clear();
        // One span per CEGAR iteration; the final (UNSAT, convergence)
        // solve gets its own span with converged=true in the end args.
        report::Json iter_args;
        if (obs::tracing()) {
            iter_args = report::Json::object();
            iter_args.set("iteration", result.queries);
        }
        obs::Span iter_span("cegar-iteration", "attack", std::move(iter_args));
        const bool sat = solver.solve() == sat::Solver::Result::kSat;
        // Captured now: canonicalization and the next iteration overwrite
        // last_solve(), and this delta is what the span reports.
        const sat::Solver::SolveDelta delta = solver.last_solve();
        observe_solve(delta.seconds * 1e6);
        if (!sat) {
            if (iter_span) {
                report::Json ea = report::Json::object();
                ea.set("converged", true);
                ea.set("conflicts", delta.conflicts);
                ea.set("propagations", delta.propagations);
                iter_span.set_end_args(std::move(ea));
            }
            break;
        }
        if (params.max_iterations > 0 &&
            result.queries >= params.max_iterations) {
            result.status = OracleAttackResult::Status::kIterationLimit;
            break;
        }
        bool from_script = false;
        if (const std::vector<bool>* scripted = oracle.scripted_pattern()) {
            // A replaying TranscriptOracle prescribes the query sequence
            // through the public API; the per-iteration solve above still
            // runs, so the CEGAR work is identical -- only the pattern
            // choice is pinned (any prefix of a valid run's transcript is
            // itself a valid distinguishing sequence).
            pattern = *scripted;
            assert(static_cast<int>(pattern.size()) == m);
            from_script = true;
        } else {
            for (int i = 0; i < m; ++i) {
                pattern[static_cast<std::size_t>(i)] = solver.model_value(
                    sat::lit_var(shared_x[static_cast<std::size_t>(i)]));
            }
            if (params.canonical_inputs) {
                canonicalize_pattern(&solver, shared_x, &assumptions, &pattern);
            }
        }
        std::vector<bool> answer;
        try {
            const auto q0 = collect ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point();
            answer = oracle.query(pattern);
            if (collect) observe_query(us_since(q0));
        } catch (const OracleBudgetExceeded&) {
            // Honest termination: the threat model ran out of chip access.
            result.status = OracleAttackResult::Status::kQueryBudget;
            break;
        }
        assert(static_cast<int>(answer.size()) == r);
        ++result.queries;
        constrain_both(pattern, answer);
        result.distinguishing_inputs.push_back(pattern);
        constraint_inputs.push_back(pattern);
        answers.push_back(std::move(answer));
        if (iter_span) {
            report::Json ea = report::Json::object();
            ea.set("pattern", pattern_bits(pattern));
            ea.set("conflicts", delta.conflicts);
            ea.set("decisions", delta.decisions);
            ea.set("propagations", delta.propagations);
            ea.set("max_decision_level", delta.max_decision_level);
            iter_span.set_end_args(std::move(ea));
        }
        // Neighborhood warm-up: the distinguishing input just found sits on
        // a decision boundary of the configuration space, so its
        // single-bit-flip neighbors are disproportionately likely to
        // separate further configurations.  Query up to
        // neighborhood_queries of them as one word-parallel block and
        // constrain the answers (counted as warm-up queries -- they are
        // solver-free pruning, not CEGAR iterations).  Skipped under
        // replay: the scripted sequence already embeds whatever
        // neighborhood queries the recorded run made as ordinary patterns.
        if (params.neighborhood_queries > 0 && !from_script && m > 0) {
            const int nq = std::min(
                std::min(params.neighborhood_queries, m), kQueryBlockWidth);
            std::vector<std::vector<bool>> neighbors;
            neighbors.reserve(static_cast<std::size_t>(nq));
            for (int b = 0; b < nq; ++b) {
                std::vector<bool> nb = pattern;
                nb[static_cast<std::size_t>(b)] =
                    !nb[static_cast<std::size_t>(b)];
                neighbors.push_back(std::move(nb));
            }
            const std::vector<std::uint64_t> words = pack_block(neighbors);
            const auto take_neighbor = [&](int lane, std::vector<bool> out) {
                assert(static_cast<int>(out.size()) == r);
                constrain_both(neighbors[static_cast<std::size_t>(lane)], out);
                constraint_inputs.push_back(
                    neighbors[static_cast<std::size_t>(lane)]);
                answers.push_back(std::move(out));
                ++result.warmup_queries;
            };
            try {
                const auto q0 = collect ? std::chrono::steady_clock::now()
                                        : std::chrono::steady_clock::time_point();
                const std::vector<std::uint64_t> po_words =
                    oracle.query_block(words, nq);
                if (collect) observe_query(us_since(q0));
                for (int lane = 0; lane < nq; ++lane) {
                    take_neighbor(lane, unpack_lane(po_words, lane));
                }
            } catch (const OracleBudgetExceeded&) {
                // Blocks are all-or-nothing; drain the remaining allowance
                // with scalar queries over the SAME patterns before
                // terminating honestly (mirrors the random warm-up path).
                try {
                    for (int lane = 0; lane < nq; ++lane) {
                        const auto q0 =
                            collect ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point();
                        std::vector<bool> out = oracle.query(
                            neighbors[static_cast<std::size_t>(lane)]);
                        if (collect) observe_query(us_since(q0));
                        take_neighbor(lane, std::move(out));
                    }
                } catch (const OracleBudgetExceeded&) {
                    result.status = OracleAttackResult::Status::kQueryBudget;
                    budget_tripped = true;
                }
            }
        }
        if (params.solver.preprocess && params.solver.inprocess_growth > 1.0 &&
            static_cast<double>(solver.num_clauses()) >
                params.solver.inprocess_growth *
                    static_cast<double>(preprocessed_size)) {
            make_preprocessor().run_light();
            preprocessed_size = solver.num_clauses();
        }
    }

    result.sat_stats = solver.stats();

    // UNSAT: every configuration consistent with the collected I/O pairs is
    // functionally equivalent to the oracle (if any disagreed anywhere, the
    // miter would have found the disagreeing input).  Count them over a
    // single fresh selector family constrained by the collected I/O pairs.
    // With shared_miter the copies fold their selector-independent constant
    // cones; with preprocessing the instance is simplified first (selectors
    // are frozen, so the projected count is preserved).
    if (result.status != OracleAttackResult::Status::kIterationLimit &&
        result.status != OracleAttackResult::Status::kQueryBudget &&
        params.enumerate_survivors) {
        count_consistent_configs(netlist, constraint_inputs, answers, params,
                                 &result);
    }

    result.seconds = sw.elapsed_seconds();
    if (collect) {
        result.metrics.oracle_query_us = oracle_hist.snapshot();
        result.metrics.sat_solve_us = solve_hist.snapshot();
    }
    if (attack_span) {
        report::Json ea = report::Json::object();
        ea.set("status", std::string(attack_status_name(result.status)));
        ea.set("queries", result.queries);
        ea.set("warmup_queries", result.warmup_queries);
        if (result.counted) ea.set("survivors", result.survivors.to_string());
        attack_span.set_end_args(std::move(ea));
    }
    return result;
}

}  // namespace mvf::attack
