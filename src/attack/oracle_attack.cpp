#include "attack/oracle_attack.hpp"

#include <cassert>

#include "sat/cnf_builder.hpp"
#include "sim/netlist_sim.hpp"
#include "util/stopwatch.hpp"

namespace mvf::attack {

using camo::CamoNetlist;

std::vector<bool> SimOracle::query(const std::vector<bool>& inputs) {
    return sim::simulate_camo_pattern(*netlist_, config_, inputs);
}

namespace {

// Stamps a constant-input copy and pins its outputs to the oracle's answer.
void add_io_constraint(sat::Solver* solver, sat::CnfBuilder* builder,
                       const std::vector<bool>& inputs,
                       const std::vector<bool>& outputs) {
    const sat::CnfBuilder::Copy copy = builder->add_copy(inputs);
    for (std::size_t q = 0; q < copy.po.size(); ++q) {
        solver->add_unit(outputs[q] ? copy.po[q] : sat::lit_not(copy.po[q]));
    }
}

}  // namespace

OracleAttackResult oracle_attack(const CamoNetlist& netlist, Oracle& oracle,
                                 const OracleAttackParams& params) {
    const int m = netlist.num_pis();
    const int r = netlist.num_pos();
    util::Stopwatch sw;
    OracleAttackResult result;

    // Two selector families in one incremental solver, mitered over shared
    // symbolic inputs: a model is (config A, config B, input X) with A and B
    // disagreeing at X while both satisfy every I/O constraint so far.
    sat::Solver solver;
    sat::CnfBuilder family_a(netlist, &solver, params.fixed_nominal);
    sat::CnfBuilder family_b(netlist, &solver, params.fixed_nominal);

    std::vector<sat::Lit> shared_x;
    shared_x.reserve(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) shared_x.push_back(sat::mk_lit(solver.new_var()));
    const sat::CnfBuilder::Copy miter_a = family_a.add_copy(shared_x);
    const sat::CnfBuilder::Copy miter_b = family_b.add_copy(shared_x);

    // diff_q -> (a_q != b_q); at least one diff_q holds.  One direction of
    // the XOR suffices: any model must exhibit a real output difference.
    std::vector<sat::Lit> any_diff;
    any_diff.reserve(static_cast<std::size_t>(r));
    for (int q = 0; q < r; ++q) {
        const sat::Lit d = sat::mk_lit(solver.new_var());
        const sat::Lit a = miter_a.po[static_cast<std::size_t>(q)];
        const sat::Lit b = miter_b.po[static_cast<std::size_t>(q)];
        solver.add_ternary(sat::lit_not(d), a, b);
        solver.add_ternary(sat::lit_not(d), sat::lit_not(a), sat::lit_not(b));
        any_diff.push_back(d);
    }
    solver.add_clause(any_diff);

    // CEGAR refinement: each distinguishing input and the oracle's answer
    // constrain BOTH families, shrinking the still-viable set on each side.
    std::vector<bool> pattern(static_cast<std::size_t>(m));
    std::vector<std::vector<bool>> answers;
    while (solver.solve() == sat::Solver::Result::kSat) {
        if (params.max_iterations > 0 &&
            result.queries >= params.max_iterations) {
            result.status = OracleAttackResult::Status::kIterationLimit;
            break;
        }
        for (int i = 0; i < m; ++i) {
            pattern[static_cast<std::size_t>(i)] =
                solver.model_value(sat::lit_var(shared_x[static_cast<std::size_t>(i)]));
        }
        std::vector<bool> answer = oracle.query(pattern);
        assert(static_cast<int>(answer.size()) == r);
        ++result.queries;
        add_io_constraint(&solver, &family_a, pattern, answer);
        add_io_constraint(&solver, &family_b, pattern, answer);
        result.distinguishing_inputs.push_back(pattern);
        answers.push_back(std::move(answer));
    }
    result.sat_stats = solver.stats();

    // UNSAT: every configuration consistent with the collected I/O pairs is
    // functionally equivalent to the oracle (if any disagreed anywhere, the
    // miter would have found the disagreeing input).  Count them by model
    // enumeration over a single fresh selector family, projected onto the
    // cells with a structural path to a PO: a cell outside every output
    // cone cannot influence any output, so its choices multiply the count
    // exactly instead of being enumerated one by one.
    if (result.status != OracleAttackResult::Status::kIterationLimit &&
        params.enumerate_survivors) {
        std::vector<bool> in_po_cone(static_cast<std::size_t>(netlist.num_nodes()),
                                     false);
        std::vector<int> stack;
        for (int q = 0; q < r; ++q) stack.push_back(netlist.po(q));
        while (!stack.empty()) {
            const int id = stack.back();
            stack.pop_back();
            if (in_po_cone[static_cast<std::size_t>(id)]) continue;
            in_po_cone[static_cast<std::size_t>(id)] = true;
            for (const int f : netlist.node(id).fanins) stack.push_back(f);
        }

        sat::Solver counter;
        sat::CnfBuilder family(netlist, &counter, params.fixed_nominal);
        for (std::size_t i = 0; i < answers.size(); ++i) {
            add_io_constraint(&counter, &family, result.distinguishing_inputs[i],
                              answers[i]);
        }
        unsigned __int128 dead_freedom = 1;
        for (int id = 0; id < netlist.num_nodes(); ++id) {
            const std::size_t choices = family.selectors(id).size();
            if (choices == 0 || in_po_cone[static_cast<std::size_t>(id)]) continue;
            dead_freedom *= choices;
            if (dead_freedom > params.max_survivors) break;  // saturates below
        }

        unsigned __int128 total = 0;
        while (counter.solve() == sat::Solver::Result::kSat) {
            const std::vector<int> config = family.config_from_model();
            if (total == 0) result.witness_config = config;
            total += dead_freedom;
            if (total >= params.max_survivors) {
                result.status = OracleAttackResult::Status::kSurvivorLimit;
                total = params.max_survivors;
                break;
            }
            if (!family.block_config(config, &in_po_cone)) break;
        }
        result.surviving_configs = static_cast<std::uint64_t>(total);
        if (total == 0) {
            result.status = OracleAttackResult::Status::kNoSurvivor;
        }
    }

    result.seconds = sw.elapsed_seconds();
    return result;
}

}  // namespace mvf::attack
