#include "attack/plausibility.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "sim/netlist_sim.hpp"

namespace mvf::attack {

using camo::CamoNetlist;
using logic::TruthTable;

PlausibilityResult is_plausible(const CamoNetlist& netlist,
                                std::span<const TruthTable> targets,
                                const std::vector<bool>* fixed_nominal) {
    assert(static_cast<int>(targets.size()) == netlist.num_pos());
    const int m = netlist.num_pis();
    const std::uint32_t num_patterns = 1u << m;

    sat::Solver solver;
    PlausibilityResult result;

    // Selector variables per cell.
    std::vector<std::vector<sat::Var>> selector(
        static_cast<std::size_t>(netlist.num_nodes()));
    for (int id = 0; id < netlist.num_nodes(); ++id) {
        const CamoNetlist::Node& n = netlist.node(id);
        if (n.kind != CamoNetlist::NodeKind::kCell) continue;
        const camo::CamoCell& cell = netlist.library().cell(n.camo_cell_id);
        const bool fixed = fixed_nominal && (*fixed_nominal)[static_cast<std::size_t>(id)];
        const int num_choices = fixed ? 1 : static_cast<int>(cell.plausible.size());
        auto& sel = selector[static_cast<std::size_t>(id)];
        sel.reserve(static_cast<std::size_t>(num_choices));
        std::vector<sat::Lit> at_least_one;
        for (int j = 0; j < num_choices; ++j) {
            const sat::Var v = solver.new_var();
            sel.push_back(v);
            at_least_one.push_back(sat::mk_lit(v));
        }
        solver.add_clause(at_least_one);
        for (std::size_t a = 0; a < sel.size(); ++a) {
            for (std::size_t b = a + 1; b < sel.size(); ++b) {
                solver.add_binary(sat::mk_lit(sel[a], true), sat::mk_lit(sel[b], true));
            }
        }
    }

    // Node-value variables per pattern; PIs fold to constants.
    // value_var[id] = first pattern's var; vars for node id are contiguous.
    std::vector<sat::Var> value_var(static_cast<std::size_t>(netlist.num_nodes()), -1);
    std::vector<int> pi_position(static_cast<std::size_t>(netlist.num_nodes()), -1);
    for (int i = 0; i < m; ++i) pi_position[static_cast<std::size_t>(netlist.pi(i))] = i;

    for (int id = 0; id < netlist.num_nodes(); ++id) {
        if (netlist.node(id).kind != CamoNetlist::NodeKind::kCell) continue;
        const sat::Var first = solver.new_var();
        for (std::uint32_t x = 1; x < num_patterns; ++x) solver.new_var();
        value_var[static_cast<std::size_t>(id)] = first;
    }

    // Literal of node `id`'s value under pattern x, or the constant via
    // *constant when the node is a PI.
    const auto node_literal = [&](int id, std::uint32_t x, bool* is_const,
                                  bool* const_value) -> sat::Lit {
        const int pos = pi_position[static_cast<std::size_t>(id)];
        if (pos >= 0) {
            *is_const = true;
            *const_value = (x >> pos) & 1;
            return 0;
        }
        *is_const = false;
        return sat::mk_lit(value_var[static_cast<std::size_t>(id)] +
                           static_cast<sat::Var>(x));
    };

    // Consistency clauses: selecting function j forces the cell output to
    // follow f_j on every input pattern.
    std::vector<sat::Lit> clause;
    for (int id = 0; id < netlist.num_nodes(); ++id) {
        const CamoNetlist::Node& n = netlist.node(id);
        if (n.kind != CamoNetlist::NodeKind::kCell) continue;
        const camo::CamoCell& cell = netlist.library().cell(n.camo_cell_id);
        const auto& sel = selector[static_cast<std::size_t>(id)];

        for (std::size_t j = 0; j < sel.size(); ++j) {
            const TruthTable& fj = cell.plausible[j];
            const std::vector<int> support = fj.support();
            const int k = static_cast<int>(support.size());

            for (std::uint32_t x = 0; x < num_patterns; ++x) {
                bool out_const = false;
                bool out_value = false;
                const sat::Lit out =
                    node_literal(id, x, &out_const, &out_value);
                assert(!out_const);
                (void)out_const;
                (void)out_value;

                for (std::uint32_t pp = 0; pp < (1u << k); ++pp) {
                    // Full pin pattern with non-support pins at 0.
                    std::uint32_t pins = 0;
                    for (int b = 0; b < k; ++b) {
                        if ((pp >> b) & 1) pins |= 1u << support[static_cast<std::size_t>(b)];
                    }
                    const bool fout = fj.bit(pins);

                    clause.clear();
                    clause.push_back(sat::mk_lit(sel[j], true));
                    bool contradicted = false;
                    for (int b = 0; b < k && !contradicted; ++b) {
                        const int pin = support[static_cast<std::size_t>(b)];
                        const int fanin = n.fanins[static_cast<std::size_t>(pin)];
                        bool c = false;
                        bool cv = false;
                        const sat::Lit fl = node_literal(fanin, x, &c, &cv);
                        const bool want = (pp >> b) & 1;
                        if (c) {
                            if (cv != want) contradicted = true;  // clause sat
                        } else {
                            clause.push_back(want ? sat::lit_not(fl) : fl);
                        }
                    }
                    if (contradicted) continue;
                    clause.push_back(fout ? out : sat::lit_not(out));
                    solver.add_clause(clause);
                }
            }
        }
    }

    // Output constraints.
    for (int q = 0; q < netlist.num_pos(); ++q) {
        const int po = netlist.po(q);
        for (std::uint32_t x = 0; x < num_patterns; ++x) {
            const bool want = targets[static_cast<std::size_t>(q)].bit(x);
            bool c = false;
            bool cv = false;
            const sat::Lit l = node_literal(po, x, &c, &cv);
            if (c) {
                if (cv != want) return result;  // PO is a wire; mismatch
                continue;
            }
            solver.add_unit(want ? l : sat::lit_not(l));
        }
    }

    const sat::Solver::Result r = solver.solve();
    result.sat_stats = solver.stats();
    if (r != sat::Solver::Result::kSat) return result;

    result.plausible = true;
    result.config.assign(static_cast<std::size_t>(netlist.num_nodes()), -1);
    for (int id = 0; id < netlist.num_nodes(); ++id) {
        const auto& sel = selector[static_cast<std::size_t>(id)];
        for (std::size_t j = 0; j < sel.size(); ++j) {
            if (solver.model_value(sel[j])) {
                result.config[static_cast<std::size_t>(id)] = static_cast<int>(j);
                break;
            }
        }
    }
    return result;
}

std::optional<std::vector<int>> find_config_exhaustive(
    const CamoNetlist& netlist, std::span<const TruthTable> targets,
    std::uint64_t max_configs, bool* exhausted) {
    if (exhausted) *exhausted = true;

    std::vector<int> cells;
    std::uint64_t total = 1;
    for (int id = 0; id < netlist.num_nodes(); ++id) {
        const CamoNetlist::Node& n = netlist.node(id);
        if (n.kind != CamoNetlist::NodeKind::kCell) continue;
        cells.push_back(id);
        total *= netlist.library().cell(n.camo_cell_id).plausible.size();
        if (total > max_configs) {
            if (exhausted) *exhausted = false;
            return std::nullopt;
        }
    }

    std::vector<int> config(static_cast<std::size_t>(netlist.num_nodes()), -1);
    for (const int id : cells) config[static_cast<std::size_t>(id)] = 0;

    while (true) {
        const std::vector<TruthTable> got = sim::simulate_camo_full(netlist, config);
        bool match = true;
        for (std::size_t q = 0; q < got.size(); ++q) {
            if (got[q] != targets[q]) {
                match = false;
                break;
            }
        }
        if (match) return config;

        // Advance the mixed-radix counter.
        std::size_t i = 0;
        for (; i < cells.size(); ++i) {
            const int id = cells[i];
            const int limit = static_cast<int>(
                netlist.library().cell(netlist.node(id).camo_cell_id).plausible.size());
            if (++config[static_cast<std::size_t>(id)] < limit) break;
            config[static_cast<std::size_t>(id)] = 0;
        }
        if (i == cells.size()) return std::nullopt;
    }
}

bool is_plausible_any_pins(const CamoNetlist& netlist,
                           std::span<const TruthTable> target_outputs,
                           int* interpretations_tried) {
    const int m = netlist.num_pis();
    const int r = netlist.num_pos();
    assert(static_cast<int>(target_outputs.size()) == r);

    std::vector<int> in_perm(static_cast<std::size_t>(m));
    std::iota(in_perm.begin(), in_perm.end(), 0);
    int tried = 0;
    do {
        std::vector<TruthTable> permuted;
        permuted.reserve(static_cast<std::size_t>(r));
        for (const TruthTable& t : target_outputs) {
            permuted.push_back(t.permute(in_perm));
        }
        std::vector<int> out_perm(static_cast<std::size_t>(r));
        std::iota(out_perm.begin(), out_perm.end(), 0);
        do {
            std::vector<TruthTable> targets(static_cast<std::size_t>(r),
                                            TruthTable(m));
            for (int j = 0; j < r; ++j) {
                targets[static_cast<std::size_t>(out_perm[static_cast<std::size_t>(j)])] =
                    permuted[static_cast<std::size_t>(j)];
            }
            ++tried;
            if (is_plausible(netlist, targets).plausible) {
                if (interpretations_tried) *interpretations_tried = tried;
                return true;
            }
        } while (std::next_permutation(out_perm.begin(), out_perm.end()));
    } while (std::next_permutation(in_perm.begin(), in_perm.end()));
    if (interpretations_tried) *interpretations_tried = tried;
    return false;
}

}  // namespace mvf::attack
