#include "attack/plausibility.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "sat/cnf_builder.hpp"
#include "sim/netlist_sim.hpp"

namespace mvf::attack {

using camo::CamoNetlist;
using logic::TruthTable;

PlausibilityResult is_plausible(const CamoNetlist& netlist,
                                std::span<const TruthTable> targets,
                                const std::vector<bool>* fixed_nominal) {
    assert(static_cast<int>(targets.size()) == netlist.num_pos());
    const int m = netlist.num_pis();
    const std::uint32_t num_patterns = 1u << m;

    sat::Solver solver;
    sat::CnfBuilder builder(netlist, &solver, fixed_nominal);
    PlausibilityResult result;

    // One constant-input copy per pattern, with the target asserted on its
    // outputs.  Constant literals fold away inside Solver::add_clause, so
    // this reproduces the seed's per-(node, pattern) value-variable
    // encoding clause for clause.
    std::vector<bool> inputs(static_cast<std::size_t>(m));
    for (std::uint32_t x = 0; x < num_patterns; ++x) {
        for (int i = 0; i < m; ++i) inputs[static_cast<std::size_t>(i)] = (x >> i) & 1;
        const sat::CnfBuilder::Copy copy = builder.add_copy(inputs);
        for (int q = 0; q < netlist.num_pos(); ++q) {
            const bool want = targets[static_cast<std::size_t>(q)].bit(x);
            const sat::Lit l = copy.po[static_cast<std::size_t>(q)];
            solver.add_unit(want ? l : sat::lit_not(l));
        }
    }

    const sat::Solver::Result r = solver.solve();
    result.sat_stats = solver.stats();
    if (r != sat::Solver::Result::kSat) return result;

    result.plausible = true;
    result.config = builder.config_from_model();
    return result;
}

std::optional<std::vector<int>> find_config_exhaustive(
    const CamoNetlist& netlist, std::span<const TruthTable> targets,
    std::uint64_t max_configs, bool* exhausted) {
    if (exhausted) *exhausted = true;

    std::vector<int> cells;
    std::uint64_t total = 1;
    for (int id = 0; id < netlist.num_nodes(); ++id) {
        const CamoNetlist::Node& n = netlist.node(id);
        if (n.kind != CamoNetlist::NodeKind::kCell) continue;
        cells.push_back(id);
        total *= netlist.library().cell(n.camo_cell_id).plausible.size();
        if (total > max_configs) {
            if (exhausted) *exhausted = false;
            return std::nullopt;
        }
    }

    std::vector<int> config(static_cast<std::size_t>(netlist.num_nodes()), -1);
    for (const int id : cells) config[static_cast<std::size_t>(id)] = 0;

    while (true) {
        const std::vector<TruthTable> got = sim::simulate_camo_full(netlist, config);
        bool match = true;
        for (std::size_t q = 0; q < got.size(); ++q) {
            if (got[q] != targets[q]) {
                match = false;
                break;
            }
        }
        if (match) return config;

        // Advance the mixed-radix counter.
        std::size_t i = 0;
        for (; i < cells.size(); ++i) {
            const int id = cells[i];
            const int limit = static_cast<int>(
                netlist.library().cell(netlist.node(id).camo_cell_id).plausible.size());
            if (++config[static_cast<std::size_t>(id)] < limit) break;
            config[static_cast<std::size_t>(id)] = 0;
        }
        if (i == cells.size()) return std::nullopt;
    }
}

bool is_plausible_any_pins(const CamoNetlist& netlist,
                           std::span<const TruthTable> target_outputs,
                           int* interpretations_tried) {
    const int m = netlist.num_pis();
    const int r = netlist.num_pos();
    assert(static_cast<int>(target_outputs.size()) == r);

    std::vector<int> in_perm(static_cast<std::size_t>(m));
    std::iota(in_perm.begin(), in_perm.end(), 0);
    int tried = 0;
    do {
        std::vector<TruthTable> permuted;
        permuted.reserve(static_cast<std::size_t>(r));
        for (const TruthTable& t : target_outputs) {
            permuted.push_back(t.permute(in_perm));
        }
        std::vector<int> out_perm(static_cast<std::size_t>(r));
        std::iota(out_perm.begin(), out_perm.end(), 0);
        do {
            std::vector<TruthTable> targets(static_cast<std::size_t>(r),
                                            TruthTable(m));
            for (int j = 0; j < r; ++j) {
                targets[static_cast<std::size_t>(out_perm[static_cast<std::size_t>(j)])] =
                    permuted[static_cast<std::size_t>(j)];
            }
            ++tried;
            if (is_plausible(netlist, targets).plausible) {
                if (interpretations_tried) *interpretations_tried = tried;
                return true;
            }
        } while (std::next_permutation(out_perm.begin(), out_perm.end()));
    } while (std::next_permutation(in_perm.begin(), in_perm.end()));
    if (interpretations_tried) *interpretations_tried = tried;
    return false;
}

}  // namespace mvf::attack
