#include "attack/oracle.hpp"

#include <cassert>
#include <string>

#include "audit/committing_oracle.hpp"

namespace mvf::attack {

OracleBudgetExceeded::OracleBudgetExceeded(std::uint64_t budget)
    : std::runtime_error("oracle query budget of " + std::to_string(budget) +
                         " patterns exhausted"),
      budget_(budget) {}

std::vector<std::uint64_t> pack_block(
    const std::vector<std::vector<bool>>& patterns) {
    assert(!patterns.empty());
    assert(patterns.size() <= static_cast<std::size_t>(kQueryBlockWidth));
    std::vector<std::uint64_t> words(patterns.front().size(), 0);
    for (std::size_t k = 0; k < patterns.size(); ++k) {
        assert(patterns[k].size() == words.size());
        for (std::size_t i = 0; i < words.size(); ++i) {
            if (patterns[k][i]) words[i] |= std::uint64_t{1} << k;
        }
    }
    return words;
}

std::vector<bool> unpack_lane(const std::vector<std::uint64_t>& words, int k) {
    assert(k >= 0 && k < kQueryBlockWidth);
    std::vector<bool> pattern(words.size());
    for (std::size_t i = 0; i < words.size(); ++i) {
        pattern[i] = (words[i] >> k) & 1u;
    }
    return pattern;
}

void fold_lane(const std::vector<bool>& answer, int k,
               std::vector<std::uint64_t>* out) {
    assert(k >= 0 && k < kQueryBlockWidth);
    if (out->empty()) out->assign(answer.size(), 0);
    assert(answer.size() == out->size());
    for (std::size_t q = 0; q < answer.size(); ++q) {
        if (answer[q]) (*out)[q] |= std::uint64_t{1} << k;
    }
}

std::vector<std::uint64_t> Oracle::query_block(
    const std::vector<std::uint64_t>& inputs, int count) {
    assert(count >= 1 && count <= kQueryBlockWidth);
    std::vector<std::uint64_t> out;
    for (int k = 0; k < count; ++k) {
        fold_lane(query(unpack_lane(inputs, k)), k, &out);
    }
    return out;
}

// ------------------------------------------------------------- SimOracle --

SimOracle::SimOracle(const camo::CamoNetlist& netlist, std::vector<int> config)
    : netlist_(&netlist),
      config_(std::move(config)),
      po_words_(static_cast<std::size_t>(netlist.num_pos()), 0) {}

std::vector<bool> SimOracle::query(const std::vector<bool>& inputs) {
    assert(static_cast<int>(inputs.size()) == netlist_->num_pis());
    std::vector<bool> out;
    sim::simulate_camo_pattern_into(*netlist_, config_, inputs, &out,
                                    &scratch_);
    return out;
}

std::vector<std::uint64_t> SimOracle::query_block(
    const std::vector<std::uint64_t>& inputs, int count) {
    assert(static_cast<int>(inputs.size()) == netlist_->num_pis());
    assert(count >= 1 && count <= kQueryBlockWidth);
    (void)count;
    sim::simulate_camo_words(*netlist_, config_, inputs, po_words_, &scratch_);
    return po_words_;
}

// -------------------------------------------------------- CountingOracle --

std::vector<bool> CountingOracle::query(const std::vector<bool>& inputs) {
    std::vector<bool> out = inner_->query(inputs);
    scalar_queries_.fetch_add(1, std::memory_order_relaxed);
    patterns_.fetch_add(1, std::memory_order_relaxed);
    return out;
}

std::vector<std::uint64_t> CountingOracle::query_block(
    const std::vector<std::uint64_t>& inputs, int count) {
    std::vector<std::uint64_t> out = inner_->query_block(inputs, count);
    block_queries_.fetch_add(1, std::memory_order_relaxed);
    patterns_.fetch_add(static_cast<std::uint64_t>(count),
                        std::memory_order_relaxed);
    return out;
}

// --------------------------------------------------------- CachingOracle --

std::vector<bool> CachingOracle::query(const std::vector<bool>& inputs) {
    // The lock covers the forwarding call, not just the map: a miss must
    // query-and-insert atomically so two threads asking the same fresh
    // pattern don't both reach the chip (and so the non-thread-safe
    // oracles below the cache are only ever entered by one thread).
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(inputs);
    if (it != cache_.end()) {
        ++hits_;
        return it->second;
    }
    std::vector<bool> out = inner_->query(inputs);
    cache_.emplace(inputs, out);
    return out;
}

std::vector<std::uint64_t> CachingOracle::query_block(
    const std::vector<std::uint64_t>& inputs, int count) {
    assert(count >= 1 && count <= kQueryBlockWidth);
    std::lock_guard lock(mutex_);
    std::vector<std::vector<bool>> patterns;
    patterns.reserve(static_cast<std::size_t>(count));
    for (int k = 0; k < count; ++k) {
        patterns.push_back(unpack_lane(inputs, k));
    }
    // Partition into hits and (deduplicated) misses; the misses go to the
    // chip as one smaller block so batching survives the cache layer.
    std::vector<std::vector<bool>> misses;
    std::map<std::vector<bool>, int> miss_index;
    for (const std::vector<bool>& p : patterns) {
        if (cache_.count(p) || miss_index.count(p)) {
            ++hits_;
            continue;
        }
        miss_index.emplace(p, static_cast<int>(misses.size()));
        misses.push_back(p);
    }
    if (!misses.empty()) {
        const std::vector<std::uint64_t> miss_words = pack_block(misses);
        const std::vector<std::uint64_t> answers =
            inner_->query_block(miss_words, static_cast<int>(misses.size()));
        for (const auto& [pattern, lane] : miss_index) {
            cache_.emplace(pattern, unpack_lane(answers, lane));
        }
    }
    std::vector<std::uint64_t> out;
    for (int k = 0; k < count; ++k) {
        fold_lane(cache_.at(patterns[static_cast<std::size_t>(k)]), k, &out);
    }
    return out;
}

// -------------------------------------------------------- BudgetedOracle --

std::vector<bool> BudgetedOracle::query(const std::vector<bool>& inputs) {
    std::lock_guard lock(mutex_);
    if (remaining_ == 0) {
        tripped_ = true;
        throw OracleBudgetExceeded(budget_);
    }
    std::vector<bool> out = inner_->query(inputs);
    --remaining_;
    return out;
}

std::vector<std::uint64_t> BudgetedOracle::query_block(
    const std::vector<std::uint64_t>& inputs, int count) {
    std::lock_guard lock(mutex_);
    if (static_cast<std::uint64_t>(count) > remaining_) {
        tripped_ = true;
        throw OracleBudgetExceeded(budget_);
    }
    std::vector<std::uint64_t> out = inner_->query_block(inputs, count);
    remaining_ -= static_cast<std::uint64_t>(count);
    return out;
}

// ----------------------------------------------------------- NoisyOracle --

NoisyOracle::NoisyOracle(Oracle& inner, double flip_rate, std::uint64_t seed)
    : OracleDecorator(inner), flip_rate_(flip_rate), rng_(seed) {
    if (!(flip_rate >= 0.0 && flip_rate < 1.0)) {
        throw std::invalid_argument(
            "NoisyOracle: flip rate must be in [0, 1), got " +
            std::to_string(flip_rate));
    }
}

std::vector<bool> NoisyOracle::query(const std::vector<bool>& inputs) {
    std::lock_guard lock(mutex_);
    std::vector<bool> out = inner_->query(inputs);
    for (std::size_t q = 0; q < out.size(); ++q) {
        if (rng_.coin(flip_rate_)) {
            out[q] = !out[q];
            ++flipped_;
        }
    }
    return out;
}

std::vector<std::uint64_t> NoisyOracle::query_block(
    const std::vector<std::uint64_t>& inputs, int count) {
    std::lock_guard lock(mutex_);
    std::vector<std::uint64_t> out = inner_->query_block(inputs, count);
    for (std::uint64_t& word : out) {
        std::uint64_t mask = 0;
        for (int k = 0; k < count; ++k) {
            if (rng_.coin(flip_rate_)) mask |= std::uint64_t{1} << k;
        }
        word ^= mask;
        flipped_ += static_cast<std::uint64_t>(__builtin_popcountll(mask));
    }
    return out;
}

// ------------------------------------------------------ OracleTranscript --

namespace {

std::string bits_to_string(const std::vector<bool>& bits) {
    std::string out(bits.size(), '0');
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i]) out[i] = '1';
    }
    return out;
}

std::vector<bool> bits_from_string(const std::string& text, int expect,
                                   const char* what) {
    if (static_cast<int>(text.size()) != expect) {
        throw report::JsonError(std::string("transcript ") + what +
                                " has width " + std::to_string(text.size()) +
                                ", expected " + std::to_string(expect));
    }
    std::vector<bool> out(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '0' && text[i] != '1') {
            throw report::JsonError(std::string("transcript ") + what +
                                    " must be a 0/1 string, got \"" + text +
                                    "\"");
        }
        out[i] = text[i] == '1';
    }
    return out;
}

}  // namespace

report::Json OracleTranscript::to_json() const {
    report::Json j = report::Json::object();
    j.set("inputs", num_inputs);
    j.set("outputs", num_outputs);
    report::Json queries = report::Json::array();
    for (const Entry& e : entries) {
        report::Json q = report::Json::object();
        q.set("in", bits_to_string(e.inputs));
        q.set("out", bits_to_string(e.outputs));
        queries.push_back(std::move(q));
    }
    j.set("queries", std::move(queries));
    return j;
}

OracleTranscript OracleTranscript::from_json(const report::Json& j) {
    OracleTranscript t;
    t.num_inputs = static_cast<int>(j.at("inputs").as_int());
    t.num_outputs = static_cast<int>(j.at("outputs").as_int());
    if (t.num_inputs < 0 || t.num_outputs < 0) {
        throw report::JsonError("transcript widths must be non-negative");
    }
    for (const report::Json& q : j.at("queries").items()) {
        Entry e;
        e.inputs = bits_from_string(q.at("in").as_string(), t.num_inputs, "query");
        e.outputs =
            bits_from_string(q.at("out").as_string(), t.num_outputs, "answer");
        t.entries.push_back(std::move(e));
    }
    return t;
}

// ------------------------------------------------------ TranscriptOracle --

TranscriptOracle::TranscriptOracle(Oracle& inner) : inner_(&inner) {}

TranscriptOracle::TranscriptOracle(OracleTranscript transcript)
    : transcript_(std::move(transcript)) {}

void TranscriptOracle::record_one(const std::vector<bool>& inputs,
                                  const std::vector<bool>& outputs) {
    transcript_.num_inputs = static_cast<int>(inputs.size());
    transcript_.num_outputs = static_cast<int>(outputs.size());
    transcript_.entries.push_back({inputs, outputs});
}

std::vector<bool> TranscriptOracle::replay_one(const std::vector<bool>& inputs) {
    if (cursor_ >= transcript_.entries.size()) {
        // A replayed chip answers exactly its recorded queries; running
        // past the end is the budget-exhaustion case, so attacks that
        // replay a truncated transcript terminate honestly (kQueryBudget)
        // instead of erroring out.
        throw OracleBudgetExceeded(transcript_.entries.size());
    }
    const OracleTranscript::Entry& e = transcript_.entries[cursor_];
    if (inputs != e.inputs) {
        throw TranscriptMismatch("query " + std::to_string(cursor_) +
                                 " diverged from the recorded transcript: "
                                 "asked " +
                                 bits_to_string(inputs) + ", recorded " +
                                 bits_to_string(e.inputs));
    }
    ++cursor_;
    return e.outputs;
}

std::vector<bool> TranscriptOracle::query(const std::vector<bool>& inputs) {
    if (replaying()) return replay_one(inputs);
    const std::vector<bool> out = inner_->query(inputs);
    record_one(inputs, out);
    return out;
}

std::vector<std::uint64_t> TranscriptOracle::query_block(
    const std::vector<std::uint64_t>& inputs, int count) {
    assert(count >= 1 && count <= kQueryBlockWidth);
    if (replaying()) {
        // All-or-nothing like BudgetedOracle: a block running past the end
        // of the transcript consumes nothing, so callers can fall back to
        // scalar draining of the remaining entries.
        if (cursor_ + static_cast<std::size_t>(count) >
            transcript_.entries.size()) {
            throw OracleBudgetExceeded(transcript_.entries.size());
        }
        std::vector<std::uint64_t> out;
        for (int k = 0; k < count; ++k) {
            fold_lane(replay_one(unpack_lane(inputs, k)), k, &out);
        }
        return out;
    }
    const std::vector<std::uint64_t> out = inner_->query_block(inputs, count);
    for (int k = 0; k < count; ++k) {
        record_one(unpack_lane(inputs, k), unpack_lane(out, k));
    }
    return out;
}

const std::vector<bool>* TranscriptOracle::scripted_pattern() const {
    if (replaying() && cursor_ < transcript_.entries.size()) {
        return &transcript_.entries[cursor_].inputs;
    }
    if (!replaying()) return inner_->scripted_pattern();
    return nullptr;
}

// ----------------------------------------------------------- OracleStack --

OracleStack::OracleStack(Oracle* chip, const OracleModelParams& params) {
    if (params.replay && params.cache) {
        // A cache above a replaying transcript desynchronizes the replay
        // cursor on duplicate patterns (the hit never reaches the
        // transcript); harnesses reject the combination at parse time and
        // this guard keeps API users honest too.
        throw std::invalid_argument(
            "OracleStack: a pattern cache cannot be composed with transcript "
            "replay");
    }
    if (params.replay) {
        auto replay = std::make_unique<TranscriptOracle>(*params.replay);
        top_ = replay.get();
        owned_.push_back(std::move(replay));
    } else {
        if (chip == nullptr) {
            throw std::invalid_argument(
                "OracleStack: a chip oracle is required unless a replay "
                "transcript is provided");
        }
        top_ = chip;
        if (params.noise > 0.0) {
            auto noisy = std::make_unique<NoisyOracle>(*top_, params.noise,
                                                       params.noise_seed);
            noisy_ = noisy.get();
            top_ = noisy.get();
            owned_.push_back(std::move(noisy));
        }
    }
    if (params.query_budget > 0) {
        auto budgeted =
            std::make_unique<BudgetedOracle>(*top_, params.query_budget);
        budgeted_ = budgeted.get();
        top_ = budgeted.get();
        owned_.push_back(std::move(budgeted));
    }
    if (params.cache) {
        auto caching = std::make_unique<CachingOracle>(*top_);
        caching_ = caching.get();
        top_ = caching.get();
        owned_.push_back(std::move(caching));
    }
    if (params.record) {
        auto recorder = std::make_unique<TranscriptOracle>(*top_);
        recorder_ = recorder.get();
        top_ = recorder.get();
        owned_.push_back(std::move(recorder));
    }
    if (params.commit) {
        auto committer = std::make_unique<audit::CommittingOracle>(
            *top_, params.commit_seed, params.commit_context);
        committer_ = committer.get();
        top_ = committer.get();
        owned_.push_back(std::move(committer));
    }
    auto counting = std::make_unique<CountingOracle>(*top_);
    counting_ = counting.get();
    top_ = counting.get();
    owned_.push_back(std::move(counting));
}

OracleStats OracleStack::stats() const {
    OracleStats s;
    s.scalar_queries = counting_->scalar_queries();
    s.block_queries = counting_->block_queries();
    s.patterns = counting_->patterns();
    if (caching_) s.cache_hits = caching_->hits();
    if (noisy_) s.noisy_bits = noisy_->flipped_bits();
    if (budgeted_) {
        s.budget = budgeted_->budget();
        s.budget_exhausted = budgeted_->exhausted();
    }
    return s;
}

const OracleTranscript* OracleStack::recorded() const {
    return recorder_ ? &recorder_->transcript() : nullptr;
}

}  // namespace mvf::attack
