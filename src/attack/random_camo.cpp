#include "attack/random_camo.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace mvf::attack {

using camo::CamoNetlist;
using tech::Netlist;

RandomCamoResult random_camouflage(const Netlist& mapped,
                                   const camo::CamoLibrary& library,
                                   double fraction, util::Rng& rng) {
    assert(mapped.num_selects() == 0);

    CamoNetlist out(library);
    std::vector<int> node_map(static_cast<std::size_t>(mapped.num_nodes()), -1);
    std::vector<bool> fixed;
    int camouflaged = 0;

    for (int id = 0; id < mapped.num_nodes(); ++id) {
        const Netlist::Node& n = mapped.node(id);
        switch (n.kind) {
            case Netlist::NodeKind::kPi:
                node_map[static_cast<std::size_t>(id)] = out.add_pi(n.name);
                fixed.resize(static_cast<std::size_t>(out.num_nodes()), false);
                break;
            case Netlist::NodeKind::kConst0:
            case Netlist::NodeKind::kConst1: {
                CamoNetlist::Node tie;
                tie.kind = CamoNetlist::NodeKind::kCell;
                tie.camo_cell_id = library.tie_id();
                tie.config_fn = {n.kind == Netlist::NodeKind::kConst1 ? 1 : 0};
                node_map[static_cast<std::size_t>(id)] = out.add_cell(std::move(tie));
                fixed.resize(static_cast<std::size_t>(out.num_nodes()), false);
                break;
            }
            case Netlist::NodeKind::kCell: {
                const int camo_id = library.camo_of_nominal(n.cell_id);
                assert(camo_id >= 0);
                CamoNetlist::Node inst;
                inst.kind = CamoNetlist::NodeKind::kCell;
                inst.camo_cell_id = camo_id;
                inst.fanins.reserve(n.fanins.size());
                for (const int f : n.fanins) {
                    inst.fanins.push_back(node_map[static_cast<std::size_t>(f)]);
                }
                inst.used_pin_mask =
                    (1u << library.cell(camo_id).num_pins) - 1;
                inst.config_fn = {0};  // plausible[0] is the nominal function
                const int nid = out.add_cell(std::move(inst));
                node_map[static_cast<std::size_t>(id)] = nid;
                fixed.resize(static_cast<std::size_t>(out.num_nodes()), false);
                const bool camo_this = rng.coin(fraction);
                fixed[static_cast<std::size_t>(nid)] = !camo_this;
                if (camo_this) ++camouflaged;
                break;
            }
        }
    }
    for (int i = 0; i < mapped.num_pos(); ++i) {
        out.add_po(node_map[static_cast<std::size_t>(mapped.po(i))],
                   mapped.po_name(i));
    }
    return {std::move(out), std::move(fixed), camouflaged};
}

camo::CamoNetlist random_camo_netlist(const camo::CamoLibrary& library,
                                      int num_pis, int num_pos, int num_cells,
                                      util::Rng& rng) {
    assert(num_cells >= num_pis && num_cells >= num_pos);

    // Cells with at least one pin (TIE would inject constants).
    std::vector<int> gate_ids;
    for (int c = 0; c < library.num_cells(); ++c) {
        if (library.cell(c).num_pins > 0) gate_ids.push_back(c);
    }
    assert(!gate_ids.empty());

    CamoNetlist out(library);
    std::vector<bool> has_fanout;
    std::vector<int> unused;  // nodes with no fanout yet
    for (int i = 0; i < num_pis; ++i) {
        unused.push_back(out.add_pi("i" + std::to_string(i)));
        has_fanout.push_back(false);
    }

    std::vector<int> cell_nodes;
    cell_nodes.reserve(static_cast<std::size_t>(num_cells));
    for (int c = 0; c < num_cells; ++c) {
        const int camo_id =
            gate_ids[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<int>(gate_ids.size()) - 1))];
        const camo::CamoCell& cell = library.cell(camo_id);
        CamoNetlist::Node inst;
        inst.kind = CamoNetlist::NodeKind::kCell;
        inst.camo_cell_id = camo_id;
        inst.used_pin_mask = (1u << cell.num_pins) - 1;
        inst.config_fn = {0};
        const int num_prior = out.num_nodes();
        // Prefer nodes without fanout so (almost) every cell ends up inside
        // the primary-output cone; a fanout backlog larger than the pins
        // still to be wired forces pool draws.
        const bool pool_pressure =
            static_cast<int>(unused.size()) >= 2 * (num_cells - c);
        for (int p = 0; p < cell.num_pins; ++p) {
            int fanin;
            if (p == 0 && c < num_pis) {
                fanin = out.pi(c);  // cover every PI
            } else if (!unused.empty() && (pool_pressure || rng.coin(0.5))) {
                fanin = unused[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<int>(unused.size()) - 1))];
            } else {
                fanin = rng.uniform_int(0, num_prior - 1);  // reconvergence
            }
            has_fanout[static_cast<std::size_t>(fanin)] = true;
            inst.fanins.push_back(fanin);
        }
        std::erase_if(unused,
                      [&](int id) { return has_fanout[static_cast<std::size_t>(id)]; });
        const int nid = out.add_cell(std::move(inst));
        cell_nodes.push_back(nid);
        unused.push_back(nid);
        has_fanout.push_back(false);
    }
    for (int q = 0; q < num_pos; ++q) {
        out.add_po(cell_nodes[static_cast<std::size_t>(num_cells - num_pos + q)],
                   "o" + std::to_string(q));
    }
    return out;
}

}  // namespace mvf::attack
