#include "attack/random_camo.hpp"

#include <cassert>

namespace mvf::attack {

using camo::CamoNetlist;
using tech::Netlist;

RandomCamoResult random_camouflage(const Netlist& mapped,
                                   const camo::CamoLibrary& library,
                                   double fraction, util::Rng& rng) {
    assert(mapped.num_selects() == 0);

    CamoNetlist out(library);
    std::vector<int> node_map(static_cast<std::size_t>(mapped.num_nodes()), -1);
    std::vector<bool> fixed;
    int camouflaged = 0;

    for (int id = 0; id < mapped.num_nodes(); ++id) {
        const Netlist::Node& n = mapped.node(id);
        switch (n.kind) {
            case Netlist::NodeKind::kPi:
                node_map[static_cast<std::size_t>(id)] = out.add_pi(n.name);
                fixed.resize(static_cast<std::size_t>(out.num_nodes()), false);
                break;
            case Netlist::NodeKind::kConst0:
            case Netlist::NodeKind::kConst1: {
                CamoNetlist::Node tie;
                tie.kind = CamoNetlist::NodeKind::kCell;
                tie.camo_cell_id = library.tie_id();
                tie.config_fn = {n.kind == Netlist::NodeKind::kConst1 ? 1 : 0};
                node_map[static_cast<std::size_t>(id)] = out.add_cell(std::move(tie));
                fixed.resize(static_cast<std::size_t>(out.num_nodes()), false);
                break;
            }
            case Netlist::NodeKind::kCell: {
                const int camo_id = library.camo_of_nominal(n.cell_id);
                assert(camo_id >= 0);
                CamoNetlist::Node inst;
                inst.kind = CamoNetlist::NodeKind::kCell;
                inst.camo_cell_id = camo_id;
                inst.fanins.reserve(n.fanins.size());
                for (const int f : n.fanins) {
                    inst.fanins.push_back(node_map[static_cast<std::size_t>(f)]);
                }
                inst.used_pin_mask =
                    (1u << library.cell(camo_id).num_pins) - 1;
                inst.config_fn = {0};  // plausible[0] is the nominal function
                const int nid = out.add_cell(std::move(inst));
                node_map[static_cast<std::size_t>(id)] = nid;
                fixed.resize(static_cast<std::size_t>(out.num_nodes()), false);
                const bool camo_this = rng.coin(fraction);
                fixed[static_cast<std::size_t>(nid)] = !camo_this;
                if (camo_this) ++camouflaged;
                break;
            }
        }
    }
    for (int i = 0; i < mapped.num_pos(); ++i) {
        out.add_po(node_map[static_cast<std::size_t>(mapped.po(i))],
                   mapped.po_name(i));
    }
    return {std::move(out), std::move(fixed), camouflaged};
}

}  // namespace mvf::attack
