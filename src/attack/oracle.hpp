#pragma once
// First-class oracle layer: the attacker's working chip as a composable API.
//
// The red-teaming literature (Red Teaming Methodology for Design
// Obfuscation; Scalable Attack-Resistant Obfuscation of Logic Circuits --
// see PAPERS.md) evaluates obfuscation under *varied* oracle models: query
// budgets, measurement noise, batched chip access, replayed transcripts.
// The oracle used to be a one-method virtual with accounting, replay and
// budgets handled ad hoc per attacker; this header promotes it into a
// layer of its own:
//
//   Oracle            scalar query() plus batched word-parallel
//                     query_block() (up to 64 patterns per call) with a
//                     correct-by-default scalar fallback, and the
//                     scripted_pattern() replay hook
//   SimOracle         chip simulation on sim::simulate_camo_words: one
//                     O(nodes) pass evaluates a whole 64-pattern block,
//                     and the scalar path reuses preallocated scratch
//                     instead of allocating per query
//   CountingOracle    uniform query/block/pattern accounting (feeds
//                     AdversaryReport instead of each attacker counting)
//   CachingOracle     dedupes repeated patterns
//   BudgetedOracle    hard query budget; answering past it throws
//                     OracleBudgetExceeded so attacks terminate honestly
//   NoisyOracle       seeded per-bit flip rate (measurement error)
//   TranscriptOracle  record + replay through the same API the attack
//                     uses (the only replay mechanism; the old
//                     OracleAttackParams::forced_queries alias is gone)
//   OracleStack       builds the decorator pile from OracleModelParams and
//                     aggregates OracleStats for reporting
//
// Decorators wrap any Oracle (including each other), so threat models
// compose: a noisy, budgeted, cached chip whose transcript is recorded is
// just four wrappers deep.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "camo/camo_netlist.hpp"
#include "report/json.hpp"
#include "sim/netlist_sim.hpp"
#include "util/rng.hpp"

namespace mvf::audit {
class CommittingOracle;  // audit/committing_oracle.hpp
}

namespace mvf::attack {

/// Patterns per query_block call (one bit lane per pattern in each word).
inline constexpr int kQueryBlockWidth = 64;

/// Thrown by BudgetedOracle when answering a query (or a whole block)
/// would exceed the remaining budget.  Nothing is answered and nothing is
/// consumed: exactly `budget()` patterns are ever served.
class OracleBudgetExceeded : public std::runtime_error {
public:
    explicit OracleBudgetExceeded(std::uint64_t budget);
    std::uint64_t budget() const { return budget_; }

private:
    std::uint64_t budget_;
};

/// Thrown by TranscriptOracle in replay mode when a query asks for a
/// DIFFERENT pattern than the recorded one (a genuine divergence, always
/// loud).  Querying past the END of the transcript instead throws
/// OracleBudgetExceeded -- a replayed chip answers exactly its recorded
/// queries, so truncated-transcript replays terminate honestly through
/// the same path as a budgeted chip.
class TranscriptMismatch : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Packs `patterns` (all the same width) into words: bit k of word i is
/// pattern k's value of input i.  patterns.size() <= kQueryBlockWidth.
std::vector<std::uint64_t> pack_block(
    const std::vector<std::vector<bool>>& patterns);

/// Extracts lane `k` of a packed block as one width-`words.size()` pattern.
std::vector<bool> unpack_lane(const std::vector<std::uint64_t>& words, int k);

/// Inverse of unpack_lane: sets lane `k` of a packed block from one
/// scalar answer, sizing `out` (to one zeroed word per bit) on first use.
void fold_lane(const std::vector<bool>& answer, int k,
               std::vector<std::uint64_t>* out);

/// Black-box combinational oracle (the attacker's working chip).
class Oracle {
public:
    virtual ~Oracle() = default;

    /// One input pattern in, one output pattern out.
    virtual std::vector<bool> query(const std::vector<bool>& inputs) = 0;

    /// Batched word-parallel access: bit k of `inputs[i]` is pattern k's
    /// value of PI i (1 <= count <= kQueryBlockWidth); returns one word
    /// per PO with the same lane layout.  Lanes >= count are unspecified.
    /// The default implementation loops over scalar query(), so every
    /// Oracle is batched-correct; SimOracle overrides it with a single
    /// word-parallel simulation pass.
    virtual std::vector<std::uint64_t> query_block(
        const std::vector<std::uint64_t>& inputs, int count);

    /// Transcript-replay hook: the pattern this oracle prescribes for the
    /// NEXT query, or nullptr when it does not script queries (the
    /// default).  Attacks that support replay consult this before choosing
    /// their own pattern, which lets TranscriptOracle drive them through
    /// the exact recorded sequence via the public API.
    virtual const std::vector<bool>* scripted_pattern() const {
        return nullptr;
    }
};

/// Oracle backed by simulating a camouflaged netlist under a hidden
/// configuration (per-node plausible indices, -1 for non-cells).  Both the
/// scalar and the block path run through sim::simulate_camo_words on
/// member-owned scratch, so queries allocate nothing beyond the returned
/// vector.
class SimOracle : public Oracle {
public:
    SimOracle(const camo::CamoNetlist& netlist, std::vector<int> config);

    std::vector<bool> query(const std::vector<bool>& inputs) override;
    std::vector<std::uint64_t> query_block(
        const std::vector<std::uint64_t>& inputs, int count) override;

private:
    const camo::CamoNetlist* netlist_;
    std::vector<int> config_;
    sim::WordSimScratch scratch_;
    std::vector<std::uint64_t> po_words_;
};

/// Decorator base: forwards the whole Oracle surface to the wrapped
/// oracle.  Decorators override what their threat model changes.
class OracleDecorator : public Oracle {
public:
    explicit OracleDecorator(Oracle& inner) : inner_(&inner) {}

    std::vector<bool> query(const std::vector<bool>& inputs) override {
        return inner_->query(inputs);
    }
    std::vector<std::uint64_t> query_block(
        const std::vector<std::uint64_t>& inputs, int count) override {
        return inner_->query_block(inputs, count);
    }
    const std::vector<bool>* scripted_pattern() const override {
        return inner_->scripted_pattern();
    }

protected:
    Oracle* inner_;
};

/// Uniform oracle accounting, aggregated by OracleStack::stats() and
/// reported in AdversaryReport's "oracle" JSON block.
struct OracleStats {
    std::uint64_t scalar_queries = 0;  ///< query() calls answered
    std::uint64_t block_queries = 0;   ///< query_block() calls answered
    std::uint64_t patterns = 0;        ///< total patterns answered
    std::uint64_t cache_hits = 0;      ///< CachingOracle dedup hits
    std::uint64_t noisy_bits = 0;      ///< NoisyOracle flipped output bits
    std::uint64_t budget = 0;          ///< BudgetedOracle budget (0 = none)
    bool budget_exhausted = false;     ///< BudgetedOracle tripped

    bool operator==(const OracleStats&) const = default;
};

/// Counts queries, blocks and patterns that were actually ANSWERED (a
/// budget trip below propagates before the counters move, so accounting
/// stays exact).  The counters are atomics, so a portfolio of attack
/// threads sharing one stack accounts correctly without a lock.
class CountingOracle final : public OracleDecorator {
public:
    using OracleDecorator::OracleDecorator;

    std::vector<bool> query(const std::vector<bool>& inputs) override;
    std::vector<std::uint64_t> query_block(
        const std::vector<std::uint64_t>& inputs, int count) override;

    std::uint64_t scalar_queries() const { return scalar_queries_.load(); }
    std::uint64_t block_queries() const { return block_queries_.load(); }
    std::uint64_t patterns() const { return patterns_.load(); }

private:
    std::atomic<std::uint64_t> scalar_queries_ = 0;
    std::atomic<std::uint64_t> block_queries_ = 0;
    std::atomic<std::uint64_t> patterns_ = 0;
};

/// Answers repeated patterns from a cache instead of re-querying the chip
/// (duplicates inside one block are deduplicated too, and the surviving
/// misses are forwarded as ONE smaller block so batching is preserved).
///
/// Thread-safe: one mutex guards the cache map AND is held across the
/// forwarding call, so concurrent users (a portfolio sharing one stack)
/// serialize through the cache -- which also makes everything BELOW it in
/// the stack (budget, noise, the SimOracle itself) safe to share, since
/// only one thread is ever inside the wrapped oracle at a time.
class CachingOracle final : public OracleDecorator {
public:
    using OracleDecorator::OracleDecorator;

    std::vector<bool> query(const std::vector<bool>& inputs) override;
    std::vector<std::uint64_t> query_block(
        const std::vector<std::uint64_t>& inputs, int count) override;

    std::uint64_t hits() const {
        std::lock_guard lock(mutex_);
        return hits_;
    }

private:
    mutable std::mutex mutex_;
    std::map<std::vector<bool>, std::vector<bool>> cache_;
    std::uint64_t hits_ = 0;
};

/// Hard pattern budget: once `budget` patterns have been answered (scalar
/// queries count 1, blocks count their pattern count), any further request
/// -- including a block larger than what remains -- throws
/// OracleBudgetExceeded without consuming anything.
///
/// Thread-safe: the check-forward-consume sequence runs under one mutex,
/// so concurrent callers cannot jointly overdraw the budget.
class BudgetedOracle final : public OracleDecorator {
public:
    BudgetedOracle(Oracle& inner, std::uint64_t budget)
        : OracleDecorator(inner), budget_(budget), remaining_(budget) {}

    std::vector<bool> query(const std::vector<bool>& inputs) override;
    std::vector<std::uint64_t> query_block(
        const std::vector<std::uint64_t>& inputs, int count) override;

    std::uint64_t budget() const { return budget_; }
    std::uint64_t remaining() const {
        std::lock_guard lock(mutex_);
        return remaining_;
    }
    bool exhausted() const {
        std::lock_guard lock(mutex_);
        return tripped_;
    }

private:
    mutable std::mutex mutex_;
    std::uint64_t budget_;
    std::uint64_t remaining_;
    bool tripped_ = false;
};

/// Measurement error: every answered output bit flips independently with
/// probability `flip_rate` (seeded, so a given stack replays
/// deterministically).
///
/// Thread-safe: the RNG draw and the forwarding call share one mutex
/// (concurrent callers see a valid but scheduling-dependent flip
/// sequence; single-threaded use stays bit-reproducible).
class NoisyOracle final : public OracleDecorator {
public:
    /// flip_rate must be in [0, 1); throws std::invalid_argument otherwise.
    NoisyOracle(Oracle& inner, double flip_rate, std::uint64_t seed);

    std::vector<bool> query(const std::vector<bool>& inputs) override;
    std::vector<std::uint64_t> query_block(
        const std::vector<std::uint64_t>& inputs, int count) override;

    std::uint64_t flipped_bits() const {
        std::lock_guard lock(mutex_);
        return flipped_;
    }

private:
    mutable std::mutex mutex_;
    double flip_rate_;
    util::Rng rng_;
    std::uint64_t flipped_ = 0;
};

/// A recorded I/O transcript: the attacker-visible query sequence.
/// Serializes to JSON ({"inputs": m, "outputs": r, "queries": [{"in":
/// "0100", "out": "10"}, ...]}; bit i of the strings is PI/PO i).
struct OracleTranscript {
    int num_inputs = 0;
    int num_outputs = 0;
    struct Entry {
        std::vector<bool> inputs;
        std::vector<bool> outputs;
        bool operator==(const Entry&) const = default;
    };
    std::vector<Entry> entries;

    report::Json to_json() const;
    /// Inverse of to_json(); throws report::JsonError on malformed input.
    static OracleTranscript from_json(const report::Json& j);

    bool operator==(const OracleTranscript&) const = default;
};

/// Record + replay.  In record mode every answered query is appended to
/// the transcript on its way through.  In replay mode there is NO chip
/// behind the oracle: queries are verified against the recorded sequence
/// and answered from it, and scripted_pattern() walks the recorded
/// patterns so a replay-aware attack re-issues the exact sequence through
/// the same API it uses live.
///
/// Deliberately NOT thread-safe: a transcript is one ordered query
/// sequence, so each recorder/replayer belongs to exactly one attack
/// thread (the portfolio gives every member its own recorder above one
/// shared, locking CachingOracle).
class TranscriptOracle final : public Oracle {
public:
    /// Record mode: wraps `inner` and records what it answers.
    explicit TranscriptOracle(Oracle& inner);
    /// Replay mode: serves `transcript`, chip-free.
    explicit TranscriptOracle(OracleTranscript transcript);

    std::vector<bool> query(const std::vector<bool>& inputs) override;
    std::vector<std::uint64_t> query_block(
        const std::vector<std::uint64_t>& inputs, int count) override;
    const std::vector<bool>* scripted_pattern() const override;

    bool replaying() const { return inner_ == nullptr; }
    const OracleTranscript& transcript() const { return transcript_; }

private:
    std::vector<bool> replay_one(const std::vector<bool>& inputs);
    void record_one(const std::vector<bool>& inputs,
                    const std::vector<bool>& outputs);

    Oracle* inner_ = nullptr;  ///< null in replay mode
    OracleTranscript transcript_;
    std::size_t cursor_ = 0;  ///< replay position
};

/// Declarative description of the oracle threat model; harnesses thread it
/// from specs/CLI flags down to OracleStack.
struct OracleModelParams {
    /// Patterns the chip answers before cutting the attacker off (0 =
    /// unlimited).
    std::uint64_t query_budget = 0;
    /// Per-bit measurement-error flip probability, in [0, 1).
    double noise = 0.0;
    std::uint64_t noise_seed = 1;
    /// Dedupe repeated patterns before they reach budget/chip.
    bool cache = false;
    /// Record the attacker-visible transcript (OracleStack::recorded()).
    bool record = false;
    /// Commit to every answered query (audit::CommittingOracle above the
    /// recorder); salts are drawn from commit_seed, and commit_context
    /// seeds the chain (harnesses pass a netlist digest so the root binds
    /// which circuit was attacked).  Harnesses turn this on for
    /// --emit-proof runs.
    bool commit = false;
    std::uint64_t commit_seed = 1;
    std::string commit_context;
    /// Replay this transcript instead of consulting a chip (the chip
    /// pointer handed to OracleStack may then be null).  Noise composes
    /// meaninglessly with replay; harnesses reject that combination at
    /// parse time.
    const OracleTranscript* replay = nullptr;
};

/// Owns the decorator pile for one attack run.  Stack order, bottom to
/// top: chip (or transcript replay) -> noise -> budget -> cache ->
/// transcript recorder -> committer -> counter.  So: cache hits cost no
/// budget, the recorder and committer see exactly what the attacker saw
/// (noise included), and the counter counts attacker-visible answered
/// queries.
class OracleStack {
public:
    /// `chip` may be null only when params.replay is set.
    OracleStack(Oracle* chip, const OracleModelParams& params);

    /// The attacker-facing entry point.
    Oracle& top() { return *top_; }

    /// Aggregated accounting across every decorator present.
    OracleStats stats() const;

    /// The recorded transcript (record mode only; nullptr otherwise).
    const OracleTranscript* recorded() const;

    /// The committing decorator (commit mode only; nullptr otherwise).
    const audit::CommittingOracle* committer() const { return committer_; }

private:
    std::vector<std::unique_ptr<Oracle>> owned_;
    Oracle* top_ = nullptr;
    CountingOracle* counting_ = nullptr;
    CachingOracle* caching_ = nullptr;
    NoisyOracle* noisy_ = nullptr;
    BudgetedOracle* budgeted_ = nullptr;
    TranscriptOracle* recorder_ = nullptr;
    audit::CommittingOracle* committer_ = nullptr;
};

}  // namespace mvf::attack
