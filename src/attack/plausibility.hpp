#pragma once
// The de-camouflaging adversary (paper sections I and II).
//
// The attacker images the circuit, recognizes each look-alike cell and its
// plausible-function set, and asks for a target viable function f: does
// SOME assignment of cell functions make the circuit implement f?  With the
// circuit's inputs fully enumerable (4-10 bits here) the 2QBF collapses to
// plain SAT: one selector variable per (cell, plausible function) with
// exactly-one constraints, one value variable per (node, input pattern),
// and consistency clauses binding them (encoded via sat::CnfBuilder as one
// constant-input circuit copy per pattern).  SAT => f is plausible (a
// witness dopant configuration is returned); UNSAT => the attacker can rule
// f out.  For circuits whose input space is NOT enumerable, use the
// oracle-guided CEGAR attacker in attack/oracle_attack.hpp.

#include <optional>
#include <span>
#include <vector>

#include "camo/camo_netlist.hpp"
#include "logic/truth_table.hpp"
#include "sat/solver.hpp"

namespace mvf::attack {

struct PlausibilityResult {
    bool plausible = false;
    /// Witness configuration (per-node plausible index, -1 for non-cells);
    /// valid when plausible.
    std::vector<int> config;
    sat::Solver::Stats sat_stats;
};

/// Decides whether the camouflaged netlist can implement the multi-output
/// target (`targets[q]` = function of PO q over the netlist's PIs).
/// `fixed_nominal`, if non-null, marks nodes the attacker knows are ordinary
/// cells implementing their nominal function (used by the random-
/// camouflaging baseline).
PlausibilityResult is_plausible(const camo::CamoNetlist& netlist,
                                std::span<const logic::TruthTable> targets,
                                const std::vector<bool>* fixed_nominal = nullptr);

/// Exhaustive cross-check for small configuration spaces: enumerates every
/// configuration (up to `max_configs`) and simulates.  Returns the witness
/// config or nullopt; empty optional + *exhausted=false means the space was
/// too large to enumerate.
std::optional<std::vector<int>> find_config_exhaustive(
    const camo::CamoNetlist& netlist,
    std::span<const logic::TruthTable> targets,
    std::uint64_t max_configs = 1u << 20, bool* exhausted = nullptr);

/// Attacker with unknown wire interpretation: tries every input and output
/// permutation of the target function (the paper's assumption that pin
/// correspondence is hidden).  Returns true if any interpretation is
/// plausible.  Cost: num_inputs! * num_outputs! SAT calls; intended for
/// 4-bit functions.
bool is_plausible_any_pins(const camo::CamoNetlist& netlist,
                           std::span<const logic::TruthTable> target_outputs,
                           int* interpretations_tried = nullptr);

}  // namespace mvf::attack
