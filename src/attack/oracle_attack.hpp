#pragma once
// Oracle-guided CEGAR de-camouflaging (the canonical scalable SAT attack of
// Subramanyan et al., as red-teamed in Liu et al. and defended against in
// Alaql & Bhunia -- see PAPERS.md).
//
// Threat model: beyond recognizing the look-alike cells (the plausibility
// attacker's knowledge), the adversary owns a *working chip* -- an oracle
// answering input patterns with the true circuit's outputs.  Instead of
// enumerating the input space (hopeless beyond ~10 inputs), the attack
// miters two copies of the camouflaged circuit over shared symbolic inputs:
// a SAT model is a *distinguishing input* -- a pattern on which two
// still-viable configurations disagree.  The oracle's answer for that
// pattern is added as an I/O constraint to both copies, eliminating at
// least one of the two configurations (and usually many more), and the loop
// repeats on the same incremental solver.  UNSAT means every configuration
// consistent with the collected I/O pairs implements the oracle's function,
// at which point the surviving configurations are counted over the selector
// variables -- by exact projected model counting (count::ProjectedCounter,
// the default: uncapped, 128-bit), by an ApproxMC-style (eps, delta)
// estimate, or by the legacy capped model enumeration (see CountMode).

#include <cstdint>
#include <string_view>
#include <vector>

#include "attack/oracle.hpp"
#include "camo/camo_netlist.hpp"
#include "count/count128.hpp"
#include "count/projected_counter.hpp"
#include "obs/metrics.hpp"
#include "sat/simplify.hpp"
#include "sat/solver.hpp"

namespace mvf::util {
class ThreadPool;
}  // namespace mvf::util

namespace mvf::attack {

/// How the surviving-configuration count is computed once CEGAR converges.
enum class CountMode {
    /// Exact projected model counting (count::ProjectedCounter) over the
    /// selector variables: no cap, counts up to 2^128 - 1, and dead-cone
    /// freedom falls out of component decomposition instead of a separate
    /// multiplication.  The default.
    kExact,
    /// ApproxMC-style (epsilon, delta) estimate (count::ApproxCounter);
    /// spaces under the pivot still come back exact.
    kApprox,
    /// Legacy SAT model enumeration projected onto the PO cone, capped at
    /// max_survivors.  Kept for differential testing against the counters.
    kEnumerate,
};

std::string_view count_mode_name(CountMode m);
/// Inverse of count_mode_name; returns false on unknown names.
bool count_mode_from_name(std::string_view name, CountMode* out);

struct OracleAttackParams {
    /// How to count survivors after convergence (see CountMode).
    CountMode count_mode = CountMode::kExact;
    /// kEnumerate only: stop the surviving-configuration count once it
    /// reaches this bound (surviving_configs is then clamped to it and
    /// status is kSurvivorLimit: "at least this many survive").  The
    /// counting modes ignore it -- their counts are exact/estimated
    /// without a cap.
    std::uint64_t max_survivors = 1u << 20;
    /// kExact only: component-cache memory budget for the projected
    /// counter, in MiB.
    int count_cache_mb = 64;
    /// kExact only: branch-decision budget before the exact counter gives
    /// up and the attack falls back to capped enumeration (0 = unlimited).
    /// Structured selector spaces (the regime obfuscation actually
    /// creates: dead cones, decomposable masked freedom) count in
    /// hundreds to tens of thousands of decisions; a dense
    /// decomposition-resistant instance can exhaust any budget, and the
    /// fallback keeps the attack terminating with the legacy lower bound
    /// (a few seconds of burned budget) instead of hanging.  The fallback
    /// is visible in the result: count_mode reads kEnumerate.
    std::uint64_t count_max_decisions = 100'000;
    /// kApprox only: tolerance of the (epsilon, delta) guarantee.
    double epsilon = 0.8;
    double delta = 0.2;
    /// kApprox only: XOR hash sampling seed (estimates are deterministic
    /// per seed).
    std::uint64_t count_seed = 1;
    /// Safety valve on CEGAR iterations; 0 = unlimited.
    int max_iterations = 0;
    /// Skip the final enumeration (surviving_configs stays 0; the attack
    /// still terminates with the full distinguishing-input set).
    bool enumerate_survivors = true;
    /// Nodes the attacker knows are ordinary cells (as in is_plausible).
    const std::vector<bool>* fixed_nominal = nullptr;
    /// SAT-layer knobs: CNF preprocessing before the CEGAR loop, periodic
    /// inprocessing as the per-pattern circuit copies accumulate, and
    /// preprocessing of the enumeration instance.
    sat::SolverConfig solver;
    /// Structure-shared encoding: selector-independent cone cells
    /// (fixed_nominal cells, plus anything else whose selector collapsed
    /// to one choice) are encoded once per miter/pattern stamp instead of
    /// once per family, and constant cones fold away without allocating
    /// variables.  Off reproduces the legacy two-copy encoding exactly.
    bool shared_miter = true;
    /// Canonicalize each distinguishing input to the lexicographically
    /// smallest one (by PI index) before querying the oracle.  This makes
    /// the query sequence -- and with it every attack outcome -- a function
    /// of the problem instead of the CNF encoding and solver trajectory,
    /// so runs are bit-identical across preprocessing/sharing settings.
    /// Each canonicalized bit can cost an incremental UNSAT proof, which
    /// is affordable for small input widths (the exhaustive differential
    /// tests run it up to 6 PIs) but multiplies runtime at 16+; hence off
    /// by default.
    bool canonical_inputs = false;
    /// Warm-up: before the CEGAR loop, draw this many random input
    /// patterns (seeded by warmup_seed), query them through the batched
    /// word-parallel oracle path in blocks of up to 64, and add the I/O
    /// answers as constraints.  Each answered pattern prunes every
    /// configuration disagreeing with the chip on it, so the miter starts
    /// the distinguishing-input loop on a much smaller viable set -- a
    /// cheap query-selection baseline that measurably cuts the
    /// distinguishing-input count (see bench_oracle_attack).
    int random_warmup = 0;
    std::uint64_t warmup_seed = 1;
    /// Neighborhood warm-up: after each distinguishing input found by the
    /// live CEGAR loop, also query up to this many single-bit-flip
    /// neighbors of it (as one word-parallel block) and constrain their
    /// answers.  Distinguishing inputs sit on decision boundaries of the
    /// configuration space, so their neighborhoods are disproportionately
    /// likely to separate further configurations -- the CEGAR analogue of
    /// the random_warmup baseline, seeded by the inputs the solver already
    /// proved informative.  Survivor-preserving: extra I/O constraints
    /// only remove configurations the chip disagrees with (asserted in
    /// bench_oracle_attack).  Ignored under transcript replay, where the
    /// scripted patterns already embed whatever neighborhood queries the
    /// recorded run made.  0 = off.
    int neighborhood_queries = 0;
    /// Collect per-attack latency metrics (oracle-query and SAT-solve
    /// histograms) into OracleAttackResult::metrics.  Also on whenever the
    /// process-global switch (obs::set_metrics_enabled, the CLI's
    /// --metrics) is; off by default because the per-query timing calls,
    /// while cheap, are measurable on microsecond-scale oracles.
    bool collect_metrics = false;
    /// The one parallelism knob: worker threads for the attack.  Feeds
    /// both engines -- cube-and-conquer workers for the exact survivor
    /// count (count::CounterConfig::threads) and, unless `portfolio`
    /// overrides it, the portfolio CEGAR member count.  1 = fully serial
    /// (the default; bit-identical to every earlier release).
    int attack_threads = 1;
    /// Portfolio CEGAR members racing on the netlist (0 = follow
    /// attack_threads, 1 = force the single serial CEGAR loop, N > 1 = N
    /// members).  Members share oracle answers through one caching layer
    /// and short learned clauses through sat::ClauseExchange; the first
    /// member to prove UNSAT cancels the rest and its transcript replays
    /// bit-identically through TranscriptOracle.  Survivor counts are
    /// invariant across member schedules (any convergent constraint set
    /// pins the same function).  Ignored when the oracle is a replaying
    /// transcript: replay always takes the serial path.
    int portfolio = 0;
    /// Selector-cube width for the parallel exact counter
    /// (count::CounterConfig::cube_vars); 0 = auto from attack_threads.
    int cube_vars = 0;
    /// Worker pool for portfolio members and cube workers.  nullptr (the
    /// default) spins up private pools; the batch runner passes its own
    /// pool so `mvf batch --jobs N` with attack_threads > 1 cannot
    /// oversubscribe or deadlock (workers submitting subtasks to the same
    /// pool helping-wait via ThreadPool::run_one).  Runtime plumbing only:
    /// excluded from spec hashing.
    util::ThreadPool* pool = nullptr;
};

struct OracleAttackResult {
    enum class Status {
        kSolved,          ///< CEGAR converged; count is exact
        kNoSurvivor,      ///< no configuration matches the oracle at all
        kIterationLimit,  ///< stopped by max_iterations
        kSurvivorLimit,   ///< count capped/saturated; a lower bound
        kApproxSolved,    ///< CEGAR converged; count is an (eps, delta) estimate
        kQueryBudget,     ///< the oracle's query budget cut the attack off
    };
    Status status = Status::kSolved;

    /// Distinguishing-input oracle queries made (== CEGAR iterations).
    int queries = 0;
    /// Random warm-up patterns answered before the loop (block queries).
    int warmup_queries = 0;
    /// Configurations consistent with the oracle on every input,
    /// saturated to uint64 (`survivors` below is full precision); exact
    /// for kSolved, an estimate for kApproxSolved, a lower bound for
    /// kSurvivorLimit.  All of them implement the oracle's function.
    std::uint64_t surviving_configs = 0;
    /// Full-precision survivor count (the authoritative figure; the
    /// projected counter handles spaces far beyond uint64).
    count::Count128 survivors;
    /// True once a survivor-counting backend actually ran (false for
    /// kIterationLimit, kQueryBudget and for enumerate_survivors == false,
    /// where the count fields below are meaningless zeros).
    bool counted = false;
    /// CountMode that produced the count: the params' mode, except that
    /// an exact run that exhausted its decision budget and fell back
    /// reads kEnumerate.  Meaningful only when `counted`.
    CountMode count_mode = CountMode::kExact;
    /// Exact-counter statistics (kExact; zeroed otherwise).
    count::CounterStats count_stats;
    /// Approximate-counter round summary (kApprox; zeroed otherwise).
    int approx_xor_levels = 0;
    int approx_rounds = 0;
    /// One surviving configuration, populated by the counting phase only:
    /// empty for kNoSurvivor, kIterationLimit and kQueryBudget, and
    /// whenever enumerate_survivors is off.  Per-node plausible indices as consumed
    /// by sim::simulate_camo.
    std::vector<int> witness_config;
    /// The distinguishing patterns, in query order.
    std::vector<std::vector<bool>> distinguishing_inputs;

    sat::Solver::Stats sat_stats;  ///< CEGAR solver (miter + I/O constraints)
    /// Latency histograms (microseconds), filled when
    /// OracleAttackParams::collect_metrics or the global metrics switch is
    /// on; empty() otherwise.
    obs::AttackMetrics metrics;
    /// Cells encoded once instead of per-family across all shared stamps
    /// (0 when shared_miter is off or nothing was shareable).
    std::uint64_t shared_cells = 0;
    /// Portfolio: index of the member whose UNSAT proof won the race, or
    /// -1 (serial attack, or no member converged).  When >= 0,
    /// winner_transcript holds that member's complete query transcript --
    /// recorded unconditionally, because the oracle stack's own recorder
    /// sees the members' queries interleaved and is NOT replayable.
    int winner = -1;
    OracleTranscript winner_transcript;
    double seconds = 0.0;

    bool solved() const {
        return status == Status::kSolved || status == Status::kApproxSolved;
    }
};

/// Human-readable status ("solved", "iteration limit", ...), shared by the
/// adversary reports and the trace spans.
std::string_view attack_status_name(OracleAttackResult::Status s);

/// Runs the CEGAR attack on `netlist` against `oracle`.  The oracle must
/// answer with netlist.num_pos() outputs for netlist.num_pis() inputs.
/// A BudgetedOracle in the stack terminates the attack honestly: the
/// budget trip surfaces as Status::kQueryBudget (no survivor counting
/// runs, mirroring kIterationLimit).  A replaying TranscriptOracle drives
/// the query sequence via Oracle::scripted_pattern().
OracleAttackResult oracle_attack(const camo::CamoNetlist& netlist,
                                 Oracle& oracle,
                                 const OracleAttackParams& params = {});

/// The survivor-counting tail of oracle_attack, reusable by any adversary
/// that gathers I/O constraints (inputs[i] answered by answers[i]): counts
/// the configurations consistent with every pair under params.count_mode,
/// filling result's counting fields, witness_config, and status
/// (kNoSurvivor / kSurvivorLimit / kApproxSolved; an untouched status
/// means the count is exact and at least one configuration survives).
void count_consistent_configs(const camo::CamoNetlist& netlist,
                              const std::vector<std::vector<bool>>& inputs,
                              const std::vector<std::vector<bool>>& answers,
                              const OracleAttackParams& params,
                              OracleAttackResult* result);

}  // namespace mvf::attack
