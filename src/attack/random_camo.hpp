#pragma once
// The random-camouflaging strawman (paper section I).
//
// "Random camouflaging is insufficient for obfuscating viable functions":
// replacing an arbitrary subset of an ordinary netlist's gates with
// camouflaged look-alikes creates exponentially many plausible functions,
// but with overwhelming probability NONE of the other viable functions is
// among them.  This module builds that baseline so the attacker benches can
// demonstrate the gap quantitatively.

#include "camo/camo_cell.hpp"
#include "camo/camo_netlist.hpp"
#include "map/netlist.hpp"
#include "util/rng.hpp"

namespace mvf::attack {

struct RandomCamoResult {
    camo::CamoNetlist netlist;
    /// Nodes the attacker knows are plain cells (not camouflaged).
    std::vector<bool> fixed_nominal;
    int camouflaged_cells = 0;
};

/// Replaces each cell of `mapped` (which must have no select inputs -- it is
/// a plain single-function circuit) by its camouflaged look-alike;
/// a random `fraction` of instances is actually camouflaged (attacker
/// uncertainty), the rest stay fixed at the nominal function.  The true
/// function of the circuit is preserved under configuration code 0.
RandomCamoResult random_camouflage(const tech::Netlist& mapped,
                                   const camo::CamoLibrary& library,
                                   double fraction, util::Rng& rng);

/// A random fully-camouflaged DAG for attack benchmarking at arbitrary
/// widths (the paper's S-boxes stop at 4-10 inputs; the oracle attack does
/// not).  `num_cells` random library look-alikes (TIE excluded) are wired
/// with fanins drawn from earlier nodes, biased toward recent ones so depth
/// grows; the first `num_pis` cells each consume one distinct PI so every
/// input is live, and the last `num_pos` cells drive the POs.  Every cell's
/// config_fn is {0} (code 0 = all-nominal), so
/// `configuration_for_code(0)` is the natural hidden configuration.
/// Requires num_cells >= max(num_pis, num_pos).
camo::CamoNetlist random_camo_netlist(const camo::CamoLibrary& library,
                                      int num_pis, int num_pos, int num_cells,
                                      util::Rng& rng);

}  // namespace mvf::attack
