#pragma once
// The random-camouflaging strawman (paper section I).
//
// "Random camouflaging is insufficient for obfuscating viable functions":
// replacing an arbitrary subset of an ordinary netlist's gates with
// camouflaged look-alikes creates exponentially many plausible functions,
// but with overwhelming probability NONE of the other viable functions is
// among them.  This module builds that baseline so the attacker benches can
// demonstrate the gap quantitatively.

#include "camo/camo_cell.hpp"
#include "camo/camo_netlist.hpp"
#include "map/netlist.hpp"
#include "util/rng.hpp"

namespace mvf::attack {

struct RandomCamoResult {
    camo::CamoNetlist netlist;
    /// Nodes the attacker knows are plain cells (not camouflaged).
    std::vector<bool> fixed_nominal;
    int camouflaged_cells = 0;
};

/// Replaces each cell of `mapped` (which must have no select inputs -- it is
/// a plain single-function circuit) by its camouflaged look-alike;
/// a random `fraction` of instances is actually camouflaged (attacker
/// uncertainty), the rest stay fixed at the nominal function.  The true
/// function of the circuit is preserved under configuration code 0.
RandomCamoResult random_camouflage(const tech::Netlist& mapped,
                                   const camo::CamoLibrary& library,
                                   double fraction, util::Rng& rng);

}  // namespace mvf::attack
