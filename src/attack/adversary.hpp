#pragma once
// Unified adversary interface and registry.
//
// The red-teaming literature (see PAPERS.md) evaluates an obfuscation
// scheme against a *panel* of attackers under one harness, not against
// whichever ad-hoc API each attack happens to expose.  Every de-camouflaging
// adversary in this repo implements `Adversary`: it declares its name and
// the knowledge its threat model assumes, consumes a camouflaged netlist
// (plus an oracle when its model grants one), and produces a uniform
// `AdversaryReport` that serializes to JSON.  The registry maps names to
// factories so experiment drivers -- flow::AttackStage, flow::BatchRunner,
// and the mvf CLI -- can run any subset chosen at runtime with zero new C++.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "attack/oracle_attack.hpp"
#include "camo/camo_netlist.hpp"
#include "logic/truth_table.hpp"
#include "report/json.hpp"

namespace mvf::attack {

/// What an adversary's threat model assumes it can access, beyond imaging
/// the netlist of look-alike cells (which every adversary gets).
enum class Knowledge {
    kNetlistOnly,  ///< just the camouflaged netlist
    kViableSet,    ///< additionally knows the candidate function set
    kWorkingChip,  ///< additionally owns an I/O oracle
};

std::string_view knowledge_name(Knowledge k);

/// Uniform attack outcome record.  Field meanings are shared across
/// adversaries so batch reports stay comparable; adversary-specific nuance
/// goes into `outcome`.
struct AdversaryReport {
    std::string adversary;
    /// The attack achieved its goal (recovered the function / could not be
    /// ruled out on any viable candidate -- see each adversary's docs).
    bool success = false;
    /// Human-readable status ("solved", "iteration limit", ...).
    std::string outcome;
    /// Oracle queries issued (0 for oracle-less adversaries, where it
    /// counts SAT decision problems instead).
    int queries = 0;
    /// Configurations (or candidate functions, for the plausibility model)
    /// the adversary could NOT eliminate, saturated to uint64.
    std::uint64_t survivors = 0;
    /// Full-precision survivor count as a decimal string (counting
    /// adversaries only; empty otherwise).  Authoritative when present --
    /// JSON numbers are doubles and lose precision beyond 2^53.
    std::string survivors_str;
    /// CountMode that produced the survivor figure ("exact", "approx",
    /// "enumerate"; empty for adversaries that do not count).
    std::string count_mode;
    /// Exact projected-counter statistics (zeroed unless count_mode is
    /// "exact").
    count::CounterStats count;
    /// Approximate-counter round summary (zeroed unless "approx").
    int approx_xor_levels = 0;
    int approx_rounds = 0;
    /// Uniform oracle accounting from the harness's OracleStack
    /// (CountingOracle and friends): queries/blocks/patterns answered,
    /// cache hits, noisy bits, budget state.  All-zero for oracle-less
    /// adversaries, and the JSON block is omitted then.
    OracleStats oracle;
    /// Latency histograms (obs::AttackMetrics) when the attack collected
    /// them; empty() otherwise, and the JSON block is omitted then.
    obs::AttackMetrics metrics;
    double seconds = 0.0;
    sat::Solver::Stats sat;  ///< aggregated over the attack's SAT queries
    /// Canonical hash of the scenario spec that produced this report
    /// (flow::spec_hash), stamped by the attack stage; empty when the
    /// attack ran outside a scenario.  Provenance: an archived report
    /// names exactly which experiment it came from.
    std::string spec_hash;
    /// Audit trail (attacks run with commitments enabled, e.g.
    /// --emit-proof): Merkle root over the chained per-query commitments
    /// and the number of committed queries.  Empty/zero otherwise, and the
    /// JSON block is omitted then.  The full evidence lives in the
    /// audit::AttackProof artifact; this block lets a report name the root
    /// it was proven under.
    std::string audit_merkle_root;
    std::uint64_t audit_committed = 0;

    report::Json to_json() const;
    /// Inverse of to_json(); throws report::JsonError on malformed input.
    static AdversaryReport from_json(const report::Json& j);

    bool operator==(const AdversaryReport&) const;
};

/// Cross-checks a SERIALIZED report's numeric `survivors` field against its
/// full-precision `count.survivors_str` mirror (which wins on parse, so a
/// round trip alone cannot see a hand-edited disagreement).  Returns "" when
/// consistent or when there is no count block; otherwise a description of
/// the disagreement.  `mvf check-report` rejects on non-empty.
std::string survivors_mismatch(const report::Json& report_json);

class Adversary {
public:
    virtual ~Adversary() = default;

    virtual std::string_view name() const = 0;
    virtual Knowledge knowledge() const = 0;

    /// Attacks `netlist`.  `oracle` is non-null iff the harness grants
    /// working-chip access; adversaries requiring it must reject a null
    /// oracle with std::invalid_argument rather than silently degrade.
    virtual AdversaryReport attack(const camo::CamoNetlist& netlist,
                                   Oracle* oracle) = 0;
};

/// Knobs a factory may draw on; harnesses fill in what they know.
struct AdversaryOptions {
    /// CEGAR parameters (oracle-guided adversaries).
    OracleAttackParams oracle;
    /// viable_targets[k][q] = PO q of viable function k over the netlist's
    /// PIs (viable-set adversaries; empty when the set is withheld).
    std::vector<std::vector<logic::TruthTable>> viable_targets;
    /// random-sampling baseline: patterns drawn and the sampling seed.
    int random_queries = 128;
    std::uint64_t random_seed = 1;
};

using AdversaryFactory =
    std::function<std::unique_ptr<Adversary>(const AdversaryOptions&)>;

/// Name -> factory registry.  The built-in adversaries ("plausibility",
/// "cegar", "random-sampling") are registered on first access; extensions
/// may register more.
class AdversaryRegistry {
public:
    static AdversaryRegistry& instance();

    /// Registers (or replaces) a factory under `name`.
    void register_adversary(std::string name, AdversaryFactory factory);

    bool contains(const std::string& name) const;

    /// Instantiates `name`; throws std::invalid_argument for unknown names
    /// (message lists what is registered).
    std::unique_ptr<Adversary> create(const std::string& name,
                                      const AdversaryOptions& options) const;

    /// Registered names, in registration order.
    std::vector<std::string> names() const;

private:
    AdversaryRegistry();
    std::vector<std::pair<std::string, AdversaryFactory>> factories_;
};

/// The paper's attacker: knows the viable set, solves one plausibility SAT
/// query per candidate function.  Reported from the attacker's perspective:
/// success = at least one candidate ruled out (the defense holds exactly
/// when success is false); `survivors` counts candidates still plausible.
class PlausibilityAdversary final : public Adversary {
public:
    explicit PlausibilityAdversary(
        std::vector<std::vector<logic::TruthTable>> viable_targets)
        : targets_(std::move(viable_targets)) {}

    std::string_view name() const override { return "plausibility"; }
    Knowledge knowledge() const override { return Knowledge::kViableSet; }
    AdversaryReport attack(const camo::CamoNetlist& netlist,
                           Oracle* oracle) override;

private:
    std::vector<std::vector<logic::TruthTable>> targets_;
};

/// The oracle-guided CEGAR attacker (attack/oracle_attack.hpp) behind the
/// uniform interface.  success = CEGAR converged (every surviving
/// configuration implements the oracle's function).
class CegarAdversary final : public Adversary {
public:
    explicit CegarAdversary(OracleAttackParams params = {}) : params_(params) {}

    std::string_view name() const override { return "cegar"; }
    Knowledge knowledge() const override { return Knowledge::kWorkingChip; }
    AdversaryReport attack(const camo::CamoNetlist& netlist,
                           Oracle* oracle) override;

    /// Full typed result of the last attack() call (for harnesses that
    /// want more than the uniform report, e.g. the distinguishing inputs).
    const std::optional<OracleAttackResult>& last_result() const {
        return last_result_;
    }

private:
    OracleAttackParams params_;
    std::optional<OracleAttackResult> last_result_;
};

/// Scenario-diversity baseline: no SAT-guided query selection at all, just
/// `num_queries` random patterns pushed through the batched word-parallel
/// oracle path, then a survivor count over the gathered I/O constraints
/// (the same counting backends as the CEGAR attacker).  success = the
/// random sample alone pinned the chip down to one surviving
/// configuration.  Under a replaying TranscriptOracle the recorded
/// patterns are re-issued instead of fresh random ones.
class RandomSamplingAdversary final : public Adversary {
public:
    explicit RandomSamplingAdversary(OracleAttackParams params = {},
                                     int num_queries = 128,
                                     std::uint64_t seed = 1)
        : params_(params), num_queries_(num_queries), seed_(seed) {}

    std::string_view name() const override { return "random-sampling"; }
    Knowledge knowledge() const override { return Knowledge::kWorkingChip; }
    AdversaryReport attack(const camo::CamoNetlist& netlist,
                           Oracle* oracle) override;

    /// Full typed result of the last attack() call.
    const std::optional<OracleAttackResult>& last_result() const {
        return last_result_;
    }

private:
    OracleAttackParams params_;
    int num_queries_;
    std::uint64_t seed_;
    std::optional<OracleAttackResult> last_result_;
};

}  // namespace mvf::attack
