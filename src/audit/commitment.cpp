#include "audit/commitment.hpp"

#include <stdexcept>

#include "util/sha256.hpp"

namespace mvf::audit {

bool constant_time_equal(std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    unsigned char acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        acc = static_cast<unsigned char>(
            acc | (static_cast<unsigned char>(a[i]) ^
                   static_cast<unsigned char>(b[i])));
    }
    return acc == 0;
}

Commitment Commitment::commit(std::string_view message, std::string salt_hex) {
    Commitment c;
    util::Sha256 h;
    h.update(salt_hex);
    h.update(message);
    c.digest_hex = util::Sha256::hex(h.finish());
    c.salt_hex = std::move(salt_hex);
    return c;
}

bool Commitment::open(std::string_view message) const {
    util::Sha256 h;
    h.update(salt_hex);
    h.update(message);
    return constant_time_equal(util::Sha256::hex(h.finish()), digest_hex);
}

std::string MerkleTree::leaf_hash(std::string_view leaf_digest_hex) {
    util::Sha256 h;
    h.update("L:");
    h.update(leaf_digest_hex);
    return util::Sha256::hex(h.finish());
}

std::string MerkleTree::interior_hash(std::string_view left_hex,
                                      std::string_view right_hex) {
    util::Sha256 h;
    h.update("I:");
    h.update(left_hex);
    h.update(right_hex);
    return util::Sha256::hex(h.finish());
}

MerkleTree::MerkleTree(std::vector<std::string> leaf_digests_hex)
    : num_leaves_(leaf_digests_hex.size()) {
    std::vector<std::string> level;
    level.reserve(num_leaves_);
    for (const std::string& leaf : leaf_digests_hex) {
        level.push_back(leaf_hash(leaf));
    }
    if (level.empty()) {
        // Empty-transcript trees still need a well-defined root (an attack
        // can converge on zero queries); pin it to the hash of an empty
        // leaf set rather than leaving it unspecified.
        root_ = leaf_hash("");
        return;
    }
    levels_.push_back(std::move(level));
    while (levels_.back().size() > 1) {
        const std::vector<std::string>& prev = levels_.back();
        std::vector<std::string> next;
        next.reserve((prev.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
            next.push_back(interior_hash(prev[i], prev[i + 1]));
        }
        if (prev.size() % 2 == 1) next.push_back(prev.back());
        levels_.push_back(std::move(next));
    }
    root_ = levels_.back().front();
}

std::vector<MerkleTree::PathElement> MerkleTree::path(std::size_t index) const {
    if (index >= num_leaves_) {
        throw std::out_of_range("MerkleTree::path: leaf index out of range");
    }
    std::vector<PathElement> out;
    std::size_t pos = index;
    for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
        const std::vector<std::string>& nodes = levels_[lvl];
        const std::size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
        if (sibling < nodes.size()) {
            out.push_back({nodes[sibling], pos % 2 == 1});
        }
        // Odd nodes are promoted unchanged, so a missing sibling simply
        // contributes no path element at this level.
        pos /= 2;
    }
    return out;
}

bool MerkleTree::verify_path(std::string_view leaf_digest_hex,
                             std::size_t /*index*/,
                             const std::vector<PathElement>& path,
                             std::string_view root_hex) {
    // The index is not consumed: each element carries its own side flag,
    // and levels where the node was promoted (odd tail) contribute no
    // element.  The flag is still authenticated by the hash itself --
    // lying about it produces a different interior digest and a root
    // mismatch.  The parameter stays for symmetry with path(index).
    std::string running = leaf_hash(leaf_digest_hex);
    for (const PathElement& el : path) {
        if (el.sibling_on_left) {
            running = interior_hash(el.digest_hex, running);
        } else {
            running = interior_hash(running, el.digest_hex);
        }
    }
    return constant_time_equal(running, root_hex);
}

}  // namespace mvf::audit
