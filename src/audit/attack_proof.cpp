#include "audit/attack_proof.hpp"

#include <climits>
#include <stdexcept>

#include "audit/commitment.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/sha256.hpp"

namespace mvf::audit {
namespace {

/// Recomputes the full commitment chain from salts + transcript + context;
/// returns the digests in query order.  Shared by prove() (cross-check
/// against the live committer) and verify() (recompute from the artifact).
std::vector<std::string> chain_digests(
    const attack::OracleTranscript& transcript,
    const std::vector<std::string>& salts, const std::string& context) {
    std::vector<std::string> digests;
    digests.reserve(transcript.entries.size());
    for (std::size_t i = 0; i < transcript.entries.size(); ++i) {
        const attack::OracleTranscript::Entry& e = transcript.entries[i];
        const std::string& prev = i == 0 ? context : digests.back();
        const std::string msg =
            CommittingOracle::leaf_message(i, e.inputs, e.outputs, prev);
        digests.push_back(Commitment::commit(msg, salts[i]).digest_hex);
    }
    return digests;
}

bool truncated_outcome(const std::string& outcome) {
    // A replay classifies every scripted entry as warm-up, so a live run
    // stopped by max_iterations resurfaces as the transcript running out
    // (query budget).  Both mean the same thing to a verifier: the run was
    // cut off before convergence and claims no count.
    return outcome == "iteration limit" || outcome == "query budget";
}

}  // namespace

ReplayParams ReplayParams::from_attack_params(
    const attack::OracleAttackParams& p) {
    ReplayParams r;
    r.count_mode = p.count_mode;
    r.max_survivors = p.max_survivors;
    r.count_cache_mb = p.count_cache_mb;
    r.count_max_decisions = p.count_max_decisions;
    r.epsilon = p.epsilon;
    r.delta = p.delta;
    r.count_seed = p.count_seed;
    r.enumerate_survivors = p.enumerate_survivors;
    if (p.fixed_nominal) r.fixed_nominal = *p.fixed_nominal;
    return r;
}

attack::OracleAttackParams ReplayParams::to_attack_params(
    std::size_t transcript_entries) const {
    attack::OracleAttackParams p;
    p.count_mode = count_mode;
    p.max_survivors = max_survivors;
    p.count_cache_mb = count_cache_mb;
    p.count_max_decisions = count_max_decisions;
    p.epsilon = epsilon;
    p.delta = delta;
    p.count_seed = count_seed;
    p.enumerate_survivors = enumerate_survivors;
    // Every scripted entry is consumed as warm-up (see the ReplayParams doc
    // comment); no iteration cap, so the only terminations are convergence
    // and the transcript running out.
    p.random_warmup = transcript_entries > static_cast<std::size_t>(INT_MAX)
                          ? INT_MAX
                          : static_cast<int>(transcript_entries);
    p.max_iterations = 0;
    p.attack_threads = 1;
    if (!fixed_nominal.empty()) p.fixed_nominal = &fixed_nominal;
    return p;
}

report::Json ReplayParams::to_json() const {
    report::Json j = report::Json::object();
    j.set("count_mode", std::string(attack::count_mode_name(count_mode)));
    j.set("max_survivors", max_survivors);
    j.set("count_cache_mb", count_cache_mb);
    j.set("count_max_decisions", count_max_decisions);
    j.set("epsilon", epsilon);
    j.set("delta", delta);
    j.set("count_seed", count_seed);
    j.set("enumerate_survivors", enumerate_survivors);
    if (!fixed_nominal.empty()) {
        std::string bits(fixed_nominal.size(), '0');
        for (std::size_t i = 0; i < fixed_nominal.size(); ++i) {
            if (fixed_nominal[i]) bits[i] = '1';
        }
        j.set("fixed_nominal", std::move(bits));
    }
    return j;
}

ReplayParams ReplayParams::from_json(const report::Json& j) {
    ReplayParams r;
    const std::string& mode = j.at("count_mode").as_string();
    if (!attack::count_mode_from_name(mode, &r.count_mode)) {
        throw report::JsonError("attack proof: unknown count_mode \"" + mode +
                                "\"");
    }
    r.max_survivors = j.at("max_survivors").as_uint();
    r.count_cache_mb = static_cast<int>(j.at("count_cache_mb").as_int());
    r.count_max_decisions = j.at("count_max_decisions").as_uint();
    r.epsilon = j.at("epsilon").as_number();
    r.delta = j.at("delta").as_number();
    r.count_seed = j.at("count_seed").as_uint();
    r.enumerate_survivors = j.at("enumerate_survivors").as_bool();
    // Absent in proofs from S-box scenarios and in pre-circuit artifacts;
    // both mean "no cell is known nominal".
    if (const report::Json* f = j.find("fixed_nominal")) {
        const std::string& bits = f->as_string();
        r.fixed_nominal.resize(bits.size());
        for (std::size_t i = 0; i < bits.size(); ++i) {
            r.fixed_nominal[i] = bits[i] == '1';
        }
    }
    return r;
}

std::string AttackProof::netlist_context(const report::Json& netlist_snapshot) {
    // Canonicalized so member order never changes the identity; the domain
    // prefix keeps a netlist digest from colliding with a leaf digest.
    return util::sha256_hex("mvf-netlist|" +
                            report::canonicalized(netlist_snapshot).dump());
}

AttackProof AttackProof::prove(report::Json netlist_snapshot,
                               const attack::AdversaryReport& report,
                               const attack::OracleTranscript& transcript,
                               const CommittingOracle& committer,
                               const attack::OracleAttackParams& live_params) {
    obs::Span span("prove", "audit");
    AttackProof proof;
    proof.netlist = std::move(netlist_snapshot);
    proof.report = report;
    proof.transcript = transcript;
    proof.params = ReplayParams::from_attack_params(live_params);

    const std::vector<Commitment>& commitments = committer.commitments();
    if (commitments.size() != transcript.entries.size()) {
        throw std::runtime_error(
            "AttackProof::prove: committer saw " +
            std::to_string(commitments.size()) + " queries but the transcript "
            "recorded " + std::to_string(transcript.entries.size()) +
            " -- the committer and recorder are not observing the same "
            "oracle stream");
    }
    proof.salts.reserve(commitments.size());
    for (const Commitment& c : commitments) proof.salts.push_back(c.salt_hex);

    // Cross-check: the chain recomputed from the transcript must reproduce
    // the committer's digests bit-for-bit.  A disagreement means the
    // harness wired the committer below the cache or above the counter --
    // a bug to fix, not an artifact to emit.
    const std::string context = netlist_context(proof.netlist);
    const std::vector<std::string> digests =
        chain_digests(transcript, proof.salts, context);
    for (std::size_t i = 0; i < digests.size(); ++i) {
        if (digests[i] != commitments[i].digest_hex) {
            throw std::runtime_error(
                "AttackProof::prove: commitment " + std::to_string(i) +
                " does not match the transcript entry it should bind");
        }
    }
    proof.merkle_root = committer.merkle_root();
    if (obs::metrics_enabled()) {
        obs::MetricsRegistry::global().counter("audit.proofs").add();
    }
    if (span) {
        report::Json ea = report::Json::object();
        ea.set("queries", static_cast<std::uint64_t>(digests.size()));
        ea.set("merkle_root", proof.merkle_root);
        span.set_end_args(std::move(ea));
    }
    return proof;
}

ProofVerification AttackProof::verify(const camo::CamoNetlist& netlist) const {
    obs::Span span("verify-proof", "audit");
    ProofVerification v;
    const std::size_t entries = transcript.entries.size();

    // --- Structural + commitment layer -----------------------------------
    if (salts.size() != entries) {
        v.failures.push_back("salt count (" + std::to_string(salts.size()) +
                             ") does not match transcript length (" +
                             std::to_string(entries) + ")");
    }
    if (entries > 0 && (transcript.num_inputs != netlist.num_pis() ||
                        transcript.num_outputs != netlist.num_pos())) {
        v.failures.push_back("transcript widths do not match the netlist");
    }
    if (v.failures.empty()) {
        const std::string context = netlist_context(this->netlist);
        const std::vector<std::string> digests =
            chain_digests(transcript, salts, context);
        std::vector<std::string> leaves = digests;
        const std::string root = MerkleTree(std::move(leaves)).root();
        if (constant_time_equal(root, merkle_root)) {
            v.commitments_ok = true;
        } else {
            v.failures.push_back(
                "recomputed Merkle root does not match the committed root "
                "(tampered answer, transcript, salt, or netlist)");
        }
    }
    if (!report.audit_merkle_root.empty() &&
        !constant_time_equal(report.audit_merkle_root, merkle_root)) {
        v.failures.push_back(
            "claimed report's audit block names a different Merkle root");
    }

    // --- Replay layer ----------------------------------------------------
    // Runs even when the commitment layer failed: "the commitments are
    // forged AND the claim does not follow from the transcript" is more
    // actionable than stopping at the first failure.
    attack::AdversaryOptions options;
    options.oracle = params.to_attack_params(entries);
    options.random_queries = options.oracle.random_warmup;
    try {
        std::unique_ptr<attack::Adversary> adversary =
            attack::AdversaryRegistry::instance().create(report.adversary,
                                                         options);
        if (adversary->knowledge() != attack::Knowledge::kWorkingChip) {
            throw std::invalid_argument(
                "adversary \"" + report.adversary +
                "\" does not take an oracle; its reports cannot be replayed");
        }
        attack::OracleModelParams model;
        model.replay = &transcript;
        attack::OracleStack stack(nullptr, model);
        v.replayed = adversary->attack(netlist, &stack.top());

        const auto mismatch = [&v](const std::string& field,
                                   const std::string& claimed,
                                   const std::string& got) {
            v.failures.push_back("replay mismatch on " + field + ": claimed " +
                                 claimed + ", replay produced " + got);
        };
        bool replay_ok = true;
        if (v.replayed.success != report.success) {
            mismatch("success", report.success ? "true" : "false",
                     v.replayed.success ? "true" : "false");
            replay_ok = false;
        }
        if (v.replayed.outcome != report.outcome &&
            !(truncated_outcome(v.replayed.outcome) &&
              truncated_outcome(report.outcome))) {
            mismatch("outcome", report.outcome, v.replayed.outcome);
            replay_ok = false;
        }
        if (v.replayed.queries != report.queries) {
            mismatch("queries", std::to_string(report.queries),
                     std::to_string(v.replayed.queries));
            replay_ok = false;
        }
        if (v.replayed.survivors != report.survivors) {
            mismatch("survivors", std::to_string(report.survivors),
                     std::to_string(v.replayed.survivors));
            replay_ok = false;
        }
        if (v.replayed.survivors_str != report.survivors_str) {
            mismatch("survivors_str", report.survivors_str,
                     v.replayed.survivors_str);
            replay_ok = false;
        }
        if (v.replayed.count_mode != report.count_mode) {
            mismatch("count_mode", report.count_mode, v.replayed.count_mode);
            replay_ok = false;
        }
        v.replay_ok = replay_ok;
    } catch (const std::exception& e) {
        v.failures.push_back(std::string("replay failed: ") + e.what());
    }

    v.ok = v.commitments_ok && v.replay_ok && v.failures.empty();
    if (obs::metrics_enabled()) {
        obs::MetricsRegistry::global()
            .counter(v.ok ? "audit.verify_pass" : "audit.verify_fail")
            .add();
    }
    if (span) {
        report::Json ea = report::Json::object();
        ea.set("ok", v.ok);
        ea.set("commitments_ok", v.commitments_ok);
        ea.set("replay_ok", v.replay_ok);
        ea.set("failures", static_cast<std::uint64_t>(v.failures.size()));
        span.set_end_args(std::move(ea));
    }
    return v;
}

report::Json AttackProof::to_json() const {
    report::Json j = report::Json::object();
    j.set("format", "mvf-attack-proof");
    j.set("version", kVersion);
    j.set("spec_hash", spec_hash);
    j.set("merkle_root", merkle_root);
    j.set("params", params.to_json());
    j.set("report", report.to_json());
    j.set("transcript", transcript.to_json());
    report::Json s = report::Json::array();
    for (const std::string& salt : salts) s.push_back(report::Json(salt));
    j.set("salts", std::move(s));
    j.set("netlist", netlist);
    return j;
}

AttackProof AttackProof::from_json(const report::Json& j) {
    const std::string& format = j.at("format").as_string();
    if (format != "mvf-attack-proof") {
        throw report::JsonError("not an attack proof (format \"" + format +
                                "\")");
    }
    const int version = static_cast<int>(j.at("version").as_int());
    if (version != kVersion) {
        throw report::JsonError("unsupported attack-proof version " +
                                std::to_string(version));
    }
    AttackProof p;
    p.spec_hash = j.at("spec_hash").as_string();
    p.merkle_root = j.at("merkle_root").as_string();
    p.params = ReplayParams::from_json(j.at("params"));
    p.report = attack::AdversaryReport::from_json(j.at("report"));
    p.transcript = attack::OracleTranscript::from_json(j.at("transcript"));
    for (const report::Json& s : j.at("salts").items()) {
        p.salts.push_back(s.as_string());
    }
    p.netlist = j.at("netlist");
    return p;
}

}  // namespace mvf::audit
