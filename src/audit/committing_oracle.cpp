#include "audit/committing_oracle.hpp"

namespace mvf::audit {
namespace {

std::string bits_to_string(const std::vector<bool>& bits) {
    std::string s;
    s.reserve(bits.size());
    for (const bool b : bits) s.push_back(b ? '1' : '0');
    return s;
}

}  // namespace

CommittingOracle::CommittingOracle(attack::Oracle& inner,
                                   std::uint64_t salt_seed,
                                   std::string context_hex)
    : OracleDecorator(inner),
      rng_(salt_seed),
      context_hex_(std::move(context_hex)) {}

std::string CommittingOracle::leaf_message(std::uint64_t index,
                                           const std::vector<bool>& inputs,
                                           const std::vector<bool>& outputs,
                                           const std::string& prev_digest_hex) {
    // "q<i>|<in>|<out>|<prev>": unambiguous because the bit strings are
    // 0/1-only and the digest is hex -- no field can contain '|'.
    std::string msg = "q";
    msg += std::to_string(index);
    msg += '|';
    msg += bits_to_string(inputs);
    msg += '|';
    msg += bits_to_string(outputs);
    msg += '|';
    msg += prev_digest_hex;
    return msg;
}

std::string CommittingOracle::next_salt_hex() {
    static constexpr char kHex[] = "0123456789abcdef";
    // 16 salt bytes = 32 hex chars, from two draws of the seeded stream.
    std::string salt;
    salt.reserve(32);
    for (int d = 0; d < 2; ++d) {
        const std::uint64_t word = rng_.next_u64();
        for (int i = 15; i >= 0; --i) {
            salt.push_back(kHex[(word >> (4 * i)) & 0xf]);
        }
    }
    return salt;
}

void CommittingOracle::commit_one(const std::vector<bool>& inputs,
                                  const std::vector<bool>& outputs) {
    const std::string& prev =
        commitments_.empty() ? context_hex_ : commitments_.back().digest_hex;
    const std::string msg =
        leaf_message(commitments_.size(), inputs, outputs, prev);
    commitments_.push_back(Commitment::commit(msg, next_salt_hex()));
}

std::vector<bool> CommittingOracle::query(const std::vector<bool>& inputs) {
    std::vector<bool> out = inner_->query(inputs);
    commit_one(inputs, out);
    return out;
}

std::vector<std::uint64_t> CommittingOracle::query_block(
    const std::vector<std::uint64_t>& inputs, int count) {
    std::vector<std::uint64_t> out = inner_->query_block(inputs, count);
    // Lane order IS query order: the recorder below us appends lanes
    // 0..count-1 in the same sequence, so chained commitments line up
    // one-to-one with transcript entries.
    for (int k = 0; k < count; ++k) {
        commit_one(attack::unpack_lane(inputs, k),
                   attack::unpack_lane(out, k));
    }
    return out;
}

std::string CommittingOracle::merkle_root() const {
    std::vector<std::string> leaves;
    leaves.reserve(commitments_.size());
    for (const Commitment& c : commitments_) leaves.push_back(c.digest_hex);
    return MerkleTree(std::move(leaves)).root();
}

}  // namespace mvf::audit
