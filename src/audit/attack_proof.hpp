// Self-contained, third-party-checkable attack evidence.
//
// The paper's game is adversarial -- a defender claims >= K viable
// functions survive, an attacker claims de-camouflage in N queries -- but
// a bare AdversaryReport is just JSON either party could fabricate.  An
// AttackProof turns one oracle-guided attack run into an artifact a
// distrusting verifier checks WITHOUT the chip:
//
//   * the camouflaged netlist snapshot the attack ran on,
//   * the full attacker-visible transcript plus one salt per query,
//   * the Merkle root over the chained per-query commitments the
//     CommittingOracle produced while the attack ran (the chain is seeded
//     with the netlist digest, so the root binds circuit + queries +
//     answers + order in one value the prover can publish at attack time),
//   * the claimed AdversaryReport and the counting parameters needed to
//     re-derive it.
//
// verify() re-derives every commitment from the artifact's own salts and
// transcript and compares the recomputed root (constant-time) -- a flipped
// answer bit, a truncated transcript, or a corrupted salt all land here --
// then replays the transcript chip-free through TranscriptOracle under the
// claimed adversary and recomputes the surviving-configuration count,
// rejecting on any claim mismatch.
//
// What the proof does NOT show: that the transcript's answers came from a
// real chip.  A prover can fabricate a self-consistent transcript for a
// function of its choosing; the binding comes from publishing the Merkle
// root at attack time (or opening sampled queries against a live chip via
// MerkleTree::path).  Noise is likewise baked in: a noisy run's transcript
// replays the noisy answers, so the proof certifies "this query sequence,
// with these observed answers, pins the survivor count to X" -- not that
// the answers were noise-free.

#ifndef MVF_AUDIT_ATTACK_PROOF_HPP
#define MVF_AUDIT_ATTACK_PROOF_HPP

#include <string>
#include <vector>

#include "attack/adversary.hpp"
#include "attack/oracle.hpp"
#include "attack/oracle_attack.hpp"
#include "audit/committing_oracle.hpp"
#include "camo/camo_netlist.hpp"
#include "report/json.hpp"

namespace mvf::audit {

/// The semantic subset of OracleAttackParams a verifier needs to recompute
/// the survivor count (counting backends are deterministic per seed, so
/// carrying these pins the count exactly).  Performance-only knobs
/// (solver config, shared_miter, threads) are deliberately absent, and so
/// is the warm-up split: under replay ALL transcript entries are constrained
/// as scripted warm-up, which yields the same constraint set -- and hence
/// the same survivors and status -- as the live run regardless of how the
/// live attack classified each query.
struct ReplayParams {
    attack::CountMode count_mode = attack::CountMode::kExact;
    std::uint64_t max_survivors = 1u << 20;
    int count_cache_mb = 64;
    std::uint64_t count_max_decisions = 100'000;
    double epsilon = 0.8;
    double delta = 0.2;
    std::uint64_t count_seed = 1;
    bool enumerate_survivors = true;
    /// Cells the live attack knew were uncamouflaged (circuit scenarios,
    /// see camo::inject); indexed by netlist node id, empty for the S-box
    /// flow.  Semantic, not performance: replaying without it would free
    /// every cell and change the survivor count.
    std::vector<bool> fixed_nominal;

    static ReplayParams from_attack_params(
        const attack::OracleAttackParams& p);
    /// The OracleAttackParams a verifier runs the replay with:
    /// `transcript_entries` patterns of scripted warm-up, no iteration cap.
    /// The result's fixed_nominal pointer aliases this ReplayParams, which
    /// must outlive the replay (AttackProof::verify holds it as a member).
    attack::OracleAttackParams to_attack_params(
        std::size_t transcript_entries) const;

    report::Json to_json() const;
    static ReplayParams from_json(const report::Json& j);
};

/// Outcome of AttackProof::verify().
struct ProofVerification {
    bool ok = false;
    /// Commitment layer: recomputed chain + Merkle root matched the
    /// committed root.
    bool commitments_ok = false;
    /// Replay layer: the chip-free replay reproduced the claim.
    bool replay_ok = false;
    /// Human-readable reasons for every rejection (empty when ok).
    std::vector<std::string> failures;
    /// The report the chip-free replay produced (meaningful when the
    /// replay ran, even if it then mismatched the claim).
    attack::AdversaryReport replayed;
};

struct AttackProof {
    static constexpr int kVersion = 1;

    /// Canonical scenario hash (flow::spec_hash) for provenance; empty for
    /// attacks run outside a scenario.  NOT covered by the commitments --
    /// the netlist digest in the chain is the binding identity.
    std::string spec_hash;
    /// Camouflaged-netlist snapshot (flow/stage_io.hpp schema), kept as an
    /// opaque document so the audit layer does not depend on flow.
    report::Json netlist;
    /// The claimed outcome, verbatim from the live run.
    attack::AdversaryReport report;
    /// The attacker-visible query sequence.
    attack::OracleTranscript transcript;
    /// One commitment salt per transcript entry, in query order.
    std::vector<std::string> salts;
    /// Merkle root over the chained commitment digests.
    std::string merkle_root;
    ReplayParams params;

    /// The commitment-chain context: SHA-256 of the canonicalized netlist
    /// snapshot.  Harnesses feed this to OracleModelParams::commit_context
    /// before the attack and prove() re-derives it.
    static std::string netlist_context(const report::Json& netlist_snapshot);

    /// Assembles the artifact at attack end.  Cross-checks that the
    /// committer's chain matches `transcript` exactly (count, messages,
    /// digests) and throws std::runtime_error on any disagreement -- a
    /// mismatch here is a harness wiring bug, not a tampered artifact.
    static AttackProof prove(report::Json netlist_snapshot,
                             const attack::AdversaryReport& report,
                             const attack::OracleTranscript& transcript,
                             const CommittingOracle& committer,
                             const attack::OracleAttackParams& live_params);

    /// Checks the artifact chip-free; `netlist` must be the snapshot
    /// reconstructed from this proof's `netlist` document (the caller owns
    /// the CamoLibrary needed to rebuild it).  Never throws on tampered
    /// content -- every rejection is reported in the result.
    ProofVerification verify(const camo::CamoNetlist& netlist) const;

    report::Json to_json() const;
    /// Inverse of to_json(); throws report::JsonError on malformed input.
    /// Load proof files with report::Json::parse_strict so duplicate keys
    /// are rejected rather than resolved last-wins.
    static AttackProof from_json(const report::Json& j);
};

}  // namespace mvf::audit

#endif  // MVF_AUDIT_ATTACK_PROOF_HPP
