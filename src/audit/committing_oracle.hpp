// Oracle decorator that commits to every answer as it is served.
//
// Slots into OracleStack just below the counter (chip -> noise -> budget
// -> cache -> recorder -> COMMITTER -> counter), so it sees exactly the
// attacker-visible query sequence the transcript recorder sees.  Each
// answered pattern becomes one salted commitment whose message embeds the
// PREVIOUS commitment's digest, chaining the leaves: the commitments bind
// the query ORDER, not just the set.  A Merkle tree over the leaf digests
// gives a single root a prover can publish, and lets any one query be
// opened (leaf + salt + sibling path) without revealing the rest.
//
// Like TranscriptOracle's recorder this is deliberately NOT thread-safe:
// a commitment chain is one ordered sequence.  Harnesses reject
// emit_proof together with portfolio attacks for the same reason they
// reject replaying a portfolio's interleaved transcript.

#ifndef MVF_AUDIT_COMMITTING_ORACLE_HPP
#define MVF_AUDIT_COMMITTING_ORACLE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "attack/oracle.hpp"
#include "audit/commitment.hpp"
#include "util/rng.hpp"

namespace mvf::audit {

class CommittingOracle final : public attack::OracleDecorator {
public:
    /// Salts are drawn from a seeded stream so a run is reproducible at
    /// fixed seed; the seed itself never appears in the proof artifact
    /// (the per-query salts do).  `context_hex` seeds the chain: the FIRST
    /// leaf's message embeds it where later leaves embed their
    /// predecessor's digest, so commitments made over different contexts
    /// (e.g. different netlists -- harnesses pass a netlist digest) can
    /// never be spliced together.
    CommittingOracle(attack::Oracle& inner, std::uint64_t salt_seed,
                     std::string context_hex = "");

    std::vector<bool> query(const std::vector<bool>& inputs) override;
    std::vector<std::uint64_t> query_block(
        const std::vector<std::uint64_t>& inputs, int count) override;

    const std::vector<Commitment>& commitments() const { return commitments_; }
    std::uint64_t committed() const { return commitments_.size(); }

    /// Merkle root over the commitment digests (rebuilt per call; callers
    /// take it once at attack end).
    std::string merkle_root() const;

    /// The committed message for query `index`: the chain format verifiers
    /// re-derive.  `prev_digest_hex` is the context for the first query and
    /// the previous commitment's digest afterwards.
    static std::string leaf_message(std::uint64_t index,
                                    const std::vector<bool>& inputs,
                                    const std::vector<bool>& outputs,
                                    const std::string& prev_digest_hex);

private:
    void commit_one(const std::vector<bool>& inputs,
                    const std::vector<bool>& outputs);
    std::string next_salt_hex();

    util::Rng rng_;
    std::string context_hex_;
    std::vector<Commitment> commitments_;
};

}  // namespace mvf::audit

#endif  // MVF_AUDIT_COMMITTING_ORACLE_HPP
