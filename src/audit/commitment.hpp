// Salted hash commitments and a Merkle tree over per-query leaves.
//
// The audit trail (audit/attack_proof.hpp) binds every oracle answer to a
// commitment digest = SHA-256(salt || message).  Publishing the digest
// commits to the message without revealing it (hiding, thanks to the
// 128-bit salt); later publishing (salt, message) opens the commitment
// and anyone can re-derive the digest (binding, thanks to collision
// resistance).  The Merkle tree lets a prover open ONE query -- leaf,
// salt, and an O(log n) sibling path -- without revealing the rest of
// the transcript.
//
// All digest comparisons here are constant-time: an auditor checking a
// hostile artifact should not leak via timing how much of a forged
// digest matched.

#ifndef MVF_AUDIT_COMMITMENT_HPP
#define MVF_AUDIT_COMMITMENT_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mvf::audit {

// True iff a == b, examining every byte regardless of where the first
// mismatch sits.  Unequal lengths return false immediately -- length is
// public (all digests here are 64 hex chars).
bool constant_time_equal(std::string_view a, std::string_view b);

// A salted commitment to one message.  salt_hex is the commitment
// randomness (hex-encoded, any length; the committer uses 16 bytes /
// 32 hex chars); digest_hex = SHA-256(salt_bytes-as-hex-string || message).
// The salt is concatenated as its hex string, not decoded -- both sides
// of the protocol exchange hex, so hashing the canonical hex form keeps
// the scheme trivially reproducible in any language.
struct Commitment {
    std::string salt_hex;
    std::string digest_hex;

    static Commitment commit(std::string_view message,
                             std::string salt_hex);

    // Constant-time check that this commitment opens to `message`.
    bool open(std::string_view message) const;
};

// Merkle tree over hex leaf digests.  Leaf and interior hashes are
// domain-separated ("L:" / "I:" prefixes) so an interior node can never
// be confused for a leaf; an odd node at any level is promoted unchanged.
class MerkleTree {
public:
    struct PathElement {
        std::string digest_hex;
        bool sibling_on_left = false;  // sibling sits left of the running hash
    };

    explicit MerkleTree(std::vector<std::string> leaf_digests_hex);

    const std::string& root() const { return root_; }
    std::size_t num_leaves() const { return num_leaves_; }

    // Sibling path from leaf `index` up to (excluding) the root.
    std::vector<PathElement> path(std::size_t index) const;

    // Recomputes the root from one leaf and its path; constant-time
    // compare against `root_hex`.
    static bool verify_path(std::string_view leaf_digest_hex,
                            std::size_t index,
                            const std::vector<PathElement>& path,
                            std::string_view root_hex);

    // The domain-separated hashes, exposed so verifiers can recompute a
    // tree without instantiating one.
    static std::string leaf_hash(std::string_view leaf_digest_hex);
    static std::string interior_hash(std::string_view left_hex,
                                     std::string_view right_hex);

private:
    // levels_[0] = hashed leaves, levels_.back() = {root}.
    std::vector<std::vector<std::string>> levels_;
    std::string root_;
    std::size_t num_leaves_ = 0;
};

}  // namespace mvf::audit

#endif  // MVF_AUDIT_COMMITMENT_HPP
