#include "sat/simplify.hpp"

#include <algorithm>
#include <cassert>

namespace mvf::sat {

Preprocessor::Preprocessor(Solver* solver, SolverConfig config)
    : solver_(solver), config_(config) {}

void Preprocessor::freeze(Var v) {
    if (static_cast<std::size_t>(v) >= frozen_.size()) {
        frozen_.resize(static_cast<std::size_t>(v) + 1, false);
    }
    frozen_[static_cast<std::size_t>(v)] = true;
}

void Preprocessor::freeze_all(std::span<const Var> vars) {
    for (const Var v : vars) freeze(v);
}

void Preprocessor::freeze_lits(std::span<const Lit> lits) {
    for (const Lit l : lits) freeze(lit_var(l));
}

std::uint64_t Preprocessor::signature(const std::vector<Lit>& lits) const {
    std::uint64_t sig = 0;
    for (const Lit l : lits) sig |= 1ull << (l & 63);
    return sig;
}

Value Preprocessor::fixed_value(Lit l) const {
    const Value v = fixed_[static_cast<std::size_t>(lit_var(l))];
    if (v == Value::kUnknown) return Value::kUnknown;
    return (v == Value::kTrue) != lit_negated(l) ? Value::kTrue : Value::kFalse;
}

void Preprocessor::occ_remove(Lit l, int ci) {
    std::vector<int>& list = occ_[static_cast<std::size_t>(l)];
    for (std::size_t i = 0; i < list.size(); ++i) {
        if (list[i] == ci) {
            list[i] = list.back();
            list.pop_back();
            return;
        }
    }
}

void Preprocessor::kill(int ci) {
    if (dead_[static_cast<std::size_t>(ci)]) return;
    dead_[static_cast<std::size_t>(ci)] = true;
    for (const Lit l : cls_[static_cast<std::size_t>(ci)]) occ_remove(l, ci);
}

int Preprocessor::add_work_clause(std::vector<Lit> lits) {
    assert(lits.size() >= 2);
    const int ci = static_cast<int>(cls_.size());
    sig_.push_back(signature(lits));
    for (const Lit l : lits) occ_[static_cast<std::size_t>(l)].push_back(ci);
    cls_.push_back(std::move(lits));
    dead_.push_back(false);
    queued_.push_back(true);
    subsume_queue_.push_back(ci);
    return ci;
}

bool Preprocessor::assign_unit(Lit l) {
    const Var v = lit_var(l);
    const Value cur = fixed_[static_cast<std::size_t>(v)];
    const Value want = lit_negated(l) ? Value::kFalse : Value::kTrue;
    if (cur != Value::kUnknown) return cur == want;
    fixed_[static_cast<std::size_t>(v)] = want;
    unit_queue_.push_back(l);
    return true;
}

bool Preprocessor::snapshot() {
    Solver& s = *solver_;
    const std::size_t nv = static_cast<std::size_t>(s.num_vars());
    frozen_.resize(nv, false);
    fixed_.assign(s.assigns_.begin(), s.assigns_.end());
    occ_.assign(2 * nv, {});
    cls_.clear();
    sig_.clear();
    dead_.clear();
    queued_.clear();
    subsume_queue_.clear();
    unit_queue_.clear();
    learned_.clear();

    std::vector<Lit> tmp;
    for (const Solver::Clause& c : s.clauses_) {
        if (c.learned) {
            learned_.emplace_back(c.lits, c.activity);
            continue;
        }
        tmp.clear();
        bool satisfied = false;
        for (const Lit l : c.lits) {
            const Value v = fixed_value(l);
            if (v == Value::kTrue) {
                satisfied = true;
                break;
            }
            if (v == Value::kFalse) continue;
            tmp.push_back(l);
        }
        if (satisfied) {
            ++stats_.removed_clauses;
            continue;
        }
        std::sort(tmp.begin(), tmp.end());
        tmp.erase(std::unique(tmp.begin(), tmp.end()), tmp.end());
        if (tmp.empty()) return false;  // conflicting at level 0
        if (tmp.size() == 1) {
            if (!assign_unit(tmp[0])) return false;
            ++stats_.removed_clauses;
            continue;
        }
        add_work_clause(tmp);
    }
    return true;
}

bool Preprocessor::propagate_units() {
    while (!unit_queue_.empty()) {
        const Lit l = unit_queue_.back();
        unit_queue_.pop_back();
        // Clauses containing l are satisfied.
        std::vector<int>& sat_list = occ_[static_cast<std::size_t>(l)];
        while (!sat_list.empty()) {
            ++stats_.removed_clauses;
            kill(sat_list.back());
        }
        // Clauses containing !l lose that literal.
        const std::vector<int> falsified = occ_[static_cast<std::size_t>(lit_not(l))];
        for (const int ci : falsified) {
            if (dead_[static_cast<std::size_t>(ci)]) continue;
            std::vector<Lit>& c = cls_[static_cast<std::size_t>(ci)];
            occ_remove(lit_not(l), ci);
            c.erase(std::remove(c.begin(), c.end(), lit_not(l)), c.end());
            sig_[static_cast<std::size_t>(ci)] = signature(c);
            assert(!c.empty());
            if (c.size() == 1) {
                const Lit unit = c[0];
                dead_[static_cast<std::size_t>(ci)] = true;
                occ_remove(unit, ci);
                if (!assign_unit(unit)) return false;
            } else if (!queued_[static_cast<std::size_t>(ci)]) {
                queued_[static_cast<std::size_t>(ci)] = true;
                subsume_queue_.push_back(ci);
            }
        }
    }
    return true;
}

namespace {

/// sub ⊆ sup, both sorted ascending.
bool subset_of(const std::vector<Lit>& sub, const std::vector<Lit>& sup) {
    std::size_t j = 0;
    for (const Lit l : sub) {
        while (j < sup.size() && sup[j] < l) ++j;
        if (j == sup.size() || sup[j] != l) return false;
        ++j;
    }
    return true;
}

}  // namespace

bool Preprocessor::clause_implied(const std::vector<Lit>& lits) {
    // Is some live clause a subset of `lits`?  Candidates come from the
    // least-occurring literal's list.  Used to discount resolvents during
    // variable elimination: a resolvent subsumed by an existing clause
    // need not be added, so it should not count toward the growth bound
    // (the CnfBuilder one-hot selector exclusions subsume a large share of
    // gate-variable resolvents, which would otherwise block elimination).
    const std::uint64_t sig = signature(lits);
    Lit min_lit = -1;
    std::size_t min_occ = ~std::size_t{0};
    for (const Lit l : lits) {
        const std::size_t n = occ_[static_cast<std::size_t>(l)].size();
        if (n < min_occ) {
            min_occ = n;
            min_lit = l;
        }
    }
    if (min_lit < 0) return false;
    if (budget_ > min_occ * lits.size()) {
        budget_ -= min_occ * lits.size();
    } else {
        budget_ = 0;
        return false;
    }
    for (const int ci : occ_[static_cast<std::size_t>(min_lit)]) {
        const std::vector<Lit>& c = cls_[static_cast<std::size_t>(ci)];
        if (c.size() > lits.size()) continue;
        if ((sig_[static_cast<std::size_t>(ci)] & ~sig) != 0) continue;
        if (subset_of(c, lits)) return true;
    }
    return false;
}

bool Preprocessor::subsume_round(bool* progress) {
    // Queue-driven backward subsumption + self-subsuming resolution: each
    // queued clause kills every clause it subsumes and strengthens every
    // clause it almost-subsumes (equal but for one flipped literal).
    std::vector<Lit> probe;
    while (!subsume_queue_.empty()) {
        const int ci = subsume_queue_.back();
        subsume_queue_.pop_back();
        queued_[static_cast<std::size_t>(ci)] = false;
        if (dead_[static_cast<std::size_t>(ci)]) continue;
        if (budget_ == 0) {
            subsume_queue_.clear();
            std::fill(queued_.begin(), queued_.end(), false);
            break;
        }

        // One probe per literal position: position -1 is plain subsumption
        // (probe == clause), position k flips lit k (self-subsumption).
        const std::vector<Lit> base = cls_[static_cast<std::size_t>(ci)];
        for (int flip = -1; flip < static_cast<int>(base.size()); ++flip) {
            probe = base;
            if (flip >= 0) {
                probe[static_cast<std::size_t>(flip)] =
                    lit_not(probe[static_cast<std::size_t>(flip)]);
                std::sort(probe.begin(), probe.end());
            }
            const std::uint64_t probe_sig = signature(probe);
            // Enumerate candidate superset clauses via the least-occurring
            // literal of the probe.
            const Lit* min_lit = nullptr;
            std::size_t min_occ = ~std::size_t{0};
            for (const Lit& l : probe) {
                const std::size_t n = occ_[static_cast<std::size_t>(l)].size();
                if (n < min_occ) {
                    min_occ = n;
                    min_lit = &l;
                }
            }
            if (!min_lit) continue;
            if (budget_ > min_occ * probe.size()) {
                budget_ -= min_occ * probe.size();
            } else {
                budget_ = 0;
                break;
            }
            // Snapshot: strengthening mutates occurrence lists.
            const std::vector<int> candidates = occ_[static_cast<std::size_t>(*min_lit)];
            for (const int cj : candidates) {
                if (cj == ci || dead_[static_cast<std::size_t>(cj)]) continue;
                std::vector<Lit>& target = cls_[static_cast<std::size_t>(cj)];
                if (target.size() < probe.size()) continue;
                if ((probe_sig & ~sig_[static_cast<std::size_t>(cj)]) != 0) continue;
                if (!subset_of(probe, target)) continue;
                if (flip < 0) {
                    ++stats_.subsumed_clauses;
                    ++stats_.removed_clauses;
                    kill(cj);
                    *progress = true;
                } else {
                    // Self-subsumption: probe ⊆ target where probe is the
                    // clause with lit k flipped, so resolving the clause
                    // with target on that literal yields target minus the
                    // flipped literal; shrink target in place.
                    const Lit f = lit_not(base[static_cast<std::size_t>(flip)]);
                    occ_remove(f, cj);
                    target.erase(std::remove(target.begin(), target.end(), f),
                                 target.end());
                    sig_[static_cast<std::size_t>(cj)] = signature(target);
                    ++stats_.strengthened_lits;
                    *progress = true;
                    if (target.size() == 1) {
                        const Lit unit = target[0];
                        dead_[static_cast<std::size_t>(cj)] = true;
                        occ_remove(unit, cj);
                        if (!assign_unit(unit)) return false;
                        if (!propagate_units()) return false;
                    } else if (!queued_[static_cast<std::size_t>(cj)]) {
                        queued_[static_cast<std::size_t>(cj)] = true;
                        subsume_queue_.push_back(cj);
                    }
                }
            }
            if (dead_[static_cast<std::size_t>(ci)]) break;  // unit cascade
        }
    }
    return true;
}

bool Preprocessor::eliminate_round(bool* progress) {
    Solver& s = *solver_;
    const int nv = s.num_vars();

    // Cheapest-first: occurrence product approximates resolvent work.
    std::vector<std::pair<std::uint64_t, Var>> order;
    for (Var v = 0; v < nv; ++v) {
        const std::size_t sv = static_cast<std::size_t>(v);
        if (frozen_[sv] || s.eliminated_[sv] || fixed_[sv] != Value::kUnknown) {
            continue;
        }
        const std::size_t np = occ_[static_cast<std::size_t>(mk_lit(v))].size();
        const std::size_t nn = occ_[static_cast<std::size_t>(mk_lit(v, true))].size();
        if (np == 0 && nn == 0) continue;  // unreferenced; nothing to gain
        if (np > static_cast<std::size_t>(config_.elim_occ_limit) ||
            nn > static_cast<std::size_t>(config_.elim_occ_limit)) {
            continue;
        }
        order.emplace_back(static_cast<std::uint64_t>(np) * nn, v);
    }
    std::sort(order.begin(), order.end());

    std::vector<Lit> resolvent;
    for (const auto& [cost, v] : order) {
        const std::size_t sv = static_cast<std::size_t>(v);
        if (fixed_[sv] != Value::kUnknown) continue;  // fixed by a cascade
        const Lit pos_lit = mk_lit(v);
        const Lit neg_lit = mk_lit(v, true);
        // Copy: elimination rewrites the lists as it kills/adds clauses.
        const std::vector<int> pos = occ_[static_cast<std::size_t>(pos_lit)];
        const std::vector<int> neg = occ_[static_cast<std::size_t>(neg_lit)];
        if (pos.size() > static_cast<std::size_t>(config_.elim_occ_limit) ||
            neg.size() > static_cast<std::size_t>(config_.elim_occ_limit)) {
            continue;
        }

        // Trial resolution: collect the non-tautological resolvents and
        // abort on growth or length violations.
        std::vector<std::vector<Lit>> resolvents;
        const std::size_t limit =
            pos.size() + neg.size() + static_cast<std::size_t>(config_.elim_growth);
        bool ok = true;
        for (const int pi : pos) {
            if (!ok) break;
            for (const int ni : neg) {
                const std::vector<Lit>& pc = cls_[static_cast<std::size_t>(pi)];
                const std::vector<Lit>& nc = cls_[static_cast<std::size_t>(ni)];
                resolvent.clear();
                bool tautology = false;
                for (const Lit l : pc) {
                    if (l != pos_lit) resolvent.push_back(l);
                }
                for (const Lit l : nc) {
                    if (l != neg_lit) resolvent.push_back(l);
                }
                std::sort(resolvent.begin(), resolvent.end());
                resolvent.erase(std::unique(resolvent.begin(), resolvent.end()),
                                resolvent.end());
                for (std::size_t i = 0; i + 1 < resolvent.size(); ++i) {
                    if (resolvent[i + 1] == lit_not(resolvent[i])) {
                        tautology = true;
                        break;
                    }
                }
                if (tautology) continue;
                // An implied resolvent never has to be added; any subsumer
                // is v-free (resolvents are v-free by construction), so it
                // survives this elimination.
                if (clause_implied(resolvent)) continue;
                if (resolvent.size() >
                    static_cast<std::size_t>(config_.elim_resolvent_limit)) {
                    ok = false;
                    break;
                }
                resolvents.push_back(resolvent);
                if (resolvents.size() > limit) {
                    ok = false;
                    break;
                }
            }
        }
        if (!ok) continue;

        // Commit: record the smaller occurrence side for model extension,
        // drop every clause mentioning v, add the resolvents.
        Solver::Elimination record;
        record.var = v;
        record.negated = pos.size() > neg.size();
        const std::vector<int>& stored = record.negated ? neg : pos;
        record.clauses.reserve(stored.size());
        for (const int ci : stored) {
            record.clauses.push_back(cls_[static_cast<std::size_t>(ci)]);
        }
        s.eliminations_.push_back(std::move(record));
        s.eliminated_[sv] = true;
        ++stats_.eliminated_vars;
        *progress = true;
        for (const int ci : pos) {
            ++stats_.removed_clauses;
            kill(ci);
        }
        for (const int ci : neg) {
            ++stats_.removed_clauses;
            kill(ci);
        }
        for (std::vector<Lit>& r : resolvents) {
            if (r.size() == 1) {
                if (!assign_unit(r[0])) return false;
            } else {
                add_work_clause(std::move(r));
            }
        }
        if (!propagate_units()) return false;
    }
    return true;
}

void Preprocessor::commit() {
    Solver& s = *solver_;
    const std::size_t nv = static_cast<std::size_t>(s.num_vars());

    s.clauses_.clear();
    for (std::size_t ci = 0; ci < cls_.size(); ++ci) {
        if (dead_[ci]) continue;
        s.clauses_.push_back({std::move(cls_[ci]), false, 0.0});
    }
    // Re-admit surviving learned clauses: entailed by the original
    // formula, hence sound alongside the simplified one as long as they
    // avoid eliminated variables.
    std::vector<Lit> learned_units;
    s.num_learned_ = 0;
    std::vector<Lit> tmp;
    for (auto& [lits, activity] : learned_) {
        tmp.clear();
        bool drop = false;
        for (const Lit l : lits) {
            if (s.eliminated_[static_cast<std::size_t>(lit_var(l))]) {
                drop = true;
                break;
            }
            const Value v = fixed_value(l);
            if (v == Value::kTrue) {
                drop = true;  // satisfied at level 0
                break;
            }
            if (v == Value::kFalse) continue;
            tmp.push_back(l);
        }
        if (drop) continue;
        if (tmp.empty()) {
            s.ok_ = false;  // entailed empty clause
            continue;
        }
        if (tmp.size() == 1) {
            learned_units.push_back(tmp[0]);
            continue;
        }
        s.clauses_.push_back({tmp, true, activity});
        ++s.num_learned_;
    }

    // Rebuild derived state: watches, reasons (everything on the trail is
    // a level-0 fact now), branching heap (without eliminated vars).
    for (auto& w : s.watches_) w.clear();
    for (int ci = 0; ci < static_cast<int>(s.clauses_.size()); ++ci) s.attach(ci);
    std::fill(s.reason_.begin(), s.reason_.end(), Solver::kNoReason);
    s.heap_.clear();
    std::fill(s.heap_pos_.begin(), s.heap_pos_.end(), -1);
    for (Var v = 0; v < static_cast<int>(nv); ++v) s.heap_insert(v);

    // Publish the newly fixed variables and propagate them against the
    // rebuilt database (any conflict here means the instance is UNSAT).
    // Older trail entries need no re-propagation: every surviving clause
    // had its satisfied/falsified literals stripped, so none mentions an
    // already-assigned variable.
    s.qhead_ = s.trail_.size();
    for (Var v = 0; v < static_cast<int>(nv); ++v) {
        if (fixed_[v] != Value::kUnknown &&
            s.assigns_[static_cast<std::size_t>(v)] == Value::kUnknown) {
            s.enqueue(mk_lit(v, fixed_[v] == Value::kFalse), Solver::kNoReason);
        }
    }
    for (const Lit l : learned_units) {
        const Value v = s.value(l);
        if (v == Value::kTrue) continue;
        if (v == Value::kFalse) {
            s.ok_ = false;
            return;
        }
        s.enqueue(l, Solver::kNoReason);
    }
    if (s.propagate() >= 0) s.ok_ = false;

    s.stats_.eliminated_vars += stats_.eliminated_vars;
    s.stats_.subsumed_clauses += stats_.subsumed_clauses;
    s.stats_.strengthened_lits += stats_.strengthened_lits;
}

bool Preprocessor::run() { return run_internal(/*full=*/true); }

bool Preprocessor::run_light() { return run_internal(/*full=*/false); }

bool Preprocessor::run_internal(bool full) {
    Solver& s = *solver_;
    if (!s.ok_) return false;
    assert(s.decision_level() == 0);
    ++s.stats_.preprocess_runs;
    stats_ = PreprocessStats{};
    // Budget bounds the subsumption work on pathological instances; sized
    // to be irrelevant for every workload in this repo.
    budget_ = 50'000'000;

    bool sat = snapshot() && propagate_units();
    bool progress = full;
    while (sat && progress && stats_.rounds < config_.max_rounds) {
        ++stats_.rounds;
        progress = false;
        sat = subsume_round(&progress) && eliminate_round(&progress);
    }
    commit();
    if (!sat) s.ok_ = false;
    return s.ok_;
}

}  // namespace mvf::sat
