#pragma once
// A compact CDCL SAT solver.
//
// Substrate for the de-camouflaging attackers (paper section I: deciding
// whether a viable function is plausible is a QBF/SAT query in the style of
// refs [11], [12], [14]).  Implements the standard modern kernel: two-watched
// literals with blocking literals, first-UIP conflict learning with recursive
// minimization, VSIDS activities, phase saving, and Luby restarts.
//
// The solver is incremental: clauses and variables may be added between
// solve() calls (the trail is always at decision level 0 outside of solve),
// which is what the CEGAR oracle attack leans on -- one solver instance
// accumulates distinguishing-input constraints across hundreds of calls.
// To keep long runs from degrading, the learned-clause database is reduced
// periodically (MiniSat-style activity-sorted halving with locked/binary
// clauses retained).

#include <cstdint>
#include <vector>

namespace mvf::sat {

class Preprocessor;     // sat/simplify.hpp
class ClauseExchange;   // sat/clause_exchange.hpp

using Var = int;
/// Literal encoding: 2*var for the positive literal, 2*var+1 for negated.
using Lit = int;

inline Lit mk_lit(Var v, bool negated = false) { return 2 * v + (negated ? 1 : 0); }
inline Var lit_var(Lit l) { return l >> 1; }
inline bool lit_negated(Lit l) { return l & 1; }
inline Lit lit_not(Lit l) { return l ^ 1; }

enum class Value : std::uint8_t { kFalse = 0, kTrue = 1, kUnknown = 2 };

class Solver {
public:
    /// kUnknown is only possible when a per-call conflict budget is set
    /// (set_conflict_budget): the call gave up, the solver stays usable.
    enum class Result { kSat, kUnsat, kUnknown };

    struct Stats {
        std::uint64_t conflicts = 0;
        std::uint64_t decisions = 0;
        std::uint64_t propagations = 0;
        std::uint64_t restarts = 0;
        std::uint64_t learned = 0;
        std::uint64_t reduces = 0;          ///< learned-DB reductions
        std::uint64_t learned_removed = 0;  ///< clauses dropped by reductions
        // Preprocessing (sat::Preprocessor) totals, accumulated over every
        // run() against this solver.
        std::uint64_t preprocess_runs = 0;
        std::uint64_t eliminated_vars = 0;     ///< vars removed by BVE
        std::uint64_t subsumed_clauses = 0;    ///< clauses killed by subsumption
        std::uint64_t strengthened_lits = 0;   ///< lits removed by self-subsumption
        // Per-call telemetry totals (PR 6): accumulated by solve().
        std::uint64_t solves = 0;              ///< solve() calls completed
        std::uint64_t max_decision_level = 0;  ///< deepest level ever reached
        double solve_seconds = 0.0;            ///< wall time inside solve()
    };

    /// What the most recent solve() call did, as a self-contained delta --
    /// the CEGAR span instrumentation reads this instead of diffing Stats
    /// snapshots by hand.
    struct SolveDelta {
        Result result = Result::kUnknown;
        std::uint64_t conflicts = 0;
        std::uint64_t decisions = 0;
        std::uint64_t propagations = 0;
        std::uint64_t max_decision_level = 0;  ///< deepest level this call
        double seconds = 0.0;
    };

    Var new_var();
    int num_vars() const { return static_cast<int>(assigns_.size()); }
    /// Clauses currently in the database (problem + learned); the CEGAR
    /// attack uses growth of this figure to schedule inprocessing.
    std::size_t num_clauses() const { return clauses_.size(); }

    /// Adds a clause (copied).  Returns false if the clause is trivially
    /// unsatisfiable at level 0 (solver becomes permanently UNSAT).
    bool add_clause(std::vector<Lit> lits);

    /// Convenience overloads.
    bool add_unit(Lit a) { return add_clause({a}); }
    bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
    bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

    Result solve(const std::vector<Lit>& assumptions = {});

    /// Model access after kSat.  Covers every variable, including those
    /// removed by preprocessing: their values are reconstructed lazily
    /// from the stored eliminated clauses on first access after each SAT
    /// answer (model enumeration loops that only read frozen variables --
    /// the attack's selector families -- never pay for the extension).
    bool model_value(Var v) const {
        if (!model_extended_ && eliminated_[static_cast<std::size_t>(v)]) {
            extend_model();
        }
        return model_[static_cast<std::size_t>(v)];
    }

    /// True once `v` was removed by Preprocessor variable elimination.
    /// Such variables must not appear in later clauses or assumptions;
    /// freeze anything the caller intends to reference again.
    bool var_eliminated(Var v) const {
        return eliminated_[static_cast<std::size_t>(v)];
    }

    /// False once the clause database is contradictory at level 0 (every
    /// later solve() returns kUnsat).
    bool ok() const { return ok_; }

    /// Snapshot of the problem formula for external consumers (the
    /// count::ProjectedCounter/ApproxCounter subsystem): every non-learned
    /// clause plus every level-0 trail literal as a unit clause.  Level-0
    /// literals are implied by the formula, so including them preserves
    /// the model set while handing the consumer the solver's propagation
    /// work for free.  Variables removed by preprocessing simply do not
    /// appear (bounded variable elimination preserves satisfiability
    /// projected onto the remaining -- in particular all frozen --
    /// variables).  When ok() is false the snapshot is a single empty
    /// clause.  Requires decision level 0 (always true outside solve()).
    std::vector<std::vector<Lit>> snapshot_clauses() const;

    const Stats& stats() const { return stats_; }

    /// Telemetry for the most recent solve() call (all-zero before the
    /// first call).
    const SolveDelta& last_solve() const { return last_solve_; }

    /// Overrides the learned-clause budget (the count above which the
    /// database is reduced; it grows geometrically after each reduction).
    /// 0 restores the adaptive default of max(#problem clauses / 3, 2000).
    /// Testing/tuning hook.
    void set_learned_limit(std::uint64_t limit) {
        learned_budget_ = static_cast<double>(limit);
    }

    /// Per-solve() conflict budget; a call that exceeds it returns
    /// Result::kUnknown instead of running unboundedly (the approximate
    /// counter leans on this -- CDCL on dense XOR constraints can wedge a
    /// single call).  0 (the default) means unlimited.  The portfolio also
    /// uses it to slice long solves so cancellation latency stays bounded:
    /// learned clauses persist across kUnknown returns, so re-solving
    /// resumes rather than restarts.
    void set_conflict_budget(std::uint64_t conflicts) {
        conflict_budget_ = conflicts;
    }

    /// Diversification: seeds the initial branching polarities (phase
    /// saving overwrites them as search progresses).  0 restores the
    /// all-false default.  Applies to existing AND future variables, so
    /// portfolio members explore different regions of one search space.
    void set_phase_seed(std::uint64_t seed);

    /// Attaches this solver to a portfolio clause pool as `member`.
    /// Learned clauses of <= ClauseExchange::max_lits() literals are
    /// published with the current exchange epoch; foreign clauses with
    /// epoch <= the current epoch are imported at restart boundaries as
    /// learned clauses (reduce_db may drop them again).  Pass nullptr to
    /// detach.  See clause_exchange.hpp for the prefix-soundness contract
    /// the caller must uphold via set_exchange_epoch.
    void set_clause_exchange(ClauseExchange* exchange, int member);

    /// The caller's stamped-constraint count: export tags, import filter.
    void set_exchange_epoch(std::uint64_t epoch) { exchange_epoch_ = epoch; }

private:
    friend class Preprocessor;  // rewrites clauses_/watches_ wholesale

    struct Clause {
        std::vector<Lit> lits;
        bool learned = false;
        double activity = 0.0;
    };
    /// Model-extension record for one variable removed by bounded variable
    /// elimination: the original clauses in which the variable occurred
    /// with polarity `negated` (the smaller occurrence side).  The other
    /// side is implied by the resolvents -- see Solver::extend_model().
    struct Elimination {
        Var var;
        bool negated;  ///< stored clauses contain mk_lit(var, negated)
        std::vector<std::vector<Lit>> clauses;
    };
    /// Watch-list entry: the clause plus a cached "blocking literal" (some
    /// other literal of the clause).  If the blocker is already true the
    /// clause is satisfied and propagation skips dereferencing it -- most
    /// watch traversals end here, so this trades one extra int per watcher
    /// for a large cut in cache misses on the hot path.
    struct Watcher {
        int clause;
        Lit blocker;
    };
    static constexpr int kNoReason = -1;

    Value value(Lit l) const {
        const Value v = assigns_[static_cast<std::size_t>(lit_var(l))];
        if (v == Value::kUnknown) return Value::kUnknown;
        return (v == Value::kTrue) != lit_negated(l) ? Value::kTrue : Value::kFalse;
    }

    void enqueue(Lit l, int reason);
    int propagate();  // returns conflicting clause index or -1
    void analyze(int conflict, std::vector<Lit>* learned_out, int* backtrack_level);
    bool lit_redundant(Lit l, std::uint32_t abstract_levels);
    void backtrack(int level);
    Lit pick_branch();
    void bump_var(Var v);
    void decay_var_activity();
    void bump_clause(int clause_idx);
    void decay_clause_activity();
    void attach(int clause_idx);
    void heap_insert(Var v);
    Var heap_pop();
    void heap_up(int i);
    void heap_down(int i);
    bool clause_locked(int clause_idx) const;
    void reduce_db();  // requires decision level 0
    void extend_model() const;  // reconstruct eliminated vars (lazy, after kSat)
    /// Pulls eligible foreign clauses from the exchange (decision level 0
    /// only); returns false when an import made the database UNSAT.
    bool import_exchange_clauses();

    int decision_level() const { return static_cast<int>(trail_lim_.size()); }

    std::vector<Clause> clauses_;
    std::vector<std::vector<Watcher>> watches_;  // per literal
    std::vector<Value> assigns_;
    std::vector<bool> polarity_;  // saved phases
    std::vector<int> level_;
    std::vector<int> reason_;
    std::vector<Lit> trail_;
    std::vector<int> trail_lim_;
    std::size_t qhead_ = 0;

    std::vector<double> activity_;
    double var_inc_ = 1.0;
    // Activity-ordered max-heap of branching candidates (indexed binary
    // heap: heap_pos_[v] is v's slot or -1).  Assigned vars are popped
    // lazily and re-inserted on backtrack.
    std::vector<int> heap_;
    std::vector<int> heap_pos_;

    std::uint64_t conflict_budget_ = 0;  // per-call; 0 = unlimited
    std::uint64_t phase_seed_ = 0;       // 0 = all-false initial phases
    ClauseExchange* exchange_ = nullptr;
    int exchange_member_ = 0;
    std::uint64_t exchange_epoch_ = 0;
    std::vector<std::vector<Lit>> import_scratch_;
    double cla_inc_ = 1.0;
    std::uint64_t num_learned_ = 0;  // learned clauses currently in the DB
    double learned_budget_ = 0.0;    // adaptive limit; grows after each reduce

    mutable std::vector<bool> model_;
    mutable bool model_extended_ = true;   ///< lazy-extension dirty flag
    std::vector<bool> eliminated_;         ///< per var; set by Preprocessor
    std::vector<Elimination> eliminations_;  ///< in elimination order
    bool ok_ = true;
    Stats stats_;
    SolveDelta last_solve_;

    // scratch for analyze()
    std::vector<bool> seen_;
    std::vector<Lit> analyze_stack_;
};

}  // namespace mvf::sat
