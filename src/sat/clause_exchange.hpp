#pragma once
// Learned-clause pool for a portfolio of CDCL solvers racing on one
// monotone formula chain.
//
// The portfolio CEGAR (attack/portfolio.cpp) runs N members whose solver
// formulas are PREFIXES of one shared chain: every member stamps the
// shared answer log's I/O constraints in log order, so a member with n
// stamped entries holds exactly the formula F ∪ C_1..C_n -- same clauses,
// same variable ids -- that every other member held when it was n entries
// in.  That prefix discipline is what makes clause sharing sound:
//
//   * an exported clause is tagged with the exporter's EPOCH (its stamped
//     constraint count at learning time); the clause is entailed by
//     F ∪ C_1..C_epoch;
//   * an importer only accepts clauses with epoch <= its own stamped
//     count, so every accepted clause is entailed by a prefix of the
//     importer's formula -- adding it changes no models, and any UNSAT
//     proved with imports present still holds with them removed (which is
//     why the winner's transcript replays bit-identically without the
//     exchange).
//
// Only short clauses travel (max_lits, default 8): short learned clauses
// carry most of the pruning power and keep the pool and the import cost
// bounded.  One mutex guards the pool -- members touch it at restart
// boundaries, far off the propagation hot path.

#include <cstdint>
#include <mutex>
#include <vector>

#include "sat/solver.hpp"

namespace mvf::sat {

class ClauseExchange {
public:
    /// `members` solvers share the pool; clauses longer than `max_lits`
    /// are refused at publish; the pool stops accepting (drops, counted)
    /// beyond `max_clauses` entries.
    explicit ClauseExchange(int members, int max_lits = 8,
                            std::size_t max_clauses = 1u << 16);

    int max_lits() const { return max_lits_; }

    /// Exporter side: offers a learned clause (units included) tagged with
    /// the exporter's epoch.  Oversized clauses and pool overflow are
    /// silently dropped (counted in stats).
    void publish(int member, const std::vector<Lit>& lits,
                 std::uint64_t epoch);

    /// Importer side: appends every clause published by OTHER members with
    /// epoch <= `max_epoch` that this member has not received yet.  The
    /// per-member cursor stops at the first not-yet-eligible entry (its
    /// epoch may become eligible once the member stamps more constraints),
    /// so nothing is ever skipped permanently.  Returns the number
    /// appended.
    std::size_t fetch(int member, std::uint64_t max_epoch,
                      std::vector<std::vector<Lit>>* out);

    struct Stats {
        std::uint64_t published = 0;  ///< clauses accepted into the pool
        std::uint64_t dropped = 0;    ///< refused: too long or pool full
        std::uint64_t fetched = 0;    ///< clauses handed to importers
    };
    Stats stats() const;

private:
    struct Entry {
        int member;
        std::uint64_t epoch;
        std::vector<Lit> lits;
    };

    const int max_lits_;
    const std::size_t max_clauses_;
    mutable std::mutex mutex_;
    std::vector<Entry> pool_;
    std::vector<std::size_t> cursor_;  ///< per member: first unprocessed
    Stats stats_;
};

}  // namespace mvf::sat
