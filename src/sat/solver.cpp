#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <queue>

#include "sat/clause_exchange.hpp"

namespace mvf::sat {
namespace {

/// splitmix64 finalizer: one well-mixed bit per (seed, var) for the
/// diversified initial phases.
bool phase_bit(std::uint64_t seed, Var v) {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull *
                                 (static_cast<std::uint64_t>(v) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return ((z ^ (z >> 31)) & 1) != 0;
}

// Luby restart sequence (1,1,2,1,1,2,4,...).
std::uint64_t luby(std::uint64_t i) {
    std::uint64_t k = 1;
    while ((1ull << k) - 1 < i + 1) ++k;
    while ((1ull << k) - 1 != i + 1) {
        i -= (1ull << (k - 1)) - 1;
        k = 1;
        while ((1ull << k) - 1 < i + 1) ++k;
    }
    return 1ull << (k - 1);
}

}  // namespace

Var Solver::new_var() {
    const Var v = num_vars();
    assigns_.push_back(Value::kUnknown);
    polarity_.push_back(phase_seed_ != 0 && phase_bit(phase_seed_, v));
    level_.push_back(0);
    reason_.push_back(kNoReason);
    activity_.push_back(0.0);
    seen_.push_back(false);
    eliminated_.push_back(false);
    watches_.emplace_back();
    watches_.emplace_back();
    heap_pos_.push_back(-1);
    heap_insert(v);
    return v;
}

void Solver::heap_up(int i) {
    const Var v = heap_[static_cast<std::size_t>(i)];
    while (i > 0) {
        const int parent = (i - 1) / 2;
        const Var pv = heap_[static_cast<std::size_t>(parent)];
        if (activity_[static_cast<std::size_t>(pv)] >=
            activity_[static_cast<std::size_t>(v)])
            break;
        heap_[static_cast<std::size_t>(i)] = pv;
        heap_pos_[static_cast<std::size_t>(pv)] = i;
        i = parent;
    }
    heap_[static_cast<std::size_t>(i)] = v;
    heap_pos_[static_cast<std::size_t>(v)] = i;
}

void Solver::heap_down(int i) {
    const Var v = heap_[static_cast<std::size_t>(i)];
    const int size = static_cast<int>(heap_.size());
    while (true) {
        int child = 2 * i + 1;
        if (child >= size) break;
        if (child + 1 < size &&
            activity_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(child + 1)])] >
                activity_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(child)])]) {
            ++child;
        }
        const Var cv = heap_[static_cast<std::size_t>(child)];
        if (activity_[static_cast<std::size_t>(v)] >=
            activity_[static_cast<std::size_t>(cv)])
            break;
        heap_[static_cast<std::size_t>(i)] = cv;
        heap_pos_[static_cast<std::size_t>(cv)] = i;
        i = child;
    }
    heap_[static_cast<std::size_t>(i)] = v;
    heap_pos_[static_cast<std::size_t>(v)] = i;
}

void Solver::heap_insert(Var v) {
    if (eliminated_[static_cast<std::size_t>(v)]) return;
    if (heap_pos_[static_cast<std::size_t>(v)] >= 0) return;
    heap_.push_back(v);
    heap_pos_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size()) - 1;
    heap_up(static_cast<int>(heap_.size()) - 1);
}

Var Solver::heap_pop() {
    const Var top = heap_[0];
    heap_pos_[static_cast<std::size_t>(top)] = -1;
    const Var last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_[0] = last;
        heap_pos_[static_cast<std::size_t>(last)] = 0;
        heap_down(0);
    }
    return top;
}

void Solver::set_phase_seed(std::uint64_t seed) {
    phase_seed_ = seed;
    for (Var v = 0; v < num_vars(); ++v) {
        polarity_[static_cast<std::size_t>(v)] =
            seed != 0 && phase_bit(seed, v);
    }
}

void Solver::set_clause_exchange(ClauseExchange* exchange, int member) {
    exchange_ = exchange;
    exchange_member_ = member;
}

bool Solver::import_exchange_clauses() {
    assert(decision_level() == 0);
    import_scratch_.clear();
    if (exchange_->fetch(exchange_member_, exchange_epoch_,
                         &import_scratch_) == 0) {
        return true;
    }
    for (std::vector<Lit>& lits : import_scratch_) {
        // Clauses touching a locally-eliminated variable are skipped:
        // preprocessing diverges across members, and re-introducing an
        // eliminated variable would bypass the constraints removed with
        // it.  (Variables always exist -- the epoch filter guarantees the
        // clause only mentions a formula prefix this solver has stamped.)
        bool usable = true;
        for (const Lit l : lits) {
            assert(lit_var(l) < num_vars());
            if (eliminated_[static_cast<std::size_t>(lit_var(l))]) {
                usable = false;
                break;
            }
        }
        if (!usable) continue;
        // Same level-0 simplification as add_clause, but the survivors are
        // marked learned so reduce_db can drop them again.
        std::sort(lits.begin(), lits.end());
        std::vector<Lit> out;
        bool tautology_or_sat = false;
        for (const Lit l : lits) {
            if (!out.empty() && out.back() == l) continue;
            if (!out.empty() && out.back() == lit_not(l)) {
                tautology_or_sat = true;
                break;
            }
            if (value(l) == Value::kTrue) {
                tautology_or_sat = true;
                break;
            }
            if (value(l) == Value::kFalse) continue;
            out.push_back(l);
        }
        if (tautology_or_sat) continue;
        if (out.empty()) {
            // The import is entailed by a prefix of this member's own
            // formula, so an empty clause is a sound UNSAT verdict.
            ok_ = false;
            return false;
        }
        if (out.size() == 1) {
            enqueue(out[0], kNoReason);
            if (propagate() >= 0) {
                ok_ = false;
                return false;
            }
            continue;
        }
        clauses_.push_back({std::move(out), true, 0.0});
        ++num_learned_;
        attach(static_cast<int>(clauses_.size()) - 1);
    }
    return true;
}

bool Solver::add_clause(std::vector<Lit> lits) {
    if (!ok_) return false;
    assert(decision_level() == 0);
#ifndef NDEBUG
    // Clauses referencing an eliminated variable would silently bypass the
    // constraints removed with it; callers must freeze such variables.
    for (const Lit l : lits) assert(!eliminated_[static_cast<std::size_t>(lit_var(l))]);
#endif
    // Simplify: drop duplicate/false literals, detect tautologies/sat.
    std::sort(lits.begin(), lits.end());
    std::vector<Lit> out;
    for (const Lit l : lits) {
        if (!out.empty() && out.back() == l) continue;
        if (!out.empty() && out.back() == lit_not(l)) return true;  // tautology
        if (value(l) == Value::kTrue) return true;                  // already sat
        if (value(l) == Value::kFalse) continue;                    // dead lit
        out.push_back(l);
    }
    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        enqueue(out[0], kNoReason);
        if (propagate() >= 0) {
            ok_ = false;
            return false;
        }
        return true;
    }
    clauses_.push_back({std::move(out), false, 0.0});
    attach(static_cast<int>(clauses_.size()) - 1);
    return true;
}

std::vector<std::vector<Lit>> Solver::snapshot_clauses() const {
    assert(decision_level() == 0);
    if (!ok_) return {{}};
    std::vector<std::vector<Lit>> out;
    out.reserve(trail_.size() + clauses_.size());
    for (const Lit l : trail_) out.push_back({l});
    for (const Clause& c : clauses_) {
        if (c.learned) continue;
        out.push_back(c.lits);
    }
    return out;
}

void Solver::attach(int clause_idx) {
    const Clause& c = clauses_[static_cast<std::size_t>(clause_idx)];
    // The sibling watched literal doubles as the blocker: for binary
    // clauses it is exact, and for longer ones it is a good first guess.
    watches_[static_cast<std::size_t>(lit_not(c.lits[0]))].push_back(
        {clause_idx, c.lits[1]});
    watches_[static_cast<std::size_t>(lit_not(c.lits[1]))].push_back(
        {clause_idx, c.lits[0]});
}

void Solver::enqueue(Lit l, int reason) {
    assert(value(l) == Value::kUnknown);
    const Var v = lit_var(l);
    assigns_[static_cast<std::size_t>(v)] =
        lit_negated(l) ? Value::kFalse : Value::kTrue;
    level_[static_cast<std::size_t>(v)] = decision_level();
    reason_[static_cast<std::size_t>(v)] = reason;
    polarity_[static_cast<std::size_t>(v)] = !lit_negated(l);
    trail_.push_back(l);
}

int Solver::propagate() {
    while (qhead_ < trail_.size()) {
        const Lit p = trail_[qhead_++];
        ++stats_.propagations;
        std::vector<Watcher>& watch_list = watches_[static_cast<std::size_t>(p)];
        std::size_t keep = 0;
        for (std::size_t i = 0; i < watch_list.size(); ++i) {
            const Watcher w = watch_list[i];
            // Satisfied via the blocking literal: done without touching the
            // clause (the common case on long CEGAR runs).
            if (value(w.blocker) == Value::kTrue) {
                watch_list[keep++] = w;
                continue;
            }
            const int ci = w.clause;
            Clause& c = clauses_[static_cast<std::size_t>(ci)];
            // Make sure the falsified literal is lits[1].
            const Lit not_p = lit_not(p);
            if (c.lits[0] == not_p) std::swap(c.lits[0], c.lits[1]);
            assert(c.lits[1] == not_p);
            const Lit first = c.lits[0];
            if (first != w.blocker && value(first) == Value::kTrue) {
                // Satisfied by the other watched literal; remember it as
                // the blocker for next time.
                watch_list[keep++] = {ci, first};
                continue;
            }
            // Look for a new literal to watch.
            bool moved = false;
            for (std::size_t k = 2; k < c.lits.size(); ++k) {
                if (value(c.lits[k]) != Value::kFalse) {
                    std::swap(c.lits[1], c.lits[k]);
                    watches_[static_cast<std::size_t>(lit_not(c.lits[1]))]
                        .push_back({ci, first});
                    moved = true;
                    break;
                }
            }
            if (moved) continue;
            // Unit or conflicting.
            watch_list[keep++] = {ci, first};
            if (value(first) == Value::kFalse) {
                // Conflict: restore remaining watches and report.
                for (std::size_t j = i + 1; j < watch_list.size(); ++j) {
                    watch_list[keep++] = watch_list[j];
                }
                watch_list.resize(keep);
                qhead_ = trail_.size();
                return ci;
            }
            enqueue(first, ci);
        }
        watch_list.resize(keep);
    }
    return -1;
}

void Solver::bump_var(Var v) {
    activity_[static_cast<std::size_t>(v)] += var_inc_;
    if (activity_[static_cast<std::size_t>(v)] > 1e100) {
        // Uniform rescale preserves the heap order.
        for (auto& a : activity_) a *= 1e-100;
        var_inc_ *= 1e-100;
    }
    if (heap_pos_[static_cast<std::size_t>(v)] >= 0) {
        heap_up(heap_pos_[static_cast<std::size_t>(v)]);
    }
}

void Solver::decay_var_activity() { var_inc_ /= 0.95; }

void Solver::bump_clause(int clause_idx) {
    Clause& c = clauses_[static_cast<std::size_t>(clause_idx)];
    if (!c.learned) return;
    c.activity += cla_inc_;
    if (c.activity > 1e20) {
        for (auto& cl : clauses_) {
            if (cl.learned) cl.activity *= 1e-20;
        }
        cla_inc_ *= 1e-20;
    }
}

void Solver::decay_clause_activity() { cla_inc_ /= 0.999; }

bool Solver::clause_locked(int clause_idx) const {
    const Clause& c = clauses_[static_cast<std::size_t>(clause_idx)];
    const Var v = lit_var(c.lits[0]);
    return value(c.lits[0]) == Value::kTrue &&
           reason_[static_cast<std::size_t>(v)] == clause_idx;
}

void Solver::reduce_db() {
    assert(decision_level() == 0);
    // Candidates: learned, longer than binary, and not the reason of a
    // current (level-0) assignment.  The lowest-activity half goes.
    std::vector<int> candidates;
    for (int ci = 0; ci < static_cast<int>(clauses_.size()); ++ci) {
        const Clause& c = clauses_[static_cast<std::size_t>(ci)];
        if (c.learned && c.lits.size() > 2 && !clause_locked(ci)) {
            candidates.push_back(ci);
        }
    }
    std::sort(candidates.begin(), candidates.end(), [this](int a, int b) {
        return clauses_[static_cast<std::size_t>(a)].activity <
               clauses_[static_cast<std::size_t>(b)].activity;
    });

    std::vector<bool> drop(clauses_.size(), false);
    const std::size_t victims = candidates.size() / 2;
    for (std::size_t i = 0; i < victims; ++i) {
        drop[static_cast<std::size_t>(candidates[i])] = true;
    }
    if (victims == 0) return;

    // Compact the clause vector and remap every stored index.
    std::vector<int> remap(clauses_.size(), -1);
    std::vector<Clause> kept;
    kept.reserve(clauses_.size() - victims);
    num_learned_ = 0;
    for (std::size_t i = 0; i < clauses_.size(); ++i) {
        if (drop[i]) continue;
        remap[i] = static_cast<int>(kept.size());
        kept.push_back(std::move(clauses_[i]));
        if (kept.back().learned) ++num_learned_;
    }
    clauses_ = std::move(kept);
    for (auto& w : watches_) w.clear();
    for (int ci = 0; ci < static_cast<int>(clauses_.size()); ++ci) attach(ci);
    for (auto& r : reason_) {
        if (r != kNoReason) r = remap[static_cast<std::size_t>(r)];
    }
    ++stats_.reduces;
    stats_.learned_removed += victims;
}

void Solver::analyze(int conflict, std::vector<Lit>* learned_out,
                     int* backtrack_level) {
    learned_out->clear();
    learned_out->push_back(0);  // placeholder for the asserting literal

    int counter = 0;
    Lit p = -1;
    int index = static_cast<int>(trail_.size()) - 1;
    int ci = conflict;
    std::vector<Var> marked;  // every var whose seen_ flag we set

    do {
        bump_clause(ci);
        const Clause& c = clauses_[static_cast<std::size_t>(ci)];
        const std::size_t start = (p == -1) ? 0 : 1;
        for (std::size_t k = start; k < c.lits.size(); ++k) {
            const Lit q = c.lits[k];
            const Var v = lit_var(q);
            if (seen_[static_cast<std::size_t>(v)] ||
                level_[static_cast<std::size_t>(v)] == 0)
                continue;
            seen_[static_cast<std::size_t>(v)] = true;
            marked.push_back(v);
            bump_var(v);
            if (level_[static_cast<std::size_t>(v)] == decision_level()) {
                ++counter;
            } else {
                learned_out->push_back(q);
            }
        }
        // Find the next seen literal on the trail.
        while (!seen_[static_cast<std::size_t>(lit_var(trail_[static_cast<std::size_t>(index)]))]) {
            --index;
        }
        p = trail_[static_cast<std::size_t>(index)];
        --index;
        seen_[static_cast<std::size_t>(lit_var(p))] = false;
        ci = reason_[static_cast<std::size_t>(lit_var(p))];
        --counter;
    } while (counter > 0);
    (*learned_out)[0] = lit_not(p);

    // Clause minimization: drop literals implied by the rest of the clause.
    std::uint32_t abstract_levels = 0;
    for (std::size_t i = 1; i < learned_out->size(); ++i) {
        abstract_levels |=
            1u << (level_[static_cast<std::size_t>(lit_var((*learned_out)[i]))] & 31);
    }
    std::vector<Lit> minimized{(*learned_out)[0]};
    for (std::size_t i = 1; i < learned_out->size(); ++i) {
        const Lit l = (*learned_out)[i];
        if (reason_[static_cast<std::size_t>(lit_var(l))] == kNoReason ||
            !lit_redundant(l, abstract_levels)) {
            minimized.push_back(l);
        }
    }
    *learned_out = std::move(minimized);

    // Compute backtrack level = second-highest level in the clause.
    *backtrack_level = 0;
    if (learned_out->size() > 1) {
        std::size_t max_i = 1;
        for (std::size_t i = 2; i < learned_out->size(); ++i) {
            if (level_[static_cast<std::size_t>(lit_var((*learned_out)[i]))] >
                level_[static_cast<std::size_t>(lit_var((*learned_out)[max_i]))]) {
                max_i = i;
            }
        }
        std::swap((*learned_out)[1], (*learned_out)[max_i]);
        *backtrack_level = level_[static_cast<std::size_t>(lit_var((*learned_out)[1]))];
    }

    // Clear every mark set during this analysis (including literals dropped
    // by minimization -- leaking those would poison later analyses).
    for (const Var v : marked) {
        seen_[static_cast<std::size_t>(v)] = false;
    }
}

bool Solver::lit_redundant(Lit l, std::uint32_t abstract_levels) {
    analyze_stack_.assign(1, l);
    std::vector<Var> to_clear;
    bool redundant = true;
    while (!analyze_stack_.empty() && redundant) {
        const Lit cur = analyze_stack_.back();
        analyze_stack_.pop_back();
        const int ci = reason_[static_cast<std::size_t>(lit_var(cur))];
        if (ci == kNoReason) {
            redundant = false;
            break;
        }
        const Clause& c = clauses_[static_cast<std::size_t>(ci)];
        for (std::size_t k = 1; k < c.lits.size(); ++k) {
            const Lit q = c.lits[k];
            const Var v = lit_var(q);
            if (seen_[static_cast<std::size_t>(v)] ||
                level_[static_cast<std::size_t>(v)] == 0)
                continue;
            if (reason_[static_cast<std::size_t>(v)] == kNoReason ||
                ((1u << (level_[static_cast<std::size_t>(v)] & 31)) & abstract_levels) == 0) {
                redundant = false;
                break;
            }
            seen_[static_cast<std::size_t>(v)] = true;
            to_clear.push_back(v);
            analyze_stack_.push_back(q);
        }
    }
    if (!redundant) {
        for (const Var v : to_clear) seen_[static_cast<std::size_t>(v)] = false;
    }
    // On success, marks stay set; analyze() clears only kept literals, so
    // clear the extras here as well to stay consistent.
    if (redundant) {
        for (const Var v : to_clear) seen_[static_cast<std::size_t>(v)] = false;
    }
    return redundant;
}

void Solver::backtrack(int target_level) {
    if (decision_level() <= target_level) return;
    const std::size_t limit =
        static_cast<std::size_t>(trail_lim_[static_cast<std::size_t>(target_level)]);
    for (std::size_t i = trail_.size(); i > limit; --i) {
        const Var v = lit_var(trail_[i - 1]);
        assigns_[static_cast<std::size_t>(v)] = Value::kUnknown;
        reason_[static_cast<std::size_t>(v)] = kNoReason;
        heap_insert(v);
    }
    trail_.resize(limit);
    trail_lim_.resize(static_cast<std::size_t>(target_level));
    qhead_ = trail_.size();
}

Lit Solver::pick_branch() {
    while (!heap_.empty()) {
        const Var v = heap_pop();
        if (assigns_[static_cast<std::size_t>(v)] == Value::kUnknown &&
            !eliminated_[static_cast<std::size_t>(v)]) {
            return mk_lit(v, !polarity_[static_cast<std::size_t>(v)]);
        }
    }
    return -1;
}

void Solver::extend_model() const {
    // Walk the eliminations newest-first: a variable's stored clauses only
    // mention variables that were still present when it was eliminated,
    // i.e. variables eliminated LATER (already reconstructed here) or
    // never.  Default the variable so the stored occurrence literal is
    // false (which satisfies the unstored side outright); flip it when a
    // stored clause is not covered by its other literals -- the resolvents
    // the search satisfied guarantee the unstored side stays covered.
    model_extended_ = true;
    const auto model_true = [this](Lit l) {
        return model_[static_cast<std::size_t>(lit_var(l))] != lit_negated(l);
    };
    for (auto it = eliminations_.rbegin(); it != eliminations_.rend(); ++it) {
        model_[static_cast<std::size_t>(it->var)] = it->negated;
        bool flip = false;
        for (const std::vector<Lit>& clause : it->clauses) {
            bool covered = false;
            for (const Lit l : clause) {
                if (lit_var(l) == it->var) continue;
                if (model_true(l)) {
                    covered = true;
                    break;
                }
            }
            if (!covered) {
                flip = true;
                break;
            }
        }
        if (flip) model_[static_cast<std::size_t>(it->var)] = !it->negated;
    }
}

Solver::Result Solver::solve(const std::vector<Lit>& assumptions) {
    // Per-call telemetry: every return path funnels through finish() so
    // last_solve() is a complete delta and Stats accumulates solve counts,
    // wall time, and the deepest decision level ever reached.
    const Stats before = stats_;
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t call_max_level = 0;
    const auto finish = [&](Result r) {
        last_solve_.result = r;
        last_solve_.conflicts = stats_.conflicts - before.conflicts;
        last_solve_.decisions = stats_.decisions - before.decisions;
        last_solve_.propagations = stats_.propagations - before.propagations;
        last_solve_.max_decision_level = call_max_level;
        last_solve_.seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        ++stats_.solves;
        stats_.solve_seconds += last_solve_.seconds;
        stats_.max_decision_level =
            std::max(stats_.max_decision_level, call_max_level);
        return r;
    };
    if (!ok_) return finish(Result::kUnsat);
#ifndef NDEBUG
    for (const Lit a : assumptions) {
        assert(!eliminated_[static_cast<std::size_t>(lit_var(a))] &&
               "assumption on an eliminated variable; freeze it before "
               "preprocessing");
    }
#endif
    backtrack(0);
    if (propagate() >= 0) {
        ok_ = false;
        return finish(Result::kUnsat);
    }
    if (learned_budget_ <= 0.0) {
        learned_budget_ =
            std::max(2000.0, static_cast<double>(clauses_.size()) / 3.0);
    }

    std::uint64_t restart_round = 0;
    std::uint64_t conflicts_until_restart = 64 * luby(restart_round);
    std::uint64_t conflicts_this_round = 0;
    std::uint64_t conflicts_this_call = 0;

    std::vector<Lit> learned;
    while (true) {
        const int conflict = propagate();
        if (conflict >= 0) {
            ++stats_.conflicts;
            ++conflicts_this_round;
            // NB the level-0 check below must come first: a level-0
            // conflict is a definitive UNSAT verdict (and must set ok_ --
            // returning kUnknown instead would leave the poisoned level-0
            // trail the handler's comment warns about), so the budget
            // never preempts it.
            if (decision_level() != 0 && conflict_budget_ > 0 &&
                ++conflicts_this_call > conflict_budget_) {
                // Budget exhausted: give up on THIS call only.  The
                // learned clauses stay (they are entailed), the trail
                // unwinds to level 0, and the solver remains usable.
                backtrack(0);
                return finish(Result::kUnknown);
            }
            if (decision_level() == 0) {
                // A level-0 conflict is independent of any assumptions: the
                // clause database itself is contradictory.  Without ok_ the
                // falsified clause would linger fully-assigned on the
                // level-0 trail and later incremental solve() calls could
                // report bogus models (the queue is already drained).
                ok_ = false;
                return finish(Result::kUnsat);
            }
            int bt_level = 0;
            analyze(conflict, &learned, &bt_level);
            backtrack(bt_level);
            if (exchange_ &&
                static_cast<int>(learned.size()) <= exchange_->max_lits()) {
                exchange_->publish(exchange_member_, learned,
                                   exchange_epoch_);
            }
            if (learned.size() == 1) {
                enqueue(learned[0], kNoReason);
            } else {
                clauses_.push_back({learned, true, 0.0});
                ++stats_.learned;
                ++num_learned_;
                attach(static_cast<int>(clauses_.size()) - 1);
                bump_clause(static_cast<int>(clauses_.size()) - 1);
                enqueue(learned[0], static_cast<int>(clauses_.size()) - 1);
            }
            decay_var_activity();
            decay_clause_activity();
            continue;
        }

        // Restart on the Luby schedule, or early when the learned database
        // outgrew its budget (reduction requires decision level 0).  The
        // budget grows geometrically even when nothing was removable so a
        // binary/locked-saturated database cannot stall the search.
        const bool db_full =
            num_learned_ >= static_cast<std::uint64_t>(learned_budget_);
        if (conflicts_this_round >= conflicts_until_restart || db_full) {
            if (conflicts_this_round >= conflicts_until_restart) {
                ++stats_.restarts;
                ++restart_round;
                conflicts_this_round = 0;
                conflicts_until_restart = 64 * luby(restart_round);
            }
            backtrack(0);
            if (db_full) {
                reduce_db();
                learned_budget_ *= 1.1;
            }
            // Restart boundary: the trail is at level 0, so foreign
            // portfolio clauses can be spliced in like any level-0 add.
            if (exchange_ && !import_exchange_clauses()) {
                return finish(Result::kUnsat);
            }
            continue;
        }

        // Apply pending assumptions as pseudo-decisions.
        if (decision_level() < static_cast<int>(assumptions.size())) {
            const Lit a = assumptions[static_cast<std::size_t>(decision_level())];
            if (value(a) == Value::kTrue) {
                trail_lim_.push_back(static_cast<int>(trail_.size()));  // dummy level
                call_max_level = std::max(
                    call_max_level, static_cast<std::uint64_t>(decision_level()));
                continue;
            }
            if (value(a) == Value::kFalse) {
                // Leave the trail at level 0 so the instance stays usable
                // incrementally after an assumption-failure UNSAT.
                backtrack(0);
                return finish(Result::kUnsat);
            }
            trail_lim_.push_back(static_cast<int>(trail_.size()));
            call_max_level = std::max(
                call_max_level, static_cast<std::uint64_t>(decision_level()));
            enqueue(a, kNoReason);
            continue;
        }

        const Lit next = pick_branch();
        if (next < 0) {
            // Full model.  Eliminated variables are reconstructed lazily
            // by model_value() if anything actually reads them.
            model_.assign(static_cast<std::size_t>(num_vars()), false);
            for (Var v = 0; v < num_vars(); ++v) {
                model_[static_cast<std::size_t>(v)] =
                    assigns_[static_cast<std::size_t>(v)] == Value::kTrue;
            }
            model_extended_ = eliminations_.empty();
            backtrack(0);
            return finish(Result::kSat);
        }
        ++stats_.decisions;
        trail_lim_.push_back(static_cast<int>(trail_.size()));
        call_max_level = std::max(
            call_max_level, static_cast<std::uint64_t>(decision_level()));
        enqueue(next, kNoReason);
    }
}

}  // namespace mvf::sat
