#include "sat/cnf_builder.hpp"

#include <cassert>

namespace mvf::sat {

using camo::CamoNetlist;
using logic::TruthTable;

CnfBuilder::CnfBuilder(const CamoNetlist& netlist, Solver* solver,
                       const std::vector<bool>* fixed_nominal)
    : netlist_(&netlist), solver_(solver) {
    const_var_ = solver_->new_var();
    solver_->add_unit(lit_true());

    selector_.resize(static_cast<std::size_t>(netlist.num_nodes()));
    fixed_choice_.assign(static_cast<std::size_t>(netlist.num_nodes()), -1);
    for (int id = 0; id < netlist.num_nodes(); ++id) {
        const CamoNetlist::Node& n = netlist.node(id);
        if (n.kind != CamoNetlist::NodeKind::kCell) continue;
        const camo::CamoCell& cell = netlist.library().cell(n.camo_cell_id);
        const bool fixed =
            fixed_nominal && (*fixed_nominal)[static_cast<std::size_t>(id)];
        if (fixed) {
            // The known cell realizes its configured function -- index 0
            // for ordinary camo variants, but a TIE wired to const1 sits
            // at plausible index 1.
            fixed_choice_[static_cast<std::size_t>(id)] =
                n.config_fn.empty() ? 0 : n.config_fn[0];
        }
        const int num_choices = fixed ? 1 : static_cast<int>(cell.plausible.size());
        auto& sel = selector_[static_cast<std::size_t>(id)];
        sel.reserve(static_cast<std::size_t>(num_choices));
        std::vector<Lit> at_least_one;
        for (int j = 0; j < num_choices; ++j) {
            const Var v = solver_->new_var();
            sel.push_back(v);
            at_least_one.push_back(mk_lit(v));
        }
        solver_->add_clause(at_least_one);
        for (std::size_t a = 0; a < sel.size(); ++a) {
            for (std::size_t b = a + 1; b < sel.size(); ++b) {
                solver_->add_binary(mk_lit(sel[a], true), mk_lit(sel[b], true));
            }
        }
    }
}

CnfBuilder::Copy CnfBuilder::add_copy() {
    std::vector<Lit> pi_lits;
    pi_lits.reserve(static_cast<std::size_t>(netlist_->num_pis()));
    for (int i = 0; i < netlist_->num_pis(); ++i) {
        pi_lits.push_back(mk_lit(solver_->new_var()));
    }
    return add_copy(pi_lits);
}

CnfBuilder::Copy CnfBuilder::add_copy(const std::vector<bool>& inputs,
                                      bool fold) {
    assert(static_cast<int>(inputs.size()) == netlist_->num_pis());
    std::vector<Lit> pi_lits;
    pi_lits.reserve(inputs.size());
    for (const bool b : inputs) pi_lits.push_back(b ? lit_true() : lit_false());
    return stamp(pi_lits, fold, nullptr, nullptr, nullptr, nullptr);
}

CnfBuilder::Copy CnfBuilder::add_copy(std::span<const Lit> pi_lits) {
    return stamp(pi_lits, /*fold=*/false, nullptr, nullptr, nullptr, nullptr);
}

CnfBuilder::Copy CnfBuilder::stamp(std::span<const Lit> pi_lits, bool fold,
                                   const ShareSource* share,
                                   std::vector<Lit>* values_out,
                                   std::vector<signed char>* known_out,
                                   int* shared_cells_out) {
    assert(static_cast<int>(pi_lits.size()) == netlist_->num_pis());
    const CamoNetlist& nl = *netlist_;

    // Node ids are topological (fanins precede users by construction), so a
    // single forward sweep assigns every node its value literal.  `known`
    // tracks literals that are constant in every model (the unit-backed
    // constant variable), which lets single-choice cells fold away.
    std::vector<Lit> value(static_cast<std::size_t>(nl.num_nodes()), -1);
    std::vector<signed char> known(static_cast<std::size_t>(nl.num_nodes()), -1);
    for (int i = 0; i < nl.num_pis(); ++i) {
        const Lit pl = pi_lits[static_cast<std::size_t>(i)];
        const std::size_t id = static_cast<std::size_t>(nl.pi(i));
        value[id] = pl;
        if (pl == lit_true()) known[id] = 1;
        if (pl == lit_false()) known[id] = 0;
        if (share && pl == (*share->values)[id]) known[id] = (*share->known)[id];
    }

    std::vector<Lit> clause;
    for (int id = 0; id < nl.num_nodes(); ++id) {
        const CamoNetlist::Node& n = nl.node(id);
        if (n.kind != CamoNetlist::NodeKind::kCell) continue;
        const std::size_t sid = static_cast<std::size_t>(id);
        if (share && (*share->mask)[sid]) {
            // Selector-independent cone cell already encoded by the partner
            // stamp: reuse its literal outright.
            value[sid] = (*share->values)[sid];
            known[sid] = (*share->known)[sid];
            if (shared_cells_out) ++*shared_cells_out;
            continue;
        }
        const camo::CamoCell& cell = nl.library().cell(n.camo_cell_id);
        const auto& sel = selector_[sid];

        if (fold && sel.size() == 1) {
            // Single plausible function: if the support is constant, so is
            // the output -- no variable, no clauses.
            const TruthTable& f0 = cell.plausible[static_cast<std::size_t>(
                plausible_index(id, 0))];
            const std::vector<int> support = f0.support();
            std::uint32_t pins = 0;
            bool all_known = true;
            for (const int pin : support) {
                const std::size_t fid = static_cast<std::size_t>(
                    n.fanins[static_cast<std::size_t>(pin)]);
                if (known[fid] < 0) {
                    all_known = false;
                    break;
                }
                if (known[fid]) pins |= 1u << pin;
            }
            if (all_known) {
                const bool fout = f0.bit(pins);
                value[sid] = fout ? lit_true() : lit_false();
                known[sid] = fout ? 1 : 0;
                continue;
            }
        }

        const Lit out = mk_lit(solver_->new_var());
        value[sid] = out;

        // Selecting function j binds the output to f_j of the fanin values,
        // one clause per minterm of f_j's support.
        for (std::size_t j = 0; j < sel.size(); ++j) {
            const TruthTable& fj = cell.plausible[static_cast<std::size_t>(
                plausible_index(id, j))];
            const std::vector<int> support = fj.support();
            const int k = static_cast<int>(support.size());
            for (std::uint32_t pp = 0; pp < (1u << k); ++pp) {
                std::uint32_t pins = 0;
                for (int b = 0; b < k; ++b) {
                    if ((pp >> b) & 1) {
                        pins |= 1u << support[static_cast<std::size_t>(b)];
                    }
                }
                const bool fout = fj.bit(pins);

                clause.clear();
                clause.push_back(mk_lit(sel[j], true));
                for (int b = 0; b < k; ++b) {
                    const int pin = support[static_cast<std::size_t>(b)];
                    const Lit fl =
                        value[static_cast<std::size_t>(n.fanins[static_cast<std::size_t>(pin)])];
                    const bool want = (pp >> b) & 1;
                    clause.push_back(want ? lit_not(fl) : fl);
                }
                clause.push_back(fout ? out : lit_not(out));
                solver_->add_clause(clause);
            }
        }
    }

    Copy copy;
    copy.pi.assign(pi_lits.begin(), pi_lits.end());
    copy.po.reserve(static_cast<std::size_t>(nl.num_pos()));
    for (int q = 0; q < nl.num_pos(); ++q) {
        copy.po.push_back(value[static_cast<std::size_t>(nl.po(q))]);
    }
    if (values_out) *values_out = std::move(value);
    if (known_out) *known_out = std::move(known);
    return copy;
}

CnfBuilder::SharedCopy CnfBuilder::add_shared_copies(
    CnfBuilder& a, CnfBuilder& b, std::span<const Lit> pi_lits) {
    assert(a.netlist_ == b.netlist_ && a.solver_ == b.solver_);
    const CamoNetlist& nl = *a.netlist_;

    // A node's value is family-independent when its cell has a single
    // plausible choice in both families and its whole fanin cone does too.
    std::vector<bool> mask(static_cast<std::size_t>(nl.num_nodes()), false);
    for (int id = 0; id < nl.num_nodes(); ++id) {
        const CamoNetlist::Node& n = nl.node(id);
        const std::size_t sid = static_cast<std::size_t>(id);
        if (n.kind == CamoNetlist::NodeKind::kPi) {
            mask[sid] = true;
            continue;
        }
        assert(a.selector_[sid].size() == b.selector_[sid].size());
        if (a.selector_[sid].size() != 1) continue;
        bool fanins_shared = true;
        for (const int f : n.fanins) {
            if (!mask[static_cast<std::size_t>(f)]) {
                fanins_shared = false;
                break;
            }
        }
        mask[sid] = fanins_shared;
    }

    SharedCopy sc;
    std::vector<Lit> values;
    std::vector<signed char> known;
    sc.a = a.stamp(pi_lits, /*fold=*/true, nullptr, &values, &known, nullptr);
    const ShareSource source{&values, &known, &mask};
    sc.b = b.stamp(pi_lits, /*fold=*/true, &source, nullptr, nullptr,
                   &sc.shared_cells);
    return sc;
}

CnfBuilder::SharedCopy CnfBuilder::add_shared_copies(
    CnfBuilder& a, CnfBuilder& b, const std::vector<bool>& inputs) {
    assert(static_cast<int>(inputs.size()) == a.netlist_->num_pis());
    std::vector<Lit> pi_lits;
    pi_lits.reserve(inputs.size());
    for (const bool v : inputs) {
        pi_lits.push_back(v ? a.lit_true() : a.lit_false());
    }
    return add_shared_copies(a, b, pi_lits);
}

std::vector<Var> CnfBuilder::frozen_vars() const {
    std::vector<Var> out{const_var_};
    for (const auto& sel : selector_) out.insert(out.end(), sel.begin(), sel.end());
    return out;
}

std::vector<int> CnfBuilder::config_from_model() const {
    std::vector<int> config(static_cast<std::size_t>(netlist_->num_nodes()), -1);
    for (int id = 0; id < netlist_->num_nodes(); ++id) {
        const auto& sel = selector_[static_cast<std::size_t>(id)];
        for (std::size_t j = 0; j < sel.size(); ++j) {
            if (solver_->model_value(sel[j])) {
                config[static_cast<std::size_t>(id)] = plausible_index(id, j);
                break;
            }
        }
    }
    return config;
}

std::vector<Lit> CnfBuilder::config_assumptions(
    const std::vector<int>& config) const {
    std::vector<Lit> out;
    for (int id = 0; id < netlist_->num_nodes(); ++id) {
        const auto& sel = selector_[static_cast<std::size_t>(id)];
        if (sel.empty()) continue;
        int j = config[static_cast<std::size_t>(id)];
        if (fixed_choice_[static_cast<std::size_t>(id)] >= 0) {
            // Fixed cells have one selector, bound to their true function.
            assert(j == fixed_choice_[static_cast<std::size_t>(id)]);
            j = 0;
        }
        assert(j >= 0 && j < static_cast<int>(sel.size()));
        out.push_back(mk_lit(sel[static_cast<std::size_t>(j)]));
    }
    return out;
}

bool CnfBuilder::block_config(const std::vector<int>& config,
                              const std::vector<bool>* only) {
    std::vector<Lit> clause;
    for (int id = 0; id < netlist_->num_nodes(); ++id) {
        const auto& sel = selector_[static_cast<std::size_t>(id)];
        if (sel.empty()) continue;
        if (only && !(*only)[static_cast<std::size_t>(id)]) continue;
        int j = config[static_cast<std::size_t>(id)];
        if (fixed_choice_[static_cast<std::size_t>(id)] >= 0) {
            assert(j == fixed_choice_[static_cast<std::size_t>(id)]);
            j = 0;
        }
        assert(j >= 0 && j < static_cast<int>(sel.size()));
        clause.push_back(mk_lit(sel[static_cast<std::size_t>(j)], true));
    }
    return solver_->add_clause(clause);
}

}  // namespace mvf::sat
