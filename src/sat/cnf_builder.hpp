#pragma once
// Tseitin CNF encoding of a camouflaged netlist.
//
// One CnfBuilder owns a *selector family*: a one-hot block of variables per
// camouflaged cell choosing which plausible function the cell implements.
// Any number of circuit *copies* can then be stamped against that family --
// each copy gets fresh node-value variables but shares the selectors, so all
// copies are constrained to the same dopant configuration.  This is the
// common substrate of both attackers:
//
//   - the enumeration attacker (attack/plausibility) stamps one copy per
//     input pattern with constant inputs and asserts the target outputs;
//   - the oracle-guided CEGAR attacker (attack/oracle_attack) stamps two
//     families into one solver, miters them over shared symbolic inputs, and
//     stamps an extra constant-input copy per distinguishing pattern.
//
// Gate consistency is encoded per plausible function over its support pins:
// selecting function j implies output == f_j(pins) minterm-by-minterm
// (cells have <= 4 pins, so at most 16 clauses per function).

#include <span>
#include <vector>

#include "camo/camo_netlist.hpp"
#include "sat/solver.hpp"

namespace mvf::sat {

class CnfBuilder {
public:
    /// Allocates the selector family (with exactly-one constraints) on
    /// `solver`.  `fixed_nominal`, if non-null, marks nodes the attacker
    /// knows are ordinary cells: their selector collapses to the cell's
    /// true function, plausible[config_fn[0]] -- index 0 for ordinary camo
    /// variants, but e.g. 1 for a TIE cell wired to const1.  The builder
    /// stores both references; they must outlive it.
    CnfBuilder(const camo::CamoNetlist& netlist, Solver* solver,
               const std::vector<bool>* fixed_nominal = nullptr);

    /// PI/PO literals of one stamped circuit copy.
    struct Copy {
        std::vector<Lit> pi;
        std::vector<Lit> po;
    };

    /// Stamps a copy over fresh primary-input variables.
    Copy add_copy();

    /// Stamps a copy with caller-supplied PI literals (shared miter inputs,
    /// or lit_true()/lit_false() for a constant pattern).
    Copy add_copy(std::span<const Lit> pi_lits);

    /// Stamps a copy with the constant input pattern `bit i = inputs[i]`.
    /// With `fold`, cells whose single plausible function is fully
    /// determined by constant support pins become constants instead of
    /// fresh variables (no-op on fully camouflaged netlists).
    Copy add_copy(const std::vector<bool>& inputs, bool fold = false);

    /// One copy in each of two selector families over shared PI literals,
    /// with the selector-independent cone encoded once.  A node is shared
    /// when its cell's selector is collapsed to a single choice in BOTH
    /// families (fixed_nominal cells) and all its fanins are shared; the
    /// shared cone gets one set of value variables instead of two, and
    /// cells whose (single) function is fully determined by constant
    /// inputs fold to the constant without allocating anything.  Both
    /// builders must target the same netlist and solver.  `a`'s copy is
    /// stamped first with variable allocation identical to add_copy(), so
    /// with nothing shareable the encoding degenerates to exactly the
    /// legacy two-copy form.
    struct SharedCopy {
        Copy a, b;
        int shared_cells = 0;  ///< cells encoded once instead of twice
    };
    static SharedCopy add_shared_copies(CnfBuilder& a, CnfBuilder& b,
                                        std::span<const Lit> pi_lits);
    static SharedCopy add_shared_copies(CnfBuilder& a, CnfBuilder& b,
                                        const std::vector<bool>& inputs);

    /// Literal that is true/false in every model (backed by a unit clause).
    Lit lit_true() const { return mk_lit(const_var_); }
    Lit lit_false() const { return mk_lit(const_var_, true); }

    const camo::CamoNetlist& netlist() const { return *netlist_; }

    /// Selector variables of cell node `id` (empty for PIs).
    const std::vector<Var>& selectors(int id) const {
        return selector_[static_cast<std::size_t>(id)];
    }

    /// Decodes the solver model into a per-node plausible-index
    /// configuration (-1 for non-cells), as consumed by sim::simulate_camo.
    std::vector<int> config_from_model() const;

    /// Assumption literals pinning the selector family to `config`.
    std::vector<Lit> config_assumptions(const std::vector<int>& config) const;

    /// Adds a clause ruling out exactly `config` (model enumeration).  With
    /// `only`, the clause covers just the cells marked true -- enumeration
    /// then projects onto that subset (e.g. the primary-output cone, with
    /// the freedom of the remaining cells counted by multiplication).
    bool block_config(const std::vector<int>& config,
                      const std::vector<bool>* only = nullptr);

    /// Variables a sat::Preprocessor must not eliminate for this builder to
    /// stay usable: the constant variable and every selector (later stamps
    /// and block_config/config_assumptions reference them).
    std::vector<Var> frozen_vars() const;

private:
    /// Share-source handed from one stamp to its partner stamp.
    struct ShareSource {
        const std::vector<Lit>* values;        ///< per-node value literal
        const std::vector<signed char>* known;  ///< -1 unknown, else 0/1
        const std::vector<bool>* mask;          ///< nodes safe to reuse
    };
    Copy stamp(std::span<const Lit> pi_lits, bool fold,
               const ShareSource* share, std::vector<Lit>* values_out,
               std::vector<signed char>* known_out, int* shared_cells_out);

    /// Plausible index encoded by selector `j` of node `id`: fixed cells
    /// have one selector bound to their true function's index, free cells
    /// map selector j to plausible j.
    int plausible_index(int id, std::size_t j) const {
        const int f = fixed_choice_[static_cast<std::size_t>(id)];
        return f >= 0 ? f : static_cast<int>(j);
    }

    const camo::CamoNetlist* netlist_;
    Solver* solver_;
    Var const_var_;
    std::vector<std::vector<Var>> selector_;  // per node; empty for PIs
    /// Per node: the plausible index a fixed_nominal cell is bound to, or
    /// -1 when the cell's selector ranges over the full plausible set.
    std::vector<int> fixed_choice_;
};

}  // namespace mvf::sat
