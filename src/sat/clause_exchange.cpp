#include "sat/clause_exchange.hpp"

#include <algorithm>
#include <cassert>

namespace mvf::sat {

ClauseExchange::ClauseExchange(int members, int max_lits,
                               std::size_t max_clauses)
    : max_lits_(max_lits),
      max_clauses_(max_clauses),
      cursor_(static_cast<std::size_t>(std::max(1, members)), 0) {}

void ClauseExchange::publish(int member, const std::vector<Lit>& lits,
                             std::uint64_t epoch) {
    assert(member >= 0 && member < static_cast<int>(cursor_.size()));
    std::lock_guard lock(mutex_);
    if (static_cast<int>(lits.size()) > max_lits_ ||
        pool_.size() >= max_clauses_) {
        ++stats_.dropped;
        return;
    }
    pool_.push_back({member, epoch, lits});
    ++stats_.published;
}

std::size_t ClauseExchange::fetch(int member, std::uint64_t max_epoch,
                                  std::vector<std::vector<Lit>>* out) {
    assert(member >= 0 && member < static_cast<int>(cursor_.size()));
    std::lock_guard lock(mutex_);
    std::size_t& cursor = cursor_[static_cast<std::size_t>(member)];
    std::size_t appended = 0;
    while (cursor < pool_.size()) {
        const Entry& e = pool_[cursor];
        if (e.member != member) {
            if (e.epoch > max_epoch) break;  // eligible later, not yet
            out->push_back(e.lits);
            ++appended;
        }
        ++cursor;
    }
    stats_.fetched += appended;
    return appended;
}

ClauseExchange::Stats ClauseExchange::stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
}

}  // namespace mvf::sat
