#pragma once
// SatELite-style CNF preprocessing for the CDCL solver: bounded variable
// elimination (BVE), clause subsumption, and self-subsuming resolution
// (clause strengthening), run on the clause database at decision level 0.
//
// Motivation (ROADMAP): the oracle-guided CEGAR attack stamps hundreds of
// circuit copies into one incremental solver; most of their auxiliary gate
// variables have a handful of occurrences and resolve away, leaving far
// smaller clauses over the selector variables the attack actually branches
// on.  The same pass also shrinks the enumeration instance used for
// surviving-configuration counting.
//
// Incremental soundness contract:
//   - Variables the caller will reference again -- in later add_clause()
//     calls, in assumptions, or by reading model values that must coincide
//     with a specific encoding (e.g. CnfBuilder selector families and its
//     constant variable) -- must be frozen before run().  Eliminated
//     variables must never reappear in clauses or assumptions (enforced by
//     asserts in the solver).
//   - Models are extended back to the original namespace after every SAT
//     answer: model_value() stays valid for eliminated variables, so
//     reading e.g. miter primary inputs does not require freezing them.
//   - Learned clauses survive preprocessing unless they mention an
//     eliminated variable (they are entailed, so keeping them is sound).
//
// run() may be called again later (inprocessing): the CEGAR loop re-runs
// it after stamping many per-pattern circuit copies, which is where the
// bulk of the elimination opportunity appears.

#include <cstdint>
#include <span>
#include <vector>

#include "sat/solver.hpp"

namespace mvf::sat {

/// Solver-level knobs threaded from the attacks, the flow, and the mvf CLI
/// down to the SAT layer (see attack::OracleAttackParams::solver).
struct SolverConfig {
    /// Master switch: run the preprocessor before (and, for the CEGAR
    /// attack, periodically during) search.
    bool preprocess = true;
    /// BVE considers only variables with at most this many occurrences in
    /// each polarity.  (Defaults tuned on bench_oracle_attack --quick.)
    int elim_occ_limit = 32;
    /// BVE may grow the clause count by at most this much per elimination
    /// (resolvents already subsumed by an existing clause do not count).
    int elim_growth = 8;
    /// Resolvents longer than this veto the elimination producing them.
    int elim_resolvent_limit = 24;
    /// Alternating subsumption/elimination rounds per run().
    int max_rounds = 4;
    /// Inprocessing trigger for the CEGAR loop: re-run the light
    /// satisfied-clause sweep whenever the clause database has grown by
    /// this factor since the last run.  <= 1 disables inprocessing.
    double inprocess_growth = 1.7;

    bool operator==(const SolverConfig&) const = default;
};

/// Per-run() counters (cumulative totals also land in Solver::Stats).
struct PreprocessStats {
    std::uint64_t eliminated_vars = 0;
    std::uint64_t subsumed_clauses = 0;
    std::uint64_t strengthened_lits = 0;
    std::uint64_t removed_clauses = 0;  ///< satisfied/eliminated/subsumed
    int rounds = 0;
};

class Preprocessor {
public:
    explicit Preprocessor(Solver* solver, SolverConfig config = {});

    /// Marks a variable as untouchable by elimination.  Frozen status is
    /// per-Preprocessor; re-freeze when constructing a new one.
    void freeze(Var v);
    void freeze_all(std::span<const Var> vars);
    /// Freezes the variables underlying `lits` (convenience for PI vectors).
    void freeze_lits(std::span<const Lit> lits);

    /// Runs simplification to (bounded) fixpoint and commits the reduced
    /// database back into the solver.  Returns false when the instance was
    /// proven UNSAT at level 0 (the solver is then permanently UNSAT).
    /// Requires decision level 0 (always true outside solve()).
    bool run();

    /// Light inprocessing pass: physically removes clauses satisfied at
    /// level 0 and strips falsified literals -- across problem AND learned
    /// clauses -- without subsumption or elimination, so the learned
    /// database survives intact.  The CEGAR loop runs this as its
    /// per-pattern copies get pinned down by propagation (a large share of
    /// the database becomes satisfied at level 0 and only wastes watch
    /// traversals).  Same UNSAT contract as run().
    bool run_light();

    const PreprocessStats& stats() const { return stats_; }

private:
    // Working clause database (problem clauses only, sorted literals).
    bool run_internal(bool full);
    bool snapshot();
    bool propagate_units();
    bool subsume_round(bool* progress);
    bool eliminate_round(bool* progress);
    void commit();

    void kill(int ci);
    void occ_remove(Lit l, int ci);
    bool clause_implied(const std::vector<Lit>& lits);
    int add_work_clause(std::vector<Lit> lits);
    std::uint64_t signature(const std::vector<Lit>& lits) const;
    Value fixed_value(Lit l) const;
    bool assign_unit(Lit l);

    Solver* solver_;
    SolverConfig config_;
    PreprocessStats stats_;

    std::vector<bool> frozen_;

    std::vector<std::vector<Lit>> cls_;
    std::vector<std::uint64_t> sig_;
    std::vector<bool> dead_;
    std::vector<std::vector<int>> occ_;  // per literal
    std::vector<Value> fixed_;           // per var, includes new units
    std::vector<Lit> unit_queue_;
    std::vector<int> subsume_queue_;
    std::vector<bool> queued_;
    // Learned clauses carried across the run (re-added at commit unless
    // they mention an eliminated variable).
    std::vector<std::pair<std::vector<Lit>, double>> learned_;
    std::uint64_t budget_ = 0;  // literal-comparison budget for subsumption
};

}  // namespace mvf::sat
