#include "camo/camo_map.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>

namespace mvf::camo {

using logic::TruthTable;
using tech::Netlist;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The selected cover of one node: which subtree, which cell, and how leaves
// map to pins.  fn_per_code[c] is the pin-space function the cell must
// realize under viable-function code c.
struct Cover {
    bool valid = false;
    Subtree ts;
    int camo_cell_id = -1;
    std::vector<int> used_leaves;      ///< signal leaves actually connected
    std::vector<int> pin_of_leaf;      ///< pin index per used leaf
    std::vector<TruthTable> fn_per_code;
};

struct CamoMapper {
    const Netlist& nl;
    const CamoLibrary& lib;
    const int num_codes;
    const CamoMapParams& params;

    std::vector<int> fanouts;
    std::vector<bool> is_root;       // tree roots (own cost counted globally)
    std::vector<double> cost;        // DP cost per cell node
    std::vector<Cover> cover;        // chosen cover per cell node
    std::unordered_map<int, int> select_position;  // PI node -> select index

    CamoMapper(const Netlist& netlist, const CamoLibrary& library,
               int codes, const CamoMapParams& p)
        : nl(netlist), lib(library), num_codes(codes), params(p) {
        fanouts = nl.fanout_counts();
        is_root.assign(static_cast<std::size_t>(nl.num_nodes()), false);
        for (int i = 0; i < nl.num_pos(); ++i) {
            is_root[static_cast<std::size_t>(nl.po(i))] = true;
        }
        for (int id = 0; id < nl.num_nodes(); ++id) {
            if (nl.node(id).kind == Netlist::NodeKind::kCell &&
                fanouts[static_cast<std::size_t>(id)] >= 2) {
                is_root[static_cast<std::size_t>(id)] = true;
            }
        }
        int sel = 0;
        for (int i = 0; i < nl.num_pis(); ++i) {
            const int pi_node = nl.pi(i);
            if (nl.node(pi_node).is_select) {
                select_position.emplace(pi_node, sel++);
            }
        }
        cost.assign(static_cast<std::size_t>(nl.num_nodes()), kInf);
        cover.assign(static_cast<std::size_t>(nl.num_nodes()), Cover{});
    }

    // Pin-space extension of f (over used leaves) under a pin assignment.
    static TruthTable to_pin_space(const TruthTable& f, int num_pins,
                                   const std::vector<int>& pin_of_leaf) {
        return TruthTable::from_function(num_pins, [&](std::uint32_t m) {
            std::uint32_t leaf_bits = 0;
            for (std::size_t j = 0; j < pin_of_leaf.size(); ++j) {
                if ((m >> pin_of_leaf[j]) & 1) leaf_bits |= 1u << j;
            }
            return f.bit(leaf_bits);
        });
    }

    // Tries to cover `ts` with `cell`; on success fills pin assignment and
    // per-code functions into `out` and returns true.
    bool try_match(const Subtree& ts, const TruthTable& full,
                   const std::vector<TruthTable>& fns, int camo_cell_id,
                   Cover* out) const {
        const CamoCell& cell = lib.cell(camo_cell_id);

        // Support reduction: pins are only needed for leaves some abstracted
        // function depends on.
        std::vector<bool> needed(ts.signal_leaves.size(), false);
        for (const TruthTable& f : fns) {
            for (const int v : f.support()) needed[static_cast<std::size_t>(v)] = true;
        }
        std::vector<int> used_vars;
        std::vector<int> used_leaves;
        for (std::size_t i = 0; i < ts.signal_leaves.size(); ++i) {
            if (needed[i]) {
                used_vars.push_back(static_cast<int>(i));
                used_leaves.push_back(ts.signal_leaves[i]);
            }
        }
        const int m = static_cast<int>(used_vars.size());
        if (m > cell.num_pins) return false;

        std::vector<TruthTable> reduced;
        reduced.reserve(fns.size());
        for (const TruthTable& f : fns) reduced.push_back(f.project(used_vars));

        // Try all injective leaf->pin assignments (pins <= 4).
        std::vector<int> pins(static_cast<std::size_t>(cell.num_pins));
        for (int p = 0; p < cell.num_pins; ++p) pins[static_cast<std::size_t>(p)] = p;

        std::vector<std::vector<int>> tried;
        do {
            std::vector<int> sigma(pins.begin(), pins.begin() + m);
            if (std::find(tried.begin(), tried.end(), sigma) != tried.end())
                continue;
            tried.push_back(sigma);

            bool all_ok = true;
            for (const TruthTable& f : reduced) {
                if (!cell.can_implement(to_pin_space(f, cell.num_pins, sigma))) {
                    all_ok = false;
                    break;
                }
            }
            if (!all_ok) continue;

            out->valid = true;
            out->ts = ts;
            out->camo_cell_id = camo_cell_id;
            out->used_leaves = used_leaves;
            out->pin_of_leaf = sigma;
            out->fn_per_code.clear();
            out->fn_per_code.reserve(static_cast<std::size_t>(num_codes));
            const int ms = static_cast<int>(ts.signal_leaves.size());
            for (int code = 0; code < num_codes; ++code) {
                TruthTable g = full;
                for (std::size_t j = 0; j < ts.select_leaves.size(); ++j) {
                    const int pos = select_position.at(ts.select_leaves[j]);
                    g = g.cofactor(ms + static_cast<int>(j), (code >> pos) & 1);
                }
                TruthTable fc = g.project(used_vars);
                out->fn_per_code.push_back(
                    to_pin_space(fc, cell.num_pins, sigma));
            }
            return true;
        } while (std::next_permutation(pins.begin(), pins.end()));
        return false;
    }

    double leaf_cost(const Subtree& ts) const {
        double c = 0.0;
        for (const int leaf : ts.signal_leaves) {
            if (nl.node(leaf).kind == Netlist::NodeKind::kCell &&
                !is_root[static_cast<std::size_t>(leaf)]) {
                assert(cost[static_cast<std::size_t>(leaf)] < kInf);
                c += cost[static_cast<std::size_t>(leaf)];
            }
        }
        return c;
    }

    void run_dp() {
        for (int id = 0; id < nl.num_nodes(); ++id) {
            if (nl.node(id).kind != Netlist::NodeKind::kCell) continue;
            if (fanouts[static_cast<std::size_t>(id)] == 0 &&
                !is_root[static_cast<std::size_t>(id)])
                continue;  // dead

            for (const Subtree& ts :
                 enumerate_subtrees(nl, id, fanouts, params.subtree)) {
                const TruthTable full = subtree_function(nl, ts);
                const std::vector<TruthTable> fns = abs_func(ts, full);
                const double leaves = leaf_cost(ts);

                for (int cid = 0; cid < lib.num_cells(); ++cid) {
                    const double candidate_cost = lib.cell(cid).area + leaves;
                    if (candidate_cost >= cost[static_cast<std::size_t>(id)])
                        continue;  // cannot improve
                    Cover c;
                    if (try_match(ts, full, fns, cid, &c)) {
                        cost[static_cast<std::size_t>(id)] = candidate_cost;
                        cover[static_cast<std::size_t>(id)] = std::move(c);
                    }
                }
            }
            assert(cost[static_cast<std::size_t>(id)] < kInf &&
                   "depth-1 self-cover with the node's own camo cell must match");
        }
    }

    CamoMapResult extract() {
        CamoNetlist out(lib);
        std::unordered_map<int, int> built;  // netlist node -> camo node

        for (int i = 0; i < nl.num_pis(); ++i) {
            const int pi_node = nl.pi(i);
            if (nl.node(pi_node).is_select) continue;  // eliminated
            built.emplace(pi_node, out.add_pi(nl.node(pi_node).name));
        }

        const auto materialize = [&](auto&& self, int node) -> int {
            const auto it = built.find(node);
            if (it != built.end()) return it->second;

            const Netlist::Node& n = nl.node(node);
            if (n.kind == Netlist::NodeKind::kConst0 ||
                n.kind == Netlist::NodeKind::kConst1) {
                // A constant net: realize with a TIE look-alike.
                const bool value = n.kind == Netlist::NodeKind::kConst1;
                CamoNetlist::Node tie;
                tie.kind = CamoNetlist::NodeKind::kCell;
                tie.camo_cell_id = lib.tie_id();
                tie.used_pin_mask = 0;
                const int idx = value ? 1 : 0;  // plausible = {0, 1}
                tie.config_fn.assign(static_cast<std::size_t>(num_codes), idx);
                const int id = out.add_cell(std::move(tie));
                built.emplace(node, id);
                return id;
            }
            assert(n.kind == Netlist::NodeKind::kCell);
            const Cover& c = cover[static_cast<std::size_t>(node)];
            assert(c.valid);

            const CamoCell& cell = lib.cell(c.camo_cell_id);
            CamoNetlist::Node inst;
            inst.kind = CamoNetlist::NodeKind::kCell;
            inst.camo_cell_id = c.camo_cell_id;
            inst.fanins.assign(static_cast<std::size_t>(cell.num_pins), -1);
            for (std::size_t j = 0; j < c.used_leaves.size(); ++j) {
                const int leaf_id = self(self, c.used_leaves[j]);
                inst.fanins[static_cast<std::size_t>(c.pin_of_leaf[j])] = leaf_id;
                inst.used_pin_mask |= 1u << c.pin_of_leaf[j];
            }
            // Dopant-disconnected pins still need a physical net; tie them
            // to any already-built signal (first used pin, else a PI).
            int filler = -1;
            for (const int f : inst.fanins) {
                if (f >= 0) {
                    filler = f;
                    break;
                }
            }
            if (filler < 0 && out.num_pis() > 0) filler = out.pi(0);
            for (auto& f : inst.fanins) {
                if (f < 0) {
                    assert(filler >= 0 && "no net available for unused pins");
                    f = filler;
                }
            }
            for (int code = 0; code < num_codes; ++code) {
                const int idx = cell.plausible_index(
                    c.fn_per_code[static_cast<std::size_t>(code)]);
                assert(idx >= 0 && "matched cover must be plausible per code");
                inst.config_fn.push_back(idx);
            }
            const int id = out.add_cell(std::move(inst));
            built.emplace(node, id);
            return id;
        };

        for (int i = 0; i < nl.num_pos(); ++i) {
            const int po_node = nl.po(i);
            const Netlist::Node& n = nl.node(po_node);
            assert(!(n.kind == Netlist::NodeKind::kPi && n.is_select) &&
                   "a primary output may not be a raw select signal");
            (void)n;
            out.add_po(materialize(materialize, po_node), nl.po_name(i));
        }

        CamoMapResult result{std::move(out), {}};
        result.stats.area = result.netlist.area();
        result.stats.num_cells = result.netlist.num_cells();
        result.stats.config_space_bits = result.netlist.config_space_bits();
        result.stats.selects_eliminated = nl.num_selects();
        return result;
    }
};

}  // namespace

CamoMapResult camo_map(const Netlist& synthesized, const CamoLibrary& library,
                       int num_select_codes, const CamoMapParams& params) {
    CamoMapper mapper(synthesized, library, num_select_codes, params);
    mapper.run_dp();
    return mapper.extract();
}

}  // namespace mvf::camo
