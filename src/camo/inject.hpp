#pragma once
// Camouflage injection for imported benchmark circuits.
//
// The S-box flow reaches a CamoNetlist through Phase III's covering; an
// imported circuit has no select structure to absorb, so injection takes
// the direct route the camouflaging literature (and the paper's threat
// model) assumes: replace a chosen fraction of the mapped cells with their
// look-alike camouflaged variants and leave the rest nominal-but-known.
// The attacker model is the standard one — camouflaged cells range over
// their full plausible sets, every other cell is fixed to its nominal
// function via OracleAttackParams::fixed_nominal.

#include <cstdint>
#include <string>
#include <vector>

#include "camo/camo_cell.hpp"
#include "camo/camo_map.hpp"
#include "camo/camo_netlist.hpp"
#include "map/netlist.hpp"
#include "util/rng.hpp"

namespace mvf::camo {

/// Which cells get camouflaged first when the budget is partial.
enum class InjectPolicy {
    kRandom,  ///< seeded uniform choice
    kFanout,  ///< highest-fanout cells first (hurts sensitization attacks)
    kDepth,   ///< deepest cells first (longest controlling paths)
};

/// Parses "random" / "fanout" / "depth"; returns false on anything else.
bool inject_policy_from_name(const std::string& name, InjectPolicy* policy);
const char* inject_policy_name(InjectPolicy policy);

struct InjectParams {
    /// Fraction of camouflageable cells to camouflage, in (0, 1].  Ignored
    /// when `cells` is positive.
    double density = 0.1;
    /// Absolute number of cells to camouflage (0 = use density).
    int cells = 0;
    InjectPolicy policy = InjectPolicy::kRandom;
    std::uint64_t seed = 1;
};

struct InjectResult {
    CamoNetlist netlist;
    /// fixed_nominal[node] = attacker knows this cell is ordinary (config
    /// code 0).  Indexed by CamoNetlist node id; feed to
    /// OracleAttackParams::fixed_nominal.
    std::vector<bool> fixed_nominal;
    CamoMapStats stats;
    /// Camouflageable cell instances in the mapped netlist (the density
    /// denominator).
    int total_cells = 0;
};

/// Camouflages `mapped` (which must have no select inputs) against
/// `library`: every cell becomes its look-alike variant, constants become
/// TIE cells, and the selected subset is left free for the attacker to
/// resolve while the rest is marked fixed.  Code 0 always realizes the
/// original circuit.  Deterministic in (mapped, params).
InjectResult inject(const tech::Netlist& mapped, const CamoLibrary& library,
                    const InjectParams& params);

}  // namespace mvf::camo
