#include "camo/camo_cell.hpp"

#include <cassert>
#include <cmath>

namespace mvf::camo {

using logic::TruthTable;

int CamoCell::plausible_index(const TruthTable& f) const {
    assert(f.num_vars() == num_pins);
    for (std::size_t i = 0; i < plausible.size(); ++i) {
        if (plausible[i] == f) return static_cast<int>(i);
    }
    return -1;
}

double CamoCell::config_bits() const {
    return std::log2(static_cast<double>(plausible.size()));
}

std::vector<TruthTable> CamoLibrary::plausible_closure(const TruthTable& nominal) {
    const int k = nominal.num_vars();
    std::vector<TruthTable> result;
    const auto add_unique = [&result](const TruthTable& t) {
        for (const TruthTable& u : result) {
            if (u == t) return;
        }
        result.push_back(t);
    };
    add_unique(nominal);
    // Every pin independently: free, stuck-0, or stuck-1 (3^k variants).
    std::vector<int> state(static_cast<std::size_t>(k), 0);
    while (true) {
        // Advance the mixed-radix counter.
        int p = 0;
        while (p < k && state[static_cast<std::size_t>(p)] == 2) {
            state[static_cast<std::size_t>(p)] = 0;
            ++p;
        }
        if (p == k) break;
        ++state[static_cast<std::size_t>(p)];

        TruthTable f = nominal;
        for (int pin = 0; pin < k; ++pin) {
            const int s = state[static_cast<std::size_t>(pin)];
            if (s == 1) f = f.cofactor(pin, false);
            if (s == 2) f = f.cofactor(pin, true);
        }
        add_unique(f);
    }
    return result;
}

CamoLibrary CamoLibrary::from_gate_library(const tech::GateLibrary& lib) {
    CamoLibrary out;
    out.gate_lib_ = lib;
    for (int id = 0; id < lib.num_cells(); ++id) {
        const tech::GateCell& nominal = lib.cell(id);
        CamoCell cell;
        cell.name = "CAMO_" + nominal.name;
        cell.nominal_cell_id = id;
        cell.num_pins = nominal.num_inputs;
        cell.area = nominal.area;
        cell.plausible = plausible_closure(nominal.function);
        out.cells_.push_back(std::move(cell));
        out.nominal_to_camo_.emplace(id, out.num_cells() - 1);
    }
    // TIE look-alike: a pin-less filler-style cell that is plausibly either
    // tie-low or tie-high; absorbs logic cones that depend only on selects.
    CamoCell tie;
    tie.name = "CAMO_TIE";
    tie.nominal_cell_id = -1;
    tie.num_pins = 0;
    tie.area = 0.67;
    tie.plausible = {TruthTable::zeros(0), TruthTable::ones(0)};
    out.cells_.push_back(std::move(tie));
    out.tie_id_ = out.num_cells() - 1;
    return out;
}

int CamoLibrary::camo_of_nominal(int nominal_cell_id) const {
    const auto it = nominal_to_camo_.find(nominal_cell_id);
    return it == nominal_to_camo_.end() ? -1 : it->second;
}

}  // namespace mvf::camo
