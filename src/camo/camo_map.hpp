#pragma once
// Algorithm 1: technology mapping with camouflaged cells (paper III-C).
//
// Covers the synthesized gate netlist with camouflaged look-alike cells so
// that the select inputs are eliminated while every function the circuit
// could realize under any select assignment remains plausible.  The circuit
// is split into fanout-free trees; per node, candidate subtrees of depth
// < 3 are enumerated; ABSFUNC abstracts the selects of each candidate into
// a function set; a camouflaged cell matches iff some injective leaf->pin
// assignment places the whole set inside the cell's plausible functions;
// dynamic programming selects the minimum-area cover.  During extraction
// the per-select-code cell configuration is recorded, which later replays
// each viable function in simulation (the paper's ModelSim check).

#include <vector>

#include "camo/absfunc.hpp"
#include "camo/camo_cell.hpp"
#include "camo/camo_netlist.hpp"
#include "map/netlist.hpp"

namespace mvf::camo {

struct CamoMapParams {
    SubtreeParams subtree;  ///< candidate enumeration bounds
};

struct CamoMapStats {
    double area = 0.0;           ///< final look-alike area (GE)
    int num_cells = 0;           ///< camouflaged cell instances
    double config_space_bits = 0.0;
    int selects_eliminated = 0;  ///< select inputs absorbed by doping
};

struct CamoMapResult {
    CamoNetlist netlist;
    CamoMapStats stats;
};

/// Maps `synthesized` (whose select PIs drive the choice among
/// `num_select_codes` viable functions, select j = j-th select-flagged PI,
/// code bit j = value of select j) onto camouflaged cells.
CamoMapResult camo_map(const tech::Netlist& synthesized,
                       const CamoLibrary& library, int num_select_codes,
                       const CamoMapParams& params = {});

}  // namespace mvf::camo
