#pragma once
// Candidate-subtree enumeration and the ABSFUNC select abstraction of
// Algorithm 1 (paper section III-C).
//
// Tree covering considers, for each netlist node, every fanout-free subtree
// of bounded depth rooted there.  ABSFUNC computes the *set* of functions
// such a subtree realizes over its non-select leaves, one function per
// assignment of the select signals appearing inside it; a camouflaged cell
// may cover the subtree only if its plausible set contains every one of
// those functions under a single pin assignment.

#include <vector>

#include "logic/truth_table.hpp"
#include "map/netlist.hpp"

namespace mvf::camo {

/// A fanout-free subtree rooted at `root`.  Leaf node lists are sorted and
/// deduplicated; constant nodes are folded during evaluation and do not
/// appear as leaves.
struct Subtree {
    int root = -1;
    std::vector<int> internal;       ///< covered cell nodes (root included)
    std::vector<int> signal_leaves;  ///< non-select leaf nodes
    std::vector<int> select_leaves;  ///< select-input leaf nodes
};

struct SubtreeParams {
    /// Maximum gate levels per candidate subtree.  Alg. 1's "depth < 3"
    /// counts node depth including the leaf row, which corresponds to three
    /// gate levels here; the ablation bench sweeps this knob.
    int max_depth = 3;
    /// Camouflaged cells have at most 4 pins.
    int max_signal_leaves = 4;
    /// Safety valve on candidates per root.
    int max_candidates = 128;
};

/// All candidate subtrees rooted at `root` (a cell node).  Expansion stays
/// within the fanout-free tree: only single-fanout cell fanins may become
/// internal.  `fanouts` comes from Netlist::fanout_counts().
std::vector<Subtree> enumerate_subtrees(const tech::Netlist& netlist, int root,
                                        const std::vector<int>& fanouts,
                                        const SubtreeParams& params);

/// Function of the subtree root over (signal_leaves ++ select_leaves):
/// variable i is signal leaf i, variable |signal|+j is select leaf j.
logic::TruthTable subtree_function(const tech::Netlist& netlist,
                                   const Subtree& ts);

/// ABSFUNC: the set of functions over the signal leaves obtained for every
/// assignment of the subtree's select leaves (deduplicated).  `full` must be
/// subtree_function(netlist, ts).
std::vector<logic::TruthTable> abs_func(const Subtree& ts,
                                        const logic::TruthTable& full);

/// Evaluates a cell function over pin-value truth tables (composition).
logic::TruthTable compose(const logic::TruthTable& cell_fn,
                          const std::vector<logic::TruthTable>& pin_values);

}  // namespace mvf::camo
