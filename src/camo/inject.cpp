#include "camo/inject.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace mvf::camo {

using tech::Netlist;

bool inject_policy_from_name(const std::string& name, InjectPolicy* policy) {
    if (name == "random") {
        *policy = InjectPolicy::kRandom;
    } else if (name == "fanout") {
        *policy = InjectPolicy::kFanout;
    } else if (name == "depth") {
        *policy = InjectPolicy::kDepth;
    } else {
        return false;
    }
    return true;
}

const char* inject_policy_name(InjectPolicy policy) {
    switch (policy) {
        case InjectPolicy::kRandom:
            return "random";
        case InjectPolicy::kFanout:
            return "fanout";
        case InjectPolicy::kDepth:
            return "depth";
    }
    return "?";
}

InjectResult inject(const Netlist& mapped, const CamoLibrary& library,
                    const InjectParams& params) {
    assert(mapped.num_selects() == 0);

    // Translate every node to its look-alike form, exactly as the random-
    // camouflage baseline does: consts -> TIE, cells -> camo variant with
    // config_fn = {nominal}.  Candidate list collects the camo node ids
    // whose fixedness is still to be decided (constants included — a TIE
    // the attacker cannot read is genuine uncertainty).
    CamoNetlist out(library);
    std::vector<int> node_map(static_cast<std::size_t>(mapped.num_nodes()), -1);
    std::vector<bool> fixed;
    std::vector<int> candidates;       // camo node ids
    std::vector<int> candidate_orig;   // same order: mapped node ids

    for (int id = 0; id < mapped.num_nodes(); ++id) {
        const Netlist::Node& n = mapped.node(id);
        switch (n.kind) {
            case Netlist::NodeKind::kPi:
                node_map[static_cast<std::size_t>(id)] = out.add_pi(n.name);
                fixed.resize(static_cast<std::size_t>(out.num_nodes()), false);
                break;
            case Netlist::NodeKind::kConst0:
            case Netlist::NodeKind::kConst1: {
                CamoNetlist::Node tie;
                tie.kind = CamoNetlist::NodeKind::kCell;
                tie.camo_cell_id = library.tie_id();
                tie.config_fn = {n.kind == Netlist::NodeKind::kConst1 ? 1 : 0};
                const int nid = out.add_cell(std::move(tie));
                node_map[static_cast<std::size_t>(id)] = nid;
                fixed.resize(static_cast<std::size_t>(out.num_nodes()), true);
                fixed[static_cast<std::size_t>(nid)] = true;
                candidates.push_back(nid);
                candidate_orig.push_back(id);
                break;
            }
            case Netlist::NodeKind::kCell: {
                const int camo_id = library.camo_of_nominal(n.cell_id);
                if (camo_id < 0) {
                    throw std::runtime_error(
                        "camo::inject: library has no camouflaged variant "
                        "of cell \"" +
                        mapped.library().cell(n.cell_id).name + "\"");
                }
                CamoNetlist::Node inst;
                inst.kind = CamoNetlist::NodeKind::kCell;
                inst.camo_cell_id = camo_id;
                inst.fanins.reserve(n.fanins.size());
                for (const int f : n.fanins) {
                    inst.fanins.push_back(node_map[static_cast<std::size_t>(f)]);
                }
                inst.used_pin_mask =
                    (1u << library.cell(camo_id).num_pins) - 1;
                inst.config_fn = {0};  // plausible[0] is the nominal function
                const int nid = out.add_cell(std::move(inst));
                node_map[static_cast<std::size_t>(id)] = nid;
                fixed.resize(static_cast<std::size_t>(out.num_nodes()), true);
                fixed[static_cast<std::size_t>(nid)] = true;
                candidates.push_back(nid);
                candidate_orig.push_back(id);
                break;
            }
        }
    }
    for (int i = 0; i < mapped.num_pos(); ++i) {
        out.add_po(node_map[static_cast<std::size_t>(mapped.po(i))],
                   mapped.po_name(i));
    }

    // Pick the camouflage budget.
    const int total = static_cast<int>(candidates.size());
    int target;
    if (params.cells > 0) {
        target = std::min(params.cells, total);
    } else {
        target = static_cast<int>(
            std::llround(params.density * static_cast<double>(total)));
        if (params.density > 0.0 && total > 0) target = std::max(target, 1);
        target = std::min(target, total);
    }

    // Order candidates by policy; the first `target` get camouflaged.
    std::vector<int> order(candidates.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = static_cast<int>(i);
    }
    switch (params.policy) {
        case InjectPolicy::kRandom: {
            util::Rng rng(params.seed);
            rng.shuffle(std::span<int>(order));
            break;
        }
        case InjectPolicy::kFanout: {
            const std::vector<int> fanout = mapped.fanout_counts();
            std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
                const int fa = fanout[static_cast<std::size_t>(
                    candidate_orig[static_cast<std::size_t>(a)])];
                const int fb = fanout[static_cast<std::size_t>(
                    candidate_orig[static_cast<std::size_t>(b)])];
                return fa != fb ? fa > fb : a < b;
            });
            break;
        }
        case InjectPolicy::kDepth: {
            // Logic level per mapped node (PIs/consts at 0); topological
            // node order makes a single forward pass sufficient.
            std::vector<int> level(static_cast<std::size_t>(mapped.num_nodes()),
                                   0);
            for (int id = 0; id < mapped.num_nodes(); ++id) {
                const Netlist::Node& n = mapped.node(id);
                if (n.kind != Netlist::NodeKind::kCell) continue;
                int lv = 0;
                for (const int f : n.fanins) {
                    lv = std::max(lv, level[static_cast<std::size_t>(f)]);
                }
                level[static_cast<std::size_t>(id)] = lv + 1;
            }
            std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
                const int la = level[static_cast<std::size_t>(
                    candidate_orig[static_cast<std::size_t>(a)])];
                const int lb = level[static_cast<std::size_t>(
                    candidate_orig[static_cast<std::size_t>(b)])];
                return la != lb ? la > lb : a < b;
            });
            break;
        }
    }
    for (int k = 0; k < target; ++k) {
        const int nid = candidates[static_cast<std::size_t>(
            order[static_cast<std::size_t>(k)])];
        fixed[static_cast<std::size_t>(nid)] = false;
    }

    InjectResult result{std::move(out), std::move(fixed), {}, total};
    result.stats.area = result.netlist.area();
    result.stats.num_cells = target;
    result.stats.selects_eliminated = 0;
    double bits = 0.0;
    for (int id = 0; id < result.netlist.num_nodes(); ++id) {
        const CamoNetlist::Node& n = result.netlist.node(id);
        if (n.kind != CamoNetlist::NodeKind::kCell) continue;
        if (result.fixed_nominal[static_cast<std::size_t>(id)]) continue;
        bits += library.cell(n.camo_cell_id).config_bits();
    }
    result.stats.config_space_bits = bits;
    return result;
}

}  // namespace mvf::camo
