#include "camo/camo_netlist.hpp"

#include <cassert>

namespace mvf::camo {

int CamoNetlist::add_pi(std::string name) {
    Node n;
    n.kind = NodeKind::kPi;
    n.name = std::move(name);
    nodes_.push_back(std::move(n));
    pis_.push_back(num_nodes() - 1);
    return num_nodes() - 1;
}

int CamoNetlist::add_cell(Node cell) {
    assert(cell.kind == NodeKind::kCell);
    assert(cell.camo_cell_id >= 0 && cell.camo_cell_id < library_.num_cells());
    assert(static_cast<int>(cell.fanins.size()) ==
           library_.cell(cell.camo_cell_id).num_pins);
    for (const int f : cell.fanins) assert(f >= 0 && f < num_nodes());
    nodes_.push_back(std::move(cell));
    return num_nodes() - 1;
}

void CamoNetlist::add_po(int node, std::string name) {
    assert(node >= 0 && node < num_nodes());
    pos_.push_back(node);
    po_names_.push_back(std::move(name));
}

double CamoNetlist::area() const {
    double total = 0.0;
    for (const Node& n : nodes_) {
        if (n.kind == NodeKind::kCell) total += library_.cell(n.camo_cell_id).area;
    }
    return total;
}

int CamoNetlist::num_cells() const {
    int count = 0;
    for (const Node& n : nodes_) {
        if (n.kind == NodeKind::kCell) ++count;
    }
    return count;
}

double CamoNetlist::config_space_bits() const {
    double bits = 0.0;
    for (const Node& n : nodes_) {
        if (n.kind == NodeKind::kCell) {
            bits += library_.cell(n.camo_cell_id).config_bits();
        }
    }
    return bits;
}

std::vector<int> CamoNetlist::configuration_for_code(int code) const {
    std::vector<int> config(static_cast<std::size_t>(num_nodes()), -1);
    for (int id = 0; id < num_nodes(); ++id) {
        const Node& n = node(id);
        if (n.kind != NodeKind::kCell) continue;
        assert(code >= 0 && code < static_cast<int>(n.config_fn.size()));
        config[static_cast<std::size_t>(id)] = n.config_fn[static_cast<std::size_t>(code)];
    }
    return config;
}

bool CamoNetlist::validate() const {
    for (int id = 0; id < num_nodes(); ++id) {
        const Node& n = node(id);
        if (n.kind != NodeKind::kCell) continue;
        if (n.camo_cell_id < 0 || n.camo_cell_id >= library_.num_cells()) return false;
        const CamoCell& cell = library_.cell(n.camo_cell_id);
        if (static_cast<int>(n.fanins.size()) != cell.num_pins) return false;
        for (const int f : n.fanins) {
            if (f < 0 || f >= id) return false;
        }
        for (const int choice : n.config_fn) {
            if (choice < 0 || choice >= static_cast<int>(cell.plausible.size()))
                return false;
        }
    }
    return true;
}

}  // namespace mvf::camo
