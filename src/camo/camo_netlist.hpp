#pragma once
// Final obfuscated netlist built from camouflaged look-alike cells.
//
// Unlike the synthesized tech::Netlist, the camouflaged netlist has NO
// select inputs: Phase III absorbed them into dopant configurations.  Each
// cell instance carries its per-select-code configuration table (which
// plausible function realizes each viable function); this table is the
// "appropriate gate functions" the paper supplies to ModelSim for
// validation, and is what an attacker does NOT know.

#include <cstdint>
#include <string>
#include <vector>

#include "camo/camo_cell.hpp"

namespace mvf::camo {

class CamoNetlist {
public:
    enum class NodeKind { kPi, kCell };

    struct Node {
        NodeKind kind = NodeKind::kCell;
        int camo_cell_id = -1;
        /// Pin connections (node ids).  All pins are wired (look-alikes
        /// cannot have floating pins); pins outside `used_pin_mask` are
        /// dopant-disconnected and do not influence the output.
        std::vector<int> fanins;
        std::uint32_t used_pin_mask = 0;
        /// config_fn[c] = index into the cell's plausible set realizing
        /// viable-function code c (one entry per select code).
        std::vector<int> config_fn;
        std::string name;  ///< for kPi
    };

    explicit CamoNetlist(CamoLibrary library) : library_(std::move(library)) {}

    const CamoLibrary& library() const { return library_; }

    int add_pi(std::string name);
    int add_cell(Node cell);

    void add_po(int node, std::string name = "");

    int num_nodes() const { return static_cast<int>(nodes_.size()); }
    const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }

    int num_pis() const { return static_cast<int>(pis_.size()); }
    int pi(int i) const { return pis_[static_cast<std::size_t>(i)]; }
    int num_pos() const { return static_cast<int>(pos_.size()); }
    int po(int i) const { return pos_[static_cast<std::size_t>(i)]; }
    const std::string& po_name(int i) const {
        return po_names_[static_cast<std::size_t>(i)];
    }

    /// Total look-alike area in GE.
    double area() const;

    int num_cells() const;

    /// Attacker uncertainty: sum over instances of log2(#plausible).
    double config_space_bits() const;

    /// Per-cell plausible-function choice realizing select code `code`.
    std::vector<int> configuration_for_code(int code) const;

    bool validate() const;

private:
    CamoLibrary library_;
    std::vector<Node> nodes_;
    std::vector<int> pis_;
    std::vector<int> pos_;
    std::vector<std::string> po_names_;
};

}  // namespace mvf::camo
