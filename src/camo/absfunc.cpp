#include "camo/absfunc.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace mvf::camo {

using logic::TruthTable;
using tech::Netlist;

namespace {

void sort_unique(std::vector<int>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
}

// Merges `sub` into `acc`, keeping leaf lists sorted/unique.
void merge_into(const Subtree& sub, Subtree* acc) {
    acc->internal.insert(acc->internal.end(), sub.internal.begin(),
                         sub.internal.end());
    acc->signal_leaves.insert(acc->signal_leaves.end(),
                              sub.signal_leaves.begin(), sub.signal_leaves.end());
    acc->select_leaves.insert(acc->select_leaves.end(),
                              sub.select_leaves.begin(), sub.select_leaves.end());
}

void normalize(Subtree* t) {
    sort_unique(&t->internal);
    sort_unique(&t->signal_leaves);
    sort_unique(&t->select_leaves);
}

struct Enumerator {
    const Netlist& nl;
    const std::vector<int>& fanouts;
    const SubtreeParams& params;

    bool expandable(int node) const {
        return nl.node(node).kind == Netlist::NodeKind::kCell &&
               fanouts[static_cast<std::size_t>(node)] == 1;
    }

    // Leaf-classified singleton for a fanin that is not expanded.
    void add_leaf(int node, Subtree* t) const {
        const Netlist::Node& n = nl.node(node);
        if (n.kind == Netlist::NodeKind::kConst0 ||
            n.kind == Netlist::NodeKind::kConst1) {
            return;  // constants fold during evaluation
        }
        if (n.kind == Netlist::NodeKind::kPi && n.is_select) {
            t->select_leaves.push_back(node);
        } else {
            t->signal_leaves.push_back(node);
        }
    }

    std::vector<Subtree> enumerate(int root, int depth_left) const {
        const Netlist::Node& rn = nl.node(root);
        assert(rn.kind == Netlist::NodeKind::kCell);

        // Per-fanin choice lists: not expanded, or any subtree of the fanin.
        std::vector<std::vector<Subtree>> choices;
        choices.reserve(rn.fanins.size());
        for (const int f : rn.fanins) {
            std::vector<Subtree> opts;
            Subtree leaf_only;
            add_leaf(f, &leaf_only);
            opts.push_back(std::move(leaf_only));
            if (depth_left > 1 && expandable(f)) {
                for (Subtree& sub : enumerate(f, depth_left - 1)) {
                    opts.push_back(std::move(sub));
                }
            }
            choices.push_back(std::move(opts));
        }

        // Cartesian product with pruning on signal-leaf count.
        std::vector<Subtree> result;
        Subtree base;
        base.root = root;
        base.internal.push_back(root);
        std::vector<Subtree> partial{base};
        for (const auto& opts : choices) {
            std::vector<Subtree> next;
            for (const Subtree& p : partial) {
                for (const Subtree& opt : opts) {
                    if (static_cast<int>(next.size()) +
                            static_cast<int>(result.size()) >
                        params.max_candidates)
                        break;
                    Subtree combined = p;
                    merge_into(opt, &combined);
                    // Cheap over-approximation prune (exact check after dedup).
                    normalize(&combined);
                    if (static_cast<int>(combined.signal_leaves.size()) >
                        params.max_signal_leaves)
                        continue;
                    next.push_back(std::move(combined));
                }
            }
            partial = std::move(next);
        }
        for (Subtree& t : partial) {
            t.root = root;
            result.push_back(std::move(t));
        }
        return result;
    }
};

}  // namespace

std::vector<Subtree> enumerate_subtrees(const Netlist& netlist, int root,
                                        const std::vector<int>& fanouts,
                                        const SubtreeParams& params) {
    const Enumerator e{netlist, fanouts, params};
    return e.enumerate(root, params.max_depth);
}

TruthTable compose(const TruthTable& cell_fn,
                   const std::vector<TruthTable>& pin_values) {
    assert(static_cast<int>(pin_values.size()) == cell_fn.num_vars());
    const int nv = pin_values.empty() ? 0 : pin_values[0].num_vars();
    TruthTable out(nv);
    for (std::uint32_t p = 0; p < cell_fn.num_bits(); ++p) {
        if (!cell_fn.bit(p)) continue;
        TruthTable term = TruthTable::ones(nv);
        for (std::size_t j = 0; j < pin_values.size(); ++j) {
            term &= ((p >> j) & 1) ? pin_values[j] : ~pin_values[j];
        }
        out |= term;
    }
    return out;
}

TruthTable subtree_function(const Netlist& netlist, const Subtree& ts) {
    const int m = static_cast<int>(ts.signal_leaves.size());
    const int s = static_cast<int>(ts.select_leaves.size());
    const int nv = m + s;

    std::unordered_map<int, TruthTable> value;
    for (int i = 0; i < m; ++i) {
        value.emplace(ts.signal_leaves[static_cast<std::size_t>(i)],
                      TruthTable::var(i, nv));
    }
    for (int j = 0; j < s; ++j) {
        value.emplace(ts.select_leaves[static_cast<std::size_t>(j)],
                      TruthTable::var(m + j, nv));
    }

    // Internal nodes are sorted ascending = topological order.
    for (const int node : ts.internal) {
        const Netlist::Node& n = netlist.node(node);
        std::vector<TruthTable> pins;
        pins.reserve(n.fanins.size());
        for (const int f : n.fanins) {
            const auto it = value.find(f);
            if (it != value.end()) {
                pins.push_back(it->second);
            } else {
                const Netlist::Node& fn = netlist.node(f);
                if (fn.kind == Netlist::NodeKind::kConst0) {
                    pins.push_back(TruthTable::zeros(nv));
                } else if (fn.kind == Netlist::NodeKind::kConst1) {
                    pins.push_back(TruthTable::ones(nv));
                } else {
                    assert(false && "subtree fanin is neither leaf, internal, nor const");
                    pins.push_back(TruthTable::zeros(nv));
                }
            }
        }
        value.insert_or_assign(
            node, compose(netlist.library().cell(n.cell_id).function, pins));
    }
    return value.at(ts.root);
}

std::vector<TruthTable> abs_func(const Subtree& ts, const TruthTable& full) {
    const int m = static_cast<int>(ts.signal_leaves.size());
    const int s = static_cast<int>(ts.select_leaves.size());
    std::vector<int> signal_vars(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) signal_vars[static_cast<std::size_t>(i)] = i;

    std::vector<TruthTable> fns;
    for (std::uint32_t a = 0; a < (1u << s); ++a) {
        TruthTable g = full;
        for (int j = 0; j < s; ++j) {
            g = g.cofactor(m + j, (a >> j) & 1);
        }
        TruthTable projected = g.project(signal_vars);
        if (std::find(fns.begin(), fns.end(), projected) == fns.end()) {
            fns.push_back(std::move(projected));
        }
    }
    return fns;
}

}  // namespace mvf::camo
