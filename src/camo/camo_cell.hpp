#pragma once
// Camouflaged look-alike cells (paper section II, Fig. 1).
//
// Each camouflaged cell is a dopant-programmable variant of a nominal
// library cell: by forcing transistor pairs permanently ON/OFF, the cell
// can implement the positive or negative cofactor of its nominal function
// with respect to any subset of inputs.  The *plausible function set* of a
// cell is therefore the closure of its nominal function under fixing any
// subset of pins to constants.  For the 2-input NAND of Fig. 1b this yields
// { NAND(A,B), !A, !B, 0, 1 }.  A camouflaged cell is visually identical to
// its nominal cell, so its area cost equals the nominal area.

#include <string>
#include <unordered_map>
#include <vector>

#include "logic/truth_table.hpp"
#include "map/gate_library.hpp"

namespace mvf::camo {

struct CamoCell {
    std::string name;          ///< e.g. "CAMO_NAND2"
    int nominal_cell_id = -1;  ///< into the gate library; -1 for TIE
    int num_pins = 0;
    double area = 0.0;  ///< GE of the nominal look-alike
    /// All dopant-programmable functions, over pins 0..num_pins-1.
    /// Entry 0 is the nominal function (for TIE: constant 0).
    std::vector<logic::TruthTable> plausible;

    /// Index of `f` (a table over num_pins variables) within `plausible`,
    /// or -1 if the cell cannot implement it.
    int plausible_index(const logic::TruthTable& f) const;
    bool can_implement(const logic::TruthTable& f) const {
        return plausible_index(f) >= 0;
    }

    /// log2 of the number of plausible functions (attacker uncertainty
    /// contributed by one instance of this cell).
    double config_bits() const;
};

class CamoLibrary {
public:
    /// Camouflaged variant of every cell in `lib`, plus a zero-pin TIE
    /// look-alike (plausibly tie-high or tie-low) used to absorb
    /// select-only logic cones.
    static CamoLibrary from_gate_library(const tech::GateLibrary& lib);

    int num_cells() const { return static_cast<int>(cells_.size()); }
    const CamoCell& cell(int id) const { return cells_[static_cast<std::size_t>(id)]; }

    int tie_id() const { return tie_id_; }

    /// Index of the camouflaged variant of the given nominal cell, or -1.
    int camo_of_nominal(int nominal_cell_id) const;

    const tech::GateLibrary& gate_library() const { return gate_lib_; }

    /// Builds the plausible set of a single nominal function: all functions
    /// obtained by fixing any subset of pins to constants.
    static std::vector<logic::TruthTable> plausible_closure(
        const logic::TruthTable& nominal);

private:
    tech::GateLibrary gate_lib_;
    std::vector<CamoCell> cells_;
    std::unordered_map<int, int> nominal_to_camo_;
    int tie_id_ = -1;
};

}  // namespace mvf::camo
