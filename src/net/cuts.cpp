#include "net/cuts.hpp"

#include <algorithm>
#include <cassert>

namespace mvf::net {
namespace {

// Truth tables of the four cut-leaf variables in the 4-var space.
constexpr std::uint16_t kVarTT[4] = {0xaaaa, 0xcccc, 0xf0f0, 0xff00};

// Re-expresses `tt` (over `from` leaves) in the variable space of `to`
// (a superset of `from`).
std::uint16_t expand_tt(std::uint16_t tt, const std::vector<int>& from,
                        const std::vector<int>& to) {
    std::uint16_t out = 0;
    // position of each `from` leaf within `to`
    int pos[4];
    for (std::size_t i = 0; i < from.size(); ++i) {
        const auto it = std::lower_bound(to.begin(), to.end(), from[i]);
        assert(it != to.end() && *it == from[i]);
        pos[i] = static_cast<int>(it - to.begin());
    }
    for (std::uint32_t m = 0; m < 16; ++m) {
        std::uint32_t src = 0;
        for (std::size_t i = 0; i < from.size(); ++i) {
            if ((m >> pos[i]) & 1) src |= 1u << i;
        }
        if ((tt >> src) & 1) out |= static_cast<std::uint16_t>(1u << m);
    }
    return out;
}

// Merges two sorted leaf sets; returns false if the union exceeds max_leaves.
bool merge_leaves(const std::vector<int>& a, const std::vector<int>& b,
                  int max_leaves, std::vector<int>* out) {
    out->clear();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() || j < b.size()) {
        int next;
        if (j >= b.size() || (i < a.size() && a[i] < b[j])) {
            next = a[i++];
        } else if (i >= a.size() || b[j] < a[i]) {
            next = b[j++];
        } else {
            next = a[i++];
            ++j;
        }
        out->push_back(next);
        if (static_cast<int>(out->size()) > max_leaves) return false;
    }
    return true;
}

bool is_subset(const std::vector<int>& small, const std::vector<int>& big) {
    return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

}  // namespace

CutSet::CutSet(const Aig& aig, const CutParams& params) {
    cuts_.resize(static_cast<std::size_t>(aig.num_nodes()));

    // Constant node: single empty-leaf cut with constant-0 function.
    cuts_[0].push_back(Cut{{}, 0});

    for (int i = 0; i < aig.num_pis(); ++i) {
        const int node = i + 1;
        cuts_[static_cast<std::size_t>(node)].push_back(
            Cut{{node}, kVarTT[0]});
    }

    std::vector<int> merged;
    for (int n = aig.num_pis() + 1; n < aig.num_nodes(); ++n) {
        auto& node_cuts = cuts_[static_cast<std::size_t>(n)];
        const Lit f0 = aig.fanin0(n);
        const Lit f1 = aig.fanin1(n);
        const auto& cuts0 = cuts_[static_cast<std::size_t>(Aig::lit_node(f0))];
        const auto& cuts1 = cuts_[static_cast<std::size_t>(Aig::lit_node(f1))];

        for (const Cut& c0 : cuts0) {
            for (const Cut& c1 : cuts1) {
                if (!merge_leaves(c0.leaves, c1.leaves, params.max_leaves, &merged))
                    continue;
                std::uint16_t t0 = expand_tt(c0.function, c0.leaves, merged);
                std::uint16_t t1 = expand_tt(c1.function, c1.leaves, merged);
                if (Aig::lit_complemented(f0)) t0 = static_cast<std::uint16_t>(~t0);
                if (Aig::lit_complemented(f1)) t1 = static_cast<std::uint16_t>(~t1);
                const Cut candidate{merged, static_cast<std::uint16_t>(t0 & t1)};

                // Dominance filter: skip if an existing cut is a subset.
                bool dominated = false;
                for (const Cut& c : node_cuts) {
                    if (is_subset(c.leaves, candidate.leaves)) {
                        dominated = true;
                        break;
                    }
                }
                if (dominated) continue;
                std::erase_if(node_cuts, [&candidate](const Cut& c) {
                    return is_subset(candidate.leaves, c.leaves);
                });
                node_cuts.push_back(candidate);
            }
        }
        // Keep the smallest cuts when over budget (stable by size).
        std::stable_sort(node_cuts.begin(), node_cuts.end(),
                         [](const Cut& a, const Cut& b) {
                             return a.leaves.size() < b.leaves.size();
                         });
        if (static_cast<int>(node_cuts.size()) > params.max_cuts_per_node) {
            node_cuts.resize(static_cast<std::size_t>(params.max_cuts_per_node));
        }
        if (params.include_trivial) {
            node_cuts.push_back(Cut{{n}, kVarTT[0]});
        }
    }
}

}  // namespace mvf::net
