#pragma once
// Truth-table simulation of AIGs.
//
// Used for equivalence checking of synthesis passes (property tests), for
// evaluating reconvergent cones during refactoring, and for extracting the
// specification function of merged circuits.

#include <span>
#include <vector>

#include "logic/truth_table.hpp"
#include "net/aig.hpp"

namespace mvf::net {

/// Evaluates every PO of `aig` with PI i bound to `pi_functions[i]`.
/// All PI functions must share one variable space.
std::vector<logic::TruthTable> simulate(
    const Aig& aig, std::span<const logic::TruthTable> pi_functions);

/// Evaluates all POs over the full input space (PI i = variable i).
std::vector<logic::TruthTable> simulate_full(const Aig& aig);

/// Evaluates the function of `root_lit` over the given cone leaves: leaf i
/// becomes variable i of the result.  Every path from the root must reach a
/// leaf, a PI listed in `leaves`, or the constant node.
logic::TruthTable evaluate_cone(const Aig& aig, Lit root_lit,
                                std::span<const int> leaves);

}  // namespace mvf::net
