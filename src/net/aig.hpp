#pragma once
// And-Inverter Graph with structural hashing.
//
// The AIG is the subject graph for all synthesis passes (Phase I/II of the
// flow) and the input to technology mapping.  Representation follows ABC:
// node 0 is the constant-false node, nodes 1..num_pis are primary inputs,
// and every other node is a two-input AND.  Edges are literals
// (2*node | complement).  Nodes are created in topological order (fanins
// always have smaller ids), and and2() performs constant folding plus
// structural hashing so identical subfunctions are shared automatically --
// this sharing across merged viable functions is what the genetic pin
// assignment of Phase II tries to maximize.

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace mvf::net {

using Lit = std::uint32_t;

class Aig {
public:
    static constexpr Lit kConst0 = 0;
    static constexpr Lit kConst1 = 1;

    static Lit make_lit(int node, bool complemented) {
        return (static_cast<Lit>(node) << 1) | (complemented ? 1u : 0u);
    }
    static int lit_node(Lit l) { return static_cast<int>(l >> 1); }
    static bool lit_complemented(Lit l) { return l & 1; }
    static Lit lit_not(Lit l) { return l ^ 1u; }
    static Lit lit_regular(Lit l) { return l & ~1u; }

    /// Creates an AIG with `num_pis` primary inputs (nodes 1..num_pis).
    explicit Aig(int num_pis);

    int num_pis() const { return num_pis_; }
    Lit pi(int i) const { return make_lit(1 + i, false); }

    /// Total node count including constant and PIs.
    int num_nodes() const { return static_cast<int>(fanin0_.size()); }
    /// Number of AND nodes (the size metric used by optimization).
    int num_ands() const { return num_nodes() - 1 - num_pis_; }

    bool is_const0(int node) const { return node == 0; }
    bool is_pi(int node) const { return node >= 1 && node <= num_pis_; }
    bool is_and(int node) const { return node > num_pis_; }

    Lit fanin0(int node) const { return fanin0_[static_cast<std::size_t>(node)]; }
    Lit fanin1(int node) const { return fanin1_[static_cast<std::size_t>(node)]; }

    /// Strashed, constant-folded AND of two literals.
    Lit and2(Lit a, Lit b);

    /// Returns the existing node literal for AND(a, b) or kNoLit if absent
    /// (after folding); used for dry-run gain estimation during rewriting.
    static constexpr Lit kNoLit = ~0u;
    Lit lookup_and(Lit a, Lit b) const;

    Lit or2(Lit a, Lit b) { return lit_not(and2(lit_not(a), lit_not(b))); }
    Lit xor2(Lit a, Lit b);
    Lit mux(Lit sel, Lit then_lit, Lit else_lit);
    Lit and_many(std::span<const Lit> lits);
    Lit or_many(std::span<const Lit> lits);

    /// Registers a primary output; returns its index.
    int add_po(Lit l);
    int num_pos() const { return static_cast<int>(pos_.size()); }
    Lit po(int i) const { return pos_[static_cast<std::size_t>(i)]; }
    void set_po(int i, Lit l) { pos_[static_cast<std::size_t>(i)] = l; }

    /// Fanout count per node, counting PO references.
    std::vector<int> reference_counts() const;

    /// Logic depth per node (PIs and constant at level 0).
    std::vector<int> levels() const;

    /// Structural copy containing only nodes reachable from the POs.
    Aig cleanup() const;

    /// Number of AND nodes reachable from the POs (cheap, no copy).
    int count_live_ands() const;

private:
    int add_node(Lit f0, Lit f1);
    static std::uint64_t key(Lit a, Lit b) {
        return (static_cast<std::uint64_t>(a) << 32) | b;
    }

    int num_pis_;
    std::vector<Lit> fanin0_;  // fanin0_[0..num_pis] unused (0)
    std::vector<Lit> fanin1_;
    std::vector<Lit> pos_;
    std::unordered_map<std::uint64_t, int> strash_;
};

}  // namespace mvf::net
