#pragma once
// K-feasible cut enumeration with cut functions.
//
// Cuts drive both NPN rewriting (4-cuts classified by canonical form) and
// structural technology mapping (cut function matched against library
// cells).  Each cut stores its sorted leaf set and its function as a 16-bit
// truth table over the leaf positions (leaf i = variable i; unused
// variables are don't-cares).

#include <cstdint>
#include <vector>

#include "net/aig.hpp"

namespace mvf::net {

struct Cut {
    std::vector<int> leaves;        ///< sorted node ids
    std::uint16_t function = 0;     ///< tt over leaf positions (4-var space)

    int size() const { return static_cast<int>(leaves.size()); }
};

struct CutParams {
    int max_leaves = 4;        ///< K (at most 4; functions are 16-bit)
    int max_cuts_per_node = 8; ///< priority cuts kept per node
    bool include_trivial = true;
};

/// All cuts per node, indexed by node id.  PIs get only their trivial cut.
class CutSet {
public:
    CutSet(const Aig& aig, const CutParams& params);

    const std::vector<Cut>& cuts_of(int node) const {
        return cuts_[static_cast<std::size_t>(node)];
    }

private:
    std::vector<std::vector<Cut>> cuts_;
};

}  // namespace mvf::net
