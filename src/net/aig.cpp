#include "net/aig.hpp"

#include <algorithm>
#include <cassert>

namespace mvf::net {

Aig::Aig(int num_pis) : num_pis_(num_pis) {
    const auto n = static_cast<std::size_t>(num_pis) + 1;
    fanin0_.assign(n, 0);
    fanin1_.assign(n, 0);
}

int Aig::add_node(Lit f0, Lit f1) {
    fanin0_.push_back(f0);
    fanin1_.push_back(f1);
    return num_nodes() - 1;
}

Lit Aig::and2(Lit a, Lit b) {
    if (a > b) std::swap(a, b);
    // Constant folding and trivial cases.
    if (a == kConst0) return kConst0;
    if (a == kConst1) return b;
    if (a == b) return a;
    if (a == lit_not(b)) return kConst0;

    const auto it = strash_.find(key(a, b));
    if (it != strash_.end()) return make_lit(it->second, false);
    const int node = add_node(a, b);
    strash_.emplace(key(a, b), node);
    return make_lit(node, false);
}

Lit Aig::lookup_and(Lit a, Lit b) const {
    if (a > b) std::swap(a, b);
    if (a == kConst0) return kConst0;
    if (a == kConst1) return b;
    if (a == b) return a;
    if (a == lit_not(b)) return kConst0;
    const auto it = strash_.find(key(a, b));
    return it == strash_.end() ? kNoLit : make_lit(it->second, false);
}

Lit Aig::xor2(Lit a, Lit b) {
    return or2(and2(a, lit_not(b)), and2(lit_not(a), b));
}

Lit Aig::mux(Lit sel, Lit then_lit, Lit else_lit) {
    return or2(and2(sel, then_lit), and2(lit_not(sel), else_lit));
}

Lit Aig::and_many(std::span<const Lit> lits) {
    if (lits.empty()) return kConst1;
    Lit acc = lits[0];
    for (std::size_t i = 1; i < lits.size(); ++i) acc = and2(acc, lits[i]);
    return acc;
}

Lit Aig::or_many(std::span<const Lit> lits) {
    if (lits.empty()) return kConst0;
    Lit acc = lits[0];
    for (std::size_t i = 1; i < lits.size(); ++i) acc = or2(acc, lits[i]);
    return acc;
}

int Aig::add_po(Lit l) {
    pos_.push_back(l);
    return num_pos() - 1;
}

std::vector<int> Aig::reference_counts() const {
    std::vector<int> refs(static_cast<std::size_t>(num_nodes()), 0);
    for (int n = num_pis_ + 1; n < num_nodes(); ++n) {
        ++refs[static_cast<std::size_t>(lit_node(fanin0(n)))];
        ++refs[static_cast<std::size_t>(lit_node(fanin1(n)))];
    }
    for (const Lit po : pos_) ++refs[static_cast<std::size_t>(lit_node(po))];
    return refs;
}

std::vector<int> Aig::levels() const {
    std::vector<int> level(static_cast<std::size_t>(num_nodes()), 0);
    for (int n = num_pis_ + 1; n < num_nodes(); ++n) {
        level[static_cast<std::size_t>(n)] =
            1 + std::max(level[static_cast<std::size_t>(lit_node(fanin0(n)))],
                         level[static_cast<std::size_t>(lit_node(fanin1(n)))]);
    }
    return level;
}

Aig Aig::cleanup() const {
    Aig out(num_pis_);
    std::vector<Lit> copy(static_cast<std::size_t>(num_nodes()), kNoLit);
    copy[0] = kConst0;
    for (int i = 0; i < num_pis_; ++i) copy[static_cast<std::size_t>(i + 1)] = out.pi(i);

    // Mark live nodes.
    std::vector<bool> live(static_cast<std::size_t>(num_nodes()), false);
    std::vector<int> stack;
    for (const Lit po : pos_) stack.push_back(lit_node(po));
    while (!stack.empty()) {
        const int n = stack.back();
        stack.pop_back();
        if (live[static_cast<std::size_t>(n)] || !is_and(n)) continue;
        live[static_cast<std::size_t>(n)] = true;
        stack.push_back(lit_node(fanin0(n)));
        stack.push_back(lit_node(fanin1(n)));
    }

    const auto map_lit = [&copy](Lit l) {
        const Lit base = copy[static_cast<std::size_t>(lit_node(l))];
        return lit_complemented(l) ? lit_not(base) : base;
    };
    for (int n = num_pis_ + 1; n < num_nodes(); ++n) {
        if (!live[static_cast<std::size_t>(n)]) continue;
        copy[static_cast<std::size_t>(n)] =
            out.and2(map_lit(fanin0(n)), map_lit(fanin1(n)));
    }
    for (const Lit po : pos_) out.add_po(map_lit(po));
    return out;
}

int Aig::count_live_ands() const {
    std::vector<bool> live(static_cast<std::size_t>(num_nodes()), false);
    std::vector<int> stack;
    for (const Lit po : pos_) stack.push_back(lit_node(po));
    int count = 0;
    while (!stack.empty()) {
        const int n = stack.back();
        stack.pop_back();
        if (live[static_cast<std::size_t>(n)] || !is_and(n)) continue;
        live[static_cast<std::size_t>(n)] = true;
        ++count;
        stack.push_back(lit_node(fanin0(n)));
        stack.push_back(lit_node(fanin1(n)));
    }
    return count;
}

}  // namespace mvf::net
