#include "net/aig_sim.hpp"

#include <cassert>
#include <unordered_map>

namespace mvf::net {

using logic::TruthTable;

std::vector<TruthTable> simulate(const Aig& aig,
                                 std::span<const TruthTable> pi_functions) {
    assert(static_cast<int>(pi_functions.size()) == aig.num_pis());
    const int num_vars = pi_functions.empty() ? 0 : pi_functions[0].num_vars();
    std::vector<TruthTable> value(static_cast<std::size_t>(aig.num_nodes()),
                                  TruthTable::zeros(num_vars));
    for (int i = 0; i < aig.num_pis(); ++i) {
        value[static_cast<std::size_t>(i + 1)] = pi_functions[static_cast<std::size_t>(i)];
    }
    const auto lit_value = [&](Lit l) {
        const TruthTable& t = value[static_cast<std::size_t>(Aig::lit_node(l))];
        return Aig::lit_complemented(l) ? ~t : t;
    };
    for (int n = aig.num_pis() + 1; n < aig.num_nodes(); ++n) {
        value[static_cast<std::size_t>(n)] =
            lit_value(aig.fanin0(n)) & lit_value(aig.fanin1(n));
    }
    std::vector<TruthTable> outputs;
    outputs.reserve(static_cast<std::size_t>(aig.num_pos()));
    for (int i = 0; i < aig.num_pos(); ++i) outputs.push_back(lit_value(aig.po(i)));
    return outputs;
}

std::vector<TruthTable> simulate_full(const Aig& aig) {
    std::vector<TruthTable> pis;
    pis.reserve(static_cast<std::size_t>(aig.num_pis()));
    for (int i = 0; i < aig.num_pis(); ++i) {
        pis.push_back(TruthTable::var(i, aig.num_pis()));
    }
    return simulate(aig, pis);
}

TruthTable evaluate_cone(const Aig& aig, Lit root_lit,
                         std::span<const int> leaves) {
    const int num_vars = static_cast<int>(leaves.size());
    std::unordered_map<int, TruthTable> memo;
    memo.emplace(0, TruthTable::zeros(num_vars));
    for (std::size_t i = 0; i < leaves.size(); ++i) {
        memo.emplace(leaves[i], TruthTable::var(static_cast<int>(i), num_vars));
    }

    // Iterative post-order evaluation.
    std::vector<int> stack{Aig::lit_node(root_lit)};
    while (!stack.empty()) {
        const int n = stack.back();
        if (memo.count(n)) {
            stack.pop_back();
            continue;
        }
        assert(aig.is_and(n) && "cone walk escaped the given leaves");
        const int c0 = Aig::lit_node(aig.fanin0(n));
        const int c1 = Aig::lit_node(aig.fanin1(n));
        const bool ready0 = memo.count(c0) != 0;
        const bool ready1 = memo.count(c1) != 0;
        if (ready0 && ready1) {
            const TruthTable t0 = Aig::lit_complemented(aig.fanin0(n))
                                      ? ~memo.at(c0)
                                      : memo.at(c0);
            const TruthTable t1 = Aig::lit_complemented(aig.fanin1(n))
                                      ? ~memo.at(c1)
                                      : memo.at(c1);
            memo.emplace(n, t0 & t1);
            stack.pop_back();
        } else {
            if (!ready0) stack.push_back(c0);
            if (!ready1) stack.push_back(c1);
        }
    }
    const TruthTable& t = memo.at(Aig::lit_node(root_lit));
    return Aig::lit_complemented(root_lit) ? ~t : t;
}

}  // namespace mvf::net
