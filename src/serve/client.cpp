#include "serve/client.hpp"

#include <stdexcept>
#include <utility>

namespace mvf::serve {

namespace {

report::Json transport_error(const std::string& what) {
    report::Json j = report::Json::object();
    j.set("ok", false);
    j.set("error", what);
    return j;
}

/// Reads lines until one parses as a protocol response (has "ok"),
/// forwarding trace records (have "ph") to `on_trace`.  Returns a
/// transport error object on EOF.
report::Json read_response(util::Socket& socket, const TraceLineFn& on_trace,
                           int* trace_lines) {
    std::string line;
    while (socket.recv_line(&line)) {
        if (line.empty()) continue;
        report::Json j;
        try {
            j = report::Json::parse(line);
        } catch (const report::JsonError&) {
            continue;  // torn line mid-disconnect; keep scanning
        }
        if (j.is_object() && j.contains("ok")) return j;
        if (j.is_object() && j.contains("ph")) {
            if (trace_lines) ++*trace_lines;
            if (on_trace) on_trace(line);
        }
    }
    return transport_error("connection closed by server");
}

}  // namespace

report::Json Client::roundtrip(const report::Json& request) const {
    try {
        util::Socket socket = util::Socket::connect(addr_);
        if (!socket.send_line(request.dump())) {
            return transport_error("send failed: " + addr_.to_string());
        }
        return read_response(socket, {}, nullptr);
    } catch (const std::exception& e) {
        return transport_error(e.what());
    }
}

bool Client::ping(std::string* error) const {
    report::Json req = report::Json::object();
    req.set("op", "ping");
    const report::Json resp = roundtrip(req);
    const report::Json* ok = resp.find("ok");
    if (ok && ok->is_bool() && ok->as_bool()) return true;
    if (error) {
        const report::Json* e = resp.find("error");
        *error = e && e->is_string() ? e->as_string() : "ping failed";
    }
    return false;
}

ClientResult Client::submit(const std::string& spec_text, bool wait,
                            bool stream, double timeout_s,
                            const TraceLineFn& on_trace) const {
    ClientResult result;
    try {
        util::Socket socket = util::Socket::connect(addr_);
        report::Json req = report::Json::object();
        req.set("op", "submit");
        req.set("spec", spec_text);
        req.set("wait", wait);
        req.set("stream", stream);
        if (timeout_s > 0.0) req.set("timeout_s", timeout_s);
        if (!socket.send_line(req.dump())) {
            result.error = "send failed: " + addr_.to_string();
            return result;
        }
        const report::Json ack = read_response(socket, {}, nullptr);
        const report::Json* ok = ack.find("ok");
        if (!ok || !ok->is_bool() || !ok->as_bool()) {
            const report::Json* e = ack.find("error");
            result.error =
                e && e->is_string() ? e->as_string() : "submit rejected";
            return result;
        }
        if (const report::Json* j = ack.find("job"); j && j->is_string()) {
            result.job = j->as_string();
        }
        if (!wait) {
            result.ok = true;
            return result;
        }
        const report::Json results =
            read_response(socket, on_trace, &result.trace_lines);
        const report::Json* rok = results.find("ok");
        if (!rok || !rok->is_bool() || !rok->as_bool()) {
            const report::Json* e = results.find("error");
            result.error =
                e && e->is_string() ? e->as_string() : "results missing";
            return result;
        }
        result.results = results;
        result.ok = true;
        return result;
    } catch (const std::exception& e) {
        result.error = e.what();
        return result;
    }
}

ClientResult Client::watch(const std::string& job,
                           const TraceLineFn& on_trace) const {
    ClientResult result;
    result.job = job;
    try {
        util::Socket socket = util::Socket::connect(addr_);
        report::Json req = report::Json::object();
        req.set("op", "watch");
        req.set("job", job);
        if (!socket.send_line(req.dump())) {
            result.error = "send failed: " + addr_.to_string();
            return result;
        }
        const report::Json ack = read_response(socket, {}, nullptr);
        const report::Json* ok = ack.find("ok");
        if (!ok || !ok->is_bool() || !ok->as_bool()) {
            const report::Json* e = ack.find("error");
            result.error =
                e && e->is_string() ? e->as_string() : "watch rejected";
            return result;
        }
        const report::Json results =
            read_response(socket, on_trace, &result.trace_lines);
        const report::Json* rok = results.find("ok");
        if (!rok || !rok->is_bool() || !rok->as_bool()) {
            const report::Json* e = results.find("error");
            result.error =
                e && e->is_string() ? e->as_string() : "results missing";
            return result;
        }
        result.results = results;
        result.ok = true;
        return result;
    } catch (const std::exception& e) {
        result.error = e.what();
        return result;
    }
}

report::Json Client::status(const std::string& job) const {
    report::Json req = report::Json::object();
    req.set("op", "status");
    if (!job.empty()) req.set("job", job);
    return roundtrip(req);
}

report::Json Client::results(const std::string& job) const {
    report::Json req = report::Json::object();
    req.set("op", "results");
    req.set("job", job);
    return roundtrip(req);
}

report::Json Client::cancel(const std::string& job) const {
    report::Json req = report::Json::object();
    req.set("op", "cancel");
    req.set("job", job);
    return roundtrip(req);
}

report::Json Client::shutdown() const {
    report::Json req = report::Json::object();
    req.set("op", "shutdown");
    return roundtrip(req);
}

}  // namespace mvf::serve
