#include "serve/stage_cache.hpp"

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace mvf::serve {

StageCache::StageCache(StageCacheParams params) : params_(std::move(params)) {
    if (!params_.spill_dir.empty()) {
        // Best effort; a failed mkdir surfaces on the first spill write.
        ::mkdir(params_.spill_dir.c_str(), 0777);
    }
}

std::string StageCache::spill_path(const std::string& key) const {
    std::string name = key;
    for (char& c : name) {
        if (c == ':' || c == '/') c = '_';
    }
    return params_.spill_dir + "/" + name + ".json";
}

bool StageCache::load(const std::string& key, report::Json* out) {
    std::unique_lock lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);  // touch
        const std::string dump = it->second->second;
        ++stats_.hits;
        lock.unlock();
        try {
            *out = report::Json::parse(dump);
            return true;
        } catch (const report::JsonError&) {
            return false;  // cannot happen for our own dumps; be safe
        }
    }
    if (params_.spill_dir.empty()) {
        ++stats_.misses;
        return false;
    }
    lock.unlock();
    std::ifstream in(spill_path(key));
    if (!in) {
        std::lock_guard relock(mu_);
        ++stats_.misses;
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string dump = text.str();
    try {
        *out = report::Json::parse(dump);
    } catch (const report::JsonError&) {
        // Truncated/foreign file: treat as a miss (the pipeline will
        // recompute and overwrite it).
        std::lock_guard relock(mu_);
        ++stats_.misses;
        return false;
    }
    std::lock_guard relock(mu_);
    ++stats_.spill_hits;
    if (index_.find(key) == index_.end()) {
        insert_locked(key, std::move(dump));  // promote to the memory tier
    }
    return true;
}

void StageCache::store(const std::string& key, const report::Json& snapshot) {
    std::string dump = snapshot.dump();
    if (!params_.spill_dir.empty()) {
        // Write-through, atomically: a reader (or a crashed server's next
        // incarnation) never sees a half-written snapshot.
        const std::string path = spill_path(key);
        const std::string tmp = path + ".tmp";
        std::ofstream out(tmp, std::ios::trunc);
        if (out) {
            out << dump;
            out.close();
            if (out.good()) {
                std::rename(tmp.c_str(), path.c_str());
            } else {
                std::remove(tmp.c_str());
            }
        }
    }
    std::lock_guard lock(mu_);
    ++stats_.stores;
    const auto it = index_.find(key);
    if (it != index_.end()) {
        bytes_ -= it->second->second.size();
        lru_.erase(it->second);
        index_.erase(it);
    }
    insert_locked(key, std::move(dump));
}

void StageCache::insert_locked(const std::string& key, std::string dump) {
    // An entry larger than the whole budget would evict everything and
    // still not fit; skip the memory tier (the spill copy, if any, serves).
    if (dump.size() > params_.max_bytes) return;
    bytes_ += dump.size();
    lru_.emplace_front(key, std::move(dump));
    index_.emplace(key, lru_.begin());
    while (bytes_ > params_.max_bytes && !lru_.empty()) {
        bytes_ -= lru_.back().second.size();
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

StageCache::Stats StageCache::stats() const {
    std::lock_guard lock(mu_);
    Stats s = stats_;
    s.entries = lru_.size();
    s.bytes = bytes_;
    return s;
}

report::Json StageCache::stats_json() const {
    const Stats s = stats();
    report::Json j = report::Json::object();
    j.set("hits", s.hits);
    j.set("spill_hits", s.spill_hits);
    j.set("misses", s.misses);
    j.set("stores", s.stores);
    j.set("evictions", s.evictions);
    j.set("entries", static_cast<std::uint64_t>(s.entries));
    j.set("bytes", static_cast<std::uint64_t>(s.bytes));
    return j;
}

}  // namespace mvf::serve
