#pragma once
// The `mvf serve` wire protocol: line-delimited JSON over a stream socket.
//
// Every request is one JSON object on one line with an "op" member;
// every response is one JSON object on one line with an "ok" member.
// Between a streaming submit/watch's ack and its final response the server
// interleaves NDJSON trace records (obs::TraceSink pointed at the client
// socket) -- those lines carry a "ph" member and never an "ok", so a
// client demultiplexes by key.
//
//   op        request members                  response
//   --------  -------------------------------  -------------------------------
//   ping      -                                {"ok":true}
//   submit    spec (text), jobs?, timeout_s?,  ack {"ok":true,"job":id};
//             stream?, wait? (default true)    wait: results line after run
//   status    job? (all jobs when absent)      {"ok":true,"jobs":[...]}
//   results   job                              {"ok":true,"report":...,
//                                               "records_hash":...,...}
//   watch     job                              streams until terminal, then
//                                              the job's results line
//   cancel    job                              {"ok":true,"state":...}
//   shutdown  -                                {"ok":true} then server exits
//
// Errors: {"ok":false,"error":"..."} -- unknown op, malformed JSON,
// unknown job id, malformed scenario spec.
//
// records_hash is the bit-identity fingerprint CI keys on: the batch
// records as JSON with volatile members (wall-clock timings, latency
// histograms, cache-hit counts) stripped recursively, canonicalized, and
// FNV-1a hashed -- equal hashes mean semantically identical results, no
// matter which stages came from the cache.

#include <string>
#include <vector>

#include "flow/batch_runner.hpp"
#include "report/json.hpp"

namespace mvf::serve {

/// Protocol schema version, echoed in every ack.
inline constexpr int kProtocolVersion = 1;

/// Recursively removes volatile members ("seconds", "total_seconds",
/// "solve_seconds", "metrics", "cache_hits") -- everything that may
/// legitimately differ between a fresh and a cache-served run of the same
/// experiment.
report::Json strip_volatile(const report::Json& j);

/// FNV-1a of the canonicalized, volatile-stripped records array.
std::string records_hash(const std::vector<flow::ScenarioRecord>& records);

/// {"ok":false,"error":text} on one line.
std::string error_line(const std::string& text);

/// Serializes `j` compactly; the protocol's one-line framing.
std::string response_line(const report::Json& j);

}  // namespace mvf::serve
