#include "serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "serve/protocol.hpp"

namespace mvf::serve {

namespace {

/// Wraps a dup of the client fd as a line-buffered FILE* for a TraceSink:
/// every complete NDJSON record flushes at its newline, and closing the
/// sink closes only the dup, never the session socket.
std::shared_ptr<obs::TraceSink> socket_sink(const util::Socket& socket) {
    const int fd = ::dup(socket.fd());
    if (fd < 0) return nullptr;
    std::FILE* f = ::fdopen(fd, "w");
    if (!f) {
        ::close(fd);
        return nullptr;
    }
    std::setvbuf(f, nullptr, _IOLBF, 0);
    return std::make_shared<obs::TraceSink>(f, "<client>");
}

report::Json status_json(const JobStatus& st) {
    report::Json j = report::Json::object();
    j.set("job", st.id);
    j.set("state", std::string(job_state_name(st.state)));
    j.set("completed", st.completed);
    j.set("total", st.total);
    j.set("failures", st.failures);
    j.set("cache_hits", st.cache_hits);
    j.set("seconds", st.seconds);
    if (!st.records_hash.empty()) j.set("records_hash", st.records_hash);
    return j;
}

}  // namespace

Server::Server(ServerParams params)
    : params_(std::move(params)),
      cache_(std::make_unique<StageCache>(params_.cache)),
      scheduler_(std::make_unique<JobScheduler>(params_.workers,
                                                cache_.get())) {
    util::ignore_sigpipe();
}

Server::~Server() {
    request_shutdown();
    // Join OUTSIDE the lock: a still-running session thread may be inside
    // request_shutdown() waiting for sessions_mu_ (the op=shutdown path),
    // and joining it while holding the mutex deadlocks.  Loop in case the
    // accept loop races one last emplace in before it notices stopping_.
    for (;;) {
        std::vector<std::thread> drained;
        {
            std::lock_guard lock(sessions_mu_);
            if (sessions_.empty()) break;
            drained.swap(sessions_);
        }
        for (std::thread& t : drained) {
            if (t.joinable()) t.join();
        }
    }
}

void Server::bind() {
    listener_ = util::ListenSocket::listen(params_.listen);
    bound_addr_ = listener_.addr();
}

void Server::run() {
    if (!listener_.valid()) bind();
    if (params_.verbose) {
        std::fprintf(stderr, "mvf serve: listening on %s (%d workers)\n",
                     bound_addr_.to_string().c_str(), scheduler_->workers());
    }
    while (!stopping_.load(std::memory_order_acquire)) {
        util::Socket client = listener_.accept();
        if (!client.valid()) break;  // listener closed (shutdown) or error
        std::lock_guard lock(sessions_mu_);
        sessions_.emplace_back(
            [this, c = std::move(client)]() mutable { session(std::move(c)); });
    }
    // Drain: cancel whatever still runs so the scheduler's pool empties
    // promptly, then let its destructor join the workers.
    scheduler_->cancel_all();
}

void Server::request_shutdown() {
    if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
    listener_.close();  // unblocks accept()
    scheduler_->cancel_all();
    std::lock_guard lock(sessions_mu_);
    for (const std::weak_ptr<util::Socket>& weak : session_sockets_) {
        if (const std::shared_ptr<util::Socket> s = weak.lock()) {
            // Poke, do not close: the session owns the fd and may be
            // mid-recv; shutdown() unblocks it without racing fd reuse.
            ::shutdown(s->fd(), SHUT_RDWR);
        }
    }
}

void Server::session(util::Socket socket) {
    const auto shared = std::make_shared<util::Socket>(std::move(socket));
    {
        std::lock_guard lock(sessions_mu_);
        session_sockets_.push_back(shared);
    }
    std::string line;
    while (!stopping_.load(std::memory_order_acquire) &&
           shared->recv_line(&line)) {
        if (line.empty()) continue;
        if (!handle(*shared, line)) break;
    }
}

bool Server::handle(util::Socket& socket, const std::string& line) {
    report::Json request;
    try {
        request = report::Json::parse(line);
    } catch (const report::JsonError& e) {
        socket.send_line(error_line(std::string("malformed request: ") +
                                    e.what()));
        return true;
    }
    std::string op;
    if (const report::Json* o = request.find("op"); o && o->is_string()) {
        op = o->as_string();
    } else {
        socket.send_line(error_line("request needs a string \"op\""));
        return true;
    }
    if (params_.verbose) {
        std::fprintf(stderr, "mvf serve: op=%s\n", op.c_str());
    }

    const auto job_arg = [&](std::string* id) {
        const report::Json* j = request.find("job");
        if (!j || !j->is_string()) return false;
        *id = j->as_string();
        return true;
    };
    const auto send_results = [&](const std::string& id) {
        const std::optional<JobStatus> st = scheduler_->status(id);
        const std::optional<std::vector<flow::ScenarioRecord>> records =
            scheduler_->records(id);
        if (!st || !records) {
            socket.send_line(error_line("unknown job: " + id));
            return;
        }
        report::Json j = report::Json::object();
        j.set("ok", true);
        j.set("op", "results");
        j.set("job", id);
        j.set("state", std::string(job_state_name(st->state)));
        j.set("records_hash", st->records_hash);
        j.set("cache_hits", st->cache_hits);
        j.set("seconds", st->seconds);
        j.set("report", flow::batch_report(*records, st->seconds));
        socket.send_line(response_line(j));
    };

    if (op == "ping") {
        report::Json j = report::Json::object();
        j.set("ok", true);
        j.set("protocol", kProtocolVersion);
        socket.send_line(response_line(j));
        return true;
    }
    if (op == "submit") {
        const report::Json* spec = request.find("spec");
        if (!spec || !spec->is_string()) {
            socket.send_line(error_line("submit needs a string \"spec\""));
            return true;
        }
        std::vector<flow::Scenario> scenarios;
        try {
            scenarios = flow::parse_scenario_spec(spec->as_string());
        } catch (const std::invalid_argument& e) {
            socket.send_line(error_line(e.what()));
            return true;
        }
        SubmitOptions options;
        if (const report::Json* t = request.find("timeout_s");
            t && t->is_number()) {
            options.timeout_s = t->as_number();
        }
        const auto flag = [&](const char* key, bool fallback) {
            const report::Json* f = request.find(key);
            return f && f->is_bool() ? f->as_bool() : fallback;
        };
        const bool stream = flag("stream", false);
        const bool wait = flag("wait", true);
        const std::string id = scheduler_->submit(std::move(scenarios));
        report::Json ack = report::Json::object();
        ack.set("ok", true);
        ack.set("op", "submit");
        ack.set("protocol", kProtocolVersion);
        ack.set("job", id);
        if (!socket.send_line(response_line(ack))) return false;
        if (!wait) return true;
        // Attach the stream only after the ack is on the wire, so the
        // client always reads ack -> trace records -> results in order.
        // (Events emitted before the attach are not replayed.)
        if (stream) {
            if (std::shared_ptr<obs::TraceSink> sink = socket_sink(socket)) {
                scheduler_->watch(id, std::move(sink));
            }
        }
        scheduler_->wait(id);
        send_results(id);
        return true;
    }
    if (op == "status") {
        std::string id;
        report::Json j = report::Json::object();
        j.set("ok", true);
        j.set("op", "status");
        if (job_arg(&id)) {
            const std::optional<JobStatus> st = scheduler_->status(id);
            if (!st) {
                socket.send_line(error_line("unknown job: " + id));
                return true;
            }
            report::Json arr = report::Json::array();
            arr.push_back(status_json(*st));
            j.set("jobs", std::move(arr));
        } else {
            report::Json arr = report::Json::array();
            for (const JobStatus& st : scheduler_->jobs()) {
                arr.push_back(status_json(st));
            }
            j.set("jobs", std::move(arr));
        }
        j.set("cache", cache_->stats_json());
        socket.send_line(response_line(j));
        return true;
    }
    if (op == "results") {
        std::string id;
        if (!job_arg(&id)) {
            socket.send_line(error_line("results needs a string \"job\""));
            return true;
        }
        send_results(id);
        return true;
    }
    if (op == "watch") {
        std::string id;
        if (!job_arg(&id)) {
            socket.send_line(error_line("watch needs a string \"job\""));
            return true;
        }
        if (!scheduler_->status(id)) {
            socket.send_line(error_line("unknown job: " + id));
            return true;
        }
        report::Json ack = report::Json::object();
        ack.set("ok", true);
        ack.set("op", "watch");
        ack.set("job", id);
        if (!socket.send_line(response_line(ack))) return false;
        if (std::shared_ptr<obs::TraceSink> sink = socket_sink(socket)) {
            scheduler_->watch(id, std::move(sink));  // no-op when terminal
        }
        scheduler_->wait(id);
        send_results(id);
        return true;
    }
    if (op == "cancel") {
        std::string id;
        if (!job_arg(&id)) {
            socket.send_line(error_line("cancel needs a string \"job\""));
            return true;
        }
        if (!scheduler_->cancel(id)) {
            socket.send_line(error_line("unknown job: " + id));
            return true;
        }
        const std::optional<JobStatus> st = scheduler_->status(id);
        report::Json j = report::Json::object();
        j.set("ok", true);
        j.set("op", "cancel");
        j.set("job", id);
        if (st) j.set("state", std::string(job_state_name(st->state)));
        socket.send_line(response_line(j));
        return true;
    }
    if (op == "shutdown") {
        report::Json j = report::Json::object();
        j.set("ok", true);
        j.set("op", "shutdown");
        socket.send_line(response_line(j));
        request_shutdown();
        return false;
    }
    socket.send_line(error_line("unknown op \"" + op + "\""));
    return true;
}

}  // namespace mvf::serve
