#pragma once
// Job scheduler for the experiment server.
//
// A job is one submitted scenario batch.  The scheduler shards every
// job's scenarios across one shared util::ThreadPool via submit_sharded
// (per-worker deques + work-stealing), so scenarios from several
// concurrent jobs interleave instead of head-of-line blocking, and all
// jobs share one flow::StageStore -- a scenario one client already paid
// for is a cache restore for every later client.
//
// Per-job wiring: a flow::CancelToken (cancel() flips it; queued scenarios
// then complete immediately as "cancelled" records, the running one stops
// at its next stage boundary), an optional deadline, and any number of
// attached obs::TraceSink streams that receive per-stage progress and
// job-progress counters (the serve sessions point these at client
// sockets).  A sink detaching mid-run -- client disconnected -- is
// harmless: emission just stops reaching it.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "flow/batch_runner.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace mvf::serve {

enum class JobState { kQueued, kRunning, kDone, kCancelled };

std::string_view job_state_name(JobState s);

/// Point-in-time view of one job.
struct JobStatus {
    std::string id;
    JobState state = JobState::kQueued;
    int completed = 0;  ///< scenarios finished (any status)
    int total = 0;
    int failures = 0;    ///< records with status "error"
    int cache_hits = 0;  ///< pipeline stages restored, summed over records
    double seconds = 0.0;
    std::string records_hash;  ///< set once terminal
};

struct SubmitOptions {
    /// Wall-clock budget for the whole job (0 = none).
    double timeout_s = 0.0;
    /// Initial trace stream (more can attach later via watch()).
    std::shared_ptr<obs::TraceSink> sink;
};

class JobScheduler {
public:
    /// `workers` pool threads; `store` may be null (no stage caching).
    JobScheduler(int workers, flow::StageStore* store);
    /// Cancels everything still running and drains the pool.
    ~JobScheduler();

    /// Enqueues a job; returns its id ("j1", "j2", ...).
    std::string submit(std::vector<flow::Scenario> scenarios,
                       const SubmitOptions& options = {});

    /// Flips the job's cancel token; false for unknown ids.  Idempotent.
    bool cancel(const std::string& id);

    std::optional<JobStatus> status(const std::string& id) const;
    std::vector<JobStatus> jobs() const;

    /// Attaches a trace stream to a job; terminal jobs get no events
    /// (false).  Streams live until the job finishes.
    bool watch(const std::string& id, std::shared_ptr<obs::TraceSink> sink);

    /// Blocks until the job is terminal; false for unknown ids.
    bool wait(const std::string& id);

    /// Records in input order; empty optional for unknown ids (records of
    /// unfinished scenarios are placeholders -- call after wait()).
    std::optional<std::vector<flow::ScenarioRecord>> records(
        const std::string& id) const;

    /// Cancels every non-terminal job (shutdown path).
    void cancel_all();

    int workers() const { return pool_.num_threads(); }

private:
    struct Job {
        std::string id;
        std::vector<flow::Scenario> scenarios;
        flow::CancelToken cancel;
        std::optional<std::chrono::steady_clock::time_point> deadline;
        std::chrono::steady_clock::time_point submitted;
        std::vector<flow::ScenarioRecord> records;
        int completed = 0;
        JobState state = JobState::kQueued;
        double seconds = 0.0;
        std::string records_hash;
        std::vector<std::shared_ptr<obs::TraceSink>> sinks;
    };

    void run_scenario_task(const std::shared_ptr<Job>& job, int index);
    void finish_scenario(const std::shared_ptr<Job>& job, int index);
    /// Emits to every sink attached to `job` (snapshots the list under
    /// mu_, emits outside it).
    void emit_instant(const std::shared_ptr<Job>& job, const char* name,
                      report::Json args);
    JobStatus status_locked(const Job& job) const;

    flow::StageStore* store_;
    mutable std::mutex mu_;
    std::condition_variable terminal_cv_;
    std::vector<std::shared_ptr<Job>> jobs_;
    std::uint64_t next_id_ = 1;
    std::uint64_t next_shard_ = 0;
    util::ThreadPool pool_;  ///< last: its dtor drains tasks that use *this
};

}  // namespace mvf::serve
