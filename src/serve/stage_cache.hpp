#pragma once
// Incremental stage-result cache for the experiment server.
//
// Implements flow::StageStore over FlowContext snapshots keyed by
// flow::stage_cache_key -- (canonical-spec-subset hash, seed, stage).  A
// re-submitted scenario restores the deepest cached snapshot and re-runs
// only the stages past it; an identical re-submit re-runs nothing but the
// restore, which is where `mvf serve`'s >= 5x second-run speedup comes
// from (CI's serve-smoke job asserts it).
//
// Storage is two-tier:
//   * an in-memory LRU bounded by a byte budget (entries are the compact
//     JSON dumps, so the accounting is exact);
//   * an optional write-through spill directory: every store also lands as
//     a file, loads fall back to it on a memory miss (and promote), and
//     LRU eviction only drops the memory copy -- a server restart with the
//     same --cache-dir starts warm.
//
// Thread safety: one mutex around everything.  Entries are a few hundred
// KB and load/store happen once per pipeline stage (seconds apart), so
// contention is irrelevant; correctness under the scheduler's concurrent
// jobs is what matters.

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "flow/pipeline.hpp"

namespace mvf::serve {

struct StageCacheParams {
    /// In-memory budget for the LRU tier (compact-dump bytes).
    std::size_t max_bytes = 256u << 20;
    /// Write-through spill directory ("" = memory only).  Created lazily;
    /// unwritable directories degrade to memory-only with a stderr note.
    std::string spill_dir;
};

class StageCache final : public flow::StageStore {
public:
    explicit StageCache(StageCacheParams params = {});

    bool load(const std::string& key, report::Json* out) override;
    void store(const std::string& key, const report::Json& snapshot) override;

    struct Stats {
        std::uint64_t hits = 0;        ///< memory-tier hits
        std::uint64_t spill_hits = 0;  ///< disk-tier hits (promoted)
        std::uint64_t misses = 0;
        std::uint64_t stores = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;
        std::size_t bytes = 0;
    };
    Stats stats() const;

    report::Json stats_json() const;

private:
    /// Inserts the dump under `key`, evicting from the LRU tail to stay in
    /// budget.  Requires mu_ held.
    void insert_locked(const std::string& key, std::string dump);
    std::string spill_path(const std::string& key) const;

    StageCacheParams params_;
    mutable std::mutex mu_;
    /// Front = most recent.  Values are compact JSON dumps.
    std::list<std::pair<std::string, std::string>> lru_;
    std::unordered_map<std::string, decltype(lru_)::iterator> index_;
    std::size_t bytes_ = 0;
    Stats stats_;
};

}  // namespace mvf::serve
