#include "serve/scheduler.hpp"

#include <utility>

#include "flow/spec_hash.hpp"
#include "serve/protocol.hpp"

namespace mvf::serve {

std::string_view job_state_name(JobState s) {
    switch (s) {
        case JobState::kQueued: return "queued";
        case JobState::kRunning: return "running";
        case JobState::kDone: return "done";
        case JobState::kCancelled: return "cancelled";
    }
    return "unknown";
}

JobScheduler::JobScheduler(int workers, flow::StageStore* store)
    : store_(store), pool_(workers) {}

JobScheduler::~JobScheduler() {
    cancel_all();
    pool_.wait_idle();
}

std::string JobScheduler::submit(std::vector<flow::Scenario> scenarios,
                                 const SubmitOptions& options) {
    auto job = std::make_shared<Job>();
    std::size_t shard;
    {
        std::lock_guard lock(mu_);
        job->id = "j" + std::to_string(next_id_++);
        shard = next_shard_;
        // Round-robin the job's scenarios over worker deques starting at a
        // fresh offset, so concurrent jobs land on different workers.
        next_shard_ += scenarios.size();
    }
    job->scenarios = std::move(scenarios);
    job->submitted = std::chrono::steady_clock::now();
    if (options.timeout_s > 0.0) {
        job->deadline =
            job->submitted +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(options.timeout_s));
    }
    job->records.resize(job->scenarios.size());
    if (options.sink) job->sinks.push_back(options.sink);
    const int total = static_cast<int>(job->scenarios.size());
    {
        std::lock_guard lock(mu_);
        jobs_.push_back(job);
        if (total == 0) {
            job->state = JobState::kDone;
            job->records_hash = records_hash(job->records);
        }
    }
    if (total == 0) {
        terminal_cv_.notify_all();
        return job->id;
    }
    report::Json args = report::Json::object();
    args.set("job", job->id);
    args.set("scenarios", total);
    emit_instant(job, "job-submitted", std::move(args));
    for (int i = 0; i < total; ++i) {
        pool_.submit_sharded(shard + static_cast<std::size_t>(i),
                             [this, job, i] { run_scenario_task(job, i); });
    }
    return job->id;
}

void JobScheduler::run_scenario_task(const std::shared_ptr<Job>& job,
                                     int index) {
    {
        std::lock_guard lock(mu_);
        if (job->state == JobState::kQueued) job->state = JobState::kRunning;
    }
    const flow::Scenario& scenario =
        job->scenarios[static_cast<std::size_t>(index)];
    flow::ScenarioRecord record;
    if (job->cancel.cancelled()) {
        // Cancelled while queued: a placeholder record, no pipeline work.
        record.index = index;
        record.name = scenario.name;
        record.family = scenario.family;
        record.n = scenario.n;
        record.seed = scenario.params.seed;
        record.ok = false;
        record.status = "cancelled";
        record.error = "cancelled while queued";
        record.spec_hash = flow::spec_hash(scenario);
    } else {
        flow::ScenarioRunHooks hooks;
        hooks.cancel = job->cancel;
        hooks.deadline = job->deadline;
        hooks.stage_store = store_;
        hooks.progress = [this, &job, index,
                          &scenario](const flow::StageEvent& ev) {
            report::Json args = report::Json::object();
            args.set("job", job->id);
            args.set("scenario", scenario.name);
            args.set("scenario_index", index);
            args.set("stage", std::string(ev.stage));
            args.set("stage_index", ev.index);
            args.set("stage_total", ev.total);
            args.set("seconds", ev.seconds);
            args.set("completed", ev.completed);
            args.set("cached", ev.cached);
            emit_instant(job, "stage", std::move(args));
        };
        record = flow::run_scenario(scenario, index, hooks);
    }
    {
        std::lock_guard lock(mu_);
        job->records[static_cast<std::size_t>(index)] = std::move(record);
    }
    finish_scenario(job, index);
}

void JobScheduler::finish_scenario(const std::shared_ptr<Job>& job,
                                   int index) {
    bool terminal = false;
    JobStatus st;
    {
        std::lock_guard lock(mu_);
        ++job->completed;
        if (job->completed == static_cast<int>(job->scenarios.size())) {
            job->state = job->cancel.cancelled() ? JobState::kCancelled
                                                 : JobState::kDone;
            job->seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - job->submitted)
                    .count();
            job->records_hash = records_hash(job->records);
            terminal = true;
        }
        st = status_locked(*job);
    }
    const flow::ScenarioRecord& rec =
        job->records[static_cast<std::size_t>(index)];
    report::Json done = report::Json::object();
    done.set("job", job->id);
    done.set("scenario", rec.name);
    done.set("scenario_index", index);
    done.set("status", rec.status);
    done.set("seconds", rec.seconds);
    if (rec.cache_hits > 0) done.set("cache_hits", rec.cache_hits);
    emit_instant(job, "scenario-done", std::move(done));
    report::Json progress = report::Json::object();
    progress.set("completed", st.completed);
    progress.set("total", st.total);
    {
        std::unique_lock lock(mu_);
        std::vector<std::shared_ptr<obs::TraceSink>> sinks = job->sinks;
        lock.unlock();
        for (const auto& sink : sinks) {
            sink->counter("job-progress", progress);
            sink->flush();
        }
    }
    if (terminal) {
        report::Json fin = report::Json::object();
        fin.set("job", job->id);
        fin.set("state", std::string(job_state_name(st.state)));
        fin.set("records_hash", st.records_hash);
        fin.set("seconds", st.seconds);
        fin.set("cache_hits", st.cache_hits);
        emit_instant(job, "job-done", std::move(fin));
        {
            // Detach streams: the job will emit nothing further, and the
            // serve session needs exclusive use of the socket for the
            // final results line.
            std::lock_guard lock(mu_);
            job->sinks.clear();
        }
        terminal_cv_.notify_all();
    }
}

void JobScheduler::emit_instant(const std::shared_ptr<Job>& job,
                                const char* name, report::Json args) {
    std::unique_lock lock(mu_);
    if (job->sinks.empty()) return;
    std::vector<std::shared_ptr<obs::TraceSink>> sinks = job->sinks;
    lock.unlock();
    for (const auto& sink : sinks) {
        sink->instant(name, "serve", args);
        sink->flush();
    }
}

JobStatus JobScheduler::status_locked(const Job& job) const {
    JobStatus st;
    st.id = job.id;
    st.state = job.state;
    st.completed = job.completed;
    st.total = static_cast<int>(job.scenarios.size());
    for (const flow::ScenarioRecord& r : job.records) {
        if (r.status == "error") ++st.failures;
        st.cache_hits += r.cache_hits;
    }
    st.seconds =
        job.state == JobState::kDone || job.state == JobState::kCancelled
            ? job.seconds
            : std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            job.submitted)
                  .count();
    st.records_hash = job.records_hash;
    return st;
}

bool JobScheduler::cancel(const std::string& id) {
    std::shared_ptr<Job> job;
    {
        std::lock_guard lock(mu_);
        for (const auto& j : jobs_) {
            if (j->id == id) {
                job = j;
                break;
            }
        }
    }
    if (!job) return false;
    job->cancel.cancel();
    return true;
}

std::optional<JobStatus> JobScheduler::status(const std::string& id) const {
    std::lock_guard lock(mu_);
    for (const auto& j : jobs_) {
        if (j->id == id) return status_locked(*j);
    }
    return std::nullopt;
}

std::vector<JobStatus> JobScheduler::jobs() const {
    std::lock_guard lock(mu_);
    std::vector<JobStatus> out;
    out.reserve(jobs_.size());
    for (const auto& j : jobs_) out.push_back(status_locked(*j));
    return out;
}

bool JobScheduler::watch(const std::string& id,
                         std::shared_ptr<obs::TraceSink> sink) {
    std::lock_guard lock(mu_);
    for (const auto& j : jobs_) {
        if (j->id != id) continue;
        if (j->state == JobState::kDone || j->state == JobState::kCancelled) {
            return false;
        }
        j->sinks.push_back(std::move(sink));
        return true;
    }
    return false;
}

bool JobScheduler::wait(const std::string& id) {
    std::unique_lock lock(mu_);
    std::shared_ptr<Job> job;
    for (const auto& j : jobs_) {
        if (j->id == id) {
            job = j;
            break;
        }
    }
    if (!job) return false;
    terminal_cv_.wait(lock, [&] {
        return job->state == JobState::kDone ||
               job->state == JobState::kCancelled;
    });
    return true;
}

std::optional<std::vector<flow::ScenarioRecord>> JobScheduler::records(
    const std::string& id) const {
    std::lock_guard lock(mu_);
    for (const auto& j : jobs_) {
        if (j->id == id) return j->records;
    }
    return std::nullopt;
}

void JobScheduler::cancel_all() {
    std::vector<std::shared_ptr<Job>> jobs;
    {
        std::lock_guard lock(mu_);
        jobs = jobs_;
    }
    for (const auto& j : jobs) j->cancel.cancel();
}

}  // namespace mvf::serve
