#pragma once
// Thin client for the `mvf serve` line protocol (the backend of
// `mvf submit/watch/status/cancel/shutdown --connect ADDR`).
//
// One connection per operation.  Streamed trace records (lines carrying
// "ph") are separated from protocol responses (lines carrying "ok") and
// handed to `on_trace` as raw NDJSON lines, so the CLI can tee them to a
// file that `mvf check-trace` validates.

#include <functional>
#include <optional>
#include <string>

#include "report/json.hpp"
#include "util/socket.hpp"

namespace mvf::serve {

/// Raw NDJSON trace line observer (no trailing newline).
using TraceLineFn = std::function<void(const std::string&)>;

/// Outcome of one submit/watch round trip.
struct ClientResult {
    bool ok = false;
    std::string error;          ///< protocol/transport error when !ok
    std::string job;            ///< job id from the ack (submit) or request
    report::Json results;       ///< the final results response ("op":"results")
    int trace_lines = 0;        ///< streamed records seen
};

class Client {
public:
    explicit Client(util::SocketAddr addr) : addr_(std::move(addr)) {}

    /// True when the server answers ping.
    bool ping(std::string* error = nullptr) const;

    /// Submits `spec_text`; when `wait`, blocks until the job finishes and
    /// fills result.results.  `stream` requests trace records (delivered
    /// to on_trace; implies wait on the server side only when wait too).
    ClientResult submit(const std::string& spec_text, bool wait, bool stream,
                        double timeout_s = 0.0,
                        const TraceLineFn& on_trace = {}) const;

    /// Attaches to a running job, streams until terminal.
    ClientResult watch(const std::string& job,
                       const TraceLineFn& on_trace = {}) const;

    /// One-line ops.  Return the server's response or an ok=false object
    /// with "error" set on transport failure.
    report::Json status(const std::string& job = "") const;
    report::Json results(const std::string& job) const;
    report::Json cancel(const std::string& job) const;
    report::Json shutdown() const;

private:
    report::Json roundtrip(const report::Json& request) const;

    util::SocketAddr addr_;
};

}  // namespace mvf::serve
