#pragma once
// The persistent experiment server behind `mvf serve`.
//
// One accept loop, one detached session thread per client connection, one
// shared JobScheduler + StageCache behind them all.  Sessions speak the
// line protocol of serve/protocol.hpp; a streaming submit or watch points
// a per-job obs::TraceSink at the client socket (fdopen over a dup'ed fd),
// so progress records ride the same connection as the responses.
//
// Failure containment, by construction:
//   * a client disconnecting mid-stream only kills its FILE* writes (the
//     socket is MSG_NOSIGNAL / SIGPIPE-ignored); the job keeps running and
//     its results stay queryable from new connections;
//   * a cancelled job releases its pool slots at the next stage boundary;
//   * a malformed request earns an error line, never a session exit.

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/scheduler.hpp"
#include "serve/stage_cache.hpp"
#include "util/socket.hpp"

namespace mvf::serve {

struct ServerParams {
    util::SocketAddr listen;
    /// Scheduler pool width.
    int workers = 2;
    StageCacheParams cache;
    /// Per-connection request logging on stderr.
    bool verbose = false;
};

class Server {
public:
    explicit Server(ServerParams params);
    ~Server();

    /// Binds the listen socket; throws std::runtime_error on failure.
    /// Separate from run() so callers can learn the bound port first.
    void bind();
    /// The actual address (tcp port 0 resolved); valid after bind().
    const util::SocketAddr& bound_addr() const { return bound_addr_; }

    /// Accept loop; returns after a shutdown request (local or remote).
    /// Jobs still running at shutdown are cancelled and drained.
    void run();

    /// Thread-safe; unblocks run().  Idempotent.
    void request_shutdown();

    JobScheduler& scheduler() { return *scheduler_; }
    StageCache& cache() { return *cache_; }

private:
    void session(util::Socket socket);
    /// One request line -> zero or more stream lines + one response line.
    /// Returns false when the session should end (disconnect or shutdown).
    bool handle(util::Socket& socket, const std::string& line);

    ServerParams params_;
    util::SocketAddr bound_addr_;
    std::unique_ptr<StageCache> cache_;
    std::unique_ptr<JobScheduler> scheduler_;
    util::ListenSocket listener_;
    std::atomic<bool> stopping_{false};
    std::mutex sessions_mu_;
    std::vector<std::thread> sessions_;
    /// Live session sockets, poked (shutdown(2)) to unblock their reads at
    /// server shutdown; weak so a finished session's fd is freed normally.
    std::vector<std::weak_ptr<util::Socket>> session_sockets_;
};

}  // namespace mvf::serve
