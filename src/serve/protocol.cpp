#include "serve/protocol.hpp"

#include "util/hash.hpp"

namespace mvf::serve {

namespace {

bool is_volatile_key(const std::string& key) {
    return key == "seconds" || key == "total_seconds" ||
           key == "solve_seconds" || key == "metrics" || key == "cache_hits";
}

}  // namespace

report::Json strip_volatile(const report::Json& j) {
    switch (j.type()) {
        case report::Json::Type::kArray: {
            report::Json out = report::Json::array();
            for (const report::Json& item : j.items()) {
                out.push_back(strip_volatile(item));
            }
            return out;
        }
        case report::Json::Type::kObject: {
            report::Json out = report::Json::object();
            for (const auto& [key, value] : j.members()) {
                if (is_volatile_key(key)) continue;
                out.set(key, strip_volatile(value));
            }
            return out;
        }
        default:
            return j;
    }
}

std::string records_hash(const std::vector<flow::ScenarioRecord>& records) {
    report::Json arr = report::Json::array();
    for (const flow::ScenarioRecord& r : records) {
        arr.push_back(r.to_json());
    }
    return util::fnv1a64_hex(
        report::canonicalized(strip_volatile(arr)).dump());
}

std::string error_line(const std::string& text) {
    report::Json j = report::Json::object();
    j.set("ok", false);
    j.set("error", text);
    return j.dump();
}

std::string response_line(const report::Json& j) { return j.dump(); }

}  // namespace mvf::serve
