#pragma once
// The synthesis script: interleaved balance / rewrite / refactor rounds,
// mirroring the paper's ABC script of "multiple refactor, rewrite and
// balance commands".
//
// SynthContext owns the memoized NPN table and rewrite library; one context
// is shared by an entire experiment so the thousands of genetic-algorithm
// fitness evaluations amortize canonization and structure synthesis.

#include "logic/npn.hpp"
#include "net/aig.hpp"
#include "synth/rewrite.hpp"

namespace mvf::synth {

struct SynthContext {
    logic::NpnManager npn;
    RewriteLibrary rewrite_lib;
};

enum class Effort {
    kFast,     ///< balance + rewrite rounds only (GA fitness evaluations)
    kDefault,  ///< adds refactoring rounds
    kHigh,     ///< more rounds plus zero-gain perturbation
};

/// Optimizes the AIG in place and returns the final live AND count.
int optimize(net::Aig* aig, SynthContext& ctx, Effort effort = Effort::kDefault);

}  // namespace mvf::synth
