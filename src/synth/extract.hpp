#pragma once
// Shared-divisor extraction across multi-output covers (a lightweight
// fast_extract, in the spirit of SIS `fx` / ABC `fx;strash`).
//
// The merged multi-function circuits of Phase I reward cross-cone sharing:
// cubes of different viable functions over the shared input bus frequently
// contain common sub-products.  This pass takes the ISOP covers of ALL
// outputs together, greedily extracts the most frequent literal pair as a
// new intermediate variable (iterating until no pair occurs twice), and
// only then builds the AIG -- so common products become shared nodes by
// construction instead of relying on rewrite to rediscover them.

#include <span>
#include <vector>

#include "logic/truth_table.hpp"
#include "net/aig.hpp"

namespace mvf::synth {

struct ExtractStats {
    int divisors_extracted = 0;
    int literals_before = 0;
    int literals_after = 0;
};

/// Builds all `functions` (tables over a common input space) into `aig`
/// with cross-output divisor extraction.  inputs.size() must equal the
/// functions' variable count.  Returns one literal per function.
std::vector<net::Lit> build_shared_extract(
    std::span<const logic::TruthTable> functions,
    std::span<const net::Lit> inputs, net::Aig* aig,
    ExtractStats* stats = nullptr);

}  // namespace mvf::synth
