#include "synth/refactor.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "net/aig_sim.hpp"
#include "synth/aig_build.hpp"
#include "synth/replace.hpp"

namespace mvf::synth {

using net::Aig;
using net::Lit;

std::vector<int> reconvergence_cut(const Aig& aig, int root, int max_leaves) {
    std::vector<int> leaves;
    const auto add_leaf = [&leaves](int node) {
        if (std::find(leaves.begin(), leaves.end(), node) == leaves.end()) {
            leaves.push_back(node);
        }
    };
    add_leaf(Aig::lit_node(aig.fanin0(root)));
    add_leaf(Aig::lit_node(aig.fanin1(root)));

    while (true) {
        // Pick the expandable leaf with the lowest growth cost.
        int best = -1;
        int best_cost = 1000;
        for (std::size_t i = 0; i < leaves.size(); ++i) {
            const int leaf = leaves[i];
            if (!aig.is_and(leaf)) continue;
            int cost = -1;  // the leaf itself disappears
            for (const Lit f : {aig.fanin0(leaf), aig.fanin1(leaf)}) {
                const int child = Aig::lit_node(f);
                if (std::find(leaves.begin(), leaves.end(), child) == leaves.end()) {
                    ++cost;
                }
            }
            if (cost < best_cost) {
                best_cost = cost;
                best = static_cast<int>(i);
            }
        }
        if (best < 0) break;
        if (static_cast<int>(leaves.size()) + best_cost > max_leaves) break;
        const int leaf = leaves[static_cast<std::size_t>(best)];
        leaves.erase(leaves.begin() + best);
        add_leaf(Aig::lit_node(aig.fanin0(leaf)));
        add_leaf(Aig::lit_node(aig.fanin1(leaf)));
    }
    return leaves;
}

int refactor(Aig* aig, const RefactorParams& params) {
    const int before = aig->count_live_ands();
    std::vector<int> refs = aig->reference_counts();

    std::unordered_map<int, Replacement> decisions;
    std::vector<int> mffc_nodes;
    const int min_gain = params.zero_gain ? 0 : 1;

    for (int n = aig->num_pis() + 1; n < aig->num_nodes(); ++n) {
        if (refs[static_cast<std::size_t>(n)] == 0) continue;
        const std::vector<int> leaves =
            reconvergence_cut(*aig, n, params.max_leaves);
        if (static_cast<int>(leaves.size()) < 3) continue;  // too small to help

        const logic::TruthTable cone =
            net::evaluate_cone(*aig, Aig::make_lit(n, false), leaves);

        auto structure = std::make_shared<Aig>(static_cast<int>(leaves.size()));
        std::vector<Lit> inputs;
        inputs.reserve(leaves.size());
        for (int i = 0; i < structure->num_pis(); ++i) inputs.push_back(structure->pi(i));
        const Lit out = build_from_tt(cone, inputs, structure.get());
        structure->add_po(out);

        Replacement r;
        r.leaf_of_input.assign(leaves.begin(), leaves.end());
        r.input_negated.assign(leaves.size(), false);
        r.structure_out = out;
        r.structure = std::move(structure);

        const int mffc = mffc_size(*aig, n, leaves, refs, &mffc_nodes);
        const int added = count_new_nodes(*aig, r, mffc_nodes);
        const int gain = mffc - added;
        if (gain >= min_gain) decisions.emplace(n, std::move(r));
    }

    if (!decisions.empty()) {
        *aig = apply_replacements(*aig, decisions).cleanup();
    }
    return before - aig->count_live_ands();
}

}  // namespace mvf::synth
