#include "synth/extract.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>

#include "logic/isop.hpp"

namespace mvf::synth {

using logic::TruthTable;
using net::Aig;
using net::Lit;

namespace {

// Internal literal encoding: 2*var + negated.  Variables 0..n-1 are the
// primary inputs; extracted divisors get fresh indices and only ever appear
// positively.
using CubeLits = std::vector<int>;

struct Divisor {
    int lit_a;
    int lit_b;
};

int count_literals(const std::vector<std::vector<CubeLits>>& covers) {
    int n = 0;
    for (const auto& cover : covers) {
        for (const auto& cube : cover) n += static_cast<int>(cube.size());
    }
    return n;
}

}  // namespace

std::vector<Lit> build_shared_extract(std::span<const TruthTable> functions,
                                      std::span<const Lit> inputs, Aig* aig,
                                      ExtractStats* stats) {
    const int num_inputs = static_cast<int>(inputs.size());

    // ISOP covers (best polarity) as literal-list cubes.
    std::vector<std::vector<CubeLits>> covers;
    std::vector<bool> complemented;
    covers.reserve(functions.size());
    for (const TruthTable& f : functions) {
        assert(f.num_vars() == num_inputs);
        bool comp = false;
        const logic::Sop sop = logic::isop_best_polarity(f, &comp);
        complemented.push_back(comp);
        std::vector<CubeLits> cover;
        cover.reserve(sop.cubes.size());
        for (const logic::Cube& c : sop.cubes) {
            CubeLits lits;
            for (int v = 0; v < num_inputs; ++v) {
                if (c.has_var(v)) lits.push_back(2 * v + (c.is_positive(v) ? 0 : 1));
            }
            std::sort(lits.begin(), lits.end());
            cover.push_back(std::move(lits));
        }
        covers.push_back(std::move(cover));
    }

    if (stats) stats->literals_before = count_literals(covers);

    // Greedy pair extraction: while some literal pair occurs in >= 2 cubes
    // (anywhere across the outputs), replace it with a fresh divisor.
    std::vector<Divisor> divisors;
    int next_var = num_inputs;
    while (true) {
        std::map<std::pair<int, int>, int> pair_count;
        for (const auto& cover : covers) {
            for (const auto& cube : cover) {
                for (std::size_t i = 0; i < cube.size(); ++i) {
                    for (std::size_t j = i + 1; j < cube.size(); ++j) {
                        ++pair_count[{cube[i], cube[j]}];
                    }
                }
            }
        }
        std::pair<int, int> best{-1, -1};
        int best_count = 1;
        for (const auto& [pair, count] : pair_count) {
            if (count > best_count) {
                best_count = count;
                best = pair;
            }
        }
        if (best.first < 0) break;

        const int div_lit = 2 * next_var;
        divisors.push_back({best.first, best.second});
        ++next_var;
        for (auto& cover : covers) {
            for (auto& cube : cover) {
                const auto ia = std::find(cube.begin(), cube.end(), best.first);
                if (ia == cube.end()) continue;
                const auto ib = std::find(cube.begin(), cube.end(), best.second);
                if (ib == cube.end()) continue;
                cube.erase(ib);  // ib > ia is not guaranteed after sort? lits sorted, a<b
                cube.erase(std::find(cube.begin(), cube.end(), best.first));
                cube.insert(std::lower_bound(cube.begin(), cube.end(), div_lit),
                            div_lit);
            }
        }
    }

    if (stats) {
        stats->divisors_extracted = static_cast<int>(divisors.size());
        stats->literals_after = count_literals(covers);
    }

    // Materialize: inputs, then divisors in creation order, then covers.
    std::vector<Lit> var_lit(static_cast<std::size_t>(next_var));
    for (int v = 0; v < num_inputs; ++v) var_lit[static_cast<std::size_t>(v)] = inputs[static_cast<std::size_t>(v)];
    const auto lit_of = [&var_lit](int lit) {
        const Lit base = var_lit[static_cast<std::size_t>(lit >> 1)];
        return (lit & 1) ? Aig::lit_not(base) : base;
    };
    for (std::size_t d = 0; d < divisors.size(); ++d) {
        var_lit[static_cast<std::size_t>(num_inputs) + d] =
            aig->and2(lit_of(divisors[d].lit_a), lit_of(divisors[d].lit_b));
    }

    std::vector<Lit> outputs;
    outputs.reserve(functions.size());
    for (std::size_t k = 0; k < covers.size(); ++k) {
        std::vector<Lit> terms;
        terms.reserve(covers[k].size());
        for (const CubeLits& cube : covers[k]) {
            std::vector<Lit> lits;
            lits.reserve(cube.size());
            for (const int l : cube) lits.push_back(lit_of(l));
            terms.push_back(aig->and_many(lits));
        }
        Lit out = aig->or_many(terms);
        if (complemented[k]) out = Aig::lit_not(out);
        outputs.push_back(out);
    }
    return outputs;
}

}  // namespace mvf::synth
