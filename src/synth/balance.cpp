#include "synth/balance.hpp"

#include <algorithm>
#include <queue>
#include <vector>

namespace mvf::synth {

using net::Aig;
using net::Lit;

namespace {

struct Balancer {
    const Aig& in;
    Aig out;
    std::vector<int> refs;
    std::vector<Lit> copy;       // old node -> new lit (kNoLit = pending)
    std::vector<int> out_level;  // level per new node

    explicit Balancer(const Aig& aig)
        : in(aig),
          out(aig.num_pis()),
          refs(aig.reference_counts()),
          copy(static_cast<std::size_t>(aig.num_nodes()), Aig::kNoLit),
          out_level(static_cast<std::size_t>(aig.num_pis()) + 1, 0) {
        copy[0] = Aig::kConst0;
        for (int i = 0; i < aig.num_pis(); ++i) {
            copy[static_cast<std::size_t>(i + 1)] = out.pi(i);
        }
    }

    int level_of(Lit l) const {
        return out_level[static_cast<std::size_t>(Aig::lit_node(l))];
    }

    Lit and2_tracked(Lit a, Lit b) {
        const int before = out.num_nodes();
        const Lit r = out.and2(a, b);
        if (out.num_nodes() > before) {
            out_level.push_back(1 + std::max(level_of(a), level_of(b)));
        }
        return r;
    }

    // Collects the operand literals of the maximal single-fanout AND tree
    // rooted at (positive) node n.
    void collect_conjuncts(int n, std::vector<Lit>* operands) {
        for (const Lit f : {in.fanin0(n), in.fanin1(n)}) {
            const int child = Aig::lit_node(f);
            if (!Aig::lit_complemented(f) && in.is_and(child) &&
                refs[static_cast<std::size_t>(child)] == 1) {
                collect_conjuncts(child, operands);
            } else {
                operands->push_back(f);
            }
        }
    }

    Lit balanced(int n) {
        Lit& memo = copy[static_cast<std::size_t>(n)];
        if (memo != Aig::kNoLit) return memo;

        std::vector<Lit> operands;
        collect_conjuncts(n, &operands);
        // Build each operand in the new graph first.
        std::vector<Lit> built;
        built.reserve(operands.size());
        for (const Lit op : operands) {
            const Lit base = balanced_lit(Aig::lit_regular(op));
            built.push_back(Aig::lit_complemented(op) ? Aig::lit_not(base) : base);
        }
        // Min-height combination: repeatedly AND the two shallowest.
        const auto deeper = [this](Lit a, Lit b) {
            return level_of(a) > level_of(b);
        };
        std::priority_queue<Lit, std::vector<Lit>, decltype(deeper)> heap(
            deeper, std::move(built));
        while (heap.size() > 1) {
            const Lit a = heap.top();
            heap.pop();
            const Lit b = heap.top();
            heap.pop();
            heap.push(and2_tracked(a, b));
        }
        memo = heap.top();
        return memo;
    }

    Lit balanced_lit(Lit l) {
        const int n = Aig::lit_node(l);
        if (!in.is_and(n)) return copy[static_cast<std::size_t>(n)];
        return balanced(n);
    }
};

}  // namespace

Aig balance(const Aig& aig) {
    Balancer b(aig);
    for (int i = 0; i < aig.num_pos(); ++i) {
        const Lit po = aig.po(i);
        const Lit base = b.balanced_lit(Aig::lit_regular(po));
        b.out.add_po(Aig::lit_complemented(po) ? Aig::lit_not(base) : base);
    }
    return std::move(b.out);
}

}  // namespace mvf::synth
