#include "synth/aig_build.hpp"

#include <cassert>
#include <vector>

#include "logic/isop.hpp"

namespace mvf::synth {

using logic::FactorKind;
using logic::FactorNode;
using logic::FactorTree;
using logic::TruthTable;
using net::Aig;
using net::Lit;

namespace {

Lit build_factor_node(const FactorTree& tree, int idx,
                      std::span<const Lit> inputs, Aig* aig) {
    const FactorNode& n = tree.node(idx);
    switch (n.kind) {
        case FactorKind::kConst0:
            return Aig::kConst0;
        case FactorKind::kConst1:
            return Aig::kConst1;
        case FactorKind::kLiteral: {
            const Lit l = inputs[static_cast<std::size_t>(n.var)];
            return n.negated ? Aig::lit_not(l) : l;
        }
        case FactorKind::kAnd: {
            std::vector<Lit> terms;
            terms.reserve(n.children.size());
            for (const int c : n.children) {
                terms.push_back(build_factor_node(tree, c, inputs, aig));
            }
            return aig->and_many(terms);
        }
        case FactorKind::kOr: {
            std::vector<Lit> terms;
            terms.reserve(n.children.size());
            for (const int c : n.children) {
                terms.push_back(build_factor_node(tree, c, inputs, aig));
            }
            return aig->or_many(terms);
        }
    }
    assert(false);
    return Aig::kConst0;
}

}  // namespace

Lit build_factored(const FactorTree& tree, std::span<const Lit> inputs,
                   Aig* aig) {
    return build_factor_node(tree, tree.root(), inputs, aig);
}

Lit build_from_tt(const TruthTable& function, std::span<const Lit> inputs,
                  Aig* aig) {
    assert(static_cast<int>(inputs.size()) == function.num_vars());
    bool complemented = false;
    const logic::Sop cover = logic::isop_best_polarity(function, &complemented);
    const FactorTree tree = FactorTree::from_sop(cover);
    const Lit out = build_factored(tree, inputs, aig);
    return complemented ? Aig::lit_not(out) : out;
}

Lit build_mux_tree(std::span<const Lit> selects, std::span<const Lit> data,
                   Aig* aig) {
    assert(data.size() == (std::size_t{1} << selects.size()));
    if (selects.empty()) return data[0];
    std::vector<Lit> layer(data.begin(), data.end());
    for (std::size_t s = 0; s < selects.size(); ++s) {
        std::vector<Lit> next(layer.size() / 2);
        for (std::size_t i = 0; i < next.size(); ++i) {
            next[i] = aig->mux(selects[s], layer[2 * i + 1], layer[2 * i]);
        }
        layer = std::move(next);
    }
    return layer[0];
}

}  // namespace mvf::synth
