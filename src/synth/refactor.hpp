#pragma once
// Reconvergence-driven refactoring (ABC `refactor` analogue).
//
// For each node, a reconvergent cut of up to `max_leaves` inputs is grown,
// the cone function is extracted by simulation, resynthesized through
// dual-polarity ISOP + algebraic factoring, and the new structure replaces
// the cone when it frees more nodes than it adds.  Larger windows than
// rewriting's 4-cuts let this pass undo poor initial factorings of the
// merged multi-function cones.

#include "net/aig.hpp"

namespace mvf::synth {

struct RefactorParams {
    int max_leaves = 10;
    bool zero_gain = false;
};

/// One refactoring pass; returns the number of AND nodes saved.
int refactor(net::Aig* aig, const RefactorParams& params = {});

/// Grows a reconvergence-driven cut (leaf node ids) rooted at `root`.
std::vector<int> reconvergence_cut(const net::Aig& aig, int root,
                                   int max_leaves);

}  // namespace mvf::synth
