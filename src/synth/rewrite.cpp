#include "synth/rewrite.hpp"

#include <cassert>

#include "logic/truth_table.hpp"
#include "synth/aig_build.hpp"
#include "synth/replace.hpp"

namespace mvf::synth {

using logic::NpnManager;
using logic::NpnRebuildWiring;
using net::Aig;
using net::Cut;
using net::CutSet;
using net::Lit;

const RewriteLibrary::Entry& RewriteLibrary::structure_for(std::uint16_t canon_tt) {
    const auto it = memo_.find(canon_tt);
    if (it != memo_.end()) return it->second;

    logic::TruthTable f(4);
    for (std::uint32_t m = 0; m < 16; ++m) {
        if ((canon_tt >> m) & 1) f.set_bit(m, true);
    }
    auto aig = std::make_shared<Aig>(4);
    const std::array<Lit, 4> inputs{aig->pi(0), aig->pi(1), aig->pi(2), aig->pi(3)};
    Entry entry;
    entry.out = build_from_tt(f, inputs, aig.get());
    aig->add_po(entry.out);
    entry.num_ands = aig->count_live_ands();
    entry.structure = std::move(aig);
    return memo_.emplace(canon_tt, std::move(entry)).first->second;
}

int rewrite(Aig* aig, NpnManager& npn, RewriteLibrary& lib,
            const RewriteParams& params) {
    const int before = aig->count_live_ands();
    std::vector<int> refs = aig->reference_counts();
    const CutSet cuts(*aig, params.cuts);

    std::unordered_map<int, Replacement> decisions;
    std::vector<int> mffc_nodes;

    for (int n = aig->num_pis() + 1; n < aig->num_nodes(); ++n) {
        if (refs[static_cast<std::size_t>(n)] == 0) continue;  // dead
        const int min_gain = params.zero_gain ? 0 : 1;
        int best_gain = min_gain - 1;
        Replacement best;
        bool found = false;

        for (const Cut& cut : cuts.cuts_of(n)) {
            if (cut.size() == 1 && cut.leaves[0] == n) continue;  // trivial
            const logic::NpnEntry& canon = npn.canonize(cut.function);
            const RewriteLibrary::Entry& entry = lib.structure_for(canon.canon);
            const NpnRebuildWiring wiring =
                NpnManager::rebuild_wiring(canon.transform);

            Replacement r;
            r.structure = entry.structure;
            r.structure_out = entry.out;
            r.output_negated = wiring.output_neg;
            r.leaf_of_input.assign(4, -1);
            r.input_negated.assign(4, false);
            for (int i = 0; i < 4; ++i) {
                const int leaf_pos = wiring.leaf_of_input[static_cast<std::size_t>(i)];
                if (leaf_pos < cut.size()) {
                    r.leaf_of_input[static_cast<std::size_t>(i)] =
                        cut.leaves[static_cast<std::size_t>(leaf_pos)];
                    r.input_negated[static_cast<std::size_t>(i)] =
                        wiring.leaf_negated[static_cast<std::size_t>(i)];
                }
            }

            const int mffc = mffc_size(*aig, n, cut.leaves, refs, &mffc_nodes);
            const int added = count_new_nodes(*aig, r, mffc_nodes);
            const int gain = mffc - added;
            if (gain >= min_gain && gain > best_gain) {
                best_gain = gain;
                best = std::move(r);
                found = true;
            }
        }
        if (found) decisions.emplace(n, std::move(best));
    }

    if (!decisions.empty()) {
        *aig = apply_replacements(*aig, decisions).cleanup();
    }
    return before - aig->count_live_ands();
}

}  // namespace mvf::synth
