#pragma once
// DAG-aware NPN cut rewriting (ABC `rewrite` analogue).
//
// Every 4-feasible cut is classified by exact NPN canonization; a memoized
// library provides one optimized replacement structure per canonical class
// (dual-polarity ISOP + algebraic factoring).  A cut is rewritten when the
// structure adds fewer nodes than the cut's MFFC frees.  Rewriting is the
// main engine for discovering logic sharing across merged viable functions.

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "logic/npn.hpp"
#include "net/aig.hpp"
#include "net/cuts.hpp"

namespace mvf::synth {

/// Memoized canonical-class -> replacement-structure table.  Share one
/// instance across all rewriting calls of a run.
class RewriteLibrary {
public:
    struct Entry {
        std::shared_ptr<const net::Aig> structure;  ///< over 4 PIs
        net::Lit out = 0;
        int num_ands = 0;
    };

    /// Best known structure for a canonical 4-variable function.
    const Entry& structure_for(std::uint16_t canon_tt);

private:
    std::unordered_map<std::uint16_t, Entry> memo_;
};

struct RewriteParams {
    net::CutParams cuts{4, 8, true};
    /// Accept replacements of equal size (structure perturbation).
    bool zero_gain = false;
};

/// One rewriting pass; returns the number of AND nodes saved.
int rewrite(net::Aig* aig, logic::NpnManager& npn, RewriteLibrary& lib,
            const RewriteParams& params = {});

}  // namespace mvf::synth
