#pragma once
// AND-tree balancing (ABC `balance` analogue).
//
// Collapses single-fanout chains of conjunctions into n-ary ANDs and
// rebuilds them as minimum-height trees (combining the two shallowest
// operands first).  Reduces depth and canonicalizes structure, which
// improves the sharing discovered by subsequent rewriting.

#include "net/aig.hpp"

namespace mvf::synth {

/// Returns a balanced structural copy (dead nodes dropped).
net::Aig balance(const net::Aig& aig);

}  // namespace mvf::synth
