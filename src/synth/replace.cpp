#include "synth/replace.hpp"

#include <algorithm>
#include <cassert>

namespace mvf::synth {

using net::Aig;
using net::Lit;

namespace {

// Nodes of `structure` reachable from `out`, in topological (id) order.
std::vector<int> reachable_nodes(const Aig& structure, Lit out) {
    std::vector<bool> seen(static_cast<std::size_t>(structure.num_nodes()), false);
    std::vector<int> stack{Aig::lit_node(out)};
    while (!stack.empty()) {
        const int n = stack.back();
        stack.pop_back();
        if (seen[static_cast<std::size_t>(n)]) continue;
        seen[static_cast<std::size_t>(n)] = true;
        if (structure.is_and(n)) {
            stack.push_back(Aig::lit_node(structure.fanin0(n)));
            stack.push_back(Aig::lit_node(structure.fanin1(n)));
        }
    }
    std::vector<int> order;
    for (int n = 0; n < structure.num_nodes(); ++n) {
        if (seen[static_cast<std::size_t>(n)]) order.push_back(n);
    }
    return order;
}

}  // namespace

int mffc_size(const Aig& aig, int root, const std::vector<int>& leaves,
              std::vector<int>& refs, std::vector<int>* mffc_nodes) {
    std::vector<bool> is_leaf(static_cast<std::size_t>(aig.num_nodes()), false);
    for (const int l : leaves) is_leaf[static_cast<std::size_t>(l)] = true;

    std::vector<int> collected;
    const auto deref = [&](auto&& self, int node) -> int {
        collected.push_back(node);
        int count = 1;
        for (const Lit f : {aig.fanin0(node), aig.fanin1(node)}) {
            const int child = Aig::lit_node(f);
            if (!aig.is_and(child) || is_leaf[static_cast<std::size_t>(child)]) continue;
            if (--refs[static_cast<std::size_t>(child)] == 0) {
                count += self(self, child);
            }
        }
        return count;
    };
    const int size = deref(deref, root);

    // Restore the reference counts touched above.
    for (const int node : collected) {
        for (const Lit f : {aig.fanin0(node), aig.fanin1(node)}) {
            const int child = Aig::lit_node(f);
            if (!aig.is_and(child) || is_leaf[static_cast<std::size_t>(child)]) continue;
            ++refs[static_cast<std::size_t>(child)];
        }
    }
    if (mffc_nodes) *mffc_nodes = std::move(collected);
    return size;
}

int count_new_nodes(const Aig& aig, const Replacement& r,
                    const std::vector<int>& mffc_nodes) {
    const Aig& s = *r.structure;
    std::vector<bool> freed(static_cast<std::size_t>(aig.num_nodes()), false);
    for (const int n : mffc_nodes) freed[static_cast<std::size_t>(n)] = true;

    std::vector<Lit> mapped(static_cast<std::size_t>(s.num_nodes()), Aig::kNoLit);
    mapped[0] = Aig::kConst0;
    for (int i = 0; i < s.num_pis(); ++i) {
        const int leaf = r.leaf_of_input[static_cast<std::size_t>(i)];
        if (leaf < 0) continue;  // unused input
        Lit l = Aig::make_lit(leaf, false);
        if (r.input_negated[static_cast<std::size_t>(i)]) l = Aig::lit_not(l);
        mapped[static_cast<std::size_t>(i + 1)] = l;
    }

    int new_count = 0;
    for (const int n : reachable_nodes(s, r.structure_out)) {
        if (!s.is_and(n)) {
            assert(mapped[static_cast<std::size_t>(n)] != Aig::kNoLit &&
                   "structure reads an unmapped input");
            continue;
        }
        const auto resolve = [&](Lit f) {
            const Lit base = mapped[static_cast<std::size_t>(Aig::lit_node(f))];
            if (base == Aig::kNoLit) return Aig::kNoLit;
            return Aig::lit_complemented(f) ? Aig::lit_not(base) : base;
        };
        const Lit a = resolve(s.fanin0(n));
        const Lit b = resolve(s.fanin1(n));
        if (a == Aig::kNoLit || b == Aig::kNoLit) {
            ++new_count;
            continue;  // mapped stays kNoLit: children of new nodes are new
        }
        const Lit hit = aig.lookup_and(a, b);
        if (hit == Aig::kNoLit || freed[static_cast<std::size_t>(Aig::lit_node(hit))]) {
            ++new_count;
        } else {
            mapped[static_cast<std::size_t>(n)] = hit;
        }
    }
    return new_count;
}

Aig apply_replacements(const Aig& aig,
                       const std::unordered_map<int, Replacement>& decisions) {
    Aig out(aig.num_pis());
    std::vector<Lit> copy(static_cast<std::size_t>(aig.num_nodes()), Aig::kNoLit);
    copy[0] = Aig::kConst0;
    for (int i = 0; i < aig.num_pis(); ++i) {
        copy[static_cast<std::size_t>(i + 1)] = out.pi(i);
    }

    const auto materialize = [&](auto&& self, int node) -> Lit {
        Lit& memo = copy[static_cast<std::size_t>(node)];
        if (memo != Aig::kNoLit) return memo;

        const auto it = decisions.find(node);
        if (it == decisions.end()) {
            const auto resolve = [&](Lit f) {
                const Lit base = self(self, Aig::lit_node(f));
                return Aig::lit_complemented(f) ? Aig::lit_not(base) : base;
            };
            memo = out.and2(resolve(aig.fanin0(node)), resolve(aig.fanin1(node)));
            return memo;
        }

        const Replacement& r = it->second;
        const Aig& s = *r.structure;
        std::vector<Lit> mapped(static_cast<std::size_t>(s.num_nodes()), Aig::kNoLit);
        mapped[0] = Aig::kConst0;
        const std::vector<int> order = reachable_nodes(s, r.structure_out);
        for (const int sn : order) {
            if (s.is_pi(sn)) {
                const int leaf = r.leaf_of_input[static_cast<std::size_t>(sn - 1)];
                assert(leaf >= 0 && "structure reads an unmapped input");
                Lit l = self(self, leaf);
                if (r.input_negated[static_cast<std::size_t>(sn - 1)]) l = Aig::lit_not(l);
                mapped[static_cast<std::size_t>(sn)] = l;
            }
        }
        for (const int sn : order) {
            if (!s.is_and(sn)) continue;
            const auto resolve = [&](Lit f) {
                const Lit base = mapped[static_cast<std::size_t>(Aig::lit_node(f))];
                return Aig::lit_complemented(f) ? Aig::lit_not(base) : base;
            };
            mapped[static_cast<std::size_t>(sn)] =
                out.and2(resolve(s.fanin0(sn)), resolve(s.fanin1(sn)));
        }
        Lit result = mapped[static_cast<std::size_t>(Aig::lit_node(r.structure_out))];
        if (Aig::lit_complemented(r.structure_out)) result = Aig::lit_not(result);
        if (r.output_negated) result = Aig::lit_not(result);
        memo = result;
        return memo;
    };

    for (int i = 0; i < aig.num_pos(); ++i) {
        const Lit po = aig.po(i);
        const Lit base = materialize(materialize, Aig::lit_node(po));
        out.add_po(Aig::lit_complemented(po) ? Aig::lit_not(base) : base);
    }
    return out;
}

}  // namespace mvf::synth
