#include "synth/optimize.hpp"

#include "synth/balance.hpp"
#include "synth/refactor.hpp"

namespace mvf::synth {

using net::Aig;

int optimize(Aig* aig, SynthContext& ctx, Effort effort) {
    const int max_rounds = effort == Effort::kFast ? 2
                           : effort == Effort::kDefault ? 3
                                                        : 5;
    Aig best = aig->cleanup();
    int best_size = best.num_ands();
    for (int round = 0; round < max_rounds; ++round) {
        *aig = balance(*aig);
        rewrite(aig, ctx.npn, ctx.rewrite_lib);
        if (effort != Effort::kFast) {
            refactor(aig);
            *aig = balance(*aig);
            rewrite(aig, ctx.npn, ctx.rewrite_lib);
        }
        if (effort == Effort::kHigh) {
            // Zero-gain perturbation can climb out of local minima but may
            // also regress; the best-seen snapshot below protects the result.
            RewriteParams zero;
            zero.zero_gain = true;
            rewrite(aig, ctx.npn, ctx.rewrite_lib, zero);
            rewrite(aig, ctx.npn, ctx.rewrite_lib);
        }
        const int now = aig->count_live_ands();
        if (now < best_size) {
            best = aig->cleanup();
            best_size = best.num_ands();
        } else if (round > 0) {
            break;
        }
    }
    *aig = std::move(best);
    return aig->num_ands();
}

}  // namespace mvf::synth
