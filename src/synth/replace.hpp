#pragma once
// Shared machinery for DAG-aware resynthesis passes (rewrite / refactor):
// MFFC computation, dry-run gain estimation, and rebuild-with-substitution.
//
// A pass records, per AIG node, an optional Replacement: a small structure
// AIG whose inputs wire to existing nodes.  apply_replacements() then
// reconstructs the graph from the primary outputs, instantiating decided
// structures through structural hashing so shared logic is discovered and
// dead cones vanish.

#include <memory>
#include <unordered_map>
#include <vector>

#include "net/aig.hpp"

namespace mvf::synth {

/// A candidate resynthesis of one node's function over chosen leaves.
struct Replacement {
    /// structure PI index -> old-AIG node id feeding it (-1 if the structure
    /// does not read that input).
    std::vector<int> leaf_of_input;
    /// per structure PI: complement the leaf signal before feeding it
    std::vector<bool> input_negated;
    bool output_negated = false;
    std::shared_ptr<const net::Aig> structure;
    net::Lit structure_out = 0;
};

/// Computes the size of the maximum fanout-free cone of `root` down to
/// `leaves` using trial dereferencing on `refs` (restored before returning).
/// If `mffc_nodes` is non-null the member node ids are collected (root
/// included).
int mffc_size(const net::Aig& aig, int root, const std::vector<int>& leaves,
              std::vector<int>& refs, std::vector<int>* mffc_nodes = nullptr);

/// Estimates how many new AND nodes instantiating `r` would create, by
/// replaying the structure against the old AIG's structural hash table.
/// Hits on nodes listed in `mffc_nodes` (which the replacement would free)
/// are counted as new.
int count_new_nodes(const net::Aig& aig, const Replacement& r,
                    const std::vector<int>& mffc_nodes);

/// Rebuilds the AIG applying the decided replacements (keyed by old node id).
net::Aig apply_replacements(
    const net::Aig& aig,
    const std::unordered_map<int, Replacement>& decisions);

}  // namespace mvf::synth
