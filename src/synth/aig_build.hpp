#pragma once
// AIG construction helpers: factored forms, truth tables, and mux trees.
//
// Phase I of the flow builds the merged multi-function circuit from these
// primitives: each viable function's outputs become factored-ISOP cones over
// the shared inputs, and per-output multiplexer trees select among them
// (Fig. 2 of the paper).

#include <span>

#include "logic/factor.hpp"
#include "logic/truth_table.hpp"
#include "net/aig.hpp"

namespace mvf::synth {

/// Instantiates a factored form over the given input literals.
net::Lit build_factored(const logic::FactorTree& tree,
                        std::span<const net::Lit> inputs, net::Aig* aig);

/// Builds `function` over the given input literals via best-polarity ISOP
/// plus algebraic factoring.  inputs.size() must equal function.num_vars().
net::Lit build_from_tt(const logic::TruthTable& function,
                       std::span<const net::Lit> inputs, net::Aig* aig);

/// Balanced multiplexer tree: returns data[value(selects)], where selects
/// are read LSB-first.  data.size() must equal 1 << selects.size().
net::Lit build_mux_tree(std::span<const net::Lit> selects,
                        std::span<const net::Lit> data, net::Aig* aig);

}  // namespace mvf::synth
