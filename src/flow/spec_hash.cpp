#include "flow/spec_hash.hpp"

#include <fstream>
#include <sstream>

#include "attack/oracle_attack.hpp"
#include "util/hash.hpp"
#include "util/sha256.hpp"

namespace mvf::flow {

namespace {

const char* effort_name(synth::Effort e) {
    switch (e) {
        case synth::Effort::kFast: return "fast";
        case synth::Effort::kDefault: return "default";
        case synth::Effort::kHigh: return "high";
    }
    return "unknown";
}

const char* build_style_name(BuildStyle s) {
    return s == BuildStyle::kFactored ? "factored" : "shared-extract";
}

report::Json ga_json(const Scenario& s) {
    report::Json j = report::Json::object();
    j.set("population", s.params.ga.population);
    j.set("generations", s.params.ga.generations);
    j.set("crossover_prob", s.params.ga.crossover_prob);
    j.set("mutation_prob", s.params.ga.mutation_prob);
    j.set("tournament_size", s.params.ga.tournament_size);
    j.set("elite", s.params.ga.elite);
    return j;
}

report::Json map_json(const Scenario& s) {
    report::Json j = report::Json::object();
    j.set("cut_max_leaves", s.params.map.cuts.max_leaves);
    j.set("cut_max_cuts_per_node", s.params.map.cuts.max_cuts_per_node);
    j.set("cut_include_trivial", s.params.map.cuts.include_trivial);
    j.set("recovery_iterations", s.params.map.recovery_iterations);
    return j;
}

report::Json camo_json(const Scenario& s) {
    report::Json j = report::Json::object();
    j.set("subtree_max_depth", s.params.camo.subtree.max_depth);
    j.set("subtree_max_signal_leaves", s.params.camo.subtree.max_signal_leaves);
    j.set("subtree_max_candidates", s.params.camo.subtree.max_candidates);
    return j;
}

report::Json oracle_json(const Scenario& s) {
    const attack::OracleAttackParams& o = s.params.oracle;
    report::Json j = report::Json::object();
    j.set("count_mode", std::string(attack::count_mode_name(o.count_mode)));
    j.set("max_survivors", o.max_survivors);
    j.set("count_cache_mb", o.count_cache_mb);
    j.set("count_max_decisions", o.count_max_decisions);
    j.set("epsilon", o.epsilon);
    j.set("delta", o.delta);
    j.set("count_seed", o.count_seed);
    j.set("max_iterations", o.max_iterations);
    j.set("enumerate_survivors", o.enumerate_survivors);
    j.set("shared_miter", o.shared_miter);
    j.set("canonical_inputs", o.canonical_inputs);
    j.set("random_warmup", o.random_warmup);
    j.set("neighborhood_queries", o.neighborhood_queries);
    j.set("warmup_seed", o.warmup_seed);
    j.set("collect_metrics", o.collect_metrics);
    // Parallelism knobs are semantic (they select the portfolio/cube
    // engines, whose transcripts and stats differ from serial runs); the
    // runtime pool pointer is deliberately NOT hashed.
    j.set("attack_threads", o.attack_threads);
    j.set("portfolio", o.portfolio);
    j.set("cube_vars", o.cube_vars);
    report::Json solver = report::Json::object();
    solver.set("preprocess", o.solver.preprocess);
    solver.set("elim_occ_limit", o.solver.elim_occ_limit);
    solver.set("elim_growth", o.solver.elim_growth);
    solver.set("elim_resolvent_limit", o.solver.elim_resolvent_limit);
    solver.set("max_rounds", o.solver.max_rounds);
    solver.set("inprocess_growth", o.solver.inprocess_growth);
    j.set("solver", std::move(solver));
    return j;
}

report::Json oracle_model_json(const Scenario& s) {
    const attack::OracleModelParams& m = s.params.oracle_model;
    report::Json j = report::Json::object();
    j.set("query_budget", m.query_budget);
    j.set("noise", m.noise);
    j.set("noise_seed", m.noise_seed);
    j.set("cache", m.cache);
    return j;
}

report::Json attack_json(const Scenario& s) {
    report::Json j = report::Json::object();
    report::Json adversaries = report::Json::array();
    for (const std::string& a : s.params.adversaries) adversaries.push_back(a);
    j.set("adversaries", std::move(adversaries));
    j.set("run_oracle_attack", s.params.run_oracle_attack);
    j.set("random_queries", s.params.random_queries);
    j.set("replay_transcript", s.params.replay_transcript);
    j.set("oracle", oracle_json(s));
    j.set("oracle_model", oracle_model_json(s));
    return j;
}

/// Shared base of every subset: the experiment identity plus what the
/// pin-search stage consumes (GA knobs, fitness synthesis/mapping, the
/// equal-budget random baseline).  The seed is NOT here -- subsets are
/// seed-free so the cache key can spell it out explicitly.
report::Json pin_search_json(const Scenario& s) {
    report::Json j = report::Json::object();
    j.set("schema", kSpecSchemaVersion);
    j.set("family", s.family);
    j.set("n", s.n);
    j.set("ga", ga_json(s));
    j.set("fitness_effort", effort_name(s.params.fitness_effort));
    j.set("fitness_build", build_style_name(s.params.fitness_build));
    j.set("map", map_json(s));
    j.set("random_count", s.params.random_count);
    j.set("run_random_baseline", s.params.run_random_baseline);
    return j;
}

report::Json synthesize_json(const Scenario& s) {
    report::Json j = pin_search_json(s);
    j.set("final_effort", effort_name(s.params.final_effort));
    j.set("final_best_of_builds", s.params.final_best_of_builds);
    return j;
}

report::Json camo_cover_json(const Scenario& s) {
    report::Json j = synthesize_json(s);
    j.set("camo", camo_json(s));
    return j;
}

/// Everything semantic: what the attack stage (and with it the complete
/// scenario outcome) depends on.
report::Json sbox_full_json(const Scenario& s) {
    report::Json j = camo_cover_json(s);
    j.set("run_camo_mapping", s.params.run_camo_mapping);
    j.set("verify", s.params.verify);
    j.set("attack", attack_json(s));
    return j;
}

/// SHA-256 of the file's bytes, or "unreadable" when it cannot be opened.
/// Never throws: spec hashes are stamped into records before the pipeline
/// runs, so a missing circuit file must surface as the import stage's
/// ParseError, not here.
std::string file_fingerprint(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return "unreadable";
    std::ostringstream bytes;
    bytes << in.rdbuf();
    return util::sha256_hex(bytes.str());
}

/// Circuit-scenario subset chain.  The import stage depends on the file's
/// CONTENTS, not just its path -- editing the circuit on disk must miss in
/// serve::StageCache rather than warm-hit a stale snapshot.
report::Json import_json(const Scenario& s) {
    report::Json j = report::Json::object();
    j.set("schema", kSpecSchemaVersion);
    j.set("kind", "circuit");
    j.set("circuit", s.params.circuit.path);
    j.set("circuit_sha256", file_fingerprint(s.params.circuit.path));
    j.set("map", map_json(s));
    return j;
}

report::Json inject_json(const Scenario& s) {
    report::Json j = import_json(s);
    j.set("camo_density", s.params.circuit.camo_density);
    j.set("camo_cells", s.params.circuit.camo_cells);
    j.set("camo_seed", s.params.circuit.camo_seed);
    j.set("camo_policy", s.params.circuit.camo_policy);
    return j;
}

report::Json circuit_full_json(const Scenario& s) {
    report::Json j = inject_json(s);
    j.set("run_camo_mapping", s.params.run_camo_mapping);
    j.set("attack", attack_json(s));
    return j;
}

report::Json full_json(const Scenario& s) {
    return s.params.circuit.path.empty() ? sbox_full_json(s)
                                         : circuit_full_json(s);
}

std::string subset_hash(const report::Json& subset) {
    return util::fnv1a64_hex(report::canonicalized(subset).dump());
}

}  // namespace

report::Json canonical_spec_json(const Scenario& scenario) {
    report::Json j = full_json(scenario);
    j.set("seed", scenario.params.seed);
    return report::canonicalized(j);
}

std::string spec_hash(const Scenario& scenario) {
    return util::fnv1a64_hex(canonical_spec_json(scenario).dump());
}

std::string stage_cache_key(const Scenario& scenario, std::string_view stage) {
    // Transcript record/replay and proof emission tie the scenario to
    // files the cache cannot fingerprint (and recording/committing are
    // side effects a cache hit would skip): such scenarios always run
    // fresh.
    if (!scenario.params.save_transcript.empty() ||
        !scenario.params.replay_transcript.empty() ||
        !scenario.params.emit_proof.empty()) {
        return "";
    }
    std::string subset;
    if (!scenario.params.circuit.path.empty()) {
        if (stage == "import") {
            subset = subset_hash(import_json(scenario));
        } else if (stage == "camo-inject") {
            subset = subset_hash(inject_json(scenario));
        } else if (stage == "attack") {
            subset = subset_hash(circuit_full_json(scenario));
        } else {
            return "";
        }
        return subset + ":s" + std::to_string(scenario.params.seed) + ":" +
               std::string(stage);
    }
    if (stage == "pin-search") {
        subset = subset_hash(pin_search_json(scenario));
    } else if (stage == "synthesize") {
        subset = subset_hash(synthesize_json(scenario));
    } else if (stage == "camo-cover") {
        subset = subset_hash(camo_cover_json(scenario));
    } else if (stage == "validate") {
        // Validation has no knobs of its own beyond the covered netlist.
        subset = subset_hash(camo_cover_json(scenario));
    } else if (stage == "attack") {
        subset = subset_hash(full_json(scenario));
    } else {
        return "";  // custom stages opt into caching by name, not by default
    }
    return subset + ":s" + std::to_string(scenario.params.seed) + ":" +
           std::string(stage);
}

}  // namespace mvf::flow
