#pragma once
// Serializable stage I/O: FlowContext snapshots for the stage-result cache.
//
// A snapshot captures everything the pipeline has computed so far -- the
// FlowResult scalars, the GA result, the synthesized and camouflaged
// netlists, the attack reports -- as one report::Json document.  Snapshots
// are taken after each completed stage and restored before skipping the
// stages a cache hit covers, so a re-submitted scenario re-runs only the
// stages whose parameters changed (see flow/spec_hash.hpp for the keys).
//
// Bit-identity: report::Json emits doubles with %.17g (exact round-trip)
// and integral values without a fractional part, so a restored context is
// value-identical to the one snapshotted -- cached and fresh runs produce
// byte-identical reports.
//
// Not captured: FlowResult::oracle_attack (the typed legacy CEGAR result;
// its uniform counterpart in attack_reports IS captured) and the latency
// histograms' raw buckets beyond what AdversaryReport serializes.
// ctx.best_spec is not serialized either -- SynthesizeStage constructs it
// deterministically from (functions, ga.best), and restore does the same.

#include "camo/camo_netlist.hpp"
#include "flow/pipeline.hpp"
#include "map/netlist.hpp"
#include "report/json.hpp"

namespace mvf::flow {

/// Mapped-netlist round-trip (library comes from the caller: netlists only
/// store cell ids, which are stable for the standard libraries).
report::Json netlist_to_json(const tech::Netlist& n);
tech::Netlist netlist_from_json(const report::Json& j,
                                tech::GateLibrary library);

report::Json camo_netlist_to_json(const camo::CamoNetlist& n);
camo::CamoNetlist camo_netlist_from_json(const report::Json& j,
                                         camo::CamoLibrary library);

/// Serializes everything stages have produced in `ctx` so far.
report::Json snapshot_context(const FlowContext& ctx);

/// Inverse of snapshot_context: overwrites ctx->result (and re-derives
/// ctx->best_spec when the snapshot was taken at or after SynthesizeStage).
/// Throws report::JsonError on malformed snapshots.
void restore_context(const report::Json& snapshot, FlowContext* ctx);

}  // namespace mvf::flow
