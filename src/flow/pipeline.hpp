#pragma once
// Composable experiment pipeline over the paper's multi-phase flow.
//
// ObfuscationFlow::run used to hard-code merge -> GA -> camouflage ->
// validate as one monolith; this header breaks it into typed, individually
// invokable stages threaded through a FlowContext (shared synthesis caches,
// seeding, deadline/cancellation, progress reporting).  A Pipeline is just
// an ordered stage list: the default one (`Pipeline::standard`) reproduces
// ObfuscationFlow::run bit-for-bit (tests/test_pipeline.cpp holds the
// fixed-seed differential proof), while bespoke experiments compose their
// own -- rerun only the attack stage, skip validation, insert a custom
// stage between covering and attack, and so on.
//
// Stage order of the standard pipeline:
//   PinSearchStage   Phase II: GA over pin assignments + the equal-budget
//                    random baseline
//   SynthesizeStage  Phase I for the GA winner at final effort
//   CamoCoverStage   Phase III: Algorithm-1 camouflage covering
//   ValidateStage    ModelSim-substitute configuration replay
//   AttackStage      red team: any subset of registered attack::Adversary

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "flow/obfuscation_flow.hpp"

namespace mvf::flow {

/// Cooperative cancellation handle.  Copies share one flag, so a driver
/// can hand the token to a pipeline and cancel from another thread.
class CancelToken {
public:
    CancelToken();
    void cancel();
    bool cancelled() const;

private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

/// Emitted after each completed stage, and once with completed=false naming
/// the first stage NOT run when cancellation or the deadline cuts the
/// pipeline short (so a progress consumer always sees how a run ended).
struct StageEvent {
    std::string_view stage;
    int index = 0;  ///< 0-based position in the pipeline
    int total = 0;  ///< stages in the pipeline
    double seconds = 0.0;
    bool completed = true;  ///< false on the final cut-short event
    /// The stage was skipped via a stage-store hit (its snapshot was
    /// restored instead of running it); seconds is 0.
    bool cached = false;
};

using ProgressFn = std::function<void(const StageEvent&)>;

/// Stage-result cache interface.  Pipeline::run consults it before running
/// (deepest hit wins -- stages up to the hit restore from the snapshot) and
/// stores a fresh snapshot after each completed stage.  Implementations
/// must be safe for concurrent calls from multiple scenario runs (the
/// serve scheduler shares one store across jobs); see serve::StageCache.
class StageStore {
public:
    virtual ~StageStore() = default;
    /// Fills *out and returns true when `key` is present.
    virtual bool load(const std::string& key, report::Json* out) = 0;
    virtual void store(const std::string& key,
                       const report::Json& snapshot) = 0;
};

/// Everything a stage may read or extend.  One context corresponds to one
/// scenario run; the referenced ObfuscationFlow owns the memoized
/// synthesis/matching caches and may be shared across sequential runs.
struct FlowContext {
    FlowContext(ObfuscationFlow& engine,
                const std::vector<ViableFunction>& functions,
                FlowParams params);

    ObfuscationFlow* flow;
    const std::vector<ViableFunction>* functions;
    FlowParams params;

    CancelToken cancel;
    /// Soft deadline checked between stages (a running stage finishes).
    std::optional<std::chrono::steady_clock::time_point> deadline;
    /// Optional; called after every completed stage, plus a final
    /// completed=false event when the run is cut short (see StageEvent).
    ProgressFn progress;

    /// Optional stage-result cache.  Active only when BOTH are set:
    /// stage_key maps a stage name to its cache key (flow::stage_cache_key
    /// bound to the scenario; "" = never cache that stage), stage_store
    /// holds the snapshots.  Not owned.
    StageStore* stage_store = nullptr;
    std::function<std::string(std::string_view)> stage_key;

    /// Set by SynthesizeStage: the merged specification of the selected
    /// pin assignment (needed by validation and viable-set adversaries).
    std::optional<MergedSpec> best_spec;

    FlowResult result;

    /// Convenience: deadline = now + seconds.
    void set_timeout(double seconds);
    bool should_stop() const;
};

class Stage {
public:
    virtual ~Stage() = default;
    virtual std::string_view name() const = 0;
    virtual void run(FlowContext& ctx) = 0;
};

/// Circuit scenarios (params.circuit.path): loads the benchmark file and
/// technology-maps it onto the flow's gate library (io/import.hpp).  Fills
/// result.synthesized; replaces PinSearch/Synthesize.
class ImportStage final : public Stage {
public:
    std::string_view name() const override { return "import"; }
    void run(FlowContext& ctx) override;
};

/// Circuit scenarios: camouflages a seeded fraction of the imported
/// netlist's cells (camo::inject), filling result.camouflaged and
/// result.fixed_nominal; replaces CamoCoverStage.
class InjectStage final : public Stage {
public:
    std::string_view name() const override { return "camo-inject"; }
    void run(FlowContext& ctx) override;
};

/// Phase II: genetic pin-assignment search, plus the equal-budget random
/// baseline when params.run_random_baseline.
class PinSearchStage final : public Stage {
public:
    std::string_view name() const override { return "pin-search"; }
    void run(FlowContext& ctx) override;
};

/// Phase I for the selected assignment at final effort.  Falls back to the
/// identity assignment when no pin search ran (standalone invocation).
class SynthesizeStage final : public Stage {
public:
    std::string_view name() const override { return "synthesize"; }
    void run(FlowContext& ctx) override;
};

/// Phase III: camouflage covering of the synthesized netlist.
class CamoCoverStage final : public Stage {
public:
    std::string_view name() const override { return "camo-cover"; }
    void run(FlowContext& ctx) override;
};

/// Replays every select code's dopant configuration in simulation.
class ValidateStage final : public Stage {
public:
    std::string_view name() const override { return "validate"; }
    void run(FlowContext& ctx) override;
};

/// Runs the named adversaries from attack::AdversaryRegistry against the
/// camouflaged netlist (hidden configuration = select code 0).  Requires
/// CamoCoverStage output: configuring an attack without camouflage mapping
/// is a contradiction and fails fast with std::invalid_argument (it used
/// to be silently skipped).
class AttackStage final : public Stage {
public:
    explicit AttackStage(std::vector<std::string> adversaries = {"cegar"})
        : adversaries_(std::move(adversaries)) {}

    std::string_view name() const override { return "attack"; }
    void run(FlowContext& ctx) override;

    const std::vector<std::string>& adversaries() const { return adversaries_; }

private:
    std::vector<std::string> adversaries_;
};

/// Outcome of Pipeline::run.
struct PipelineStatus {
    bool completed = true;  ///< false when cancellation/deadline stopped it
    int stages_run = 0;
    /// Stages skipped by restoring a stage-store snapshot (they precede
    /// every stage counted in stages_run).
    int stages_cached = 0;
    /// Name of the first stage NOT run (empty when completed).
    std::string stopped_before;
};

class Pipeline {
public:
    Pipeline() = default;

    /// Appends a stage; returns *this for chaining.
    Pipeline& add(std::unique_ptr<Stage> stage);

    /// Convenience: emplace a stage of type S.
    template <typename S, typename... Args>
    Pipeline& add_stage(Args&&... args) {
        return add(std::make_unique<S>(std::forward<Args>(args)...));
    }

    int num_stages() const { return static_cast<int>(stages_.size()); }
    const Stage& stage(int i) const { return *stages_[static_cast<std::size_t>(i)]; }

    /// Runs the stages in order, honoring ctx.cancel/ctx.deadline between
    /// stages and reporting ctx.progress after each.
    PipelineStatus run(FlowContext& ctx) const;

    /// The staged equivalent of ObfuscationFlow::run for `params`:
    /// pin-search + synthesize always; camo-cover when run_camo_mapping;
    /// validate when additionally params.verify; attack when
    /// params.run_oracle_attack or params.adversaries is non-empty (the
    /// explicit list wins, default {"cegar"}).
    ///
    /// When params.circuit.path is set the subject comes from a file
    /// instead: import + (camo-inject when run_camo_mapping) + attack.
    static Pipeline standard(const FlowParams& params);

private:
    std::vector<std::unique_ptr<Stage>> stages_;
};

}  // namespace mvf::flow
