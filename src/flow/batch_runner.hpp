#pragma once
// Parallel batch execution of independent flow scenarios.
//
// A Scenario names a viable-function set (S-box family x merge width), the
// FlowParams to run it under, and a seed; BatchRunner executes N scenarios
// on a util::ThreadPool with one isolated FlowContext + ObfuscationFlow
// (i.e. private synthesis caches) per scenario, so results are bit-identical
// regardless of --jobs and scheduling order.  Each scenario yields a
// structured ScenarioRecord that serializes to JSON (report::JsonWriter),
// the machine-readable counterpart of the benches' CSV.
//
// Scenario specs are plain text so new workloads need zero C++ (consumed by
// `mvf batch`, documented in the README):
//
//   # one scenario per line; '#' starts a comment
//   name=p4 funcs=present:4 seed=3 population=8 generations=4 attack=cegar
//   funcs=des:2 seed=7 attack=cegar,plausibility camo=1 baseline=0

#include <string>
#include <vector>

#include "flow/pipeline.hpp"
#include "report/json.hpp"

namespace mvf::flow {

/// One independent experiment: function set x params x seed.
struct Scenario {
    std::string name;          ///< defaults to "<family><n>-s<seed>"
    std::string family = "present";  ///< "present" or "des"
    int n = 2;                 ///< merge width (viable functions)
    FlowParams params;
};

/// Builds the scenario's viable-function set; throws std::invalid_argument
/// on an unknown family or out-of-range width.
std::vector<ViableFunction> scenario_functions(const Scenario& scenario);

/// Parses the spec format above; throws std::invalid_argument with a line
/// number on malformed input.  Recognized keys: name, funcs=family:n,
/// circuit=PATH (file-based scenario: import a BLIF/AIGER/.bench circuit
/// instead of merging viable functions; mutually exclusive with funcs and
/// with the S-box-flow keys population/generations/baseline/verify/
/// final_best) with camo_density ((0,1]), camo_cells (>= 1, excludes
/// camo_density), camo_seed (0 = scenario seed) and
/// camo_policy=random|fanout|depth, seed,
/// population, generations, attack (comma-separated adversaries or "none"),
/// baseline, camo, verify, final_best (0/1 flags),
/// count_mode=exact|approx|enumerate, count_cache_mb (exact),
/// epsilon/delta (approx), max_survivors (enumerate; implies it when no
/// count_mode is named), enum_survivors, preprocess, shared_miter,
/// canonical_inputs, and the oracle threat-model keys query_budget (> 0),
/// oracle_noise ([0, 1)), oracle_cache, save_transcript/replay_transcript/
/// emit_proof (file paths; emit_proof writes a verifiable
/// audit::AttackProof for the CEGAR run), neighborhood_queries (bit-flip
/// neighbors queried per distinguishing input), random_warmup,
/// random_queries, metrics (0/1: per-attack latency histograms in the
/// report).  Contradictory keys (e.g. epsilon with count_mode=enumerate,
/// oracle_noise with replay_transcript, or emit_proof with a portfolio
/// attack) are rejected, not ignored.
std::vector<Scenario> parse_scenario_spec(const std::string& text);

/// parse_scenario_spec over a file's contents.
std::vector<Scenario> load_scenario_spec(const std::string& path);

/// Outcome of one scenario (always produced; `ok` distinguishes results
/// from failures so one bad scenario cannot sink a batch).
struct ScenarioRecord {
    int index = 0;  ///< position in the input batch
    std::string name;
    std::string family;
    int n = 0;
    std::uint64_t seed = 0;
    bool ok = false;
    /// "ok", "error" (exception; text in `error`), or "cancelled" (the
    /// run's cancel token fired or its deadline passed mid-pipeline).
    std::string status;
    std::string error;  ///< exception text when !ok
    /// Canonical spec hash (flow::spec_hash) -- provenance for archived
    /// reports; also stamped into each attack report.
    std::string spec_hash;
    /// Pipeline stages restored from the stage-result cache (0 = fresh run).
    int cache_hits = 0;
    double seconds = 0.0;

    // Flow summary (Table-I shaped).
    double random_avg = 0.0;
    double random_best = 0.0;
    double ga_area = 0.0;
    double ga_tm_area = 0.0;
    double improvement_percent = 0.0;
    bool verified = false;
    int camo_cells = 0;
    double config_space_bits = 0.0;

    std::vector<attack::AdversaryReport> attacks;

    report::Json to_json() const;
};

/// External wiring for one scenario run (all optional).  BatchRunner uses
/// it internally; the serve scheduler passes its own cancel token, deadline
/// and shared stage cache.
struct ScenarioRunHooks {
    /// Cooperative cancellation (copies share the flag; see CancelToken).
    std::optional<CancelToken> cancel;
    /// Soft deadline checked between pipeline stages.
    std::optional<std::chrono::steady_clock::time_point> deadline;
    /// Per-stage progress (also receives cache-hit events).
    ProgressFn progress;
    /// Shared stage-result cache; keys come from flow::stage_cache_key for
    /// the scenario being run.  Not owned.
    StageStore* stage_store = nullptr;
};

/// Runs one scenario in isolation (private ObfuscationFlow => private
/// synthesis caches): the unit both BatchRunner and the serve scheduler
/// execute.  Never throws -- failures and cancellation are captured in the
/// record's status/error fields.
ScenarioRecord run_scenario(const Scenario& scenario, int index,
                            const ScenarioRunHooks& hooks = {});

struct BatchParams {
    /// Worker threads; 1 = serial in the calling thread.
    int jobs = 1;
    /// Per-scenario progress line on stderr.
    bool verbose = false;
    /// Heartbeat period for the trace's "batch-progress" counter stream
    /// (completed/total scenario counts -- the NDJSON progress records a
    /// future `mvf serve` will reuse).  Only active while a trace sink is
    /// installed; 0 disables.
    int heartbeat_ms = 1000;
};

class BatchRunner {
public:
    explicit BatchRunner(BatchParams params = {}) : params_(params) {}

    /// Runs every scenario; records come back in input order.  Scenario
    /// failures are captured in their record, never thrown.
    std::vector<ScenarioRecord> run(const std::vector<Scenario>& scenarios) const;

private:
    BatchParams params_;
};

/// Wraps records as the batch report document: {"scenarios": [...],
/// "total_seconds": ..., "failures": ...}.
report::Json batch_report(const std::vector<ScenarioRecord>& records,
                          double total_seconds);

}  // namespace mvf::flow
