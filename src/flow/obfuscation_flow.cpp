#include "flow/obfuscation_flow.hpp"

#include <cassert>

#include "sim/netlist_sim.hpp"

namespace mvf::flow {

using logic::TruthTable;

ObfuscationFlow::ObfuscationFlow(tech::GateLibrary library)
    : match_cache_(library),
      camo_lib_(camo::CamoLibrary::from_gate_library(library)) {}

tech::Netlist ObfuscationFlow::synthesize(const MergedSpec& spec,
                                          synth::Effort effort,
                                          const tech::TechMapParams& map_params,
                                          BuildStyle style) {
    net::Aig aig = spec.build_aig(style);
    synth::optimize(&aig, synth_ctx_, effort);
    return tech::tech_map(aig, match_cache_, map_params, spec.pi_names(),
                          spec.pi_select_flags());
}

tech::Netlist ObfuscationFlow::synthesize_best(
    const MergedSpec& spec, synth::Effort effort,
    const tech::TechMapParams& map_params) {
    tech::Netlist factored =
        synthesize(spec, effort, map_params, BuildStyle::kFactored);
    tech::Netlist shared =
        synthesize(spec, effort, map_params, BuildStyle::kSharedExtract);
    return shared.area() < factored.area() ? std::move(shared)
                                           : std::move(factored);
}

double ObfuscationFlow::evaluate_area(const std::vector<ViableFunction>& functions,
                                      const ga::PinAssignment& assignment,
                                      synth::Effort effort, BuildStyle style) {
    const MergedSpec spec(functions, assignment);
    return synthesize(spec, effort, {}, style).area();
}

FlowResult ObfuscationFlow::run(const std::vector<ViableFunction>& functions,
                                const FlowParams& params) {
    FlowResult result;
    const int n = static_cast<int>(functions.size());
    const int m = functions.front().num_inputs;
    const int r = functions.front().num_outputs;

    const ga::FitnessFn fitness = [&](const ga::PinAssignment& pa) {
        return evaluate_area(functions, pa, params.fitness_effort,
                             params.fitness_build);
    };

    // Phase II: genetic algorithm.
    ga::GaParams ga_params = params.ga;
    ga_params.seed = params.seed;
    result.ga = ga::run_ga(n, m, r, fitness, ga_params);

    // Equal-budget random baseline (Fig. 4a / Table I "Random" columns).
    if (params.run_random_baseline) {
        const int count = params.random_count > 0
                              ? params.random_count
                              : result.ga.history.evaluations;
        const ga::RandomSearchResult rs =
            random_search(n, m, r, fitness, count, params.seed ^ 0xabcdef12345ull);
        result.random_avg = rs.avg_area;
        result.random_best = rs.best_area;
        result.random_areas = rs.all_areas;
    }

    // Final synthesis of the GA winner at higher effort.
    const MergedSpec best_spec(functions, result.ga.best);
    tech::Netlist mapped =
        params.final_best_of_builds
            ? synthesize_best(best_spec, params.final_effort, params.map)
            : synthesize(best_spec, params.final_effort, params.map,
                         params.fitness_build);
    result.ga_area = mapped.area();
    // The paper reports the GA column from synthesis; keep the smaller of
    // fitness-effort and final-effort areas as "GA".
    result.ga_area = std::min(result.ga_area, result.ga.best_area);

    // Phase III: camouflage covering (Algorithm 1).
    if (params.run_camo_mapping) {
        camo::CamoMapResult cm = camo::camo_map(mapped, camo_lib_, n, params.camo);
        result.ga_tm_area = cm.stats.area;
        result.camo_stats = cm.stats;
        if (params.verify) {
            result.verified = verify_configurations(best_spec, cm.netlist);
        }
        if (params.run_oracle_attack) {
            attack::SimOracle oracle(cm.netlist,
                                     cm.netlist.configuration_for_code(0));
            result.oracle_attack =
                attack::oracle_attack(cm.netlist, oracle, params.oracle);
        }
        result.camouflaged = std::move(cm.netlist);
    }
    result.synthesized = std::move(mapped);
    return result;
}

bool ObfuscationFlow::verify_configurations(const MergedSpec& spec,
                                            const camo::CamoNetlist& netlist) {
    for (int code = 0; code < spec.num_functions(); ++code) {
        const std::vector<int> config = netlist.configuration_for_code(code);
        const std::vector<TruthTable> got =
            sim::simulate_camo_full(netlist, config);
        const std::vector<TruthTable> expected =
            spec.expected_outputs_for_code(code);
        if (got.size() != expected.size()) return false;
        for (std::size_t q = 0; q < got.size(); ++q) {
            if (got[q] != expected[q]) return false;
        }
    }
    return true;
}

}  // namespace mvf::flow
