#include "flow/obfuscation_flow.hpp"

#include <cassert>

#include "flow/pipeline.hpp"
#include "sim/netlist_sim.hpp"

namespace mvf::flow {

using logic::TruthTable;

ObfuscationFlow::ObfuscationFlow(tech::GateLibrary library)
    : match_cache_(library),
      camo_lib_(camo::CamoLibrary::from_gate_library(library)) {}

tech::Netlist ObfuscationFlow::synthesize(const MergedSpec& spec,
                                          synth::Effort effort,
                                          const tech::TechMapParams& map_params,
                                          BuildStyle style) {
    net::Aig aig = spec.build_aig(style);
    synth::optimize(&aig, synth_ctx_, effort);
    return tech::tech_map(aig, match_cache_, map_params, spec.pi_names(),
                          spec.pi_select_flags());
}

tech::Netlist ObfuscationFlow::synthesize_best(
    const MergedSpec& spec, synth::Effort effort,
    const tech::TechMapParams& map_params) {
    tech::Netlist factored =
        synthesize(spec, effort, map_params, BuildStyle::kFactored);
    tech::Netlist shared =
        synthesize(spec, effort, map_params, BuildStyle::kSharedExtract);
    return shared.area() < factored.area() ? std::move(shared)
                                           : std::move(factored);
}

double ObfuscationFlow::evaluate_area(const std::vector<ViableFunction>& functions,
                                      const ga::PinAssignment& assignment,
                                      synth::Effort effort, BuildStyle style) {
    const MergedSpec spec(functions, assignment);
    return synthesize(spec, effort, {}, style).area();
}

FlowResult ObfuscationFlow::run(const std::vector<ViableFunction>& functions,
                                const FlowParams& params) {
    // Thin compatibility wrapper over the staged pipeline (flow/pipeline.hpp);
    // tests/test_pipeline.cpp proves the results are identical at fixed seed.
    FlowContext ctx(*this, functions, params);
    Pipeline::standard(params).run(ctx);
    return std::move(ctx.result);
}

bool ObfuscationFlow::verify_configurations(const MergedSpec& spec,
                                            const camo::CamoNetlist& netlist) {
    for (int code = 0; code < spec.num_functions(); ++code) {
        const std::vector<int> config = netlist.configuration_for_code(code);
        const std::vector<TruthTable> got =
            sim::simulate_camo_full(netlist, config);
        const std::vector<TruthTable> expected =
            spec.expected_outputs_for_code(code);
        if (got.size() != expected.size()) return false;
        for (std::size_t q = 0; q < got.size(); ++q) {
            if (got[q] != expected[q]) return false;
        }
    }
    return true;
}

}  // namespace mvf::flow
