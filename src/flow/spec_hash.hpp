#pragma once
// Deterministic canonical scenario hashing.
//
// Two scenario specs that mean the same experiment must hash identically
// no matter how they were spelled (key order in the spec line, defaults
// written out vs. omitted), and any semantic change -- a different seed, a
// GA knob, an oracle budget -- must change the hash.  The canonical form is
// a JSON object with every semantically relevant parameter materialized
// (defaults included) and keys recursively sorted; the hash is FNV-1a over
// its compact dump.
//
// Uses:
//   * provenance: every ScenarioRecord and AdversaryReport carries
//     `spec_hash`, so archived reports state exactly which experiment
//     produced them;
//   * the serve stage-result cache: keys are (stage-subset hash, seed,
//     stage), where the subset covers only the parameters that influence
//     the pipeline up to and including that stage -- so re-submitting a
//     sweep with only attack knobs changed re-uses the synthesized and
//     camouflaged netlists and re-runs just the attack.
//
// Deliberately EXCLUDED from the canonical form: the scenario `name`
// (cosmetic), `save_transcript` and `oracle_model.record` (observational
// side effects that do not alter results), and `ga.seed` (dead: the
// pipeline overrides it with the scenario seed).  `replay_transcript` IS
// included -- replaying changes results -- but a scenario naming transcript
// files is never stage-cached (the cache cannot see the file contents).
//
// Circuit scenarios (`circuit=PATH`) hash the referenced file's CONTENTS
// (SHA-256 of its bytes) into every subset, so editing the benchmark on
// disk changes the spec hash and invalidates stage-cache entries instead
// of warm-hitting stale snapshots.

#include <string>
#include <string_view>

#include "flow/batch_runner.hpp"
#include "report/json.hpp"

namespace mvf::flow {

/// Bump when the canonical form or the stage-snapshot serialization
/// changes shape: it is folded into every hash, so stale spill-directory
/// entries from older builds miss instead of deserializing garbage.
inline constexpr int kSpecSchemaVersion = 1;

/// Full canonical form (keys sorted, defaults materialized, seed included).
report::Json canonical_spec_json(const Scenario& scenario);

/// 16-hex-digit FNV-1a of canonical_spec_json's compact dump.
std::string spec_hash(const Scenario& scenario);

/// Cache key "<subset-hash>:s<seed>:<stage>" for one pipeline stage, where
/// the subset hash covers exactly the parameters stages up to and
/// including `stage` consume.  Returns "" (do not cache) for unknown stage
/// names and for scenarios whose results depend on state outside the spec
/// (transcript record/replay files).
std::string stage_cache_key(const Scenario& scenario, std::string_view stage);

}  // namespace mvf::flow
