#include "flow/pipeline.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "audit/attack_proof.hpp"
#include "camo/inject.hpp"
#include "flow/stage_io.hpp"
#include "io/import.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace mvf::flow {

CancelToken::CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

void CancelToken::cancel() { flag_->store(true, std::memory_order_relaxed); }

bool CancelToken::cancelled() const {
    return flag_->load(std::memory_order_relaxed);
}

FlowContext::FlowContext(ObfuscationFlow& engine,
                         const std::vector<ViableFunction>& fns,
                         FlowParams p)
    : flow(&engine), functions(&fns), params(std::move(p)) {
    // Circuit scenarios carry no viable functions -- the subject is a file.
    if (fns.empty() && params.circuit.path.empty()) {
        throw std::invalid_argument("FlowContext: empty viable-function set");
    }
}

void ImportStage::run(FlowContext& ctx) {
    const io::ImportedCircuit circuit =
        io::load_circuit(ctx.params.circuit.path);
    tech::Netlist mapped = io::import_netlist(
        circuit, ctx.flow->gate_library(), ctx.params.map);
    ctx.result.ga_area = mapped.area();
    ctx.result.synthesized = std::move(mapped);
}

void InjectStage::run(FlowContext& ctx) {
    if (!ctx.result.synthesized) {
        throw std::logic_error(
            "InjectStage: no imported netlist in the context (run "
            "ImportStage first)");
    }
    const CircuitParams& cp = ctx.params.circuit;
    camo::InjectParams inject_params;
    inject_params.density = cp.camo_density;
    inject_params.cells = cp.camo_cells;
    inject_params.seed = cp.camo_seed != 0 ? cp.camo_seed : ctx.params.seed;
    if (!camo::inject_policy_from_name(cp.camo_policy,
                                       &inject_params.policy)) {
        throw std::invalid_argument(
            "InjectStage: unknown camouflage policy \"" + cp.camo_policy +
            "\" (expected random, fanout or depth)");
    }
    camo::InjectResult injected = camo::inject(
        *ctx.result.synthesized, ctx.flow->camo_library(), inject_params);
    ctx.result.ga_tm_area = injected.stats.area;
    ctx.result.camo_stats = injected.stats;
    ctx.result.camouflaged = std::move(injected.netlist);
    ctx.result.fixed_nominal = std::move(injected.fixed_nominal);
}

void FlowContext::set_timeout(double seconds) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(seconds));
}

bool FlowContext::should_stop() const {
    if (cancel.cancelled()) return true;
    return deadline && std::chrono::steady_clock::now() >= *deadline;
}

void PinSearchStage::run(FlowContext& ctx) {
    const std::vector<ViableFunction>& functions = *ctx.functions;
    const int n = static_cast<int>(functions.size());
    const int m = functions.front().num_inputs;
    const int r = functions.front().num_outputs;

    const ga::FitnessFn fitness = [&](const ga::PinAssignment& pa) {
        return ctx.flow->evaluate_area(functions, pa, ctx.params.fitness_effort,
                                       ctx.params.fitness_build);
    };

    ga::GaParams ga_params = ctx.params.ga;
    ga_params.seed = ctx.params.seed;
    ctx.result.ga = ga::run_ga(n, m, r, fitness, ga_params);

    if (ctx.params.run_random_baseline) {
        const int count = ctx.params.random_count > 0
                              ? ctx.params.random_count
                              : ctx.result.ga.history.evaluations;
        const ga::RandomSearchResult rs = random_search(
            n, m, r, fitness, count, ctx.params.seed ^ 0xabcdef12345ull);
        ctx.result.random_avg = rs.avg_area;
        ctx.result.random_best = rs.best_area;
        ctx.result.random_areas = rs.all_areas;
    }
}

void SynthesizeStage::run(FlowContext& ctx) {
    const std::vector<ViableFunction>& functions = *ctx.functions;
    // Standalone invocation (no pin search): the identity assignment.
    // (A default-constructed PinAssignment is empty, which valid() accepts
    // vacuously -- hence the function-count check.)
    const int n = static_cast<int>(functions.size());
    if (ctx.result.ga.best.num_functions() != n || !ctx.result.ga.best.valid()) {
        ctx.result.ga.best = ga::PinAssignment::identity(
            n, functions.front().num_inputs, functions.front().num_outputs);
    }

    ctx.best_spec.emplace(functions, ctx.result.ga.best);
    tech::Netlist mapped =
        ctx.params.final_best_of_builds
            ? ctx.flow->synthesize_best(*ctx.best_spec, ctx.params.final_effort,
                                        ctx.params.map)
            : ctx.flow->synthesize(*ctx.best_spec, ctx.params.final_effort,
                                   ctx.params.map, ctx.params.fitness_build);
    ctx.result.ga_area = mapped.area();
    // The paper reports the GA column from synthesis; keep the smaller of
    // fitness-effort and final-effort areas as "GA" (when a search ran).
    if (ctx.result.ga.best_area > 0.0) {
        ctx.result.ga_area = std::min(ctx.result.ga_area, ctx.result.ga.best_area);
    }
    ctx.result.synthesized = std::move(mapped);
}

void CamoCoverStage::run(FlowContext& ctx) {
    if (!ctx.result.synthesized) {
        throw std::logic_error(
            "CamoCoverStage: no synthesized netlist in the context (run "
            "SynthesizeStage first)");
    }
    const int n = static_cast<int>(ctx.functions->size());
    camo::CamoMapResult cm = camo::camo_map(
        *ctx.result.synthesized, ctx.flow->camo_library(), n, ctx.params.camo);
    ctx.result.ga_tm_area = cm.stats.area;
    ctx.result.camo_stats = cm.stats;
    ctx.result.camouflaged = std::move(cm.netlist);
}

void ValidateStage::run(FlowContext& ctx) {
    if (!ctx.result.camouflaged || !ctx.best_spec) {
        throw std::logic_error(
            "ValidateStage: needs a camouflaged netlist and its merged "
            "specification (run SynthesizeStage and CamoCoverStage first)");
    }
    ctx.result.verified = ObfuscationFlow::verify_configurations(
        *ctx.best_spec, *ctx.result.camouflaged);
}

namespace {

attack::OracleTranscript load_transcript(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw std::invalid_argument("cannot open replay transcript: " + path);
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        // Strict: a transcript with duplicate keys would replay different
        // content than another parser sees -- reject instead of last-wins.
        return attack::OracleTranscript::from_json(
            report::Json::parse_strict(text.str()));
    } catch (const report::JsonError& e) {
        throw std::invalid_argument("malformed replay transcript " + path +
                                    ": " + e.what());
    }
}

}  // namespace

void AttackStage::run(FlowContext& ctx) {
    if (!ctx.result.camouflaged) {
        throw std::invalid_argument(
            "AttackStage: no camouflaged netlist to attack -- the flow was "
            "configured with run_camo_mapping=false (or CamoCoverStage was "
            "not run).  Enable camouflage mapping or drop the attack stage; "
            "this combination used to be silently ignored.");
    }
    const camo::CamoNetlist& netlist = *ctx.result.camouflaged;

    if (!ctx.params.emit_proof.empty()) {
        // Harnesses reject these combinations at parse time; API users get
        // the same contract here.
        if (!ctx.params.replay_transcript.empty()) {
            throw std::invalid_argument(
                "AttackStage: emit_proof cannot be combined with "
                "replay_transcript -- a replayed run has no chip to commit "
                "for");
        }
        const int members =
            ctx.params.oracle.portfolio > 0
                ? ctx.params.oracle.portfolio
                : std::max(1, ctx.params.oracle.attack_threads);
        if (members > 1) {
            throw std::invalid_argument(
                "AttackStage: emit_proof requires a serial CEGAR attack -- "
                "portfolio members' queries interleave into a sequence no "
                "transcript can replay");
        }
        if (std::find(adversaries_.begin(), adversaries_.end(), "cegar") ==
            adversaries_.end()) {
            throw std::invalid_argument(
                "AttackStage: emit_proof requires the cegar adversary in "
                "the panel");
        }
    }

    attack::AdversaryOptions options;
    options.oracle = ctx.params.oracle;
    options.random_queries = ctx.params.random_queries;
    options.random_seed = ctx.params.seed;
    // Circuit scenarios: the attacker knows which cells were NOT
    // camouflaged (they are ordinary gates under any imaging attack).
    if (!ctx.result.fixed_nominal.empty()) {
        options.oracle.fixed_nominal = &ctx.result.fixed_nominal;
    }

    std::optional<attack::OracleTranscript> replay;
    if (!ctx.params.replay_transcript.empty()) {
        replay = load_transcript(ctx.params.replay_transcript);
    }

    // The proof artifact embeds (and its commitment chain binds) the
    // netlist snapshot, so serialize it once up front.
    std::optional<report::Json> netlist_snapshot;
    if (!ctx.params.emit_proof.empty()) {
        netlist_snapshot = camo_netlist_to_json(netlist);
    }

    attack::SimOracle chip(netlist, netlist.configuration_for_code(0));
    for (const std::string& name : adversaries_) {
        // Per-adversary span: progress is visible DURING the attack stage,
        // not just in the after-the-fact stage event.
        report::Json adv_args;
        if (obs::tracing()) {
            adv_args = report::Json::object();
            adv_args.set("adversary", name);
        }
        obs::Span adv_span("adversary", "flow", std::move(adv_args));
        std::unique_ptr<attack::Adversary> adversary =
            attack::AdversaryRegistry::instance().create(name, options);
        // The per-code truth-table extraction is only paid when a
        // viable-set adversary is actually in the panel (and only once).
        if (adversary->knowledge() == attack::Knowledge::kViableSet &&
            options.viable_targets.empty()) {
            if (!ctx.best_spec) {
                throw std::invalid_argument(
                    "AttackStage: adversary \"" + name +
                    "\" needs the viable-function set, which circuit "
                    "scenarios do not have -- pick oracle-granted "
                    "adversaries (e.g. cegar, random-sampling)");
            }
            for (int code = 0; code < ctx.best_spec->num_functions(); ++code) {
                options.viable_targets.push_back(
                    ctx.best_spec->expected_outputs_for_code(code));
            }
            adversary = attack::AdversaryRegistry::instance().create(name, options);
        }
        const bool grant_oracle =
            adversary->knowledge() == attack::Knowledge::kWorkingChip;
        if (!grant_oracle) {
            ctx.result.attack_reports.push_back(
                adversary->attack(netlist, nullptr));
            continue;
        }
        // A fresh decorator stack per adversary keeps accounting, budget
        // and transcript per-attack instead of smeared across the panel.
        const bool prove_this = !ctx.params.emit_proof.empty() && name == "cegar";
        attack::OracleModelParams model = ctx.params.oracle_model;
        model.record =
            model.record || !ctx.params.save_transcript.empty() || prove_this;
        if (prove_this) {
            model.commit = true;
            model.commit_seed = ctx.params.seed;
            model.commit_context =
                audit::AttackProof::netlist_context(*netlist_snapshot);
        }
        if (replay) model.replay = &*replay;
        attack::OracleStack stack(model.replay ? nullptr : &chip, model);

        attack::AdversaryReport report = adversary->attack(netlist, &stack.top());
        report.oracle = stack.stats();
        if (prove_this) {
            const audit::CommittingOracle* committer = stack.committer();
            report.audit_merkle_root = committer->merkle_root();
            report.audit_committed = committer->committed();
            // options.oracle, not ctx.params.oracle: the proof's replay
            // parameters must include the fixed_nominal wiring above, or
            // chip-free verification would free every cell and diverge.
            ctx.result.attack_proof =
                audit::AttackProof::prove(*netlist_snapshot, report,
                                          *stack.recorded(), *committer,
                                          options.oracle)
                    .to_json();
        }
        ctx.result.attack_reports.push_back(std::move(report));

        // Portfolio runs record the WINNING member's transcript inside the
        // attack result; the stack-level recorder saw every member's
        // queries interleaved, which is not a replayable sequence.
        const attack::CegarAdversary* cegar =
            dynamic_cast<const attack::CegarAdversary*>(adversary.get());
        const attack::OracleTranscript* transcript =
            (cegar && cegar->last_result() && cegar->last_result()->winner >= 0)
                ? &cegar->last_result()->winner_transcript
                : stack.recorded();
        if (!ctx.params.save_transcript.empty() && transcript) {
            const report::JsonWriter writer(ctx.params.save_transcript);
            if (!writer.write(transcript->to_json())) {
                throw std::runtime_error("cannot write oracle transcript: " +
                                         ctx.params.save_transcript);
            }
        }
        // Keep the typed CEGAR result flowing into the legacy field.
        if (cegar) {
            ctx.result.oracle_attack = cegar->last_result();
        }
    }
}

Pipeline& Pipeline::add(std::unique_ptr<Stage> stage) {
    stages_.push_back(std::move(stage));
    return *this;
}

PipelineStatus Pipeline::run(FlowContext& ctx) const {
    PipelineStatus status;
    const int total = num_stages();
    int start = 0;
    if (ctx.stage_store && ctx.stage_key) {
        // Deepest hit wins: a snapshot taken after stage k contains the
        // output of every stage up to k, so one restore covers them all.
        for (int i = total - 1; i >= 0; --i) {
            const std::string key =
                ctx.stage_key(stages_[static_cast<std::size_t>(i)]->name());
            if (key.empty()) continue;
            report::Json snapshot;
            if (!ctx.stage_store->load(key, &snapshot)) continue;
            try {
                restore_context(snapshot, &ctx);
            } catch (const report::JsonError&) {
                // A corrupt snapshot (e.g. a truncated disk spill) misses
                // instead of sinking the run; shallower entries may still
                // hit.
                continue;
            }
            start = i + 1;
            status.stages_cached = start;
            for (int k = 0; k < start; ++k) {
                if (ctx.progress) {
                    ctx.progress(
                        StageEvent{stages_[static_cast<std::size_t>(k)]->name(),
                                   k, total, 0.0, true, true});
                }
            }
            if (obs::TraceSink* sink = obs::tracing()) {
                report::Json args = report::Json::object();
                args.set("stage",
                         std::string(
                             stages_[static_cast<std::size_t>(i)]->name()));
                args.set("key", key);
                args.set("stages_restored", start);
                sink->instant("stage-cache-hit", "flow", std::move(args));
            }
            break;
        }
    }
    for (int i = start; i < total; ++i) {
        Stage& stage = *stages_[static_cast<std::size_t>(i)];
        if (ctx.should_stop()) {
            status.completed = false;
            status.stopped_before = std::string(stage.name());
            // A cut-short run used to go silent here, breaking the "called
            // after every stage" progress contract; report the abort with
            // the stage that was cut, to the progress callback and trace.
            if (ctx.progress) {
                ctx.progress(StageEvent{stage.name(), i, total, 0.0, false});
            }
            if (obs::TraceSink* sink = obs::tracing()) {
                report::Json args = report::Json::object();
                args.set("stopped_before", std::string(stage.name()));
                args.set("stages_run", status.stages_run);
                sink->instant("pipeline-aborted", "flow", std::move(args));
            }
            return status;
        }
        util::Stopwatch sw;
        {
            obs::Span span(stage.name(), "flow");
            stage.run(ctx);
        }
        ++status.stages_run;
        if (ctx.stage_store && ctx.stage_key) {
            const std::string key = ctx.stage_key(stage.name());
            if (!key.empty()) {
                ctx.stage_store->store(key, snapshot_context(ctx));
            }
        }
        if (ctx.progress) {
            ctx.progress(StageEvent{stage.name(), i, total, sw.elapsed_seconds()});
        }
    }
    return status;
}

Pipeline Pipeline::standard(const FlowParams& params) {
    Pipeline p;
    if (!params.circuit.path.empty()) {
        p.add_stage<ImportStage>();
        if (params.run_camo_mapping) p.add_stage<InjectStage>();
        if (!params.adversaries.empty()) {
            p.add_stage<AttackStage>(params.adversaries);
        } else if (params.run_oracle_attack) {
            p.add_stage<AttackStage>();
        }
        return p;
    }
    p.add_stage<PinSearchStage>();
    p.add_stage<SynthesizeStage>();
    if (params.run_camo_mapping) {
        p.add_stage<CamoCoverStage>();
        if (params.verify) p.add_stage<ValidateStage>();
    }
    if (!params.adversaries.empty()) {
        p.add_stage<AttackStage>(params.adversaries);
    } else if (params.run_oracle_attack) {
        p.add_stage<AttackStage>();
    }
    return p;
}

}  // namespace mvf::flow
