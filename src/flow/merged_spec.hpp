#pragma once
// Phase I: the merged multi-function specification (paper Fig. 2).
//
// Given viable functions f0..f{n-1} (same input/output widths) and a pin
// assignment, the merged circuit shares its data inputs across all
// functions and appends ceil(log2 n) select inputs; output q carries, for
// select code k, the output of function k that the assignment routed to
// position q.  Codes >= n replicate function n-1 so the specification is
// completely defined (no don't-cares).  The AIG is built structurally --
// per-function factored-ISOP cones plus per-output mux trees -- mirroring
// the RTL the paper feeds to synthesis.

#include <string>
#include <vector>

#include "ga/genotype.hpp"
#include "logic/truth_table.hpp"
#include "net/aig.hpp"
#include "sbox/sbox.hpp"

namespace mvf::flow {

/// One viable function: output truth tables over its own inputs.
struct ViableFunction {
    std::string name;
    int num_inputs = 0;
    int num_outputs = 0;
    std::vector<logic::TruthTable> outputs;
};

ViableFunction from_sbox(const sbox::Sbox& s);
std::vector<ViableFunction> from_sboxes(const std::vector<sbox::Sbox>& s);

/// How the per-function cones of the merged AIG are constructed.
enum class BuildStyle {
    /// Independent factored-ISOP cones (the paper's per-function RTL).
    kFactored,
    /// Joint cover construction with cross-function shared-divisor
    /// extraction (fast_extract-style); wins on large merges where cubes
    /// of different functions share sub-products.
    kSharedExtract,
};

class MergedSpec {
public:
    /// ceil(log2 n); 0 for a single function.
    static int num_selects(int num_functions);

    MergedSpec(std::vector<ViableFunction> functions,
               ga::PinAssignment assignment);

    int num_functions() const { return static_cast<int>(functions_.size()); }
    int num_inputs() const { return functions_.front().num_inputs; }
    int num_outputs() const { return functions_.front().num_outputs; }
    int select_count() const { return num_selects(num_functions()); }

    const ga::PinAssignment& assignment() const { return assignment_; }
    const std::vector<ViableFunction>& functions() const { return functions_; }

    /// Structural merged AIG.  PI order: data inputs 0..m-1, then selects.
    net::Aig build_aig(BuildStyle style = BuildStyle::kFactored) const;

    /// Specification truth tables of each merged output over m+s variables
    /// (selects are the top s variables), for equivalence checking.
    std::vector<logic::TruthTable> reference_tts() const;

    /// What the camouflaged circuit must implement for select code k:
    /// merged output q as a function of the m data inputs.
    std::vector<logic::TruthTable> expected_outputs_for_code(int code) const;

    /// PI names ("i0".."i{m-1}", "sel0"..) and select flags for mapping.
    std::vector<std::string> pi_names() const;
    std::vector<bool> pi_select_flags() const;

private:
    std::vector<ViableFunction> functions_;
    ga::PinAssignment assignment_;
};

}  // namespace mvf::flow
