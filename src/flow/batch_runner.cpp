#include "flow/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <future>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "camo/inject.hpp"
#include "flow/spec_hash.hpp"
#include "obs/trace.hpp"
#include "sbox/sbox_data.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace mvf::flow {

namespace {

[[noreturn]] void spec_error(int line, const std::string& what) {
    throw std::invalid_argument("scenario spec line " + std::to_string(line) +
                                ": " + what);
}

bool parse_flag(const std::string& value, int line, const std::string& key) {
    if (value == "1" || value == "true") return true;
    if (value == "0" || value == "false") return false;
    spec_error(line, "flag " + key + " must be 0/1/true/false, got \"" + value +
                         "\"");
}

int parse_int(const std::string& value, int line, const std::string& key) {
    try {
        std::size_t used = 0;
        const int parsed = std::stoi(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        spec_error(line, key + " is not a number: \"" + value + "\"");
    }
}

std::uint64_t parse_u64(const std::string& value, int line,
                        const std::string& key) {
    try {
        std::size_t used = 0;
        const std::uint64_t parsed = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        spec_error(line, key + " is not a number: \"" + value + "\"");
    }
}

double parse_double(const std::string& value, int line,
                    const std::string& key) {
    try {
        std::size_t used = 0;
        const double parsed = std::stod(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        spec_error(line, key + " is not a number: \"" + value + "\"");
    }
}

std::vector<std::string> split_csv(const std::string& value) {
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(value);
    while (std::getline(in, item, ',')) {
        if (!item.empty()) out.push_back(item);
    }
    return out;
}

std::string file_stem(const std::string& path) {
    const std::size_t slash = path.find_last_of("/\\");
    const std::size_t start = slash == std::string::npos ? 0 : slash + 1;
    const std::size_t dot = path.find_last_of('.');
    const std::size_t end =
        (dot == std::string::npos || dot <= start) ? path.size() : dot;
    return path.substr(start, end - start);
}

}  // namespace

ScenarioRecord run_scenario(const Scenario& scenario, int index,
                            const ScenarioRunHooks& hooks) {
    report::Json span_args;
    if (obs::tracing()) {
        span_args = report::Json::object();
        span_args.set("scenario", scenario.name);
        span_args.set("index", index);
    }
    obs::Span span("scenario", "batch", std::move(span_args));
    ScenarioRecord record;
    record.index = index;
    record.name = scenario.name;
    record.family = scenario.family;
    record.n = scenario.n;
    record.seed = scenario.params.seed;
    record.spec_hash = spec_hash(scenario);

    util::Stopwatch sw;
    try {
        const std::vector<ViableFunction> functions =
            scenario_functions(scenario);
        // Private engine => private synthesis/matching caches: scenario
        // results cannot depend on what ran before or concurrently.
        ObfuscationFlow engine;
        FlowContext ctx(engine, functions, scenario.params);
        if (hooks.cancel) ctx.cancel = *hooks.cancel;
        if (hooks.deadline) ctx.deadline = hooks.deadline;
        ctx.progress = hooks.progress;
        if (hooks.stage_store) {
            ctx.stage_store = hooks.stage_store;
            ctx.stage_key = [&scenario](std::string_view stage) {
                return stage_cache_key(scenario, stage);
            };
        }
        const PipelineStatus ps = Pipeline::standard(scenario.params).run(ctx);
        record.cache_hits = ps.stages_cached;

        const FlowResult& r = ctx.result;
        record.random_avg = r.random_avg;
        record.random_best = r.random_best;
        record.ga_area = r.ga_area;
        record.ga_tm_area = r.ga_tm_area;
        record.improvement_percent = r.improvement_percent();
        record.verified = r.verified;
        record.camo_cells = r.camo_stats.num_cells;
        record.config_space_bits = r.camo_stats.config_space_bits;
        record.attacks = r.attack_reports;
        if (!scenario.params.emit_proof.empty() && r.attack_proof) {
            // The attack stage leaves the proof's spec_hash blank because
            // only the scenario runner knows it; stamp it before the
            // artifact reaches disk so the claim names its experiment.
            report::Json proof = *r.attack_proof;
            proof.set("spec_hash", record.spec_hash);
            const report::JsonWriter writer(scenario.params.emit_proof);
            if (!writer.write(proof)) {
                throw std::runtime_error("cannot write attack proof: " +
                                         scenario.params.emit_proof);
            }
        }
        if (ps.completed) {
            record.ok = true;
            record.status = "ok";
        } else {
            record.ok = false;
            record.status = "cancelled";
            record.error = "cancelled before stage " + ps.stopped_before;
        }
    } catch (const std::exception& e) {
        record.ok = false;
        record.status = "error";
        record.error = e.what();
    } catch (...) {
        // A non-std exception still may not sink the batch (or the serve
        // scheduler's worker); the record carries what little we know.
        record.ok = false;
        record.status = "error";
        record.error = "unknown exception (not derived from std::exception)";
    }
    record.seconds = sw.elapsed_seconds();
    for (attack::AdversaryReport& a : record.attacks) {
        a.spec_hash = record.spec_hash;
    }
    if (span) {
        report::Json ea = report::Json::object();
        ea.set("ok", record.ok);
        ea.set("status", record.status);
        if (!record.ok) ea.set("error", record.error);
        if (record.cache_hits > 0) ea.set("cache_hits", record.cache_hits);
        span.set_end_args(std::move(ea));
    }
    return record;
}

std::vector<ViableFunction> scenario_functions(const Scenario& scenario) {
    // Circuit scenarios have no viable-function set: the subject is the
    // imported benchmark file (FlowParams::circuit).
    if (!scenario.params.circuit.path.empty()) return {};
    if (scenario.family == "present") {
        if (scenario.n < 1 || scenario.n > 16) {
            throw std::invalid_argument(
                "scenario \"" + scenario.name +
                "\": present merge width must be 1..16");
        }
        return from_sboxes(sbox::present_viable_set(scenario.n));
    }
    if (scenario.family == "des") {
        if (scenario.n < 1 || scenario.n > 8) {
            throw std::invalid_argument("scenario \"" + scenario.name +
                                        "\": des merge width must be 1..8");
        }
        return from_sboxes(sbox::des_viable_set(scenario.n));
    }
    throw std::invalid_argument("scenario \"" + scenario.name +
                                "\": unknown function family \"" +
                                scenario.family + "\" (present, des)");
}

std::vector<Scenario> parse_scenario_spec(const std::string& text) {
    std::vector<Scenario> scenarios;
    std::istringstream in(text);
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        const std::size_t hash = raw.find('#');
        if (hash != std::string::npos) raw.resize(hash);
        std::istringstream tokens(raw);
        std::string token;
        Scenario s;
        bool any = false;
        // Counting-key bookkeeping for the contradiction checks below.
        bool explicit_mode = false;
        bool has_eps_delta = false;
        bool has_cache_mb = false;
        bool has_max_survivors = false;
        bool counting_disabled = false;  // explicit enum_survivors=0
        bool has_noise = false;
        // Circuit-vs-funcs bookkeeping: circuit scenarios reject keys that
        // only steer the S-box synthesis flow.
        bool has_funcs = false;
        bool has_camo_density = false;
        bool has_camo_cells = false;
        bool has_camo_key = false;  // any camo_* knob
        bool has_sbox_only_key = false;
        std::string sbox_only_key;
        const auto note_sbox_only = [&](const std::string& key) {
            if (!has_sbox_only_key) sbox_only_key = key;
            has_sbox_only_key = true;
        };
        while (tokens >> token) {
            any = true;
            const std::size_t eq = token.find('=');
            if (eq == std::string::npos) {
                spec_error(line_no, "expected key=value, got \"" + token + "\"");
            }
            const std::string key = token.substr(0, eq);
            const std::string value = token.substr(eq + 1);
            if (key == "name") {
                s.name = value;
            } else if (key == "funcs") {
                const std::size_t colon = value.find(':');
                if (colon == std::string::npos) {
                    spec_error(line_no, "funcs must be family:n, got \"" +
                                            value + "\"");
                }
                s.family = value.substr(0, colon);
                s.n = parse_int(value.substr(colon + 1), line_no, "funcs width");
                has_funcs = true;
            } else if (key == "circuit") {
                if (value.empty()) {
                    spec_error(line_no, "circuit needs a file path");
                }
                s.params.circuit.path = value;
            } else if (key == "camo_density") {
                s.params.circuit.camo_density =
                    parse_double(value, line_no, key);
                if (!(s.params.circuit.camo_density > 0.0 &&
                      s.params.circuit.camo_density <= 1.0)) {
                    spec_error(line_no, "camo_density must be in (0, 1]");
                }
                has_camo_density = true;
                has_camo_key = true;
            } else if (key == "camo_cells") {
                s.params.circuit.camo_cells = parse_int(value, line_no, key);
                if (s.params.circuit.camo_cells < 1) {
                    spec_error(line_no, "camo_cells must be >= 1");
                }
                has_camo_cells = true;
                has_camo_key = true;
            } else if (key == "camo_seed") {
                s.params.circuit.camo_seed = parse_u64(value, line_no, key);
                has_camo_key = true;
            } else if (key == "camo_policy") {
                camo::InjectPolicy policy;
                if (!camo::inject_policy_from_name(value, &policy)) {
                    spec_error(line_no,
                               "camo_policy must be random, fanout or depth, "
                               "got \"" + value + "\"");
                }
                s.params.circuit.camo_policy = value;
                has_camo_key = true;
            } else if (key == "seed") {
                s.params.seed = parse_u64(value, line_no, key);
            } else if (key == "population" || key == "pop") {
                s.params.ga.population = parse_int(value, line_no, key);
                note_sbox_only(key);
            } else if (key == "generations" || key == "gens") {
                s.params.ga.generations = parse_int(value, line_no, key);
                note_sbox_only(key);
            } else if (key == "attack") {
                if (value == "none") {
                    s.params.adversaries.clear();
                    s.params.run_oracle_attack = false;
                } else {
                    s.params.adversaries = split_csv(value);
                }
            } else if (key == "baseline") {
                s.params.run_random_baseline = parse_flag(value, line_no, key);
                note_sbox_only(key);
            } else if (key == "camo") {
                s.params.run_camo_mapping = parse_flag(value, line_no, key);
            } else if (key == "verify") {
                s.params.verify = parse_flag(value, line_no, key);
                note_sbox_only(key);
            } else if (key == "final_best") {
                s.params.final_best_of_builds = parse_flag(value, line_no, key);
                note_sbox_only(key);
            } else if (key == "max_survivors") {
                // Cap on the CEGAR survivor enumeration; small values keep
                // attack scenarios fast on huge configuration spaces.
                // Only meaningful for count_mode=enumerate (and implies it
                // when no count_mode is given -- see below).
                s.params.oracle.max_survivors = parse_u64(value, line_no, key);
                has_max_survivors = true;
            } else if (key == "count_mode") {
                if (!attack::count_mode_from_name(
                        value, &s.params.oracle.count_mode)) {
                    spec_error(line_no, "count_mode must be exact, approx or "
                                        "enumerate, got \"" + value + "\"");
                }
                explicit_mode = true;
            } else if (key == "count_cache_mb") {
                s.params.oracle.count_cache_mb = parse_int(value, line_no, key);
                has_cache_mb = true;
            } else if (key == "count_max_decisions") {
                s.params.oracle.count_max_decisions =
                    parse_u64(value, line_no, key);
                has_cache_mb = true;  // same exact-only applicability rule
            } else if (key == "epsilon") {
                s.params.oracle.epsilon = parse_double(value, line_no, key);
                has_eps_delta = true;
            } else if (key == "delta") {
                s.params.oracle.delta = parse_double(value, line_no, key);
                has_eps_delta = true;
            } else if (key == "enum_survivors") {
                s.params.oracle.enumerate_survivors =
                    parse_flag(value, line_no, key);
                counting_disabled = !s.params.oracle.enumerate_survivors;
            } else if (key == "preprocess") {
                s.params.oracle.solver.preprocess =
                    parse_flag(value, line_no, key);
            } else if (key == "shared_miter") {
                s.params.oracle.shared_miter = parse_flag(value, line_no, key);
            } else if (key == "canonical_inputs") {
                s.params.oracle.canonical_inputs =
                    parse_flag(value, line_no, key);
            } else if (key == "query_budget") {
                s.params.oracle_model.query_budget =
                    parse_u64(value, line_no, key);
                if (s.params.oracle_model.query_budget == 0) {
                    spec_error(line_no, "query_budget must be > 0 (omit the "
                                        "key for an unlimited oracle)");
                }
            } else if (key == "oracle_noise") {
                s.params.oracle_model.noise = parse_double(value, line_no, key);
                if (!(s.params.oracle_model.noise >= 0.0 &&
                      s.params.oracle_model.noise < 1.0)) {
                    spec_error(line_no, "oracle_noise must be in [0, 1)");
                }
                has_noise = true;
            } else if (key == "oracle_cache") {
                s.params.oracle_model.cache = parse_flag(value, line_no, key);
            } else if (key == "save_transcript") {
                s.params.save_transcript = value;
            } else if (key == "replay_transcript") {
                s.params.replay_transcript = value;
            } else if (key == "emit_proof") {
                s.params.emit_proof = value;
            } else if (key == "neighborhood_queries") {
                s.params.oracle.neighborhood_queries =
                    parse_int(value, line_no, key);
                if (s.params.oracle.neighborhood_queries < 0) {
                    spec_error(line_no, "neighborhood_queries must be >= 0");
                }
            } else if (key == "random_warmup") {
                s.params.oracle.random_warmup = parse_int(value, line_no, key);
                if (s.params.oracle.random_warmup < 0) {
                    spec_error(line_no, "random_warmup must be >= 0");
                }
            } else if (key == "random_queries") {
                s.params.random_queries = parse_int(value, line_no, key);
                if (s.params.random_queries <= 0) {
                    spec_error(line_no, "random_queries must be > 0");
                }
            } else if (key == "metrics") {
                s.params.oracle.collect_metrics =
                    parse_flag(value, line_no, key);
            } else if (key == "attack_threads") {
                s.params.oracle.attack_threads = parse_int(value, line_no, key);
                if (s.params.oracle.attack_threads < 1) {
                    spec_error(line_no, "attack_threads must be >= 1");
                }
            } else if (key == "portfolio") {
                // 0 = follow attack_threads, 1 = force serial CEGAR.
                s.params.oracle.portfolio = parse_int(value, line_no, key);
                if (s.params.oracle.portfolio < 0) {
                    spec_error(line_no, "portfolio must be >= 0");
                }
            } else if (key == "cube_vars") {
                s.params.oracle.cube_vars = parse_int(value, line_no, key);
                if (s.params.oracle.cube_vars < 0 ||
                    s.params.oracle.cube_vars > 16) {
                    spec_error(line_no, "cube_vars must be in 0..16");
                }
            } else {
                spec_error(line_no,
                           "unknown key \"" + key +
                               "\" (name funcs circuit camo_density "
                               "camo_cells camo_seed camo_policy "
                               "seed population generations "
                               "attack baseline camo verify final_best "
                               "count_mode count_cache_mb "
                               "count_max_decisions epsilon delta "
                               "max_survivors enum_survivors preprocess "
                               "shared_miter canonical_inputs query_budget "
                               "oracle_noise oracle_cache save_transcript "
                               "replay_transcript emit_proof "
                               "neighborhood_queries random_warmup "
                               "random_queries metrics attack_threads "
                               "portfolio cube_vars)");
            }
        }
        if (!any) continue;  // blank/comment line
        // Circuit scenarios are file-based: the subject comes from the
        // benchmark, so the viable-function and synthesis-flow keys are
        // contradictions, and the camo_* knobs require a circuit.
        const bool is_circuit = !s.params.circuit.path.empty();
        if (is_circuit && has_funcs) {
            spec_error(line_no,
                       "circuit and funcs name two different subjects; "
                       "pick one");
        }
        if (!is_circuit && has_camo_key) {
            spec_error(line_no,
                       "camo_density/camo_cells/camo_seed/camo_policy "
                       "require circuit=PATH (the S-box flow camouflages "
                       "via Phase III covering)");
        }
        if (is_circuit && has_sbox_only_key) {
            spec_error(line_no,
                       "key \"" + sbox_only_key +
                           "\" steers the S-box synthesis flow, which "
                           "circuit scenarios skip");
        }
        if (has_camo_density && has_camo_cells) {
            spec_error(line_no,
                       "camo_density and camo_cells both size the "
                       "camouflage budget; pick one");
        }
        if (is_circuit) {
            // The plausibility attacker needs the viable-function targets,
            // which only the S-box flow has.
            for (const std::string& adv : s.params.adversaries) {
                if (adv == "plausibility") {
                    spec_error(line_no,
                               "adversary \"" + adv +
                                   "\" needs the viable-function set; "
                                   "circuit scenarios support oracle-"
                                   "granted adversaries (cegar, "
                                   "random-sampling)");
                }
            }
        }
        // Reject contradictory counting keys instead of silently ignoring
        // them (each key only applies to one CountMode, and none applies
        // when counting is switched off entirely).
        using attack::CountMode;
        if (counting_disabled &&
            (explicit_mode || has_eps_delta || has_cache_mb ||
             has_max_survivors)) {
            spec_error(line_no,
                       "enum_survivors=0 skips survivor counting; it "
                       "contradicts count_mode/epsilon/delta/"
                       "count_cache_mb/max_survivors");
        }
        if (has_eps_delta && (!(s.params.oracle.epsilon > 0.0) ||
                              !(s.params.oracle.delta > 0.0 &&
                                s.params.oracle.delta < 1.0))) {
            spec_error(line_no,
                       "epsilon must be > 0 and delta in (0, 1)");
        }
        if (has_cache_mb && s.params.oracle.count_cache_mb <= 0) {
            spec_error(line_no, "count_cache_mb must be > 0");
        }
        if (has_max_survivors) {
            if (explicit_mode &&
                s.params.oracle.count_mode != CountMode::kEnumerate) {
                spec_error(line_no,
                           "max_survivors only applies to "
                           "count_mode=enumerate");
            }
            // Legacy specs cap enumeration without naming a mode.
            s.params.oracle.count_mode = CountMode::kEnumerate;
        }
        if (has_eps_delta &&
            (!explicit_mode ||
             s.params.oracle.count_mode != CountMode::kApprox)) {
            spec_error(line_no,
                       "epsilon/delta require count_mode=approx");
        }
        if (has_cache_mb &&
            s.params.oracle.count_mode != CountMode::kExact) {
            spec_error(line_no,
                       "count_cache_mb/count_max_decisions only apply to "
                       "count_mode=exact");
        }
        // Replay serves recorded answers; fresh measurement noise on top
        // would corrupt a transcript that already embeds the noise it was
        // recorded under.  Usage error, matching the counting-key rule.
        if (has_noise && !s.params.replay_transcript.empty()) {
            spec_error(line_no,
                       "replay_transcript replays recorded answers; it "
                       "contradicts oracle_noise");
        }
        // A cache above a replaying transcript desynchronizes the replay
        // cursor on duplicate patterns.
        if (s.params.oracle_model.cache &&
            !s.params.replay_transcript.empty()) {
            spec_error(line_no, "replay_transcript contradicts oracle_cache");
        }
        // A transcript is one member's ordered view; racing N members over
        // a replay is contradictory (the attack would silently fall back
        // to the serial path anyway -- reject it loudly instead).
        if (s.params.oracle.portfolio > 1 &&
            !s.params.replay_transcript.empty()) {
            spec_error(line_no, "replay_transcript contradicts portfolio");
        }
        // A proof certifies a fresh serial CEGAR run: replaying a
        // transcript proves nothing new, and portfolio members interleave
        // queries into a non-replayable sequence.
        if (!s.params.emit_proof.empty()) {
            if (!s.params.replay_transcript.empty()) {
                spec_error(line_no, "emit_proof contradicts replay_transcript");
            }
            const int members =
                s.params.oracle.portfolio > 0
                    ? s.params.oracle.portfolio
                    : std::max(1, s.params.oracle.attack_threads);
            if (members > 1) {
                spec_error(line_no,
                           "emit_proof requires a serial CEGAR attack "
                           "(set portfolio=1 or attack_threads=1)");
            }
        }
        if (is_circuit) {
            s.family = "circuit";
            s.n = 0;
        }
        if (s.name.empty()) {
            s.name = is_circuit
                         ? file_stem(s.params.circuit.path) + "-s" +
                               std::to_string(s.params.seed)
                         : s.family + std::to_string(s.n) + "-s" +
                               std::to_string(s.params.seed);
        }
        scenarios.push_back(std::move(s));
    }
    return scenarios;
}

std::vector<Scenario> load_scenario_spec(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw std::invalid_argument("cannot open scenario spec: " + path);
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parse_scenario_spec(text.str());
}

report::Json ScenarioRecord::to_json() const {
    report::Json j = report::Json::object();
    j.set("index", index);
    j.set("name", name);
    j.set("family", family);
    j.set("n", n);
    j.set("seed", seed);
    j.set("ok", ok);
    j.set("status", status.empty() ? std::string(ok ? "ok" : "error")
                                   : status);
    if (!ok) j.set("error", error);
    if (!spec_hash.empty()) j.set("spec_hash", spec_hash);
    if (cache_hits > 0) j.set("cache_hits", cache_hits);
    j.set("seconds", seconds);
    j.set("random_avg", random_avg);
    j.set("random_best", random_best);
    j.set("ga_area", ga_area);
    j.set("ga_tm_area", ga_tm_area);
    j.set("improvement_percent", improvement_percent);
    j.set("verified", verified);
    j.set("camo_cells", camo_cells);
    j.set("config_space_bits", config_space_bits);
    report::Json attacks_json = report::Json::array();
    for (const attack::AdversaryReport& a : attacks) {
        attacks_json.push_back(a.to_json());
    }
    j.set("attacks", std::move(attacks_json));
    return j;
}

std::vector<ScenarioRecord> BatchRunner::run(
    const std::vector<Scenario>& scenarios) const {
    std::vector<ScenarioRecord> records(scenarios.size());
    const int count = static_cast<int>(scenarios.size());
    const auto report_progress = [this](const ScenarioRecord& r, int total) {
        if (!params_.verbose) return;
        std::fprintf(stderr, "[%d/%d] %s: %s (%.1fs)\n", r.index + 1, total,
                     r.name.c_str(), r.ok ? "ok" : r.error.c_str(), r.seconds);
    };

    // Heartbeat: while scenarios run, a side thread streams completed/total
    // counts as "batch-progress" counter samples into the trace -- the
    // progress records a monitoring consumer tails instead of waiting for
    // the final report.  Active only when a trace sink is installed.
    std::atomic<int> completed{0};
    obs::TraceSink* const sink = obs::tracing();
    const bool heartbeat_active =
        sink != nullptr && params_.heartbeat_ms > 0 && count > 0;
    std::mutex hb_mu;
    std::condition_variable hb_cv;
    bool hb_done = false;
    std::thread heartbeat;
    if (heartbeat_active) {
        heartbeat = std::thread([&] {
            const auto sample = [&] {
                report::Json v = report::Json::object();
                v.set("completed", completed.load(std::memory_order_relaxed));
                v.set("total", count);
                sink->counter("batch-progress", std::move(v));
                sink->flush();  // tailing consumers see the sample now
            };
            std::unique_lock<std::mutex> lock(hb_mu);
            while (!hb_done) {
                sample();
                hb_cv.wait_for(lock,
                               std::chrono::milliseconds(params_.heartbeat_ms),
                               [&] { return hb_done; });
            }
            sample();  // final completed == total record
        });
    }
    const auto stop_heartbeat = [&] {
        if (!heartbeat_active) return;
        {
            std::lock_guard<std::mutex> lock(hb_mu);
            hb_done = true;
        }
        hb_cv.notify_all();
        heartbeat.join();
    };

    if (params_.jobs <= 1 || count <= 1) {
        for (int i = 0; i < count; ++i) {
            records[static_cast<std::size_t>(i)] =
                run_scenario(scenarios[static_cast<std::size_t>(i)], i);
            completed.fetch_add(1, std::memory_order_relaxed);
            report_progress(records[static_cast<std::size_t>(i)], count);
        }
        stop_heartbeat();
        return records;
    }

    util::ThreadPool pool(std::min(params_.jobs, count));
    std::vector<std::future<void>> futures;
    futures.reserve(scenarios.size());
    for (int i = 0; i < count; ++i) {
        // Sharded submission spreads the batch round-robin across the
        // workers' deques; idle workers steal from the back, so a shard
        // stuck behind one long scenario drains via its neighbours.
        futures.push_back(pool.submit_sharded(
            i, [&scenarios, &records, &completed, &pool, i] {
                // Parallel attacks inside a parallel batch share THIS pool
                // instead of spawning their own: the scenario worker
                // helping-waits (ThreadPool::run_one) on its subtasks, so
                // portfolio members and cube workers cannot deadlock or
                // oversubscribe even with every worker busy.
                Scenario scenario = scenarios[static_cast<std::size_t>(i)];
                if (scenario.params.oracle.attack_threads > 1 ||
                    scenario.params.oracle.portfolio > 1) {
                    scenario.params.oracle.pool = &pool;
                }
                records[static_cast<std::size_t>(i)] =
                    run_scenario(scenario, i);
                completed.fetch_add(1, std::memory_order_relaxed);
            }));
    }
    for (int i = 0; i < count; ++i) {
        futures[static_cast<std::size_t>(i)].get();
        report_progress(records[static_cast<std::size_t>(i)], count);
    }
    stop_heartbeat();
    return records;
}

report::Json batch_report(const std::vector<ScenarioRecord>& records,
                          double total_seconds) {
    report::Json j = report::Json::object();
    int failures = 0;
    report::Json arr = report::Json::array();
    for (const ScenarioRecord& r : records) {
        if (!r.ok) ++failures;
        arr.push_back(r.to_json());
    }
    j.set("scenario_count", static_cast<int>(records.size()));
    j.set("failures", failures);
    j.set("total_seconds", total_seconds);
    j.set("scenarios", std::move(arr));
    return j;
}

}  // namespace mvf::flow
