#include "flow/merged_spec.hpp"

#include <cassert>

#include "synth/aig_build.hpp"
#include "synth/extract.hpp"

namespace mvf::flow {

using logic::TruthTable;
using net::Aig;
using net::Lit;

ViableFunction from_sbox(const sbox::Sbox& s) {
    ViableFunction f;
    f.name = s.name;
    f.num_inputs = s.num_inputs;
    f.num_outputs = s.num_outputs;
    f.outputs = s.output_tts();
    return f;
}

std::vector<ViableFunction> from_sboxes(const std::vector<sbox::Sbox>& sboxes) {
    std::vector<ViableFunction> fns;
    fns.reserve(sboxes.size());
    for (const auto& s : sboxes) fns.push_back(from_sbox(s));
    return fns;
}

int MergedSpec::num_selects(int num_functions) {
    int s = 0;
    while ((1 << s) < num_functions) ++s;
    return s;
}

MergedSpec::MergedSpec(std::vector<ViableFunction> functions,
                       ga::PinAssignment assignment)
    : functions_(std::move(functions)), assignment_(std::move(assignment)) {
    assert(!functions_.empty());
    assert(assignment_.num_functions() == num_functions());
    for (const auto& f : functions_) {
        assert(f.num_inputs == num_inputs());
        assert(f.num_outputs == num_outputs());
    }
    assert(assignment_.valid());
}

net::Aig MergedSpec::build_aig(BuildStyle style) const {
    const int m = num_inputs();
    const int r = num_outputs();
    const int s = select_count();
    const int n = num_functions();
    Aig aig(m + s);

    std::vector<Lit> selects(static_cast<std::size_t>(s));
    for (int j = 0; j < s; ++j) selects[static_cast<std::size_t>(j)] = aig.pi(m + j);

    // cones[k][q]: function k's output routed to merged position q.
    std::vector<std::vector<Lit>> cones(
        static_cast<std::size_t>(n),
        std::vector<Lit>(static_cast<std::size_t>(r), Aig::kConst0));

    if (style == BuildStyle::kFactored) {
        for (int k = 0; k < n; ++k) {
            std::vector<Lit> inputs(static_cast<std::size_t>(m));
            for (int j = 0; j < m; ++j) {
                inputs[static_cast<std::size_t>(j)] = aig.pi(
                    assignment_.input_perms[static_cast<std::size_t>(k)]
                                           [static_cast<std::size_t>(j)]);
            }
            for (int j = 0; j < r; ++j) {
                const int q = assignment_.output_perms[static_cast<std::size_t>(k)]
                                                      [static_cast<std::size_t>(j)];
                cones[static_cast<std::size_t>(k)][static_cast<std::size_t>(q)] =
                    synth::build_from_tt(
                        functions_[static_cast<std::size_t>(k)]
                            .outputs[static_cast<std::size_t>(j)],
                        inputs, &aig);
            }
        }
    } else {
        // Joint build: express every cone in the shared-input space (the pin
        // assignment becomes a table permutation) and extract common
        // divisors across all of them.
        std::vector<Lit> inputs(static_cast<std::size_t>(m));
        for (int j = 0; j < m; ++j) inputs[static_cast<std::size_t>(j)] = aig.pi(j);
        std::vector<TruthTable> all;
        all.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(r));
        for (int k = 0; k < n; ++k) {
            for (int j = 0; j < r; ++j) {
                all.push_back(
                    functions_[static_cast<std::size_t>(k)]
                        .outputs[static_cast<std::size_t>(j)]
                        .permute(assignment_.input_perms[static_cast<std::size_t>(k)]));
            }
        }
        const std::vector<Lit> outs = synth::build_shared_extract(all, inputs, &aig);
        for (int k = 0; k < n; ++k) {
            for (int j = 0; j < r; ++j) {
                const int q = assignment_.output_perms[static_cast<std::size_t>(k)]
                                                      [static_cast<std::size_t>(j)];
                cones[static_cast<std::size_t>(k)][static_cast<std::size_t>(q)] =
                    outs[static_cast<std::size_t>(k) * static_cast<std::size_t>(r) +
                         static_cast<std::size_t>(j)];
            }
        }
    }

    for (int q = 0; q < r; ++q) {
        std::vector<Lit> data(std::size_t{1} << s);
        for (std::uint32_t c = 0; c < data.size(); ++c) {
            const int k = std::min<int>(static_cast<int>(c), n - 1);
            data[c] = cones[static_cast<std::size_t>(k)][static_cast<std::size_t>(q)];
        }
        aig.add_po(synth::build_mux_tree(selects, data, &aig));
    }
    return aig;
}

std::vector<TruthTable> MergedSpec::expected_outputs_for_code(int code) const {
    const int m = num_inputs();
    const int r = num_outputs();
    const int k = std::min(code, num_functions() - 1);
    const auto& fn = functions_[static_cast<std::size_t>(k)];

    std::vector<TruthTable> outs(static_cast<std::size_t>(r), TruthTable(m));
    for (int j = 0; j < r; ++j) {
        const int q = assignment_.output_perms[static_cast<std::size_t>(k)]
                                              [static_cast<std::size_t>(j)];
        outs[static_cast<std::size_t>(q)] = fn.outputs[static_cast<std::size_t>(j)]
            .permute(assignment_.input_perms[static_cast<std::size_t>(k)]);
    }
    return outs;
}

std::vector<TruthTable> MergedSpec::reference_tts() const {
    const int m = num_inputs();
    const int r = num_outputs();
    const int s = select_count();
    const int nv = m + s;

    // Select-code indicator minterms.
    std::vector<TruthTable> code_indicator(std::size_t{1} << s,
                                           TruthTable::ones(nv));
    for (std::uint32_t c = 0; c < code_indicator.size(); ++c) {
        for (int j = 0; j < s; ++j) {
            const TruthTable sel = TruthTable::var(m + j, nv);
            code_indicator[c] &= ((c >> j) & 1) ? sel : ~sel;
        }
    }

    std::vector<TruthTable> ref(static_cast<std::size_t>(r), TruthTable(nv));
    for (std::uint32_t c = 0; c < (1u << s); ++c) {
        const std::vector<TruthTable> outs =
            expected_outputs_for_code(static_cast<int>(c));
        for (int q = 0; q < r; ++q) {
            ref[static_cast<std::size_t>(q)] |=
                code_indicator[c] & outs[static_cast<std::size_t>(q)].extend(nv);
        }
    }
    return ref;
}

std::vector<std::string> MergedSpec::pi_names() const {
    std::vector<std::string> names;
    names.reserve(static_cast<std::size_t>(num_inputs() + select_count()));
    for (int i = 0; i < num_inputs(); ++i) names.push_back("i" + std::to_string(i));
    for (int j = 0; j < select_count(); ++j) names.push_back("sel" + std::to_string(j));
    return names;
}

std::vector<bool> MergedSpec::pi_select_flags() const {
    std::vector<bool> flags(static_cast<std::size_t>(num_inputs()), false);
    flags.insert(flags.end(), static_cast<std::size_t>(select_count()), true);
    return flags;
}

}  // namespace mvf::flow
