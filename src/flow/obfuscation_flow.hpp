#pragma once
// The end-to-end obfuscation flow (the paper's primary contribution).
//
// Phase I   merge the viable functions into one circuit (MergedSpec),
//           synthesize (balance/rewrite/refactor) and tech-map to gates;
// Phase II  genetic algorithm over pin assignments with synthesized area as
//           fitness, plus the equal-budget random baseline of Fig. 4;
// Phase III Algorithm-1 camouflage covering that eliminates the selects
//           while keeping every viable function plausible;
// finally   a ModelSim-style validation replaying each per-code dopant
//           configuration in simulation.
//
// One ObfuscationFlow instance owns the memoized synthesis/matching caches
// and should be reused across experiments.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "attack/adversary.hpp"
#include "attack/oracle_attack.hpp"
#include "camo/camo_cell.hpp"
#include "camo/camo_map.hpp"
#include "flow/merged_spec.hpp"
#include "ga/ga.hpp"
#include "map/tech_map.hpp"
#include "synth/optimize.hpp"

namespace mvf::flow {

/// File-based scenario subject: instead of merging viable functions, the
/// pipeline imports a benchmark circuit (BLIF/AIGER/.bench, see
/// io/import.hpp) and camouflages a fraction of its cells (camo/inject.hpp).
/// Active when `path` is non-empty; mutually exclusive with a viable-
/// function family.
struct CircuitParams {
    std::string path;  ///< circuit file; empty = S-box flow
    /// Fraction of cells to camouflage, in (0, 1].  Ignored when
    /// camo_cells > 0.
    double camo_density = 0.1;
    /// Absolute camouflaged-cell budget (0 = use camo_density).
    int camo_cells = 0;
    /// Injection RNG seed; 0 = derive from the scenario seed.
    std::uint64_t camo_seed = 0;
    /// Cell-selection policy: "random", "fanout" or "depth".
    std::string camo_policy = "random";
};

struct FlowParams {
    /// When set, replaces pin-search/synthesize/camo-cover with
    /// import/camo-inject (see Pipeline::standard).
    CircuitParams circuit;
    ga::GaParams ga;
    /// Synthesis effort for GA fitness evaluations (fast) and for the final
    /// selected circuit (stronger).
    synth::Effort fitness_effort = synth::Effort::kFast;
    synth::Effort final_effort = synth::Effort::kDefault;
    tech::TechMapParams map;
    camo::CamoMapParams camo;
    /// Build style for GA/random fitness evaluations (kFactored is the
    /// paper's per-function RTL and is the cheapest).
    BuildStyle fitness_build = BuildStyle::kFactored;
    /// Try the shared-divisor-extraction build as well for the final
    /// circuit and keep whichever maps smaller.
    bool final_best_of_builds = true;
    /// Random pin assignments for the baseline; -1 = same count as the GA's
    /// fitness evaluations (the paper's equal-budget comparison).
    int random_count = -1;
    bool run_random_baseline = true;
    bool run_camo_mapping = true;
    /// Verify each viable function by replaying configurations (ModelSim
    /// substitute).  Cheap; leave on.
    bool verify = true;
    /// Red-team the camouflaged result with the oracle-guided CEGAR attack
    /// (hidden configuration = select code 0): reports how many oracle
    /// queries de-camouflaging takes and how many configurations survive.
    /// Off by default; it models a STRONGER adversary (working chip in
    /// hand) than the paper's viable-set attacker.
    ///
    /// Requires run_camo_mapping: configuring the attack with camouflage
    /// mapping disabled throws std::invalid_argument from the attack stage
    /// (it used to be silently skipped).
    bool run_oracle_attack = false;
    attack::OracleAttackParams oracle;
    /// Oracle threat-model decorators for the attack stage: query budget,
    /// measurement noise, pattern cache, transcript recording (see
    /// attack/oracle.hpp).  A fresh decorator stack is built per
    /// oracle-granted adversary so the accounting in each
    /// AdversaryReport::oracle block is per-attack.  The `replay` pointer
    /// is managed by the attack stage from replay_transcript below.
    attack::OracleModelParams oracle_model;
    /// Record the attacker-visible oracle transcript and write it to this
    /// JSON file (empty = off).  With several oracle-granted adversaries
    /// in the panel, the last one's transcript wins.
    std::string save_transcript;
    /// Replay a transcript JSON recorded by save_transcript instead of
    /// consulting the simulated chip (empty = off).  Contradicts
    /// oracle_model.noise; harnesses reject that combination at parse
    /// time.
    std::string replay_transcript;
    /// Emit a verifiable audit::AttackProof artifact for the CEGAR
    /// adversary's run to this JSON file (empty = off).  Implies
    /// transcript recording and per-query commitments.  Contradicts
    /// replay_transcript (a replay proves nothing new) and portfolio
    /// attacks (members' queries interleave into a non-replayable
    /// sequence); harnesses reject those combinations at parse time and
    /// the attack stage guards them again at run time.
    std::string emit_proof;
    /// Patterns the random-sampling baseline adversary draws.
    int random_queries = 128;
    /// Registered adversaries the attack stage should run (see
    /// attack::AdversaryRegistry).  When non-empty this supersedes
    /// run_oracle_attack's implicit {"cegar"} panel.
    std::vector<std::string> adversaries;
    std::uint64_t seed = 1;
};

struct FlowResult {
    // Table I columns (GE).
    double random_avg = 0.0;
    double random_best = 0.0;
    double ga_area = 0.0;
    double ga_tm_area = 0.0;
    /// (random_best - ga_tm_area) / random_best * 100, Table I's last column.
    double improvement_percent() const {
        return random_best > 0.0 ? (random_best - ga_tm_area) / random_best * 100.0
                                 : 0.0;
    }

    ga::GaResult ga;
    std::vector<double> random_areas;  ///< Fig. 4a samples

    std::optional<tech::Netlist> synthesized;    ///< best GA circuit, mapped
    std::optional<camo::CamoNetlist> camouflaged;
    camo::CamoMapStats camo_stats;

    /// Circuit scenarios only (camo::inject): cells the attacker knows are
    /// ordinary, indexed by camouflaged-netlist node id.  Wired into
    /// OracleAttackParams::fixed_nominal by the attack stage; empty for the
    /// S-box flow, where every look-alike is unknown.
    std::vector<bool> fixed_nominal;

    bool verified = false;  ///< every viable function replayed correctly

    /// Oracle-attack report (when FlowParams::run_oracle_attack).
    std::optional<attack::OracleAttackResult> oracle_attack;

    /// Uniform per-adversary reports from the attack stage, in run order
    /// (one per requested adversary; includes the CEGAR attacker's).
    std::vector<attack::AdversaryReport> attack_reports;

    /// The audit::AttackProof artifact (serialized) when
    /// FlowParams::emit_proof is set.  Held here instead of written by the
    /// attack stage so the scenario runner can stamp the spec hash into it
    /// before it reaches disk.
    std::optional<report::Json> attack_proof;
};

class ObfuscationFlow {
public:
    explicit ObfuscationFlow(tech::GateLibrary library = tech::GateLibrary::standard());

    const tech::GateLibrary& gate_library() const { return match_cache_.library(); }
    const camo::CamoLibrary& camo_library() const { return camo_lib_; }

    /// Phase I for a fixed pin assignment: merged AIG -> optimize -> map.
    tech::Netlist synthesize(const MergedSpec& spec, synth::Effort effort,
                             const tech::TechMapParams& map_params = {},
                             BuildStyle style = BuildStyle::kFactored);

    /// Like synthesize() but tries both build styles and keeps the smaller
    /// mapped netlist.
    tech::Netlist synthesize_best(const MergedSpec& spec, synth::Effort effort,
                                  const tech::TechMapParams& map_params = {});

    /// Synthesized area in GE (the GA fitness).
    double evaluate_area(const std::vector<ViableFunction>& functions,
                         const ga::PinAssignment& assignment,
                         synth::Effort effort = synth::Effort::kFast,
                         BuildStyle style = BuildStyle::kFactored);

    /// Full Phases I-III plus baseline and validation.  Compatibility
    /// wrapper over flow::Pipeline::standard (see flow/pipeline.hpp for the
    /// staged API; results are identical at fixed seed).
    FlowResult run(const std::vector<ViableFunction>& functions,
                   const FlowParams& params);

    /// ModelSim substitute: for every select code, applies the recorded
    /// dopant configuration and checks the camouflaged netlist against the
    /// expected viable function.
    static bool verify_configurations(const MergedSpec& spec,
                                      const camo::CamoNetlist& netlist);

    synth::SynthContext& synth_context() { return synth_ctx_; }

private:
    synth::SynthContext synth_ctx_;
    tech::MatchCache match_cache_;
    camo::CamoLibrary camo_lib_;
};

}  // namespace mvf::flow
