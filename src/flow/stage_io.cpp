#include "flow/stage_io.hpp"

#include <utility>

#include "attack/adversary.hpp"

namespace mvf::flow {

namespace {

report::Json int_vector_json(const std::vector<int>& v) {
    report::Json a = report::Json::array();
    for (const int x : v) a.push_back(x);
    return a;
}

std::vector<int> int_vector_from_json(const report::Json& j) {
    std::vector<int> out;
    out.reserve(j.size());
    for (const report::Json& x : j.items()) {
        out.push_back(static_cast<int>(x.as_int()));
    }
    return out;
}

report::Json perms_json(const std::vector<std::vector<int>>& perms) {
    report::Json a = report::Json::array();
    for (const std::vector<int>& p : perms) a.push_back(int_vector_json(p));
    return a;
}

std::vector<std::vector<int>> perms_from_json(const report::Json& j) {
    std::vector<std::vector<int>> out;
    out.reserve(j.size());
    for (const report::Json& p : j.items()) {
        out.push_back(int_vector_from_json(p));
    }
    return out;
}

report::Json double_vector_json(const std::vector<double>& v) {
    report::Json a = report::Json::array();
    for (const double x : v) a.push_back(x);
    return a;
}

std::vector<double> double_vector_from_json(const report::Json& j) {
    std::vector<double> out;
    out.reserve(j.size());
    for (const report::Json& x : j.items()) out.push_back(x.as_number());
    return out;
}

report::Json ga_result_json(const ga::GaResult& ga) {
    report::Json j = report::Json::object();
    j.set("input_perms", perms_json(ga.best.input_perms));
    j.set("output_perms", perms_json(ga.best.output_perms));
    j.set("best_area", ga.best_area);
    j.set("best_per_generation",
          double_vector_json(ga.history.best_per_generation));
    j.set("avg_per_generation",
          double_vector_json(ga.history.avg_per_generation));
    j.set("evaluations", ga.history.evaluations);
    return j;
}

ga::GaResult ga_result_from_json(const report::Json& j) {
    ga::GaResult ga;
    ga.best.input_perms = perms_from_json(j.at("input_perms"));
    ga.best.output_perms = perms_from_json(j.at("output_perms"));
    ga.best_area = j.at("best_area").as_number();
    ga.history.best_per_generation =
        double_vector_from_json(j.at("best_per_generation"));
    ga.history.avg_per_generation =
        double_vector_from_json(j.at("avg_per_generation"));
    ga.history.evaluations = static_cast<int>(j.at("evaluations").as_int());
    return ga;
}

}  // namespace

report::Json netlist_to_json(const tech::Netlist& n) {
    report::Json nodes = report::Json::array();
    for (int id = 0; id < n.num_nodes(); ++id) {
        const tech::Netlist::Node& node = n.node(id);
        report::Json o = report::Json::object();
        switch (node.kind) {
            case tech::Netlist::NodeKind::kConst0:
                o.set("k", "c0");
                break;
            case tech::Netlist::NodeKind::kConst1:
                o.set("k", "c1");
                break;
            case tech::Netlist::NodeKind::kPi:
                o.set("k", "pi");
                o.set("name", node.name);
                o.set("sel", node.is_select);
                break;
            case tech::Netlist::NodeKind::kCell:
                o.set("k", "cell");
                o.set("cell", node.cell_id);
                o.set("in", int_vector_json(node.fanins));
                break;
        }
        nodes.push_back(std::move(o));
    }
    report::Json pos = report::Json::array();
    for (int i = 0; i < n.num_pos(); ++i) {
        report::Json o = report::Json::object();
        o.set("node", n.po(i));
        o.set("name", n.po_name(i));
        pos.push_back(std::move(o));
    }
    report::Json j = report::Json::object();
    j.set("nodes", std::move(nodes));
    j.set("pos", std::move(pos));
    return j;
}

tech::Netlist netlist_from_json(const report::Json& j,
                                tech::GateLibrary library) {
    tech::Netlist n(std::move(library));
    // Builders append sequentially, so re-adding in id order reproduces the
    // exact node numbering (fanins reference earlier ids).
    for (const report::Json& o : j.at("nodes").items()) {
        const std::string& kind = o.at("k").as_string();
        if (kind == "c0") {
            n.add_const(false);
        } else if (kind == "c1") {
            n.add_const(true);
        } else if (kind == "pi") {
            n.add_pi(o.at("name").as_string(), o.at("sel").as_bool());
        } else if (kind == "cell") {
            n.add_cell(static_cast<int>(o.at("cell").as_int()),
                       int_vector_from_json(o.at("in")));
        } else {
            throw report::JsonError("netlist snapshot: unknown node kind \"" +
                                    kind + "\"");
        }
    }
    for (const report::Json& o : j.at("pos").items()) {
        n.add_po(static_cast<int>(o.at("node").as_int()),
                 o.at("name").as_string());
    }
    return n;
}

report::Json camo_netlist_to_json(const camo::CamoNetlist& n) {
    report::Json nodes = report::Json::array();
    for (int id = 0; id < n.num_nodes(); ++id) {
        const camo::CamoNetlist::Node& node = n.node(id);
        report::Json o = report::Json::object();
        if (node.kind == camo::CamoNetlist::NodeKind::kPi) {
            o.set("k", "pi");
            o.set("name", node.name);
        } else {
            o.set("k", "cell");
            o.set("cell", node.camo_cell_id);
            o.set("in", int_vector_json(node.fanins));
            o.set("mask", static_cast<std::uint64_t>(node.used_pin_mask));
            o.set("cfg", int_vector_json(node.config_fn));
        }
        nodes.push_back(std::move(o));
    }
    report::Json pos = report::Json::array();
    for (int i = 0; i < n.num_pos(); ++i) {
        report::Json o = report::Json::object();
        o.set("node", n.po(i));
        o.set("name", n.po_name(i));
        pos.push_back(std::move(o));
    }
    report::Json j = report::Json::object();
    j.set("nodes", std::move(nodes));
    j.set("pos", std::move(pos));
    return j;
}

camo::CamoNetlist camo_netlist_from_json(const report::Json& j,
                                         camo::CamoLibrary library) {
    camo::CamoNetlist n(std::move(library));
    for (const report::Json& o : j.at("nodes").items()) {
        const std::string& kind = o.at("k").as_string();
        if (kind == "pi") {
            n.add_pi(o.at("name").as_string());
        } else if (kind == "cell") {
            camo::CamoNetlist::Node cell;
            cell.kind = camo::CamoNetlist::NodeKind::kCell;
            cell.camo_cell_id = static_cast<int>(o.at("cell").as_int());
            cell.fanins = int_vector_from_json(o.at("in"));
            cell.used_pin_mask =
                static_cast<std::uint32_t>(o.at("mask").as_uint());
            cell.config_fn = int_vector_from_json(o.at("cfg"));
            n.add_cell(std::move(cell));
        } else {
            throw report::JsonError(
                "camo netlist snapshot: unknown node kind \"" + kind + "\"");
        }
    }
    for (const report::Json& o : j.at("pos").items()) {
        n.add_po(static_cast<int>(o.at("node").as_int()),
                 o.at("name").as_string());
    }
    return n;
}

report::Json snapshot_context(const FlowContext& ctx) {
    const FlowResult& r = ctx.result;
    report::Json j = report::Json::object();
    j.set("random_avg", r.random_avg);
    j.set("random_best", r.random_best);
    j.set("ga_area", r.ga_area);
    j.set("ga_tm_area", r.ga_tm_area);
    j.set("random_areas", double_vector_json(r.random_areas));
    j.set("verified", r.verified);
    j.set("ga", ga_result_json(r.ga));
    report::Json cs = report::Json::object();
    cs.set("area", r.camo_stats.area);
    cs.set("num_cells", r.camo_stats.num_cells);
    cs.set("config_space_bits", r.camo_stats.config_space_bits);
    cs.set("selects_eliminated", r.camo_stats.selects_eliminated);
    j.set("camo_stats", std::move(cs));
    if (r.synthesized) {
        j.set("synthesized", netlist_to_json(*r.synthesized));
    }
    if (r.camouflaged) {
        j.set("camouflaged", camo_netlist_to_json(*r.camouflaged));
    }
    if (!r.fixed_nominal.empty()) {
        std::string bits(r.fixed_nominal.size(), '0');
        for (std::size_t i = 0; i < r.fixed_nominal.size(); ++i) {
            if (r.fixed_nominal[i]) bits[i] = '1';
        }
        j.set("fixed_nominal", std::move(bits));
    }
    report::Json attacks = report::Json::array();
    for (const attack::AdversaryReport& a : r.attack_reports) {
        attacks.push_back(a.to_json());
    }
    j.set("attack_reports", std::move(attacks));
    j.set("has_best_spec", ctx.best_spec.has_value());
    return j;
}

void restore_context(const report::Json& snapshot, FlowContext* ctx) {
    FlowResult r;
    r.random_avg = snapshot.at("random_avg").as_number();
    r.random_best = snapshot.at("random_best").as_number();
    r.ga_area = snapshot.at("ga_area").as_number();
    r.ga_tm_area = snapshot.at("ga_tm_area").as_number();
    r.random_areas = double_vector_from_json(snapshot.at("random_areas"));
    r.verified = snapshot.at("verified").as_bool();
    r.ga = ga_result_from_json(snapshot.at("ga"));
    const report::Json& cs = snapshot.at("camo_stats");
    r.camo_stats.area = cs.at("area").as_number();
    r.camo_stats.num_cells = static_cast<int>(cs.at("num_cells").as_int());
    r.camo_stats.config_space_bits = cs.at("config_space_bits").as_number();
    r.camo_stats.selects_eliminated =
        static_cast<int>(cs.at("selects_eliminated").as_int());
    if (const report::Json* s = snapshot.find("synthesized")) {
        r.synthesized = netlist_from_json(*s, ctx->flow->gate_library());
    }
    if (const report::Json* c = snapshot.find("camouflaged")) {
        r.camouflaged = camo_netlist_from_json(*c, ctx->flow->camo_library());
    }
    if (const report::Json* f = snapshot.find("fixed_nominal")) {
        const std::string& bits = f->as_string();
        r.fixed_nominal.resize(bits.size());
        for (std::size_t i = 0; i < bits.size(); ++i) {
            r.fixed_nominal[i] = bits[i] == '1';
        }
    }
    for (const report::Json& a : snapshot.at("attack_reports").items()) {
        r.attack_reports.push_back(attack::AdversaryReport::from_json(a));
    }
    ctx->result = std::move(r);
    if (snapshot.at("has_best_spec").as_bool()) {
        ctx->best_spec.emplace(*ctx->functions, ctx->result.ga.best);
    } else {
        ctx->best_spec.reset();
    }
}

}  // namespace mvf::flow
