#include "sbox/sbox_data.hpp"

#include <array>
#include <cassert>

namespace mvf::sbox {
namespace {

Sbox make4(std::string name, std::array<std::uint8_t, 16> t) {
    Sbox s;
    s.name = std::move(name);
    s.num_inputs = 4;
    s.num_outputs = 4;
    s.table.assign(t.begin(), t.end());
    return s;
}

// Standard DES S-box tables, 4 rows x 16 columns.  Input x5..x0: the row is
// x5x0 and the column is x4x3x2x1.
using DesRows = std::array<std::array<std::uint8_t, 16>, 4>;

Sbox make_des(std::string name, const DesRows& rows) {
    Sbox s;
    s.name = std::move(name);
    s.num_inputs = 6;
    s.num_outputs = 4;
    s.table.resize(64);
    for (std::uint32_t x = 0; x < 64; ++x) {
        const std::uint32_t row = (((x >> 5) & 1) << 1) | (x & 1);
        const std::uint32_t col = (x >> 1) & 0xF;
        s.table[x] = rows[row][col];
    }
    return s;
}

std::vector<Sbox> build_lp16() {
    // Representatives G0..G15 of the 16 optimal classes.  Each shares the
    // prefix 0,1,2,D,4,7,F,6,8 and differs in the remaining seven entries.
    return {
        make4("G0", {0, 1, 2, 13, 4, 7, 15, 6, 8, 11, 12, 9, 3, 14, 10, 5}),
        make4("G1", {0, 1, 2, 13, 4, 7, 15, 6, 8, 11, 14, 3, 5, 9, 10, 12}),
        make4("G2", {0, 1, 2, 13, 4, 7, 15, 6, 8, 11, 14, 3, 10, 12, 5, 9}),
        make4("G3", {0, 1, 2, 13, 4, 7, 15, 6, 8, 12, 5, 3, 10, 14, 11, 9}),
        make4("G4", {0, 1, 2, 13, 4, 7, 15, 6, 8, 12, 9, 11, 10, 14, 5, 3}),
        make4("G5", {0, 1, 2, 13, 4, 7, 15, 6, 8, 12, 11, 9, 10, 14, 3, 5}),
        make4("G6", {0, 1, 2, 13, 4, 7, 15, 6, 8, 12, 11, 9, 10, 14, 5, 3}),
        make4("G7", {0, 1, 2, 13, 4, 7, 15, 6, 8, 12, 14, 11, 10, 9, 3, 5}),
        make4("G8", {0, 1, 2, 13, 4, 7, 15, 6, 8, 14, 9, 5, 10, 11, 3, 12}),
        make4("G9", {0, 1, 2, 13, 4, 7, 15, 6, 8, 14, 11, 3, 5, 9, 10, 12}),
        make4("G10", {0, 1, 2, 13, 4, 7, 15, 6, 8, 14, 11, 5, 10, 9, 3, 12}),
        make4("G11", {0, 1, 2, 13, 4, 7, 15, 6, 8, 14, 11, 10, 5, 9, 12, 3}),
        make4("G12", {0, 1, 2, 13, 4, 7, 15, 6, 8, 14, 11, 10, 9, 3, 12, 5}),
        make4("G13", {0, 1, 2, 13, 4, 7, 15, 6, 8, 14, 12, 9, 5, 11, 10, 3}),
        make4("G14", {0, 1, 2, 13, 4, 7, 15, 6, 8, 14, 12, 11, 9, 3, 10, 5}),
        make4("G15", {0, 1, 2, 13, 4, 7, 15, 6, 8, 14, 12, 11, 3, 9, 5, 10}),
    };
}

std::vector<Sbox> build_des() {
    std::vector<Sbox> boxes;
    boxes.push_back(make_des(
        "DES_S1",
        {{{14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7},
          {0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8},
          {4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0},
          {15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13}}}));
    boxes.push_back(make_des(
        "DES_S2",
        {{{15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10},
          {3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5},
          {0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15},
          {13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9}}}));
    boxes.push_back(make_des(
        "DES_S3",
        {{{10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8},
          {13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1},
          {13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7},
          {1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12}}}));
    boxes.push_back(make_des(
        "DES_S4",
        {{{7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15},
          {13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9},
          {10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4},
          {3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14}}}));
    boxes.push_back(make_des(
        "DES_S5",
        {{{2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9},
          {14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6},
          {4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14},
          {11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3}}}));
    boxes.push_back(make_des(
        "DES_S6",
        {{{12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11},
          {10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8},
          {9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6},
          {4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13}}}));
    boxes.push_back(make_des(
        "DES_S7",
        {{{4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1},
          {13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6},
          {1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2},
          {6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12}}}));
    boxes.push_back(make_des(
        "DES_S8",
        {{{13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7},
          {1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2},
          {7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8},
          {2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11}}}));
    return boxes;
}

}  // namespace

const std::vector<Sbox>& leander_poschmann_16() {
    static const std::vector<Sbox> boxes = build_lp16();
    return boxes;
}

const Sbox& present_sbox() {
    static const Sbox s =
        make4("PRESENT", {12, 5, 6, 11, 9, 0, 10, 13, 3, 14, 15, 8, 4, 7, 1, 2});
    return s;
}

const Sbox& des_sbox(int i) {
    assert(i >= 0 && i < 8);
    return des_all()[static_cast<std::size_t>(i)];
}

const std::vector<Sbox>& des_all() {
    static const std::vector<Sbox> boxes = build_des();
    return boxes;
}

std::vector<Sbox> present_viable_set(int n) {
    assert(n >= 1 && n <= 16);
    const auto& all = leander_poschmann_16();
    return {all.begin(), all.begin() + n};
}

std::vector<Sbox> des_viable_set(int n) {
    assert(n >= 1 && n <= 8);
    const auto& all = des_all();
    return {all.begin(), all.begin() + n};
}

}  // namespace mvf::sbox
