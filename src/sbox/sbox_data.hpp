#pragma once
// The paper's evaluation workloads:
//  - the 16 optimal 4-bit S-box class representatives of Leander-Poschmann
//    ("PRESENT-style"; the PRESENT S-box itself is affine-equivalent to one
//    of them),
//  - the PRESENT cipher S-box,
//  - the eight 6->4 DES S-boxes.

#include <vector>

#include "sbox/sbox.hpp"

namespace mvf::sbox {

/// The 16 representatives G0..G15 of the optimal 4-bit S-box classes
/// (Leander & Poschmann, WAIFI 2007).  All are bijective; cryptographic
/// optimality (Lin = 8, Diff = 4) is asserted by the test suite.
const std::vector<Sbox>& leander_poschmann_16();

/// The PRESENT block-cipher S-box (Bogdanov et al., CHES 2007).
const Sbox& present_sbox();

/// DES S-box i (0-based, 0..7) as a flat 6-input/4-output table using the
/// standard row/column convention: row = x5x0, column = x4x3x2x1.
const Sbox& des_sbox(int i);

/// All eight DES S-boxes.
const std::vector<Sbox>& des_all();

/// The first `n` viable functions for a "PRESENT-style" experiment
/// (subset of leander_poschmann_16; 1 <= n <= 16).
std::vector<Sbox> present_viable_set(int n);

/// The first `n` DES S-boxes (1 <= n <= 8).
std::vector<Sbox> des_viable_set(int n);

}  // namespace mvf::sbox
