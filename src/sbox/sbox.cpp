#include "sbox/sbox.hpp"

#include <cassert>

namespace mvf::sbox {

using logic::TruthTable;

TruthTable Sbox::output_tt(int j) const {
    assert(j >= 0 && j < num_outputs);
    TruthTable t(num_inputs);
    for (std::uint32_t x = 0; x < (1u << num_inputs); ++x) {
        if ((table[x] >> j) & 1) t.set_bit(x, true);
    }
    return t;
}

std::vector<TruthTable> Sbox::output_tts() const {
    std::vector<TruthTable> tts;
    tts.reserve(static_cast<std::size_t>(num_outputs));
    for (int j = 0; j < num_outputs; ++j) tts.push_back(output_tt(j));
    return tts;
}

bool Sbox::is_bijective() const {
    if (num_inputs != num_outputs) return false;
    std::vector<bool> seen(std::size_t{1} << num_inputs, false);
    for (const std::uint8_t y : table) {
        if (seen[y]) return false;
        seen[y] = true;
    }
    return true;
}

std::vector<std::vector<int>> difference_distribution_table(const Sbox& s) {
    const std::uint32_t nx = 1u << s.num_inputs;
    const std::uint32_t ny = 1u << s.num_outputs;
    std::vector<std::vector<int>> ddt(nx, std::vector<int>(ny, 0));
    for (std::uint32_t dx = 0; dx < nx; ++dx) {
        for (std::uint32_t x = 0; x < nx; ++x) {
            const std::uint32_t dy = s.lookup(x ^ dx) ^ s.lookup(x);
            ++ddt[dx][dy];
        }
    }
    return ddt;
}

std::vector<std::vector<int>> linear_approximation_table(const Sbox& s) {
    const std::uint32_t nx = 1u << s.num_inputs;
    const std::uint32_t ny = 1u << s.num_outputs;
    std::vector<std::vector<int>> lat(nx, std::vector<int>(ny, 0));
    for (std::uint32_t a = 0; a < nx; ++a) {
        for (std::uint32_t b = 0; b < ny; ++b) {
            int matches = 0;
            for (std::uint32_t x = 0; x < nx; ++x) {
                const int in_parity = __builtin_popcount(a & x) & 1;
                const int out_parity = __builtin_popcount(b & s.lookup(x)) & 1;
                if (in_parity == out_parity) ++matches;
            }
            lat[a][b] = matches - static_cast<int>(nx / 2);
        }
    }
    return lat;
}

int differential_uniformity(const Sbox& s) {
    const auto ddt = difference_distribution_table(s);
    int max = 0;
    for (std::size_t dx = 1; dx < ddt.size(); ++dx) {
        for (const int v : ddt[dx]) max = std::max(max, v);
    }
    return max;
}

int linearity(const Sbox& s) {
    const auto lat = linear_approximation_table(s);
    int max = 0;
    for (std::size_t a = 0; a < lat.size(); ++a) {
        for (std::size_t b = 1; b < lat[a].size(); ++b) {
            max = std::max(max, 2 * std::abs(lat[a][b]));
        }
    }
    return max;
}

bool is_optimal_4bit(const Sbox& s) {
    return s.num_inputs == 4 && s.num_outputs == 4 && s.is_bijective() &&
           linearity(s) == 8 && differential_uniformity(s) == 4;
}

}  // namespace mvf::sbox
