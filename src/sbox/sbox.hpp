#pragma once
// S-box representation and cryptographic property analysis.
//
// The paper's workload: merged circuits plausibly implementing several
// S-boxes.  This module carries the substitution tables plus the DDT/LAT
// analyses used to check the "optimal S-box" properties of the 4-bit set.

#include <cstdint>
#include <string>
#include <vector>

#include "logic/truth_table.hpp"

namespace mvf::sbox {

/// An n-input, m-output substitution box given as a flat lookup table of
/// 2^n entries, each an m-bit value.
struct Sbox {
    std::string name;
    int num_inputs = 0;
    int num_outputs = 0;
    std::vector<std::uint8_t> table;

    std::uint8_t lookup(std::uint32_t x) const { return table[x]; }

    /// Truth table of output bit j.
    logic::TruthTable output_tt(int j) const;

    /// All output truth tables, index = output bit.
    std::vector<logic::TruthTable> output_tts() const;

    /// For square S-boxes: is the table a permutation?
    bool is_bijective() const;
};

/// Difference distribution table: ddt[dx][dy] = #{x : S(x^dx) ^ S(x) = dy}.
std::vector<std::vector<int>> difference_distribution_table(const Sbox& s);

/// Linear approximation table (bias counts):
/// lat[a][b] = #{x : <a,x> = <b,S(x)>} - 2^(n-1).
std::vector<std::vector<int>> linear_approximation_table(const Sbox& s);

/// Maximum DDT entry over dx != 0 (differential uniformity).
int differential_uniformity(const Sbox& s);

/// Maximum |2*LAT| entry over b != 0 (linearity as used by Leander-
/// Poschmann: Lin(S) = max |#matches*2 - 2^n|).
int linearity(const Sbox& s);

/// Leander-Poschmann optimality for 4-bit S-boxes:
/// bijective, Lin(S) = 8, Diff(S) = 4.
bool is_optimal_4bit(const Sbox& s);

}  // namespace mvf::sbox
