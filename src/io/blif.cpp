#include "io/blif.hpp"

#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace mvf::io {

using net::Aig;
using net::Lit;

namespace {

std::string aig_signal(Lit l) {
    if (l == Aig::kConst0) return "gnd";
    if (l == Aig::kConst1) return "vdd";
    const std::string base = "n" + std::to_string(Aig::lit_node(l));
    return Aig::lit_complemented(l) ? base + "_inv" : base;
}

}  // namespace

void write_blif(const Aig& aig, const std::string& model_name,
                std::ostream& out) {
    out << ".model " << model_name << "\n.inputs";
    for (int i = 0; i < aig.num_pis(); ++i) out << " n" << (i + 1);
    out << "\n.outputs";
    for (int i = 0; i < aig.num_pos(); ++i) out << " po" << i;
    out << "\n";
    out << ".names gnd\n";        // constant 0
    out << ".names vdd\n1\n";     // constant 1

    // Inverted signals needed anywhere.
    std::vector<bool> need_inv(static_cast<std::size_t>(aig.num_nodes()), false);
    for (int n = aig.num_pis() + 1; n < aig.num_nodes(); ++n) {
        for (const Lit f : {aig.fanin0(n), aig.fanin1(n)}) {
            if (Aig::lit_complemented(f)) {
                need_inv[static_cast<std::size_t>(Aig::lit_node(f))] = true;
            }
        }
    }
    for (int i = 0; i < aig.num_pos(); ++i) {
        const Lit po = aig.po(i);
        if (Aig::lit_complemented(po)) {
            need_inv[static_cast<std::size_t>(Aig::lit_node(po))] = true;
        }
    }
    // Definition-before-use order: PI inverters first, then each AND node
    // immediately followed by its inverter when some consumer needs it.
    for (int n = 1; n <= aig.num_pis(); ++n) {
        if (need_inv[static_cast<std::size_t>(n)]) {
            out << ".names n" << n << " n" << n << "_inv\n0 1\n";
        }
    }
    for (int n = aig.num_pis() + 1; n < aig.num_nodes(); ++n) {
        out << ".names " << aig_signal(aig.fanin0(n)) << " "
            << aig_signal(aig.fanin1(n)) << " n" << n << "\n11 1\n";
        if (need_inv[static_cast<std::size_t>(n)]) {
            out << ".names n" << n << " n" << n << "_inv\n0 1\n";
        }
    }
    for (int i = 0; i < aig.num_pos(); ++i) {
        out << ".names " << aig_signal(aig.po(i)) << " po" << i << "\n1 1\n";
    }
    out << ".end\n";
}

void write_blif(const tech::Netlist& netlist, const std::string& model_name,
                std::ostream& out) {
    out << ".model " << model_name << "\n.inputs";
    for (int i = 0; i < netlist.num_pis(); ++i) {
        out << " " << netlist.node(netlist.pi(i)).name;
    }
    out << "\n.outputs";
    for (int i = 0; i < netlist.num_pos(); ++i) out << " " << netlist.po_name(i);
    out << "\n";

    const auto signal = [&netlist](int id) -> std::string {
        const tech::Netlist::Node& n = netlist.node(id);
        switch (n.kind) {
            case tech::Netlist::NodeKind::kPi:
                return n.name;
            case tech::Netlist::NodeKind::kConst0:
                return "gnd";
            case tech::Netlist::NodeKind::kConst1:
                return "vdd";
            case tech::Netlist::NodeKind::kCell:
                return "w" + std::to_string(id);
        }
        return "?";
    };

    bool has_const0 = false;
    bool has_const1 = false;
    for (int id = 0; id < netlist.num_nodes(); ++id) {
        if (netlist.node(id).kind == tech::Netlist::NodeKind::kConst0) has_const0 = true;
        if (netlist.node(id).kind == tech::Netlist::NodeKind::kConst1) has_const1 = true;
    }
    if (has_const0) out << ".names gnd\n";
    if (has_const1) out << ".names vdd\n1\n";

    for (int id = 0; id < netlist.num_nodes(); ++id) {
        const tech::Netlist::Node& n = netlist.node(id);
        if (n.kind != tech::Netlist::NodeKind::kCell) continue;
        const tech::GateCell& cell = netlist.library().cell(n.cell_id);
        out << ".names";
        for (const int f : n.fanins) out << " " << signal(f);
        out << " w" << id << "  # " << cell.name << "\n";
        for (std::uint32_t m = 0; m < cell.function.num_bits(); ++m) {
            if (!cell.function.bit(m)) continue;
            for (int b = 0; b < cell.num_inputs; ++b) out << ((m >> b) & 1);
            out << " 1\n";
        }
    }
    for (int i = 0; i < netlist.num_pos(); ++i) {
        out << ".names " << signal(netlist.po(i)) << " " << netlist.po_name(i)
            << "\n1 1\n";
    }
    out << ".end\n";
}

void write_bench(const Aig& aig, std::ostream& out) {
    for (int i = 0; i < aig.num_pis(); ++i) out << "INPUT(n" << (i + 1) << ")\n";
    for (int i = 0; i < aig.num_pos(); ++i) out << "OUTPUT(po" << i << ")\n";

    bool need_const = false;
    for (int i = 0; i < aig.num_pos(); ++i) {
        if (Aig::lit_node(aig.po(i)) == 0) need_const = true;
    }
    if (need_const) {
        out << "NOT_n1_tmp = NOT(n1)\n";
        out << "gnd = AND(n1, NOT_n1_tmp)\n";
        out << "vdd = NOT(gnd)\n";
    }

    std::vector<bool> need_inv(static_cast<std::size_t>(aig.num_nodes()), false);
    for (int n = aig.num_pis() + 1; n < aig.num_nodes(); ++n) {
        for (const Lit f : {aig.fanin0(n), aig.fanin1(n)}) {
            if (Aig::lit_complemented(f)) {
                need_inv[static_cast<std::size_t>(Aig::lit_node(f))] = true;
            }
        }
    }
    for (int i = 0; i < aig.num_pos(); ++i) {
        if (Aig::lit_complemented(aig.po(i))) {
            need_inv[static_cast<std::size_t>(Aig::lit_node(aig.po(i)))] = true;
        }
    }
    for (int n = 1; n < aig.num_nodes(); ++n) {
        if (need_inv[static_cast<std::size_t>(n)]) {
            out << "n" << n << "_inv = NOT(n" << n << ")\n";
        }
    }
    for (int n = aig.num_pis() + 1; n < aig.num_nodes(); ++n) {
        out << "n" << n << " = AND(" << aig_signal(aig.fanin0(n)) << ", "
            << aig_signal(aig.fanin1(n)) << ")\n";
    }
    for (int i = 0; i < aig.num_pos(); ++i) {
        out << "po" << i << " = BUFF(" << aig_signal(aig.po(i)) << ")\n";
    }
}

std::optional<BlifModel> read_blif_collapse(std::istream& in) {
    using logic::TruthTable;
    BlifModel model;
    std::vector<std::string> input_names;
    std::vector<std::string> output_names;

    struct Names {
        std::vector<std::string> inputs;
        std::string output;
        std::vector<std::string> rows;  // "<pattern> 1" rows only
    };
    std::vector<Names> tables;

    std::string line;
    std::string pending;
    std::vector<std::string> tokens;
    Names* current = nullptr;

    const auto tokenize = [&tokens](const std::string& s) {
        tokens.clear();
        std::istringstream iss(s);
        std::string t;
        while (iss >> t) tokens.push_back(t);
    };

    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos) line.resize(hash);
        if (!line.empty() && line.back() == '\\') {
            pending += line.substr(0, line.size() - 1);
            continue;
        }
        line = pending + line;
        pending.clear();
        tokenize(line);
        if (tokens.empty()) continue;

        if (tokens[0] == ".model") {
            if (tokens.size() > 1) model.name = tokens[1];
            current = nullptr;
        } else if (tokens[0] == ".inputs") {
            input_names.assign(tokens.begin() + 1, tokens.end());
            current = nullptr;
        } else if (tokens[0] == ".outputs") {
            output_names.assign(tokens.begin() + 1, tokens.end());
            current = nullptr;
        } else if (tokens[0] == ".names") {
            tables.emplace_back();
            current = &tables.back();
            current->inputs.assign(tokens.begin() + 1, tokens.end() - 1);
            current->output = tokens.back();
        } else if (tokens[0] == ".end") {
            current = nullptr;
        } else if (tokens[0][0] == '.') {
            return std::nullopt;  // unsupported directive
        } else if (current) {
            if (tokens.size() == 1 && current->inputs.empty()) {
                current->rows.push_back(tokens[0]);  // constant-1 row
            } else if (tokens.size() == 2 && tokens[1] == "1") {
                current->rows.push_back(tokens[0]);
            } else if (tokens.size() == 2 && tokens[1] == "0") {
                return std::nullopt;  // 0-rows unsupported
            } else {
                return std::nullopt;
            }
        }
    }

    const int ni = static_cast<int>(input_names.size());
    if (ni > 16) return std::nullopt;
    model.num_inputs = ni;
    model.num_outputs = static_cast<int>(output_names.size());

    std::map<std::string, TruthTable> value;
    for (int i = 0; i < ni; ++i) value.emplace(input_names[static_cast<std::size_t>(i)], TruthTable::var(i, ni));

    // Tables are written in topological order by our writer.
    for (const Names& t : tables) {
        TruthTable f(ni);
        if (t.inputs.empty()) {
            // constant: empty rows -> 0; a "1" row -> 1
            if (!t.rows.empty()) f = TruthTable::ones(ni);
        } else {
            for (const std::string& row : t.rows) {
                if (row.size() != t.inputs.size()) return std::nullopt;
                TruthTable cube = TruthTable::ones(ni);
                for (std::size_t b = 0; b < row.size(); ++b) {
                    const auto it = value.find(t.inputs[b]);
                    if (it == value.end()) return std::nullopt;
                    if (row[b] == '1')
                        cube &= it->second;
                    else if (row[b] == '0')
                        cube &= ~it->second;
                    else if (row[b] != '-')
                        return std::nullopt;
                }
                f |= cube;
            }
        }
        value.insert_or_assign(t.output, f);
    }

    for (const std::string& name : output_names) {
        const auto it = value.find(name);
        if (it == value.end()) return std::nullopt;
        model.outputs.push_back(it->second);
    }
    return model;
}

}  // namespace mvf::io
