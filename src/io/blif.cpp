#include "io/blif.hpp"

#include <ostream>
#include <vector>

#include "io/import.hpp"
#include "net/aig_sim.hpp"

namespace mvf::io {

using net::Aig;
using net::Lit;

namespace {

std::string aig_signal(Lit l) {
    if (l == Aig::kConst0) return "gnd";
    if (l == Aig::kConst1) return "vdd";
    const std::string base = "n" + std::to_string(Aig::lit_node(l));
    return Aig::lit_complemented(l) ? base + "_inv" : base;
}

}  // namespace

void write_blif(const Aig& aig, const std::string& model_name,
                std::ostream& out) {
    out << ".model " << model_name << "\n.inputs";
    for (int i = 0; i < aig.num_pis(); ++i) out << " n" << (i + 1);
    out << "\n.outputs";
    for (int i = 0; i < aig.num_pos(); ++i) out << " po" << i;
    out << "\n";
    out << ".names gnd\n";        // constant 0
    out << ".names vdd\n1\n";     // constant 1

    // Inverted signals needed anywhere.
    std::vector<bool> need_inv(static_cast<std::size_t>(aig.num_nodes()), false);
    for (int n = aig.num_pis() + 1; n < aig.num_nodes(); ++n) {
        for (const Lit f : {aig.fanin0(n), aig.fanin1(n)}) {
            if (Aig::lit_complemented(f)) {
                need_inv[static_cast<std::size_t>(Aig::lit_node(f))] = true;
            }
        }
    }
    for (int i = 0; i < aig.num_pos(); ++i) {
        const Lit po = aig.po(i);
        if (Aig::lit_complemented(po)) {
            need_inv[static_cast<std::size_t>(Aig::lit_node(po))] = true;
        }
    }
    // Definition-before-use order: PI inverters first, then each AND node
    // immediately followed by its inverter when some consumer needs it.
    for (int n = 1; n <= aig.num_pis(); ++n) {
        if (need_inv[static_cast<std::size_t>(n)]) {
            out << ".names n" << n << " n" << n << "_inv\n0 1\n";
        }
    }
    for (int n = aig.num_pis() + 1; n < aig.num_nodes(); ++n) {
        out << ".names " << aig_signal(aig.fanin0(n)) << " "
            << aig_signal(aig.fanin1(n)) << " n" << n << "\n11 1\n";
        if (need_inv[static_cast<std::size_t>(n)]) {
            out << ".names n" << n << " n" << n << "_inv\n0 1\n";
        }
    }
    for (int i = 0; i < aig.num_pos(); ++i) {
        out << ".names " << aig_signal(aig.po(i)) << " po" << i << "\n1 1\n";
    }
    out << ".end\n";
}

void write_blif(const tech::Netlist& netlist, const std::string& model_name,
                std::ostream& out) {
    out << ".model " << model_name << "\n.inputs";
    for (int i = 0; i < netlist.num_pis(); ++i) {
        out << " " << netlist.node(netlist.pi(i)).name;
    }
    out << "\n.outputs";
    for (int i = 0; i < netlist.num_pos(); ++i) out << " " << netlist.po_name(i);
    out << "\n";

    const auto signal = [&netlist](int id) -> std::string {
        const tech::Netlist::Node& n = netlist.node(id);
        switch (n.kind) {
            case tech::Netlist::NodeKind::kPi:
                return n.name;
            case tech::Netlist::NodeKind::kConst0:
                return "gnd";
            case tech::Netlist::NodeKind::kConst1:
                return "vdd";
            case tech::Netlist::NodeKind::kCell:
                return "w" + std::to_string(id);
        }
        return "?";
    };

    bool has_const0 = false;
    bool has_const1 = false;
    for (int id = 0; id < netlist.num_nodes(); ++id) {
        if (netlist.node(id).kind == tech::Netlist::NodeKind::kConst0) has_const0 = true;
        if (netlist.node(id).kind == tech::Netlist::NodeKind::kConst1) has_const1 = true;
    }
    if (has_const0) out << ".names gnd\n";
    if (has_const1) out << ".names vdd\n1\n";

    for (int id = 0; id < netlist.num_nodes(); ++id) {
        const tech::Netlist::Node& n = netlist.node(id);
        if (n.kind != tech::Netlist::NodeKind::kCell) continue;
        const tech::GateCell& cell = netlist.library().cell(n.cell_id);
        out << ".names";
        for (const int f : n.fanins) out << " " << signal(f);
        out << " w" << id << "  # " << cell.name << "\n";
        for (std::uint32_t m = 0; m < cell.function.num_bits(); ++m) {
            if (!cell.function.bit(m)) continue;
            for (int b = 0; b < cell.num_inputs; ++b) out << ((m >> b) & 1);
            out << " 1\n";
        }
    }
    for (int i = 0; i < netlist.num_pos(); ++i) {
        out << ".names " << signal(netlist.po(i)) << " " << netlist.po_name(i)
            << "\n1 1\n";
    }
    out << ".end\n";
}

void write_bench(const Aig& aig, std::ostream& out) {
    for (int i = 0; i < aig.num_pis(); ++i) out << "INPUT(n" << (i + 1) << ")\n";
    for (int i = 0; i < aig.num_pos(); ++i) out << "OUTPUT(po" << i << ")\n";

    bool need_const = false;
    for (int i = 0; i < aig.num_pos(); ++i) {
        if (Aig::lit_node(aig.po(i)) == 0) need_const = true;
    }
    if (need_const) {
        out << "NOT_n1_tmp = NOT(n1)\n";
        out << "gnd = AND(n1, NOT_n1_tmp)\n";
        out << "vdd = NOT(gnd)\n";
    }

    std::vector<bool> need_inv(static_cast<std::size_t>(aig.num_nodes()), false);
    for (int n = aig.num_pis() + 1; n < aig.num_nodes(); ++n) {
        for (const Lit f : {aig.fanin0(n), aig.fanin1(n)}) {
            if (Aig::lit_complemented(f)) {
                need_inv[static_cast<std::size_t>(Aig::lit_node(f))] = true;
            }
        }
    }
    for (int i = 0; i < aig.num_pos(); ++i) {
        if (Aig::lit_complemented(aig.po(i))) {
            need_inv[static_cast<std::size_t>(Aig::lit_node(aig.po(i)))] = true;
        }
    }
    for (int n = 1; n < aig.num_nodes(); ++n) {
        if (need_inv[static_cast<std::size_t>(n)]) {
            out << "n" << n << "_inv = NOT(n" << n << ")\n";
        }
    }
    for (int n = aig.num_pis() + 1; n < aig.num_nodes(); ++n) {
        out << "n" << n << " = AND(" << aig_signal(aig.fanin0(n)) << ", "
            << aig_signal(aig.fanin1(n)) << ")\n";
    }
    for (int i = 0; i < aig.num_pos(); ++i) {
        out << "po" << i << " = BUFF(" << aig_signal(aig.po(i)) << ")\n";
    }
}

std::optional<BlifModel> read_blif_collapse(std::istream& in) {
    // Thin collapse layer over the structural reader (io/import.hpp): parse
    // to an AIG, then simulate every PO over the full input space.  Keeps
    // the historical optional contract for round-trip checks while the
    // structural reader owns all parsing and validation.
    ImportedCircuit circuit;
    try {
        circuit = read_blif(in);
    } catch (const ParseError&) {
        return std::nullopt;
    }
    if (circuit.input_names.size() > 16) return std::nullopt;

    BlifModel model;
    model.name = circuit.name;
    model.num_inputs = static_cast<int>(circuit.input_names.size());
    model.num_outputs = static_cast<int>(circuit.output_names.size());
    model.outputs = net::simulate_full(circuit.aig);
    return model;
}

}  // namespace mvf::io
