#pragma once
// BLIF emission/parsing for AIGs and mapped netlists.
//
// The paper's flow passes designs between Yosys and ABC as BLIF; this
// module provides the same interchange surface so circuits produced here
// can be inspected with, or imported into, external synthesis tools.  The
// collapse reader rides on the structural importer (io/import.hpp) and is
// round-trip tested against both writers.

#include <iosfwd>
#include <optional>
#include <string>

#include "map/netlist.hpp"
#include "net/aig.hpp"

namespace mvf::io {

/// Writes the AIG as BLIF (.names with two-literal AND rows; complemented
/// edges become inverter .names).
void write_blif(const net::Aig& aig, const std::string& model_name,
                std::ostream& out);

/// Writes a mapped netlist as BLIF .names rows (one per cell, truth table
/// expanded to minterms).
void write_blif(const tech::Netlist& netlist, const std::string& model_name,
                std::ostream& out);

/// Writes the AIG in ISCAS-ish .bench format (INPUT/OUTPUT/AND/NOT lines).
void write_bench(const net::Aig& aig, std::ostream& out);

/// A parsed BLIF logic network in truth-table form, for round-trip checks.
struct BlifModel {
    std::string name;
    int num_inputs = 0;
    int num_outputs = 0;
    /// Output functions over the model inputs (input i = variable i).
    std::vector<logic::TruthTable> outputs;
};

/// Parses structural BLIF (via io::read_blif) and collapses it to output
/// functions.  Returns nullopt on malformed input or > 16 inputs; use
/// io::read_blif directly for structured errors and uncollapsed import.
std::optional<BlifModel> read_blif_collapse(std::istream& in);

}  // namespace mvf::io
