#include "io/import.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace mvf::io {

using net::Aig;
using net::Lit;

namespace {

// ------------------------------------------------------------- lexing --

/// Line reader shared by the text formats: strips '#' comments, joins
/// '\'-continued lines and tracks the 1-based number of the FIRST physical
/// line of each logical line (what ParseError should point at).
class LineReader {
public:
    explicit LineReader(std::istream& in) : in_(in) {}

    /// Fills *out with the next non-empty logical line; returns false at
    /// EOF.  *line receives the 1-based starting line number.
    bool next(std::string* out, int* line) {
        std::string logical;
        int start = 0;
        std::string physical;
        while (std::getline(in_, physical)) {
            ++line_no_;
            const std::size_t hash = physical.find('#');
            if (hash != std::string::npos) physical.resize(hash);
            if (start == 0 && !is_blank(physical)) start = line_no_;
            if (!physical.empty() && physical.back() == '\\') {
                logical += physical.substr(0, physical.size() - 1);
                logical += ' ';
                continue;
            }
            logical += physical;
            if (is_blank(logical)) {
                logical.clear();
                start = 0;
                continue;
            }
            *out = std::move(logical);
            *line = start;
            return true;
        }
        return false;
    }

private:
    static bool is_blank(const std::string& s) {
        return std::all_of(s.begin(), s.end(), [](unsigned char c) {
            return std::isspace(c) != 0;
        });
    }

    std::istream& in_;
    int line_no_ = 0;
};

std::vector<std::string> tokenize(const std::string& s) {
    std::vector<std::string> tokens;
    std::istringstream in(s);
    std::string t;
    while (in >> t) tokens.push_back(t);
    return tokens;
}

std::string trim(const std::string& s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

std::string upper(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::toupper(c));
    });
    return s;
}

std::string file_stem(const std::string& path) {
    const std::size_t slash = path.find_last_of("/\\");
    const std::size_t start = slash == std::string::npos ? 0 : slash + 1;
    const std::size_t dot = path.find_last_of('.');
    const std::size_t end =
        (dot == std::string::npos || dot <= start) ? path.size() : dot;
    return path.substr(start, end - start);
}

// ------------------------------------------- named net-graph building --

/// One combinational gate awaiting construction: its fanin net names and a
/// builder mapping resolved fanin literals to the output literal.
struct GateDef {
    std::string output;
    std::vector<std::string> inputs;
    int line = 0;
    std::function<Lit(Aig&, std::span<const Lit>)> build;
};

/// Builds every gate into `circuit->aig` in dependency order, validating
/// as it goes: a net driven by two gates (or a gate and a primary input)
/// is multiply driven, a referenced net nobody drives is undriven, and a
/// dependency back-edge is a combinational cycle.  ALL gates are built --
/// including logic outside the output cones, so dangling garbage is still
/// validated -- then the AIG is cleaned up to the reachable subgraph.
void build_gates(const std::string& file, std::vector<GateDef> gates,
                 ImportedCircuit* circuit) {
    Aig& aig = circuit->aig;
    std::unordered_map<std::string, Lit> value;
    for (int i = 0; i < static_cast<int>(circuit->input_names.size()); ++i) {
        value.emplace(circuit->input_names[static_cast<std::size_t>(i)],
                      aig.pi(i));
    }

    std::unordered_map<std::string, int> driver;
    for (int g = 0; g < static_cast<int>(gates.size()); ++g) {
        const GateDef& gate = gates[static_cast<std::size_t>(g)];
        if (value.count(gate.output)) {
            throw ParseError(file, gate.line,
                             "net \"" + gate.output +
                                 "\" is multiply driven (also a primary "
                                 "input)");
        }
        if (!driver.emplace(gate.output, g).second) {
            throw ParseError(file, gate.line,
                             "net \"" + gate.output + "\" is multiply driven");
        }
    }

    // Iterative DFS (deep chains would overflow the call stack);
    // state 0 = unvisited, 1 = on the DFS stack, 2 = built.
    std::vector<int> state(gates.size(), 0);
    struct Frame {
        int gate;
        std::size_t next = 0;
    };
    std::vector<Frame> stack;
    std::vector<Lit> fanin_lits;
    for (int root = 0; root < static_cast<int>(gates.size()); ++root) {
        if (state[static_cast<std::size_t>(root)] != 0) continue;
        state[static_cast<std::size_t>(root)] = 1;
        stack.push_back({root});
        while (!stack.empty()) {
            Frame& f = stack.back();
            GateDef& g = gates[static_cast<std::size_t>(f.gate)];
            if (f.next < g.inputs.size()) {
                const std::string& in = g.inputs[f.next];
                ++f.next;
                if (value.count(in)) continue;
                const auto it = driver.find(in);
                if (it == driver.end()) {
                    throw ParseError(file, g.line,
                                     "net \"" + in +
                                         "\" is undriven (used by \"" +
                                         g.output + "\")");
                }
                const int dep = it->second;
                if (state[static_cast<std::size_t>(dep)] == 1) {
                    throw ParseError(file, g.line,
                                     "combinational cycle through net \"" +
                                         in + "\"");
                }
                if (state[static_cast<std::size_t>(dep)] == 2) continue;
                state[static_cast<std::size_t>(dep)] = 1;
                stack.push_back({dep});
                continue;
            }
            fanin_lits.clear();
            for (const std::string& in : g.inputs) {
                fanin_lits.push_back(value.at(in));
            }
            value[g.output] = g.build(aig, fanin_lits);
            state[static_cast<std::size_t>(f.gate)] = 2;
            stack.pop_back();
        }
    }

    for (const std::string& po : circuit->output_names) {
        const auto it = value.find(po);
        if (it == value.end()) {
            throw ParseError(file, 0,
                             "primary output \"" + po + "\" is undriven");
        }
        aig.add_po(it->second);
    }
    circuit->aig = aig.cleanup();
}

// --------------------------------------------------------------- BLIF --

/// One .names cover: cube patterns over the table inputs plus the shared
/// output phase (true = on-set rows, false = off-set rows).
struct BlifCover {
    std::vector<std::string> cubes;
    bool on_set = true;
};

Lit build_cover(Aig& aig, std::span<const Lit> fanins, const BlifCover& c) {
    if (fanins.empty()) {
        // Zero-input table: rows are bare output values.  Empty cover is
        // the BLIF constant 0; any row makes it the stated constant.
        const bool one = !c.cubes.empty() && c.on_set;
        return one ? Aig::kConst1 : Aig::kConst0;
    }
    std::vector<Lit> cube_lits;
    std::vector<Lit> term;
    for (const std::string& cube : c.cubes) {
        term.clear();
        for (std::size_t b = 0; b < cube.size(); ++b) {
            if (cube[b] == '1') {
                term.push_back(fanins[b]);
            } else if (cube[b] == '0') {
                term.push_back(Aig::lit_not(fanins[b]));
            }  // '-' contributes nothing to the cube
        }
        cube_lits.push_back(aig.and_many(term));
    }
    const Lit f = aig.or_many(cube_lits);
    return c.on_set ? f : Aig::lit_not(f);
}

}  // namespace

ImportedCircuit read_blif(std::istream& in, const std::string& filename) {
    ImportedCircuit circuit;
    std::vector<GateDef> gates;
    std::unordered_set<std::string> seen_inputs;

    // The table currently collecting rows (rows belong to the most recent
    // .names until the next directive).
    GateDef* current = nullptr;
    BlifCover* cover = nullptr;
    std::vector<std::unique_ptr<BlifCover>> covers;
    bool phase_known = false;
    bool saw_model = false;
    bool done = false;

    LineReader reader(in);
    std::string line;
    int line_no = 0;
    while (!done && reader.next(&line, &line_no)) {
        const std::vector<std::string> tokens = tokenize(line);
        if (tokens.empty()) continue;
        const std::string& head = tokens[0];
        if (head[0] == '.') {
            current = nullptr;
            cover = nullptr;
            phase_known = false;
        }
        if (head == ".model") {
            if (!saw_model && tokens.size() > 1) circuit.name = tokens[1];
            saw_model = true;
        } else if (head == ".inputs") {
            for (std::size_t i = 1; i < tokens.size(); ++i) {
                if (!seen_inputs.insert(tokens[i]).second) {
                    throw ParseError(filename, line_no,
                                     "primary input \"" + tokens[i] +
                                         "\" declared twice");
                }
                circuit.input_names.push_back(tokens[i]);
            }
        } else if (head == ".outputs") {
            circuit.output_names.insert(circuit.output_names.end(),
                                        tokens.begin() + 1, tokens.end());
        } else if (head == ".names") {
            if (tokens.size() < 2) {
                throw ParseError(filename, line_no,
                                 ".names needs at least an output signal");
            }
            GateDef gate;
            gate.output = tokens.back();
            gate.inputs.assign(tokens.begin() + 1, tokens.end() - 1);
            gate.line = line_no;
            covers.push_back(std::make_unique<BlifCover>());
            BlifCover* c = covers.back().get();
            gate.build = [c](Aig& aig, std::span<const Lit> fanins) {
                return build_cover(aig, fanins, *c);
            };
            gates.push_back(std::move(gate));
            current = &gates.back();
            cover = c;
        } else if (head == ".latch") {
            throw ParseError(filename, line_no,
                             "sequential BLIF is not supported (.latch); "
                             "this flow imports combinational circuits only");
        } else if (head == ".end") {
            done = true;
        } else if (head[0] == '.') {
            throw ParseError(filename, line_no,
                             "unsupported BLIF directive \"" + head + "\"");
        } else {
            // A cover row of the open .names table.
            if (!current) {
                throw ParseError(filename, line_no,
                                 "table row outside a .names block");
            }
            std::string pattern;
            char out_value;
            if (current->inputs.empty()) {
                if (tokens.size() != 1 || tokens[0].size() != 1) {
                    throw ParseError(filename, line_no,
                                     "zero-input .names row must be a single "
                                     "0 or 1");
                }
                out_value = tokens[0][0];
            } else {
                if (tokens.size() != 2 || tokens[1].size() != 1) {
                    throw ParseError(filename, line_no,
                                     "expected \"<cube> <0|1>\" row");
                }
                pattern = tokens[0];
                out_value = tokens[1][0];
                if (pattern.size() != current->inputs.size()) {
                    throw ParseError(
                        filename, line_no,
                        "cube width " + std::to_string(pattern.size()) +
                            " does not match the table's " +
                            std::to_string(current->inputs.size()) +
                            " inputs");
                }
                for (const char ch : pattern) {
                    if (ch != '0' && ch != '1' && ch != '-') {
                        throw ParseError(filename, line_no,
                                         std::string("bad cube character '") +
                                             ch + "' (expected 0, 1 or -)");
                    }
                }
            }
            if (out_value != '0' && out_value != '1') {
                throw ParseError(filename, line_no,
                                 std::string("bad output value '") +
                                     out_value + "' (expected 0 or 1)");
            }
            const bool on_set = out_value == '1';
            if (phase_known && cover->on_set != on_set) {
                throw ParseError(filename, line_no,
                                 "table mixes on-set and off-set rows");
            }
            cover->on_set = on_set;
            phase_known = true;
            cover->cubes.push_back(std::move(pattern));
        }
    }

    if (circuit.output_names.empty()) {
        throw ParseError(filename, 0, "no .outputs declared");
    }
    circuit.aig = Aig(static_cast<int>(circuit.input_names.size()));
    build_gates(filename, std::move(gates), &circuit);
    return circuit;
}

// -------------------------------------------------------------- bench --

namespace {

enum class BenchOp { kAnd, kNand, kOr, kNor, kXor, kXnor, kNot, kBuf };

Lit build_bench_gate(Aig& aig, std::span<const Lit> fanins, BenchOp op) {
    switch (op) {
        case BenchOp::kAnd:
            return aig.and_many(fanins);
        case BenchOp::kNand:
            return Aig::lit_not(aig.and_many(fanins));
        case BenchOp::kOr:
            return aig.or_many(fanins);
        case BenchOp::kNor:
            return Aig::lit_not(aig.or_many(fanins));
        case BenchOp::kXor:
        case BenchOp::kXnor: {
            Lit acc = fanins[0];
            for (std::size_t i = 1; i < fanins.size(); ++i) {
                acc = aig.xor2(acc, fanins[i]);
            }
            return op == BenchOp::kXor ? acc : Aig::lit_not(acc);
        }
        case BenchOp::kNot:
            return Aig::lit_not(fanins[0]);
        case BenchOp::kBuf:
            return fanins[0];
    }
    return Aig::kConst0;  // unreachable
}

}  // namespace

ImportedCircuit read_bench(std::istream& in, const std::string& filename) {
    ImportedCircuit circuit;
    std::vector<GateDef> gates;
    std::unordered_set<std::string> seen_inputs;

    LineReader reader(in);
    std::string line;
    int line_no = 0;
    while (reader.next(&line, &line_no)) {
        const std::string text = trim(line);
        if (text.empty()) continue;
        const std::size_t eq = text.find('=');
        const std::size_t open = text.find('(');
        const std::size_t close = text.rfind(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open) {
            throw ParseError(filename, line_no,
                             "expected INPUT(..), OUTPUT(..) or "
                             "\"name = GATE(..)\"");
        }
        const std::string args_text = text.substr(open + 1, close - open - 1);
        std::vector<std::string> args;
        {
            std::istringstream as(args_text);
            std::string item;
            while (std::getline(as, item, ',')) {
                const std::string a = trim(item);
                if (a.empty()) {
                    throw ParseError(filename, line_no,
                                     "empty argument in \"" + text + "\"");
                }
                args.push_back(a);
            }
        }
        if (eq == std::string::npos || eq > open) {
            const std::string keyword = upper(trim(text.substr(0, open)));
            if (args.size() != 1) {
                throw ParseError(filename, line_no,
                                 keyword + " takes exactly one signal");
            }
            if (keyword == "INPUT") {
                if (!seen_inputs.insert(args[0]).second) {
                    throw ParseError(filename, line_no,
                                     "primary input \"" + args[0] +
                                         "\" declared twice");
                }
                circuit.input_names.push_back(args[0]);
            } else if (keyword == "OUTPUT") {
                circuit.output_names.push_back(args[0]);
            } else {
                throw ParseError(filename, line_no,
                                 "unknown directive \"" + keyword + "\"");
            }
            continue;
        }
        GateDef gate;
        gate.output = trim(text.substr(0, eq));
        gate.line = line_no;
        if (gate.output.empty()) {
            throw ParseError(filename, line_no, "missing gate output name");
        }
        const std::string op_name =
            upper(trim(text.substr(eq + 1, open - eq - 1)));
        BenchOp op;
        if (op_name == "AND") {
            op = BenchOp::kAnd;
        } else if (op_name == "NAND") {
            op = BenchOp::kNand;
        } else if (op_name == "OR") {
            op = BenchOp::kOr;
        } else if (op_name == "NOR") {
            op = BenchOp::kNor;
        } else if (op_name == "XOR") {
            op = BenchOp::kXor;
        } else if (op_name == "XNOR") {
            op = BenchOp::kXnor;
        } else if (op_name == "NOT") {
            op = BenchOp::kNot;
        } else if (op_name == "BUFF" || op_name == "BUF") {
            op = BenchOp::kBuf;
        } else if (op_name == "DFF" || op_name == "DFFSR" ||
                   op_name == "SDFF" || op_name == "LATCH") {
            throw ParseError(filename, line_no,
                             "sequential element " + op_name +
                                 " is not supported; this flow imports "
                                 "combinational circuits only");
        } else {
            throw ParseError(filename, line_no,
                             "unknown gate type \"" + op_name + "\"");
        }
        if ((op == BenchOp::kNot || op == BenchOp::kBuf) && args.size() != 1) {
            throw ParseError(filename, line_no,
                             op_name + " takes exactly one input");
        }
        if (args.empty()) {
            throw ParseError(filename, line_no, op_name + " needs inputs");
        }
        gate.inputs = std::move(args);
        gate.build = [op](Aig& aig, std::span<const Lit> fanins) {
            return build_bench_gate(aig, fanins, op);
        };
        gates.push_back(std::move(gate));
    }

    if (circuit.output_names.empty()) {
        throw ParseError(filename, 0, "no OUTPUT(..) declared");
    }
    circuit.aig = Aig(static_cast<int>(circuit.input_names.size()));
    build_gates(filename, std::move(gates), &circuit);
    return circuit;
}

// -------------------------------------------------------------- AIGER --

namespace {

std::uint64_t parse_aiger_uint(const std::string& token,
                               const std::string& file, int line) {
    if (token.empty() ||
        !std::all_of(token.begin(), token.end(), [](unsigned char c) {
            return std::isdigit(c) != 0;
        })) {
        throw ParseError(file, line, "expected a number, got \"" + token + "\"");
    }
    try {
        return std::stoull(token);
    } catch (const std::exception&) {
        throw ParseError(file, line, "number out of range: \"" + token + "\"");
    }
}

/// AIGER's LEB128-style delta decoding for the binary "aig" format.
std::uint64_t decode_delta(std::istream& in, const std::string& file) {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
        const int byte = in.get();
        if (byte == std::char_traits<char>::eof()) {
            throw ParseError(file, 0,
                             "truncated binary AIGER (EOF inside an "
                             "and-gate delta)");
        }
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) return value;
        shift += 7;
        if (shift > 63) {
            throw ParseError(file, 0, "binary AIGER delta overflows 64 bits");
        }
    }
}

}  // namespace

ImportedCircuit read_aiger(std::istream& in, const std::string& filename) {
    std::string header;
    if (!std::getline(in, header)) {
        throw ParseError(filename, 1, "empty AIGER file");
    }
    const std::vector<std::string> h = tokenize(header);
    if (h.size() < 6 || (h[0] != "aag" && h[0] != "aig")) {
        throw ParseError(filename, 1,
                         "expected an AIGER header \"aag|aig M I L O A\"");
    }
    const bool binary = h[0] == "aig";
    const std::uint64_t max_var = parse_aiger_uint(h[1], filename, 1);
    const std::uint64_t num_inputs = parse_aiger_uint(h[2], filename, 1);
    const std::uint64_t num_latches = parse_aiger_uint(h[3], filename, 1);
    const std::uint64_t num_outputs = parse_aiger_uint(h[4], filename, 1);
    const std::uint64_t num_ands = parse_aiger_uint(h[5], filename, 1);
    if (num_latches > 0) {
        throw ParseError(filename, 1,
                         "sequential AIGER (latches) is not supported; this "
                         "flow imports combinational circuits only");
    }
    for (std::size_t i = 6; i < h.size(); ++i) {
        if (parse_aiger_uint(h[i], filename, 1) != 0) {
            throw ParseError(filename, 1,
                             "AIGER extension sections (bad/constraint/"
                             "justice/fairness) are not supported");
        }
    }
    if (max_var < num_inputs + num_ands) {
        throw ParseError(filename, 1,
                         "AIGER header: M must be >= I + L + A");
    }
    if (max_var > (1u << 24)) {
        throw ParseError(filename, 1, "AIGER circuit too large");
    }

    ImportedCircuit circuit;
    circuit.aig = Aig(static_cast<int>(num_inputs));
    Aig& aig = circuit.aig;

    constexpr Lit kUndef = Aig::kNoLit;
    std::vector<Lit> var2lit(static_cast<std::size_t>(max_var) + 1, kUndef);
    var2lit[0] = Aig::kConst0;

    int line_no = 1;
    const auto next_line = [&](const char* what) {
        std::string l;
        if (!std::getline(in, l)) {
            throw ParseError(filename, line_no,
                             std::string("truncated AIGER file (expected ") +
                                 what + ")");
        }
        ++line_no;
        return l;
    };
    const auto map_lit = [&](std::uint64_t aiger_lit,
                             int at_line) -> Lit {
        const std::uint64_t var = aiger_lit >> 1;
        if (var > max_var) {
            throw ParseError(filename, at_line,
                             "literal " + std::to_string(aiger_lit) +
                                 " exceeds the declared maximum variable");
        }
        const Lit base = var2lit[static_cast<std::size_t>(var)];
        if (base == kUndef) {
            throw ParseError(filename, at_line,
                             "literal " + std::to_string(aiger_lit) +
                                 " references an undefined variable "
                                 "(undriven)");
        }
        return (aiger_lit & 1) ? Aig::lit_not(base) : base;
    };

    std::vector<std::uint64_t> output_lits;
    output_lits.reserve(static_cast<std::size_t>(num_outputs));

    if (!binary) {
        for (std::uint64_t i = 0; i < num_inputs; ++i) {
            const std::string l = next_line("an input literal");
            const std::uint64_t lit = parse_aiger_uint(trim(l), filename, line_no);
            if (lit < 2 || (lit & 1) != 0 || (lit >> 1) > max_var) {
                throw ParseError(filename, line_no,
                                 "bad input literal " + std::to_string(lit));
            }
            Lit& slot = var2lit[static_cast<std::size_t>(lit >> 1)];
            if (slot != kUndef) {
                throw ParseError(filename, line_no,
                                 "variable " + std::to_string(lit >> 1) +
                                     " is defined twice (multiply driven)");
            }
            slot = aig.pi(static_cast<int>(i));
        }
        for (std::uint64_t i = 0; i < num_outputs; ++i) {
            const std::string l = next_line("an output literal");
            output_lits.push_back(parse_aiger_uint(trim(l), filename, line_no));
        }
        // Ascii and-gates may reference later definitions; collect, then
        // resolve in dependency order with cycle detection.
        struct AndDef {
            std::uint64_t rhs0 = 0;
            std::uint64_t rhs1 = 0;
            int line = 0;
            int state = 0;  // 0 unvisited, 1 on stack, 2 built
        };
        std::unordered_map<std::uint64_t, AndDef> ands;
        std::vector<std::uint64_t> order;
        for (std::uint64_t i = 0; i < num_ands; ++i) {
            const std::vector<std::string> t =
                tokenize(next_line("an and-gate definition"));
            if (t.size() != 3) {
                throw ParseError(filename, line_no,
                                 "expected \"lhs rhs0 rhs1\"");
            }
            const std::uint64_t lhs = parse_aiger_uint(t[0], filename, line_no);
            if (lhs < 2 || (lhs & 1) != 0 || (lhs >> 1) > max_var) {
                throw ParseError(filename, line_no,
                                 "bad and-gate literal " + std::to_string(lhs));
            }
            if (var2lit[static_cast<std::size_t>(lhs >> 1)] != kUndef ||
                ands.count(lhs >> 1)) {
                throw ParseError(filename, line_no,
                                 "variable " + std::to_string(lhs >> 1) +
                                     " is defined twice (multiply driven)");
            }
            AndDef def;
            def.rhs0 = parse_aiger_uint(t[1], filename, line_no);
            def.rhs1 = parse_aiger_uint(t[2], filename, line_no);
            def.line = line_no;
            ands.emplace(lhs >> 1, def);
            order.push_back(lhs >> 1);
        }
        struct Frame {
            std::uint64_t var;
            int next = 0;
        };
        std::vector<Frame> stack;
        for (const std::uint64_t root : order) {
            if (ands.at(root).state != 0) continue;
            ands.at(root).state = 1;
            stack.push_back({root});
            while (!stack.empty()) {
                Frame& f = stack.back();
                AndDef& d = ands.at(f.var);
                if (f.next < 2) {
                    const std::uint64_t rhs = f.next == 0 ? d.rhs0 : d.rhs1;
                    ++f.next;
                    const std::uint64_t var = rhs >> 1;
                    if (var <= max_var &&
                        var2lit[static_cast<std::size_t>(var)] != kUndef) {
                        continue;
                    }
                    const auto it = ands.find(var);
                    if (it == ands.end()) {
                        map_lit(rhs, d.line);  // throws undriven/out-of-range
                        continue;
                    }
                    if (it->second.state == 1) {
                        throw ParseError(filename, d.line,
                                         "combinational cycle through "
                                         "variable " + std::to_string(var));
                    }
                    if (it->second.state == 2) continue;
                    it->second.state = 1;
                    stack.push_back({var});
                    continue;
                }
                var2lit[static_cast<std::size_t>(f.var)] =
                    aig.and2(map_lit(d.rhs0, d.line), map_lit(d.rhs1, d.line));
                d.state = 2;
                stack.pop_back();
            }
        }
    } else {
        for (std::uint64_t i = 0; i < num_inputs; ++i) {
            var2lit[static_cast<std::size_t>(i) + 1] =
                aig.pi(static_cast<int>(i));
        }
        for (std::uint64_t i = 0; i < num_outputs; ++i) {
            const std::string l = next_line("an output literal");
            output_lits.push_back(parse_aiger_uint(trim(l), filename, line_no));
        }
        for (std::uint64_t i = 0; i < num_ands; ++i) {
            const std::uint64_t lhs = 2 * (num_inputs + i + 1);
            const std::uint64_t delta0 = decode_delta(in, filename);
            if (delta0 > lhs) {
                throw ParseError(filename, 0,
                                 "binary AIGER delta points past its "
                                 "and-gate (corrupt or reordered file)");
            }
            const std::uint64_t rhs0 = lhs - delta0;
            const std::uint64_t delta1 = decode_delta(in, filename);
            if (delta1 > rhs0) {
                throw ParseError(filename, 0,
                                 "binary AIGER delta points past its "
                                 "and-gate (corrupt or reordered file)");
            }
            const std::uint64_t rhs1 = rhs0 - delta1;
            var2lit[static_cast<std::size_t>(lhs >> 1)] =
                aig.and2(map_lit(rhs0, 0), map_lit(rhs1, 0));
        }
    }

    // Optional symbol table and comment section.
    circuit.input_names.resize(static_cast<std::size_t>(num_inputs));
    for (std::uint64_t i = 0; i < num_inputs; ++i) {
        circuit.input_names[static_cast<std::size_t>(i)] =
            "i" + std::to_string(i);
    }
    circuit.output_names.resize(static_cast<std::size_t>(num_outputs));
    for (std::uint64_t i = 0; i < num_outputs; ++i) {
        circuit.output_names[static_cast<std::size_t>(i)] =
            "o" + std::to_string(i);
    }
    std::string sym;
    while (std::getline(in, sym)) {
        ++line_no;
        if (sym.empty()) continue;
        if (sym[0] == 'c') break;  // comment section: everything after is free text
        if (sym[0] != 'i' && sym[0] != 'o' && sym[0] != 'l') {
            throw ParseError(filename, line_no,
                             "bad symbol-table line \"" + sym + "\"");
        }
        const std::size_t space = sym.find(' ');
        if (space == std::string::npos || space < 2) {
            throw ParseError(filename, line_no,
                             "bad symbol-table line \"" + sym + "\"");
        }
        if (sym[0] == 'l') continue;  // no latches; tolerate stray symbols
        const std::uint64_t pos =
            parse_aiger_uint(sym.substr(1, space - 1), filename, line_no);
        const std::string name = trim(sym.substr(space + 1));
        if (sym[0] == 'i' && pos < num_inputs && !name.empty()) {
            circuit.input_names[static_cast<std::size_t>(pos)] = name;
        } else if (sym[0] == 'o' && pos < num_outputs && !name.empty()) {
            circuit.output_names[static_cast<std::size_t>(pos)] = name;
        }
    }

    for (std::size_t i = 0; i < output_lits.size(); ++i) {
        aig.add_po(map_lit(output_lits[i], 0));
    }
    circuit.aig = aig.cleanup();
    return circuit;
}

void write_aiger(const Aig& aig, std::ostream& out, bool binary) {
    const int num_inputs = aig.num_pis();
    const int num_ands = aig.num_ands();
    const int max_var = aig.num_nodes() - 1;
    out << (binary ? "aig " : "aag ") << max_var << ' ' << num_inputs
        << " 0 " << aig.num_pos() << ' ' << num_ands << '\n';
    if (!binary) {
        for (int i = 0; i < num_inputs; ++i) out << (2 * (i + 1)) << '\n';
    }
    for (int i = 0; i < aig.num_pos(); ++i) out << aig.po(i) << '\n';
    const auto encode_delta = [&out](std::uint64_t x) {
        while (x & ~0x7full) {
            out.put(static_cast<char>(0x80 | (x & 0x7f)));
            x >>= 7;
        }
        out.put(static_cast<char>(x));
    };
    for (int n = num_inputs + 1; n < aig.num_nodes(); ++n) {
        const std::uint64_t lhs = 2ull * static_cast<std::uint64_t>(n);
        const std::uint64_t f0 = aig.fanin0(n);
        const std::uint64_t f1 = aig.fanin1(n);
        const std::uint64_t rhs0 = std::max(f0, f1);
        const std::uint64_t rhs1 = std::min(f0, f1);
        if (binary) {
            encode_delta(lhs - rhs0);
            encode_delta(rhs0 - rhs1);
        } else {
            out << lhs << ' ' << rhs0 << ' ' << rhs1 << '\n';
        }
    }
}

// ----------------------------------------------------------- dispatch --

ImportedCircuit load_circuit(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw ParseError(path, 0, "cannot open circuit file");
    }
    std::string ext;
    const std::size_t dot = path.find_last_of('.');
    if (dot != std::string::npos) {
        ext = path.substr(dot + 1);
        std::transform(ext.begin(), ext.end(), ext.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(std::tolower(c));
                       });
    }
    ImportedCircuit circuit;
    if (ext == "blif") {
        circuit = read_blif(in, path);
    } else if (ext == "bench") {
        circuit = read_bench(in, path);
    } else if (ext == "aag" || ext == "aig") {
        circuit = read_aiger(in, path);
    } else {
        // Unknown extension: sniff the first bytes, then rewind.
        char head[4] = {0, 0, 0, 0};
        in.read(head, sizeof(head));
        in.clear();
        in.seekg(0);
        const std::string magic(head, static_cast<std::size_t>(4));
        if (magic.rfind("aag", 0) == 0 || magic.rfind("aig", 0) == 0) {
            circuit = read_aiger(in, path);
        } else if (head[0] == '.') {
            circuit = read_blif(in, path);
        } else {
            circuit = read_bench(in, path);
        }
    }
    if (circuit.name.empty()) circuit.name = file_stem(path);
    return circuit;
}

tech::Netlist import_netlist(const ImportedCircuit& circuit,
                             const tech::GateLibrary& library,
                             const tech::TechMapParams& params) {
    // No pin is a select: imported circuits carry no merged-specification
    // structure; every input is an attacker-visible primary input.
    const std::vector<bool> is_select(circuit.input_names.size(), false);
    return tech::tech_map(circuit.aig, library, params, circuit.input_names,
                          is_select);
}

}  // namespace mvf::io
