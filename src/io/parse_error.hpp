#pragma once
// Structured parse failure for the benchmark-circuit readers.
//
// The importers (io/import.hpp) never return nullopt on malformed input:
// they throw a ParseError carrying the file name and 1-based line number,
// formatted "file:line: message" so CLI surfaces (mvf run/attack/batch,
// the serve scheduler) can print it verbatim and editors can jump to it.

#include <stdexcept>
#include <string>

namespace mvf::io {

class ParseError : public std::runtime_error {
public:
    ParseError(std::string file, int line, const std::string& message)
        : std::runtime_error(format(file, line, message)),
          file_(std::move(file)),
          line_(line) {}

    /// File the error was raised for ("<stream>" when parsing from memory).
    const std::string& file() const { return file_; }
    /// 1-based line number; 0 when the error is not tied to one line
    /// (e.g. an undriven net detected after the whole file was read).
    int line() const { return line_; }

private:
    static std::string format(const std::string& file, int line,
                              const std::string& message) {
        std::string out = file.empty() ? std::string("<stream>") : file;
        if (line > 0) out += ":" + std::to_string(line);
        out += ": ";
        out += message;
        return out;
    }

    std::string file_;
    int line_;
};

}  // namespace mvf::io
