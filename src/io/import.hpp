#pragma once
// Benchmark circuit frontend: BLIF / AIGER / ISCAS-85 .bench readers.
//
// The paper evaluates camouflaging on real mapped circuits; these readers
// turn standard benchmark files into the same net::Aig / tech::Netlist the
// synthesis flow produces, so an imported circuit is a first-class subject
// for camouflage injection (camo/inject.hpp) and the whole attack stack.
//
// Supported formats (dispatch in load_circuit by extension, then content):
//   BLIF   .model/.inputs/.outputs/.names with multi-cube covers,
//          don't-cares ('-') and 0-rows (off-set covers); arbitrary fanin.
//          .latch is rejected with a clear "sequential" error; .gate,
//          .subckt and other structural directives are rejected as
//          unsupported.
//   AIGER  both ascii "aag" and binary "aig" headers, symbol tables and
//          comment sections included; latches are rejected.
//   bench  INPUT/OUTPUT plus AND/NAND/OR/NOR/XOR/XNOR/NOT/BUFF (case-
//          insensitive, arbitrary fanin where the gate allows it); DFF is
//          rejected as sequential.
//
// Every reader validates the net level before building: undriven nets,
// multiply-driven nets and combinational cycles all throw io::ParseError
// (file/line; see parse_error.hpp).  There is no truth-table collapse and
// no input cap -- covers become AND/OR trees in the AIG.

#include <iosfwd>
#include <string>
#include <vector>

#include "io/parse_error.hpp"
#include "map/gate_library.hpp"
#include "map/netlist.hpp"
#include "map/tech_map.hpp"
#include "net/aig.hpp"

namespace mvf::io {

/// A parsed combinational circuit: structural AIG plus the file's port
/// names (input i = AIG PI i, output j = AIG PO j).
struct ImportedCircuit {
    std::string name;  ///< .model name / file stem; may be empty
    net::Aig aig{0};
    std::vector<std::string> input_names;
    std::vector<std::string> output_names;
};

/// Structural BLIF reader (see the header comment for the subset).
/// `filename` only labels ParseError diagnostics.
ImportedCircuit read_blif(std::istream& in, const std::string& filename = "");

/// ISCAS-ish .bench reader completing io::write_bench.
ImportedCircuit read_bench(std::istream& in, const std::string& filename = "");

/// AIGER reader: ascii "aag" and binary "aig", symbol tables honored.
/// Open the stream in binary mode for "aig" files.
ImportedCircuit read_aiger(std::istream& in, const std::string& filename = "");

/// Writes the AIG as AIGER: ascii "aag" (default) or the binary "aig"
/// delta encoding.  Round-trips through read_aiger.
void write_aiger(const net::Aig& aig, std::ostream& out, bool binary = false);

/// Opens `path` and dispatches on the extension (.blif, .bench, .aag,
/// .aig), falling back to content sniffing for anything else.  Throws
/// ParseError when the file cannot be opened or parsed.
ImportedCircuit load_circuit(const std::string& path);

/// The import-to-flow bridge: technology-maps the circuit onto `library`
/// (the same mapper the synthesis flow uses), preserving the file's input
/// names.  The result is what camo::inject camouflages.
tech::Netlist import_netlist(const ImportedCircuit& circuit,
                             const tech::GateLibrary& library,
                             const tech::TechMapParams& params = {});

}  // namespace mvf::io
