#include "logic/isop.hpp"

#include <cassert>

namespace mvf::logic {
namespace {

// Recursive Minato-Morreale.  Returns the cover and writes the cover's
// function to *cover_tt (same variable space as the arguments).
std::vector<Cube> isop_rec(const TruthTable& lower, const TruthTable& upper,
                           int top_var, TruthTable* cover_tt) {
    if (lower.is_zero()) {
        *cover_tt = TruthTable::zeros(lower.num_vars());
        return {};
    }
    if (upper.is_ones()) {
        *cover_tt = TruthTable::ones(lower.num_vars());
        return {Cube{}};
    }
    // Find the highest variable either bound depends on.
    int v = top_var;
    while (v >= 0 && !lower.depends_on(v) && !upper.depends_on(v)) --v;
    assert(v >= 0 && "non-constant interval must depend on some variable");

    const TruthTable l0 = lower.cofactor(v, false);
    const TruthTable l1 = lower.cofactor(v, true);
    const TruthTable u0 = upper.cofactor(v, false);
    const TruthTable u1 = upper.cofactor(v, true);

    TruthTable g0;
    TruthTable g1;
    TruthTable g2;
    std::vector<Cube> f0 = isop_rec(l0 & ~u1, u0, v - 1, &g0);
    std::vector<Cube> f1 = isop_rec(l1 & ~u0, u1, v - 1, &g1);
    const TruthTable l_rest = (l0 & ~g0) | (l1 & ~g1);
    std::vector<Cube> f2 = isop_rec(l_rest, u0 & u1, v - 1, &g2);

    const TruthTable xv = TruthTable::var(v, lower.num_vars());
    *cover_tt = (~xv & g0) | (xv & g1) | g2;

    std::vector<Cube> cover;
    cover.reserve(f0.size() + f1.size() + f2.size());
    for (Cube c : f0) {
        c.add_literal(v, false);
        cover.push_back(c);
    }
    for (Cube c : f1) {
        c.add_literal(v, true);
        cover.push_back(c);
    }
    for (const Cube& c : f2) cover.push_back(c);
    return cover;
}

}  // namespace

Sop isop(const TruthTable& lower, const TruthTable& upper) {
    assert(lower.num_vars() == upper.num_vars());
    assert((lower & ~upper).is_zero() && "isop requires lower <= upper");
    Sop result;
    result.num_vars = lower.num_vars();
    TruthTable cover_tt;
    result.cubes = isop_rec(lower, upper, lower.num_vars() - 1, &cover_tt);
    return result;
}

Sop isop(const TruthTable& function) { return isop(function, function); }

Sop isop_best_polarity(const TruthTable& function, bool* complemented) {
    Sop pos = isop(function);
    Sop neg = isop(~function);
    const auto cost = [](const Sop& s) {
        return s.num_literals() * 64 + s.num_cubes();
    };
    if (cost(neg) < cost(pos)) {
        *complemented = true;
        return neg;
    }
    *complemented = false;
    return pos;
}

}  // namespace mvf::logic
