#include "logic/sop.hpp"

namespace mvf::logic {

TruthTable Cube::to_truth_table(int num_vars) const {
    TruthTable t = TruthTable::ones(num_vars);
    for (int v = 0; v < num_vars; ++v) {
        if (!has_var(v)) continue;
        const TruthTable lit = TruthTable::var(v, num_vars);
        t &= is_positive(v) ? lit : ~lit;
    }
    return t;
}

int Sop::num_literals() const {
    int n = 0;
    for (const auto& c : cubes) n += c.num_literals();
    return n;
}

TruthTable Sop::to_truth_table() const {
    TruthTable t(num_vars);
    for (const auto& c : cubes) t |= c.to_truth_table(num_vars);
    return t;
}

std::string Sop::to_string() const {
    if (cubes.empty()) return "0";
    std::string out;
    for (std::size_t i = 0; i < cubes.size(); ++i) {
        if (i) out += " + ";
        const Cube& c = cubes[i];
        if (c.mask == 0) {
            out += "1";
            continue;
        }
        for (int v = 0; v < num_vars; ++v) {
            if (!c.has_var(v)) continue;
            out += static_cast<char>('a' + v);
            if (!c.is_positive(v)) out += '\'';
        }
    }
    return out;
}

}  // namespace mvf::logic
