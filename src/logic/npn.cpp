#include "logic/npn.hpp"

#include <algorithm>

namespace mvf::logic {
namespace {

std::array<std::array<std::uint8_t, 4>, 24> make_permutations() {
    std::array<std::array<std::uint8_t, 4>, 24> perms{};
    std::array<std::uint8_t, 4> p{{0, 1, 2, 3}};
    int i = 0;
    do {
        perms[static_cast<std::size_t>(i++)] = p;
    } while (std::next_permutation(p.begin(), p.end()));
    return perms;
}

}  // namespace

const std::array<std::array<std::uint8_t, 4>, 24>& NpnManager::permutations() {
    static const auto perms = make_permutations();
    return perms;
}

NpnManager::NpnManager() : table_(1u << 16), computed_(1u << 16, false) {}

std::uint16_t NpnManager::apply(std::uint16_t tt, const NpnTransform& t) {
    std::uint16_t out = 0;
    for (std::uint32_t m = 0; m < 16; ++m) {
        std::uint32_t y = 0;
        for (int j = 0; j < 4; ++j) {
            const std::uint32_t bit =
                ((m >> t.perm[static_cast<std::size_t>(j)]) & 1) ^
                ((t.input_neg >> j) & 1);
            y |= bit << j;
        }
        std::uint32_t value = (tt >> y) & 1;
        value ^= t.output_neg ? 1u : 0u;
        out |= static_cast<std::uint16_t>(value << m);
    }
    return out;
}

const NpnEntry& NpnManager::canonize(std::uint16_t tt) {
    if (computed_[tt]) return table_[tt];

    NpnEntry best;
    best.canon = 0xffff;
    bool first = true;
    for (const auto& perm : permutations()) {
        for (std::uint8_t neg = 0; neg < 16; ++neg) {
            for (int out_neg = 0; out_neg < 2; ++out_neg) {
                NpnTransform t{perm, neg, out_neg != 0};
                const std::uint16_t candidate = apply(tt, t);
                if (first || candidate < best.canon) {
                    best.canon = candidate;
                    best.transform = t;
                    first = false;
                }
            }
        }
    }
    table_[tt] = best;
    computed_[tt] = true;
    return table_[tt];
}

NpnRebuildWiring NpnManager::rebuild_wiring(const NpnTransform& t) {
    // canon(x) = f(y), y_j = x_{perm[j]} ^ neg_j  and  f = canon after undo:
    // f(z) = canon(x) ^ out_neg  where  x_{perm[j]} = z_j ^ neg_j.
    // Hence structure (canonical) input i = perm[j] reads leaf j = perm^-1(i).
    NpnRebuildWiring w;
    for (int j = 0; j < 4; ++j) {
        const std::uint8_t i = t.perm[static_cast<std::size_t>(j)];
        w.leaf_of_input[i] = static_cast<std::uint8_t>(j);
        w.leaf_negated[i] = ((t.input_neg >> j) & 1) != 0;
    }
    w.output_neg = t.output_neg;
    return w;
}

}  // namespace mvf::logic
