#pragma once
// Algebraic factoring of SOP covers into factored-form trees.
//
// The factored form drives multi-level AIG construction: a small factored
// form means a small initial network, which the optimization script then
// improves further.  The algorithm is classic literal-division ("quick
// factor"): repeatedly divide the cover by its most frequent literal.

#include <cstdint>
#include <string>
#include <vector>

#include "logic/sop.hpp"

namespace mvf::logic {

enum class FactorKind : std::uint8_t {
    kConst0,
    kConst1,
    kLiteral,  ///< a variable or its complement
    kAnd,
    kOr,
};

/// One node of a factored-form tree stored in a FactorTree arena.
struct FactorNode {
    FactorKind kind = FactorKind::kConst0;
    int var = -1;          ///< for kLiteral
    bool negated = false;  ///< for kLiteral
    std::vector<int> children;  ///< for kAnd / kOr (arena indices)
};

/// Arena-allocated factored form.  Node 0 exists only after building; the
/// tree root is `root()`.
class FactorTree {
public:
    /// Factored form of the given cover.
    static FactorTree from_sop(const Sop& sop);

    int root() const { return root_; }
    const FactorNode& node(int idx) const { return nodes_[static_cast<std::size_t>(idx)]; }
    int num_nodes() const { return static_cast<int>(nodes_.size()); }

    /// Total literal count of the factored form.
    int num_literals() const;

    /// Truth table of the factored form over `num_vars` variables.
    TruthTable to_truth_table(int num_vars) const;

    /// Rendering like "((a b') + c) d".
    std::string to_string() const;

private:
    int add(FactorNode n);
    int build(std::vector<Cube> cubes);
    int build_cube(const Cube& cube);

    int literals_below(int idx) const;
    TruthTable tt_below(int idx, int num_vars) const;
    std::string string_below(int idx) const;

    std::vector<FactorNode> nodes_;
    int root_ = -1;
};

}  // namespace mvf::logic
