#include "logic/truth_table.hpp"

#include <cassert>
#include <cstdio>

namespace mvf::logic {
namespace {

// Magic masks for variables living inside a single 64-bit word.
constexpr std::uint64_t kVarMask[6] = {
    0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull,
};

std::size_t words_for(int num_vars) {
    return num_vars <= 6 ? 1u : (std::size_t{1} << (num_vars - 6));
}

}  // namespace

TruthTable::TruthTable(int num_vars)
    : num_vars_(num_vars), words_(words_for(num_vars), 0) {
    assert(num_vars >= 0 && num_vars <= 16);
}

TruthTable TruthTable::ones(int num_vars) {
    TruthTable t(num_vars);
    for (auto& w : t.words_) w = ~0ull;
    t.normalize();
    return t;
}

TruthTable TruthTable::var(int var, int num_vars) {
    assert(var >= 0 && var < num_vars);
    TruthTable t(num_vars);
    if (var < 6) {
        for (auto& w : t.words_) w = kVarMask[var];
    } else {
        const std::size_t stride = std::size_t{1} << (var - 6);
        for (std::size_t i = 0; i < t.words_.size(); ++i) {
            if ((i / stride) & 1) t.words_[i] = ~0ull;
        }
    }
    t.normalize();
    return t;
}

TruthTable TruthTable::from_u64(int num_vars, std::uint64_t bits) {
    assert(num_vars <= 6);
    TruthTable t(num_vars);
    t.words_[0] = bits;
    t.normalize();
    return t;
}

TruthTable TruthTable::from_function(
    int num_vars, const std::function<bool(std::uint32_t)>& f) {
    TruthTable t(num_vars);
    for (std::uint32_t m = 0; m < t.num_bits(); ++m) t.set_bit(m, f(m));
    return t;
}

bool TruthTable::bit(std::uint32_t minterm) const {
    return (words_[minterm >> 6] >> (minterm & 63)) & 1;
}

void TruthTable::set_bit(std::uint32_t minterm, bool value) {
    const std::uint64_t mask = 1ull << (minterm & 63);
    if (value)
        words_[minterm >> 6] |= mask;
    else
        words_[minterm >> 6] &= ~mask;
}

bool TruthTable::is_zero() const {
    for (const auto w : words_)
        if (w) return false;
    return true;
}

bool TruthTable::is_ones() const { return *this == ones(num_vars_); }

int TruthTable::count_ones() const {
    int n = 0;
    for (const auto w : words_) n += __builtin_popcountll(w);
    return n;
}

TruthTable TruthTable::operator~() const {
    TruthTable t(*this);
    for (auto& w : t.words_) w = ~w;
    t.normalize();
    return t;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
    TruthTable t(*this);
    return t &= o;
}
TruthTable TruthTable::operator|(const TruthTable& o) const {
    TruthTable t(*this);
    return t |= o;
}
TruthTable TruthTable::operator^(const TruthTable& o) const {
    TruthTable t(*this);
    return t ^= o;
}

TruthTable& TruthTable::operator&=(const TruthTable& o) {
    assert(num_vars_ == o.num_vars_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
}
TruthTable& TruthTable::operator|=(const TruthTable& o) {
    assert(num_vars_ == o.num_vars_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
}
TruthTable& TruthTable::operator^=(const TruthTable& o) {
    assert(num_vars_ == o.num_vars_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
    return *this;
}

TruthTable TruthTable::cofactor(int var, bool value) const {
    assert(var >= 0 && var < num_vars_);
    TruthTable t(*this);
    if (var < 6) {
        const int shift = 1 << var;
        const std::uint64_t mask = kVarMask[var];
        for (auto& w : t.words_) {
            if (value)
                w = (w & mask) | ((w & mask) >> shift);
            else
                w = (w & ~mask) | ((w & ~mask) << shift);
        }
    } else {
        const std::size_t stride = std::size_t{1} << (var - 6);
        for (std::size_t i = 0; i < t.words_.size(); ++i) {
            const bool hi = (i / stride) & 1;
            if (hi != value) {
                const std::size_t src = value ? i + stride : i - stride;
                t.words_[i] = t.words_[src];
            }
        }
    }
    t.normalize();
    return t;
}

bool TruthTable::depends_on(int var) const {
    return cofactor(var, false) != cofactor(var, true);
}

std::vector<int> TruthTable::support() const {
    std::vector<int> vars;
    for (int v = 0; v < num_vars_; ++v)
        if (depends_on(v)) vars.push_back(v);
    return vars;
}

TruthTable TruthTable::permute(std::span<const int> perm) const {
    assert(static_cast<int>(perm.size()) == num_vars_);
    TruthTable t(num_vars_);
    for (std::uint32_t m = 0; m < num_bits(); ++m) {
        std::uint32_t src = 0;
        for (int j = 0; j < num_vars_; ++j) {
            if ((m >> perm[static_cast<std::size_t>(j)]) & 1) src |= 1u << j;
        }
        if (bit(src)) t.set_bit(m, true);
    }
    return t;
}

TruthTable TruthTable::extend(int new_num_vars) const {
    assert(new_num_vars >= num_vars_);
    TruthTable t(new_num_vars);
    for (std::uint32_t m = 0; m < t.num_bits(); ++m) {
        if (bit(m & (num_bits() - 1))) t.set_bit(m, true);
    }
    return t;
}

TruthTable TruthTable::project(std::span<const int> vars) const {
    TruthTable t(static_cast<int>(vars.size()));
    for (std::uint32_t m = 0; m < t.num_bits(); ++m) {
        std::uint32_t src = 0;
        for (std::size_t j = 0; j < vars.size(); ++j) {
            if ((m >> j) & 1) src |= 1u << vars[j];
        }
        if (bit(src)) t.set_bit(m, true);
    }
    return t;
}

std::size_t TruthTable::hash() const {
    std::size_t h = static_cast<std::size_t>(num_vars_) * 0x9e3779b97f4a7c15ull;
    for (const auto w : words_) {
        h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
}

std::string TruthTable::to_hex() const {
    std::string out;
    char buf[20];
    const int digits = num_vars_ <= 2 ? 1 : (1 << (num_vars_ - 2));
    for (auto it = words_.rbegin(); it != words_.rend(); ++it) {
        const int d = words_.size() == 1 ? digits : 16;
        std::snprintf(buf, sizeof buf, "%0*llx", d,
                      static_cast<unsigned long long>(*it));
        out += buf;
    }
    return out;
}

void TruthTable::normalize() {
    if (num_vars_ < 6) {
        words_[0] &= (1ull << (1 << num_vars_)) - 1;
    }
}

}  // namespace mvf::logic
