#pragma once
// Dynamic word-parallel truth tables.
//
// TruthTable is the workhorse function representation of the whole flow:
// S-box outputs, merged-specification outputs, cut functions during rewriting
// and technology mapping, camouflaged-cell plausible functions, and the
// ABSFUNC select-abstraction all manipulate TruthTable values.
//
// A table over n variables stores 2^n bits packed into 64-bit words.  For
// n < 6 a single word is used and the unused high bits are kept zero
// (tables are always kept normalized so operator== and hashing are exact).
// Variable 0 is the fastest-toggling input (minterm bit 0).

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace mvf::logic {

class TruthTable {
public:
    /// Constant-false table over zero variables.
    TruthTable() : TruthTable(0) {}

    /// Constant-false table over `num_vars` variables (0 <= num_vars <= 16).
    explicit TruthTable(int num_vars);

    static TruthTable zeros(int num_vars) { return TruthTable(num_vars); }
    static TruthTable ones(int num_vars);

    /// Projection function of input `var` in a space of `num_vars` variables.
    static TruthTable var(int var, int num_vars);

    /// Table over `num_vars` <= 6 variables whose bits are the low 2^n bits
    /// of `bits`.
    static TruthTable from_u64(int num_vars, std::uint64_t bits);

    /// Builds a table by evaluating `f` on every minterm index.
    static TruthTable from_function(int num_vars,
                                    const std::function<bool(std::uint32_t)>& f);

    int num_vars() const { return num_vars_; }
    std::uint32_t num_bits() const { return 1u << num_vars_; }
    std::size_t num_words() const { return words_.size(); }
    std::uint64_t word(std::size_t i) const { return words_[i]; }

    bool bit(std::uint32_t minterm) const;
    void set_bit(std::uint32_t minterm, bool value);

    bool is_zero() const;
    bool is_ones() const;
    bool is_const() const { return is_zero() || is_ones(); }
    int count_ones() const;

    bool operator==(const TruthTable& other) const = default;

    TruthTable operator~() const;
    TruthTable operator&(const TruthTable& o) const;
    TruthTable operator|(const TruthTable& o) const;
    TruthTable operator^(const TruthTable& o) const;
    TruthTable& operator&=(const TruthTable& o);
    TruthTable& operator|=(const TruthTable& o);
    TruthTable& operator^=(const TruthTable& o);

    /// Cofactor with `var` fixed to `value`; the result keeps the same
    /// variable space (it simply no longer depends on `var`).
    TruthTable cofactor(int var, bool value) const;

    /// True iff the function's value changes with `var` for some minterm.
    bool depends_on(int var) const;

    /// Indices of all variables the function depends on, ascending.
    std::vector<int> support() const;

    /// Input permutation: result g satisfies
    ///   g(x_0..x_{n-1}) = f applied with its input i reading x_{perm[i]}.
    /// perm must be a permutation of {0..n-1}.
    TruthTable permute(std::span<const int> perm) const;

    /// Re-expresses the function in a larger variable space; new variables
    /// are don't-cares.  `new_num_vars >= num_vars()`.
    TruthTable extend(int new_num_vars) const;

    /// Projects onto the variables in `vars` (which must contain the whole
    /// support): result h over |vars| variables with h's input j bound to
    /// original variable vars[j].
    TruthTable project(std::span<const int> vars) const;

    /// Low 2^min(num_vars,6) bits of word 0 (handy for <=4-var matching).
    std::uint64_t as_u64() const { return words_[0]; }

    std::size_t hash() const;
    std::string to_hex() const;

private:
    void normalize();

    int num_vars_;
    std::vector<std::uint64_t> words_;
};

struct TruthTableHash {
    std::size_t operator()(const TruthTable& t) const { return t.hash(); }
};

}  // namespace mvf::logic
