#pragma once
// Irredundant sum-of-products generation (Minato-Morreale algorithm).
//
// Given an incompletely specified function sandwiched between `lower`
// (onset) and `upper` (onset plus don't-cares), produces an irredundant
// cover F with lower <= F <= upper.  Used to seed AIG construction from
// truth tables and to resynthesize cuts during refactoring.

#include "logic/sop.hpp"
#include "logic/truth_table.hpp"

namespace mvf::logic {

/// Computes an irredundant SOP cover of any function between `lower` and
/// `upper` (requires lower <= upper, same variable space).
Sop isop(const TruthTable& lower, const TruthTable& upper);

/// Completely specified convenience overload.
Sop isop(const TruthTable& function);

/// Returns the smaller (by literal count, then cube count) of an ISOP of the
/// function and an ISOP of its complement.  `*complemented` reports which
/// one was returned.
Sop isop_best_polarity(const TruthTable& function, bool* complemented);

}  // namespace mvf::logic
