#include "logic/factor.hpp"

#include <array>
#include <cassert>
#include <utility>

namespace mvf::logic {
namespace {

// Finds the literal (var, polarity) occurring most often across the cubes.
// Returns {-1, false} if no literal occurs in two or more cubes.
std::pair<int, bool> most_frequent_literal(const std::vector<Cube>& cubes) {
    std::array<int, 32> pos_count{};
    std::array<int, 32> neg_count{};
    for (const Cube& c : cubes) {
        for (int v = 0; v < 32; ++v) {
            if (!c.has_var(v)) continue;
            if (c.is_positive(v))
                ++pos_count[static_cast<std::size_t>(v)];
            else
                ++neg_count[static_cast<std::size_t>(v)];
        }
    }
    int best_var = -1;
    bool best_pol = false;
    int best_count = 1;
    for (int v = 0; v < 32; ++v) {
        if (pos_count[static_cast<std::size_t>(v)] > best_count) {
            best_count = pos_count[static_cast<std::size_t>(v)];
            best_var = v;
            best_pol = true;
        }
        if (neg_count[static_cast<std::size_t>(v)] > best_count) {
            best_count = neg_count[static_cast<std::size_t>(v)];
            best_var = v;
            best_pol = false;
        }
    }
    return {best_var, best_pol};
}

}  // namespace

FactorTree FactorTree::from_sop(const Sop& sop) {
    FactorTree tree;
    tree.root_ = tree.build(sop.cubes);
    return tree;
}

int FactorTree::add(FactorNode n) {
    nodes_.push_back(std::move(n));
    return static_cast<int>(nodes_.size()) - 1;
}

int FactorTree::build_cube(const Cube& cube) {
    if (cube.mask == 0) return add({FactorKind::kConst1, -1, false, {}});
    std::vector<int> lits;
    for (int v = 0; v < 32; ++v) {
        if (!cube.has_var(v)) continue;
        lits.push_back(add({FactorKind::kLiteral, v, !cube.is_positive(v), {}}));
    }
    if (lits.size() == 1) return lits[0];
    return add({FactorKind::kAnd, -1, false, std::move(lits)});
}

int FactorTree::build(std::vector<Cube> cubes) {
    if (cubes.empty()) return add({FactorKind::kConst0, -1, false, {}});
    if (cubes.size() == 1) return build_cube(cubes[0]);

    // Note: deliberately not a structured binding -- GCC 12 at -O1+
    // miscompiles `const auto [var, pol]` in this recursive function.
    const std::pair<int, bool> mf = most_frequent_literal(cubes);
    const int var = mf.first;
    const bool pol = mf.second;
    if (var < 0) {
        // No shared literal: plain disjunction of cubes.
        std::vector<int> terms;
        terms.reserve(cubes.size());
        for (const Cube& c : cubes) terms.push_back(build_cube(c));
        return add({FactorKind::kOr, -1, false, std::move(terms)});
    }

    // Divide by the literal: F = lit * quotient + remainder.
    std::vector<Cube> quotient;
    std::vector<Cube> remainder;
    for (Cube c : cubes) {
        if (c.has_var(var) && c.is_positive(var) == pol) {
            c.remove_var(var);
            quotient.push_back(c);
        } else {
            remainder.push_back(c);
        }
    }
    const int lit = add({FactorKind::kLiteral, var, !pol, {}});
    const int q = build(std::move(quotient));
    const int product = add({FactorKind::kAnd, -1, false, {lit, q}});
    if (remainder.empty()) return product;
    const int r = build(std::move(remainder));
    return add({FactorKind::kOr, -1, false, {product, r}});
}

int FactorTree::num_literals() const {
    return root_ < 0 ? 0 : literals_below(root_);
}

int FactorTree::literals_below(int idx) const {
    const FactorNode& n = node(idx);
    if (n.kind == FactorKind::kLiteral) return 1;
    int total = 0;
    for (const int c : n.children) total += literals_below(c);
    return total;
}

TruthTable FactorTree::to_truth_table(int num_vars) const {
    return tt_below(root_, num_vars);
}

TruthTable FactorTree::tt_below(int idx, int num_vars) const {
    const FactorNode& n = node(idx);
    switch (n.kind) {
        case FactorKind::kConst0:
            return TruthTable::zeros(num_vars);
        case FactorKind::kConst1:
            return TruthTable::ones(num_vars);
        case FactorKind::kLiteral: {
            TruthTable t = TruthTable::var(n.var, num_vars);
            return n.negated ? ~t : t;
        }
        case FactorKind::kAnd: {
            TruthTable t = TruthTable::ones(num_vars);
            for (const int c : n.children) t &= tt_below(c, num_vars);
            return t;
        }
        case FactorKind::kOr: {
            TruthTable t = TruthTable::zeros(num_vars);
            for (const int c : n.children) t |= tt_below(c, num_vars);
            return t;
        }
    }
    assert(false);
    return TruthTable();
}

std::string FactorTree::to_string() const {
    return root_ < 0 ? "0" : string_below(root_);
}

std::string FactorTree::string_below(int idx) const {
    const FactorNode& n = node(idx);
    switch (n.kind) {
        case FactorKind::kConst0:
            return "0";
        case FactorKind::kConst1:
            return "1";
        case FactorKind::kLiteral: {
            std::string s(1, static_cast<char>('a' + n.var));
            if (n.negated) s += '\'';
            return s;
        }
        case FactorKind::kAnd: {
            std::string s;
            for (std::size_t i = 0; i < n.children.size(); ++i) {
                if (i) s += ' ';
                const FactorNode& c = node(n.children[i]);
                if (c.kind == FactorKind::kOr)
                    s += "(" + string_below(n.children[i]) + ")";
                else
                    s += string_below(n.children[i]);
            }
            return s;
        }
        case FactorKind::kOr: {
            std::string s;
            for (std::size_t i = 0; i < n.children.size(); ++i) {
                if (i) s += " + ";
                s += string_below(n.children[i]);
            }
            return s;
        }
    }
    assert(false);
    return "";
}

}  // namespace mvf::logic
