#pragma once
// Exact NPN canonization of 4-variable functions (16-bit truth tables).
//
// Rewriting classifies every 4-feasible cut by its NPN class so that one
// precomputed replacement structure per class serves all 768 input/output
// transform variants.  Canonization is exact (minimum 16-bit table over all
// 24 permutations x 16 input negations x 2 output negations) and memoized in
// a flat 2^16 table.

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

namespace mvf::logic {

/// The transform taking an original function to its canonical representative:
///   canon(x) = f(y) ^ out_neg   where y_j = x_{perm[j]} ^ neg_j.
struct NpnTransform {
    std::array<std::uint8_t, 4> perm{{0, 1, 2, 3}};
    std::uint8_t input_neg = 0;  ///< bit j set -> input j of f is negated
    bool output_neg = false;
};

struct NpnEntry {
    std::uint16_t canon = 0;
    NpnTransform transform;  ///< maps the *original* function to `canon`
};

/// How to realize the original function given a structure implementing the
/// canonical function: structure input i is fed by original leaf
/// `leaf_of_input[i]`, complemented if `leaf_negated[i]`; the structure
/// output is complemented if `output_neg`.
struct NpnRebuildWiring {
    std::array<std::uint8_t, 4> leaf_of_input{{0, 1, 2, 3}};
    std::array<bool, 4> leaf_negated{{false, false, false, false}};
    bool output_neg = false;
};

class NpnManager {
public:
    NpnManager();

    /// Memoized exact canonization of a 16-bit truth table.
    const NpnEntry& canonize(std::uint16_t tt);

    /// Applies a transform:  result(x) = f(y) ^ out_neg,  y_j = x_{perm[j]} ^ neg_j.
    static std::uint16_t apply(std::uint16_t tt, const NpnTransform& t);

    /// Inverts a canonizing transform into rebuild wiring (see NpnRebuildWiring).
    static NpnRebuildWiring rebuild_wiring(const NpnTransform& t);

    /// All 24 permutations of four elements, in a fixed order.
    static const std::array<std::array<std::uint8_t, 4>, 24>& permutations();

private:
    // Lazily filled; index = truth table.  `computed_` marks valid entries.
    std::vector<NpnEntry> table_;
    std::vector<bool> computed_;
};

}  // namespace mvf::logic
