#pragma once
// Cubes and sum-of-products covers over <= 16 variables.
//
// Covers are produced by the ISOP generator (isop.hpp) and consumed by the
// algebraic factoring engine (factor.hpp) that seeds AIG construction.

#include <cstdint>
#include <string>
#include <vector>

#include "logic/truth_table.hpp"

namespace mvf::logic {

/// A product term.  `mask` has a bit per variable present in the cube;
/// `polarity` gives the literal phase (1 = positive) for variables in mask.
/// The empty cube (mask == 0) is the constant-true product.
struct Cube {
    std::uint32_t mask = 0;
    std::uint32_t polarity = 0;

    bool operator==(const Cube&) const = default;

    int num_literals() const { return __builtin_popcount(mask); }
    bool has_var(int v) const { return (mask >> v) & 1; }
    bool is_positive(int v) const { return (polarity >> v) & 1; }

    /// Adds literal v (positive or negative) to the cube.
    void add_literal(int v, bool positive) {
        mask |= 1u << v;
        if (positive)
            polarity |= 1u << v;
        else
            polarity &= ~(1u << v);
    }

    /// Removes variable v from the cube.
    void remove_var(int v) {
        mask &= ~(1u << v);
        polarity &= ~(1u << v);
    }

    /// True iff the cube evaluates to 1 on the given minterm.
    bool contains(std::uint32_t minterm) const {
        return ((minterm ^ polarity) & mask) == 0;
    }

    /// Truth table of the cube in a space of `num_vars` variables.
    TruthTable to_truth_table(int num_vars) const;
};

/// A sum-of-products cover.
struct Sop {
    int num_vars = 0;
    std::vector<Cube> cubes;

    bool empty() const { return cubes.empty(); }
    int num_cubes() const { return static_cast<int>(cubes.size()); }
    int num_literals() const;

    /// Disjunction of all cubes.
    TruthTable to_truth_table() const;

    /// Human-readable form like "ab'c + d" (variables a, b, c, ...).
    std::string to_string() const;
};

}  // namespace mvf::logic
