#pragma once
// Shared CNF carrier for the model-counting subsystem.
//
// Both counters (count::ProjectedCounter, count::ApproxCounter) consume the
// same input: a clause set plus the *projection set* -- the variables whose
// assignments are being counted (the attack layer's selector families).
// Everything else is existential: a projected model is an assignment to the
// projection variables that extends to a full satisfying assignment.

#include <span>
#include <vector>

#include "sat/solver.hpp"

namespace mvf::count {

struct Cnf {
    int num_vars = 0;
    std::vector<std::vector<sat::Lit>> clauses;
    /// Distinct variables (< num_vars) whose assignment space is counted.
    std::vector<sat::Var> projection;
};

/// Snapshots `solver`'s current problem formula (see
/// sat::Solver::snapshot_clauses) as a counting instance projected onto
/// `projection`.  The projection variables must not have been eliminated by
/// preprocessing (freeze them); elimination of non-projection variables is
/// fine -- bounded variable elimination preserves the projected model count
/// over the surviving variables.
Cnf cnf_from_solver(const sat::Solver& solver,
                    std::span<const sat::Var> projection);

}  // namespace mvf::count
