#include "count/cnf.hpp"

#include <cassert>

namespace mvf::count {

Cnf cnf_from_solver(const sat::Solver& solver,
                    std::span<const sat::Var> projection) {
    Cnf cnf;
    cnf.num_vars = solver.num_vars();
    cnf.clauses = solver.snapshot_clauses();
    cnf.projection.assign(projection.begin(), projection.end());
#ifndef NDEBUG
    for (const sat::Var v : cnf.projection) {
        assert(v >= 0 && v < cnf.num_vars);
        assert(!solver.var_eliminated(v));
    }
#endif
    return cnf;
}

}  // namespace mvf::count
