#pragma once
// Saturating 128-bit unsigned counts with explicit overflow-checked
// arithmetic.
//
// The security metric of the whole repo is "how many viable configurations
// survive an attack", and on large selector spaces that number dwarfs
// uint64_t (a netlist with 70 free 2-choice cells already admits 2^70).
// Count128 is the carrier type for the model-counting subsystem: every
// operation detects overflow explicitly (no silent wraparound, no reliance
// on the non-portable __int128) and saturates to a sticky "at least 2^128"
// state that propagates through sums and products, so a saturated final
// count is reported as the lower bound it is instead of garbage.

#include <cstdint>
#include <string>

namespace mvf::count {

/// a*b with overflow detection, portably (no __int128): returns true and
/// leaves *out unspecified-but-assigned on overflow.  Also the primitive
/// behind the attack layer's dead-cone freedom product (the satellite fix:
/// the product of per-node freedoms must saturate, not wrap).
inline bool mul_overflow_u64(std::uint64_t a, std::uint64_t b,
                             std::uint64_t* out) {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_mul_overflow(a, b, out);
#else
    *out = a * b;
    return b != 0 && a > UINT64_MAX / b;
#endif
}

inline bool add_overflow_u64(std::uint64_t a, std::uint64_t b,
                             std::uint64_t* out) {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_add_overflow(a, b, out);
#else
    *out = a + b;
    return *out < a;
#endif
}

/// Unsigned 128-bit counter (value = hi*2^64 + lo) with saturating
/// arithmetic: once a computation would exceed 2^128 - 1 the count pins to
/// the maximum and saturated() stays true through every later add/mul --
/// except multiplication by zero, which annihilates exactly (the true
/// value times 0 is 0, so the result is exact again).
class Count128 {
public:
    constexpr Count128() = default;
    constexpr explicit Count128(std::uint64_t v) : lo_(v) {}
    constexpr Count128(std::uint64_t hi, std::uint64_t lo) : lo_(lo), hi_(hi) {}

    static constexpr Count128 zero() { return Count128(); }
    static constexpr Count128 one() { return Count128(1); }
    static Count128 saturated_max() {
        Count128 c(UINT64_MAX, UINT64_MAX);
        c.saturated_ = true;
        return c;
    }

    std::uint64_t lo() const { return lo_; }
    std::uint64_t hi() const { return hi_; }
    /// True once any operation overflowed 128 bits; the value then reads
    /// 2^128 - 1 and is a lower bound on the true count.
    bool saturated() const { return saturated_; }

    bool is_zero() const { return lo_ == 0 && hi_ == 0; }

    void add(const Count128& o) {
        if (o.saturated_) saturated_ = true;
        std::uint64_t lo;
        const bool carry = add_overflow_u64(lo_, o.lo_, &lo);
        std::uint64_t hi;
        bool over = add_overflow_u64(hi_, o.hi_, &hi);
        if (carry) over |= add_overflow_u64(hi, 1, &hi);
        lo_ = lo;
        hi_ = hi;
        if (over) saturate();
        else if (saturated_) saturate();  // sticky: keep the pinned value
    }

    void add_u64(std::uint64_t v) { add(Count128(v)); }

    void mul_u64(std::uint64_t m) {
        if (m == 0) {
            // 0 annihilates even a saturated lower bound: the true value
            // times 0 is exactly 0, so the result is exact again.
            lo_ = 0;
            hi_ = 0;
            saturated_ = false;
            return;
        }
        std::uint64_t carry_hi;  // overflow of lo_*m into the high word
        std::uint64_t lo = mul_64x64(lo_, m, &carry_hi);
        std::uint64_t hi;
        bool over = mul_overflow_u64(hi_, m, &hi);
        over |= add_overflow_u64(hi, carry_hi, &hi);
        lo_ = lo;
        hi_ = hi;
        if (over || saturated_) saturate();
    }

    void mul(const Count128& o) {
        if (is_zero() || o.is_zero()) {
            // Exactly 0 regardless of either operand's saturation.
            lo_ = 0;
            hi_ = 0;
            saturated_ = false;
            return;
        }
        if (o.saturated_) saturated_ = true;
        if (o.hi_ != 0) {
            // lo*o.hi contributes to the high word; hi*o.hi overflows
            // unless our high word is zero.
            std::uint64_t cross;
            bool over = hi_ != 0 && !is_zero() && !o.is_zero();
            over |= mul_overflow_u64(lo_, o.hi_, &cross);
            Count128 tmp = *this;
            tmp.mul_u64(o.lo_);
            std::uint64_t hi;
            over |= add_overflow_u64(tmp.hi_, cross, &hi);
            lo_ = tmp.lo_;
            hi_ = hi;
            if (over || tmp.saturated_ || saturated_) saturate();
        } else {
            mul_u64(o.lo_);
        }
    }

    /// Multiplies by 2^k (the free-variable multiplier of the projected
    /// counter), saturating when bits would shift out the top.
    void shift_left(int k) {
        if (k <= 0 || is_zero()) return;
        if (saturated_ || bit_width() + k > 128) {
            saturate();
            return;
        }
        while (k >= 32) {
            mul_u64(1ull << 32);
            k -= 32;
        }
        if (k > 0) mul_u64(1ull << k);
    }

    /// Saturates this count to `cap` when it exceeds it (the legacy
    /// enumeration path's max_survivors clamp).  Returns true if clamped.
    bool clamp_u64(std::uint64_t cap) {
        if (hi_ == 0 && lo_ <= cap && !saturated_) return false;
        hi_ = 0;
        lo_ = cap;
        saturated_ = false;
        return true;
    }

    /// Value as uint64, pinned to UINT64_MAX when it does not fit.
    std::uint64_t to_u64_saturating() const {
        return hi_ != 0 ? UINT64_MAX : lo_;
    }

    /// Exact double only up to 2^53; beyond that the nearest double (for
    /// log-scale bench output, never for correctness).
    double to_double() const {
        return static_cast<double>(hi_) * 18446744073709551616.0 +
               static_cast<double>(lo_);
    }

    /// Number of significant bits (0 for zero): floor(log2(v)) + 1.
    int bit_width() const {
        if (hi_ != 0) return 128 - countl_zero_u64(hi_);
        if (lo_ != 0) return 64 - countl_zero_u64(lo_);
        return 0;
    }

    int compare(const Count128& o) const {
        if (hi_ != o.hi_) return hi_ < o.hi_ ? -1 : 1;
        if (lo_ != o.lo_) return lo_ < o.lo_ ? -1 : 1;
        return 0;
    }
    bool operator==(const Count128& o) const {
        return lo_ == o.lo_ && hi_ == o.hi_ && saturated_ == o.saturated_;
    }
    bool operator<(const Count128& o) const { return compare(o) < 0; }
    bool operator<=(const Count128& o) const { return compare(o) <= 0; }

    /// Decimal string ("340282366920938463463374607431768211455" at most);
    /// saturated counts render with a ">=" prefix.
    std::string to_string() const;

    /// Parses a decimal string (optionally ">="-prefixed), saturating at
    /// 2^128 - 1.  Returns false on non-numeric input.
    static bool from_string(const std::string& text, Count128* out);

private:
    void saturate() {
        lo_ = UINT64_MAX;
        hi_ = UINT64_MAX;
        saturated_ = true;
    }

    static int countl_zero_u64(std::uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
        return v == 0 ? 64 : __builtin_clzll(v);
#else
        int n = 0;
        for (std::uint64_t probe = 1ull << 63; probe && !(v & probe);
             probe >>= 1) {
            ++n;
        }
        return v == 0 ? 64 : n;
#endif
    }

    /// 64x64 -> 128 multiply via 32-bit halves; returns the low word and
    /// writes the high word.
    static std::uint64_t mul_64x64(std::uint64_t a, std::uint64_t b,
                                   std::uint64_t* hi) {
        const std::uint64_t a_lo = a & 0xffffffffull, a_hi = a >> 32;
        const std::uint64_t b_lo = b & 0xffffffffull, b_hi = b >> 32;
        const std::uint64_t p0 = a_lo * b_lo;
        const std::uint64_t p1 = a_lo * b_hi;
        const std::uint64_t p2 = a_hi * b_lo;
        const std::uint64_t p3 = a_hi * b_hi;
        const std::uint64_t mid = (p0 >> 32) + (p1 & 0xffffffffull) +
                                  (p2 & 0xffffffffull);
        *hi = p3 + (p1 >> 32) + (p2 >> 32) + (mid >> 32);
        return (p0 & 0xffffffffull) | (mid << 32);
    }

    std::uint64_t lo_ = 0;
    std::uint64_t hi_ = 0;
    bool saturated_ = false;
};

}  // namespace mvf::count
