#include "count/approx_counter.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace mvf::count {

using sat::Lit;
using sat::Var;

namespace {

/// Encodes XOR(lits) == parity via the standard auxiliary chain (4 ternary
/// clauses per link), guarded by an activation literal: the constraint
/// binds only while `act` is assumed, so one incremental solver can switch
/// hash levels on and off during the search over m.  An empty XOR is the
/// constant 0: parity=true then contradicts the row (act forces UNSAT).
void add_xor(sat::Solver* solver, const std::vector<Lit>& lits, bool parity,
             Lit act) {
    if (lits.empty()) {
        if (parity) solver->add_unit(sat::lit_not(act));
        return;
    }
    Lit cur = lits[0];
    for (std::size_t i = 1; i < lits.size(); ++i) {
        const Lit next = lits[i];
        const Lit aux = sat::mk_lit(solver->new_var());
        // aux == cur XOR next: forbid the four inconsistent rows.
        solver->add_ternary(sat::lit_not(aux), cur, next);
        solver->add_ternary(sat::lit_not(aux), sat::lit_not(cur),
                            sat::lit_not(next));
        solver->add_ternary(aux, sat::lit_not(cur), next);
        solver->add_ternary(aux, cur, sat::lit_not(next));
        cur = aux;
    }
    solver->add_binary(sat::lit_not(act), parity ? cur : sat::lit_not(cur));
}

}  // namespace

bool ApproxResult::within_envelope(const Count128& estimate,
                                   const Count128& true_count,
                                   double epsilon) {
    if (true_count.is_zero()) return estimate.is_zero();
    if (estimate.is_zero()) return false;
    const double ratio = estimate.to_double() / true_count.to_double();
    return ratio >= 1.0 / (1.0 + epsilon) && ratio <= 1.0 + epsilon;
}

ApproxCounter::ApproxCounter(Cnf cnf, ApproxConfig config)
    : cnf_(std::move(cnf)), config_(config) {
    if (!(config.epsilon > 0.0)) {
        throw std::invalid_argument("ApproxCounter: epsilon must be > 0");
    }
    if (!(config.delta > 0.0 && config.delta < 1.0)) {
        throw std::invalid_argument("ApproxCounter: delta must be in (0, 1)");
    }
    // Distinct projection variables (duplicates would double-sample XORs).
    std::sort(cnf_.projection.begin(), cnf_.projection.end());
    cnf_.projection.erase(
        std::unique(cnf_.projection.begin(), cnf_.projection.end()),
        cnf_.projection.end());
}

ApproxResult ApproxCounter::count() {
    ApproxResult result;
    report::Json span_args;
    if (obs::tracing()) {
        span_args = report::Json::object();
        span_args.set("projection",
                      static_cast<std::uint64_t>(cnf_.projection.size()));
        span_args.set("epsilon", config_.epsilon);
        span_args.set("delta", config_.delta);
    }
    obs::Span span("approx-count", "count", std::move(span_args));
    const auto finish_span = [&]() {
        if (span) {
            report::Json ea = report::Json::object();
            ea.set("estimate", result.estimate.to_string());
            ea.set("ok", result.ok);
            ea.set("exact", result.exact);
            ea.set("xor_levels", result.xor_levels);
            ea.set("rounds", result.rounds);
            span.set_end_args(std::move(ea));
        }
        if (obs::metrics_enabled()) {
            obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
            reg.counter("count.approx_runs").add();
            reg.counter("count.approx_solver_calls")
                .add(static_cast<std::uint64_t>(result.solver_calls));
        }
    };
    util::Stopwatch budget_clock;
    const auto out_of_time = [this, &budget_clock]() {
        return config_.max_seconds > 0.0 &&
               budget_clock.elapsed_seconds() > config_.max_seconds;
    };
    const double eps = config_.epsilon;
    // ApproxMC2's cell-size threshold and round count.
    const std::uint64_t pivot = static_cast<std::uint64_t>(std::ceil(
        9.84 * (1.0 + eps / (1.0 + eps)) * (1.0 + 1.0 / eps) *
        (1.0 + 1.0 / eps)));
    int t = static_cast<int>(std::ceil(17.0 * std::log2(3.0 / config_.delta)));
    if (t % 2 == 0) ++t;  // odd, so the median is a single round

    const auto load = [this](sat::Solver* solver) {
        for (int v = 0; v < cnf_.num_vars; ++v) solver->new_var();
        for (const auto& c : cnf_.clauses) {
            if (!solver->add_clause(c)) return;
        }
    };
    /// Counts projected models up to `limit` under `assumptions` (the
    /// active XOR rows), blocking each found projection assignment.  The
    /// blocking clauses carry a fresh per-evaluation activation literal,
    /// so they vanish as soon as the search moves to another level.
    /// nullopt means the per-solve conflict budget expired (the hash
    /// level is too hard for plain CDCL) and the cell size is unknown.
    const auto bounded =
        [this, &result, &out_of_time](sat::Solver* solver,
                                      std::vector<Lit> assumptions,
                        std::uint64_t limit) -> std::optional<std::uint64_t> {
        const Lit eval_act = sat::mk_lit(solver->new_var());
        assumptions.push_back(eval_act);
        std::uint64_t found = 0;
        while (found < limit) {
            if (out_of_time()) return std::nullopt;
            ++result.solver_calls;
            const sat::Solver::Result r = solver->solve(assumptions);
            if (r == sat::Solver::Result::kUnknown) return std::nullopt;
            if (r != sat::Solver::Result::kSat) break;
            ++found;
            std::vector<Lit> block;
            block.reserve(cnf_.projection.size() + 1);
            block.push_back(sat::lit_not(eval_act));
            for (const Var v : cnf_.projection) {
                block.push_back(sat::mk_lit(v, solver->model_value(v)));
            }
            if (!solver->add_clause(block)) break;
        }
        return found;
    };

    // Spaces that fit under the pivot are counted exactly, no hashing.
    {
        sat::Solver solver;
        load(&solver);
        solver.set_conflict_budget(config_.max_conflicts_per_solve);
        const std::optional<std::uint64_t> n = bounded(&solver, {}, pivot + 1);
        if (n && *n <= pivot) {
            result.estimate = Count128(*n);
            result.ok = true;
            result.exact = true;
            finish_span();
            return result;
        }
    }

    const int num_proj = static_cast<int>(cnf_.projection.size());
    std::vector<Count128> estimates;
    std::vector<int> levels;
    util::Rng base(config_.seed);
    // ApproxMC2-style sliding search: level m activates the prefix rows
    // 1..m of the round's hash (assumption literals switch rows on and
    // off on one incremental solver), and the search for the transition
    // level m* = min{m : |cell| <= pivot} starts from the previous
    // round's answer, where the counts concentrate.
    int prev_m = 1;
    int consecutive_budget_failures = 0;
    for (int round = 0; round < t; ++round) {
        util::Rng rng = base.split();
        if (consecutive_budget_failures >= 3) break;  // hash family too hard
        if (out_of_time()) break;
        if (config_.max_solver_calls > 0 &&
            result.solver_calls >= config_.max_solver_calls) {
            break;
        }
        sat::Solver solver;
        load(&solver);
        solver.set_conflict_budget(config_.max_conflicts_per_solve);
        bool budget_failed = false;
        std::vector<Lit> row_act;  // activation literal per XOR row
        const auto ensure_rows = [&](int m) {
            while (static_cast<int>(row_act.size()) < m) {
                const Lit act = sat::mk_lit(solver.new_var());
                std::vector<Lit> row;
                for (const Var v : cnf_.projection) {
                    if (rng.coin(0.5)) row.push_back(sat::mk_lit(v));
                }
                add_xor(&solver, row, rng.coin(0.5), act);
                row_act.push_back(act);
            }
        };
        // Cell size at level m, bounded by pivot + 1.  On a budget blowout
        // the round is abandoned (the returned pivot + 1 is never used as
        // a count -- budget_failed gates every consumer).
        std::vector<std::uint64_t> cell(static_cast<std::size_t>(num_proj),
                                        UINT64_MAX);
        const auto cell_count = [&](int m) {
            if (budget_failed) return pivot + 1;
            if (cell[static_cast<std::size_t>(m)] != UINT64_MAX) {
                return cell[static_cast<std::size_t>(m)];
            }
            if (config_.max_solver_calls > 0 &&
                result.solver_calls >= config_.max_solver_calls) {
                budget_failed = true;
                return pivot + 1;
            }
            ensure_rows(m);
            std::vector<Lit> assumptions(row_act.begin(),
                                         row_act.begin() + m);
            const std::optional<std::uint64_t> c =
                bounded(&solver, assumptions, pivot + 1);
            if (!c) {
                budget_failed = true;
                return pivot + 1;
            }
            cell[static_cast<std::size_t>(m)] = *c;
            return *c;
        };

        // Find the transition level m* = min{m : |cell at m| <= pivot}
        // by galloping out from the previous round's answer and then
        // binary-searching the bracket -- O(log P) level evaluations
        // instead of a linear walk (the transition sits near
        // log2(|space|), which can be a hundred levels up).
        int m = std::min(std::max(prev_m, 1), num_proj - 1);
        int lo = 0;                // exclusive: cell(lo) > pivot (or m*=1)
        int hi = num_proj - 1;     // inclusive candidate
        bool bracketed = false;
        if (cell_count(m) > pivot) {
            lo = m;
            for (int step = 1; !budget_failed && lo < num_proj - 1;
                 step *= 2) {
                const int probe = std::min(num_proj - 1, lo + step);
                if (cell_count(probe) <= pivot) {
                    hi = probe;
                    bracketed = true;
                    break;
                }
                lo = probe;
            }
        } else {
            hi = m;
            bracketed = true;
            for (int step = 1; !budget_failed && hi > 1; step *= 2) {
                const int probe = std::max(1, hi - step);
                if (cell_count(probe) > pivot) {
                    lo = probe;
                    break;
                }
                hi = probe;
                if (probe == 1) {
                    lo = 0;
                    break;
                }
            }
        }
        while (!budget_failed && bracketed && hi - lo > 1) {
            const int mid = lo + (hi - lo) / 2;
            if (cell_count(mid) <= pivot) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        m = hi;
        const std::uint64_t c =
            bracketed && !budget_failed ? cell_count(m) : pivot + 1;
        if (budget_failed) {
            ++consecutive_budget_failures;
            continue;
        }
        consecutive_budget_failures = 0;
        if (c >= 1 && c <= pivot) {
            Count128 est(c);
            est.shift_left(m);
            estimates.push_back(est);
            levels.push_back(m);
            prev_m = m;
        }
        // c == 0 (empty accepting cell) or c > pivot at the deepest
        // level: the round fails and contributes nothing to the median.
    }

    if (estimates.empty()) {  // every round failed; ok=false
        finish_span();
        return result;
    }
    std::sort(estimates.begin(), estimates.end(),
              [](const Count128& a, const Count128& b) { return a < b; });
    std::sort(levels.begin(), levels.end());
    result.estimate = estimates[estimates.size() / 2];
    result.xor_levels = levels[levels.size() / 2];
    result.rounds = static_cast<int>(estimates.size());
    result.ok = true;
    finish_span();
    return result;
}

}  // namespace mvf::count
