#pragma once
// Exact projected model counting (#SAT over a projection set), sharpSAT
// style: DPLL-with-counting that branches only on projection variables,
// decomposes the residual formula into variable-disjoint connected
// components, and memoizes component counts in a hashed cache under a
// memory budget.
//
// This is the subsystem that removes the attack layer's survivor-
// enumeration cap (ROADMAP: "a projected model counter ... would remove
// the cap on large spaces").  The enumeration attacker pays one SAT model
// per surviving configuration, so a netlist with 2^40 surviving selector
// assignments only ever reports "at least 2^20"; the projected counter
// instead *counts* them -- summing over branch decisions, multiplying
// across independent components (a dead-cone cell whose support collapsed
// to constants is one tiny component contributing x#choices), and shifting
// by 2^k for projection variables no active clause constrains.
//
// Representation (the part that makes caching work): the clause database
// is immutable; a component is a sorted list of unassigned variables plus
// a sorted list of clause indices that are unsatisfied under the current
// partial assignment.  Those two lists determine the residual subformula
// exactly (a residual clause is its unassigned literals), so they double
// as the cache key -- a few words per clause instead of a copy of it.
//
// Semantics: count() returns |{ assignments a to `projection` : F|a is
// satisfiable }|.  Components containing no projection variable contribute
// 1 or 0 via a plain DPLL existence check.  Counts are Count128 and
// saturate (flagged, never wrapped) beyond 2^128 - 1.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "count/cnf.hpp"
#include "count/count128.hpp"

namespace mvf::util {
class ThreadPool;
}  // namespace mvf::util

namespace mvf::count {

struct CounterConfig {
    /// Component-cache memory budget in bytes.  When exceeded, half the
    /// cache is evicted (counted in CounterStats::cache_evictions); the
    /// result stays exact, only the reuse rate degrades.
    std::size_t cache_bytes = 64ull << 20;
    /// Safety valve on branch decisions; 0 = unlimited.  When exceeded the
    /// search aborts and Result::exact is false.  In cube mode the budget
    /// is GLOBAL across all cubes (a shared atomic), so the valve fires at
    /// the same total work as serially -- though not at the same point in
    /// the search, so budget-aborted runs are only comparable via
    /// exact=false, never via the partial count.
    std::uint64_t max_decisions = 0;
    /// Worker threads for cube-and-conquer counting (<= 1 = serial).
    int threads = 1;
    /// Selector-cube width k: the top-level projection is split into 2^k
    /// cubes over the k most-active projection variables, counted
    /// independently and summed.  0 = pick automatically from `threads`
    /// (the smallest k giving >= 4 cubes per worker).  Cube mode engages
    /// when threads > 1 or cube_vars > 0, and is bit-identical to the
    /// serial count: exact projected counts are partition-sums, so any
    /// cube split of the assignment space yields the same total, and
    /// Count128 saturation pins to the same 2^128-1 either way.
    int cube_vars = 0;
    /// Pool to run cube workers on; nullptr = a private pool of
    /// `threads - 1` workers.  Sharing the caller's pool is safe even when
    /// the caller IS a pool worker: the counter drains cubes on the
    /// calling thread too and help-waits (ThreadPool::run_one) on its
    /// futures, so it cannot starve with zero free workers.
    util::ThreadPool* pool = nullptr;
};

struct CounterStats {
    std::uint64_t decisions = 0;      ///< branches taken (counting + existence)
    std::uint64_t propagations = 0;   ///< literals assigned by BCP
    std::uint64_t components = 0;     ///< components created by decomposition
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_stores = 0;
    std::uint64_t cache_evictions = 0;  ///< entries dropped by budget sweeps
    std::uint64_t sat_checks = 0;  ///< existence checks on projection-free components
    std::size_t cache_entries = 0;  ///< resident entries after count()
    std::size_t cache_peak_bytes = 0;

    bool operator==(const CounterStats&) const = default;
};

/// Mutex-sharded component cache shared by the cube workers of one
/// parallel count: the cube subproblems decompose into the same renamed
/// components, so a component proved by one worker is a hit for every
/// other.  Each shard has its own lock, map and byte budget (total /
/// shards) with the same evict-every-other overflow sweep as the serial
/// cache.  Correctness never depends on cache contents -- a racy
/// lookup/store interleaving costs at most a recount.
class SharedComponentCache {
public:
    SharedComponentCache(std::size_t budget_bytes, int shards);

    /// True and *out filled on a hit.
    bool lookup(const std::vector<std::uint32_t>& key, Count128* out) const;
    /// Inserts (first writer wins); *evicted gets the entries dropped by
    /// an overflow sweep.  Returns false when the entry was skipped (too
    /// big for its shard) or already present.
    bool store(std::vector<std::uint32_t> key, const Count128& value,
               std::uint64_t* evicted);

    std::size_t entries() const;
    std::size_t peak_bytes() const;

private:
    struct KeyHash {
        std::size_t operator()(const std::vector<std::uint32_t>& key) const {
            std::uint64_t h = 1469598103934665603ull;  // FNV-1a
            for (const std::uint32_t word : key) {
                h ^= word;
                h *= 1099511628211ull;
            }
            return static_cast<std::size_t>(h);
        }
    };
    struct Shard {
        mutable std::mutex mutex;
        std::unordered_map<std::vector<std::uint32_t>, Count128, KeyHash> map;
        std::size_t bytes = 0;
        std::size_t peak_bytes = 0;
    };
    Shard& shard_for(const std::vector<std::uint32_t>& key) const;

    std::size_t shard_budget_;
    mutable std::vector<Shard> shards_;
};

class ProjectedCounter {
public:
    explicit ProjectedCounter(Cnf cnf, CounterConfig config = {});

    struct Result {
        Count128 count;
        /// True for an exact count; false when the count saturated 128
        /// bits or the decision cap aborted the search (the count is then
        /// a lower bound / partial figure respectively).
        bool exact = true;
        CounterStats stats;
    };

    /// Runs the count.  Deterministic: identical Cnf inputs give identical
    /// counts regardless of the cache budget, thread count or cube width
    /// (which only affect cache_*/decision figures and runtime).
    Result count();

private:
    /// Cube-worker clone: shares the parent's immutable database and
    /// projection, with fresh assignment/cache state.
    ProjectedCounter(const ProjectedCounter& parent, int worker_tag);
    /// One decomposition unit: the unassigned variables (sorted) and the
    /// unsatisfied clause indices (sorted) of a variable-connected region.
    struct Component {
        std::vector<sat::Var> vars;
        std::vector<int> cls;
    };

    struct KeyHash {
        std::size_t operator()(const std::vector<std::uint32_t>& key) const {
            std::uint64_t h = 1469598103934665603ull;  // FNV-1a
            for (const std::uint32_t word : key) {
                h ^= word;
                h *= 1099511628211ull;
            }
            return static_cast<std::size_t>(h);
        }
    };

    /// -1 unknown, else 0/1 under the current partial assignment.
    int lit_value(sat::Lit l) const {
        const signed char v = val_[static_cast<std::size_t>(sat::lit_var(l))];
        if (v < 0) return -1;
        return (v != 0) != sat::lit_negated(l) ? 1 : 0;
    }
    void assign(sat::Lit l);
    void undo_to(std::size_t mark);

    bool bcp(const std::vector<int>& cls);
    Count128 count_children(const Component& parent);
    Count128 count_component(Component&& comp);
    bool exists(const std::vector<int>& cls);
    std::vector<std::uint32_t> encode(const Component& comp);
    void cache_store(std::vector<std::uint32_t> key, const Count128& value);
    /// One branch decision booked against the (possibly shared) budget;
    /// sets aborted_ and returns true when over budget or cube-cancelled.
    bool decision_over_budget();
    /// Counts the root restricted to `cube` (literals assigned before root
    /// BCP); leaves the trail empty again.
    Count128 count_cube(const std::vector<sat::Lit>& cube);
    /// The k most-active unassigned projection variables by the same
    /// clause-length-weighted score count_component branches on (call with
    /// the root trail in place, i.e. after root BCP).
    std::vector<sat::Var> pick_cube_vars(const std::vector<int>& root_cls,
                                         int k);
    /// Cube-and-conquer driver (threads > 1 or cube_vars > 0).
    void count_cubes(Result* result);

    CounterConfig config_;
    CounterStats stats_;

    int num_vars_ = 0;
    std::vector<std::vector<sat::Lit>> db_;  ///< normalized, immutable
    std::vector<sat::Var> projection_;
    std::vector<bool> is_proj_;
    bool root_conflict_ = false;

    std::vector<signed char> val_;
    std::vector<sat::Lit> trail_;
    /// Scratch stamps for residual-variable membership tests (a fresh
    /// stamp value per use keeps it reentrant across recursion).
    std::vector<int> stamp_;
    /// Variable -> dense slot for the decomposition union-find; valid only
    /// behind a matching stamp_, so it is never cleared.
    std::vector<int> slot_of_;
    int stamp_counter_ = 0;
    bool aborted_ = false;

    std::unordered_map<std::vector<std::uint32_t>, Count128, KeyHash> cache_;
    std::size_t cache_bytes_ = 0;

    /// Cube-worker shared state (null in serial mode / on the driver).
    SharedComponentCache* shared_cache_ = nullptr;
    std::atomic<std::uint64_t>* shared_decisions_ = nullptr;
    std::atomic<bool>* shared_abort_ = nullptr;
};

}  // namespace mvf::count
