#include "count/count128.hpp"

#include <vector>

namespace mvf::count {

namespace {

/// Divides (hi, lo) in place by `d` (which must satisfy d < 2^63) and
/// returns the remainder.  The quotient's high word is hi / d; the low word
/// comes from bit-serial long division of (hi % d) * 2^64 + lo, whose
/// running remainder stays below 2d < 2^64.
std::uint64_t divmod_u128(std::uint64_t* hi, std::uint64_t* lo,
                          std::uint64_t d) {
    const std::uint64_t q_hi = *hi / d;
    std::uint64_t r = *hi % d;
    std::uint64_t q_lo = 0;
    for (int bit = 63; bit >= 0; --bit) {
        r = (r << 1) | ((*lo >> bit) & 1);
        q_lo <<= 1;
        if (r >= d) {
            r -= d;
            q_lo |= 1;
        }
    }
    *hi = q_hi;
    *lo = q_lo;
    return r;
}

constexpr std::uint64_t kChunk = 1000000000000000000ull;  // 10^18 < 2^63

}  // namespace

std::string Count128::to_string() const {
    std::uint64_t hi = hi_, lo = lo_;
    std::vector<std::string> chunks;
    do {
        const std::uint64_t digits = divmod_u128(&hi, &lo, kChunk);
        std::string chunk = std::to_string(digits);
        if (hi != 0 || lo != 0) {
            chunk = std::string(18 - chunk.size(), '0') + chunk;
        }
        chunks.push_back(std::move(chunk));
    } while (hi != 0 || lo != 0);
    std::string out = saturated_ ? ">=" : "";
    for (auto it = chunks.rbegin(); it != chunks.rend(); ++it) out += *it;
    return out;
}

bool Count128::from_string(const std::string& text, Count128* out) {
    std::size_t i = 0;
    bool saturated = false;
    if (text.size() >= 2 && text[0] == '>' && text[1] == '=') {
        saturated = true;
        i = 2;
    }
    if (i >= text.size()) return false;
    Count128 value;
    for (; i < text.size(); ++i) {
        const char c = text[i];
        if (c < '0' || c > '9') return false;
        value.mul_u64(10);
        value.add_u64(static_cast<std::uint64_t>(c - '0'));
    }
    if (saturated || value.saturated_) value.saturate();
    *out = value;
    return true;
}

}  // namespace mvf::count
