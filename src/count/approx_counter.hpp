#pragma once
// (epsilon, delta) approximate projected model counting, ApproxMC style.
//
// Universal-hashing estimator: random XOR constraints over the projection
// set partition the projected solution space into ~2^m cells; if the cell
// containing the all-satisfying region still holds between 1 and `pivot`
// solutions (counted by bounded enumeration on sat::Solver), then
// cell_count * 2^m estimates the total.  The median over enough independent
// rounds lands within a (1 + epsilon) factor of the true count with
// probability at least 1 - delta (constants from Chakraborty, Meel &
// Vardi's ApproxMC2).
//
// This is the fallback for selector spaces where the exact counter's
// component structure degenerates (cache budget exhausted, branch blowup):
// its cost scales with pivot * #rounds * #XOR levels, not with the count.
// Spaces small enough to enumerate under the pivot are counted exactly and
// reported as such.

#include <cstdint>

#include "count/cnf.hpp"
#include "count/count128.hpp"

namespace mvf::count {

struct ApproxConfig {
    /// Multiplicative tolerance: the estimate is within [C/(1+eps),
    /// C*(1+eps)] of the true count C with probability >= 1 - delta.
    double epsilon = 0.8;
    double delta = 0.2;
    /// Seed for the XOR hash sampling (estimates are deterministic per
    /// seed).
    std::uint64_t seed = 1;
    /// Work bounds (0 = unlimited): CDCL without XOR-aware propagation
    /// can wedge on a single dense hash level, so each solve() carries a
    /// conflict budget, the whole count a solver-call budget, and three
    /// consecutive budget-failed rounds abort the estimate.  A bounded
    /// failure surfaces as ok == false (the attack layer reports the
    /// survivor-limit lower bound) instead of a hang.
    std::uint64_t max_conflicts_per_solve = 100'000;
    std::uint64_t max_solver_calls = 200'000;
    /// Wall-clock budget for the whole count() in seconds (0 = unlimited).
    /// Only the failure path depends on it: estimates that complete are
    /// deterministic per seed regardless.
    double max_seconds = 60.0;
};

struct ApproxResult {
    Count128 estimate;
    /// At least one round produced an accepting cell (always true when
    /// `exact` is).  False means the estimate failed: either the work
    /// budgets above expired (plain CDCL drowning in dense XOR levels --
    /// the expected failure mode on very large spaces) or, astronomically
    /// unlikely, every hash round missed its accepting window.
    bool ok = false;
    /// The projected space fit under the pivot and was counted exactly by
    /// bounded enumeration (no XOR rounds were needed).
    bool exact = false;
    int xor_levels = 0;  ///< median XOR constraints per accepting round
    int rounds = 0;      ///< accepting rounds medianed over
    std::uint64_t solver_calls = 0;  ///< incremental SAT solve() calls

    /// True count C vs estimate E: the (epsilon, delta) guarantee promises
    /// C/(1+eps) <= E <= C*(1+eps) with probability 1-delta.
    static bool within_envelope(const Count128& estimate,
                                const Count128& true_count, double epsilon);
};

class ApproxCounter {
public:
    /// Throws std::invalid_argument for epsilon <= 0 or delta outside
    /// (0, 1).
    explicit ApproxCounter(Cnf cnf, ApproxConfig config = {});

    ApproxResult count();

private:
    Cnf cnf_;
    ApproxConfig config_;
};

}  // namespace mvf::count
