#include "count/projected_counter.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <future>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace mvf::count {

using sat::Lit;
using sat::Var;

// -------------------------------------------------- SharedComponentCache --

SharedComponentCache::SharedComponentCache(std::size_t budget_bytes,
                                           int shards)
    : shards_(static_cast<std::size_t>(std::max(1, shards))) {
    shard_budget_ = std::max<std::size_t>(budget_bytes / shards_.size(), 4096);
}

SharedComponentCache::Shard& SharedComponentCache::shard_for(
    const std::vector<std::uint32_t>& key) const {
    // Decorrelate from the in-shard bucket hash by mixing the high bits.
    const std::uint64_t h = KeyHash{}(key);
    return shards_[static_cast<std::size_t>((h >> 17) % shards_.size())];
}

bool SharedComponentCache::lookup(const std::vector<std::uint32_t>& key,
                                  Count128* out) const {
    Shard& s = shard_for(key);
    std::lock_guard lock(s.mutex);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    *out = it->second;
    return true;
}

bool SharedComponentCache::store(std::vector<std::uint32_t> key,
                                 const Count128& value,
                                 std::uint64_t* evicted) {
    const std::size_t bytes = key.size() * sizeof(std::uint32_t) + 64;
    if (bytes > shard_budget_ / 4) return false;  // would only thrash
    Shard& s = shard_for(key);
    std::lock_guard lock(s.mutex);
    const auto [it, inserted] = s.map.emplace(std::move(key), value);
    (void)it;
    if (!inserted) return false;  // another worker proved it first
    s.bytes += bytes;
    s.peak_bytes = std::max(s.peak_bytes, s.bytes);
    if (s.bytes <= shard_budget_) return true;
    // Same evict-every-other overflow sweep as the serial cache, per shard.
    bool victim = false;
    for (auto i = s.map.begin(); i != s.map.end();) {
        if (victim) {
            s.bytes -= i->first.size() * sizeof(std::uint32_t) + 64;
            i = s.map.erase(i);
            ++*evicted;
        } else {
            ++i;
        }
        victim = !victim;
    }
    return true;
}

std::size_t SharedComponentCache::entries() const {
    std::size_t total = 0;
    for (Shard& s : shards_) {
        std::lock_guard lock(s.mutex);
        total += s.map.size();
    }
    return total;
}

std::size_t SharedComponentCache::peak_bytes() const {
    std::size_t total = 0;
    for (Shard& s : shards_) {
        std::lock_guard lock(s.mutex);
        total += s.peak_bytes;
    }
    return total;
}

// ------------------------------------------------------- ProjectedCounter --

ProjectedCounter::ProjectedCounter(Cnf cnf, CounterConfig config)
    : config_(config), num_vars_(cnf.num_vars) {
    is_proj_.assign(static_cast<std::size_t>(num_vars_), false);
    projection_.reserve(cnf.projection.size());
    for (const Var v : cnf.projection) {
        assert(v >= 0 && v < num_vars_);
        if (!is_proj_[static_cast<std::size_t>(v)]) {
            is_proj_[static_cast<std::size_t>(v)] = true;
            projection_.push_back(v);
        }
    }
    std::sort(projection_.begin(), projection_.end());
    val_.assign(static_cast<std::size_t>(num_vars_), -1);
    stamp_.assign(static_cast<std::size_t>(num_vars_), 0);
    slot_of_.assign(static_cast<std::size_t>(num_vars_), -1);

    // Normalize into the immutable database: sorted deduplicated literals,
    // tautologies dropped, an empty clause marking the whole formula
    // unsatisfiable.
    db_.reserve(cnf.clauses.size());
    for (auto& in : cnf.clauses) {
        std::vector<Lit> c = std::move(in);
        std::sort(c.begin(), c.end());
        c.erase(std::unique(c.begin(), c.end()), c.end());
        bool tautology = false;
        for (std::size_t j = 0; j + 1 < c.size(); ++j) {
            if (c[j + 1] == sat::lit_not(c[j])) {
                tautology = true;
                break;
            }
        }
        if (tautology) continue;
        if (c.empty()) {
            root_conflict_ = true;
            break;
        }
        db_.push_back(std::move(c));
    }
}

ProjectedCounter::ProjectedCounter(const ProjectedCounter& parent,
                                   int worker_tag)
    : config_(parent.config_),
      num_vars_(parent.num_vars_),
      db_(parent.db_),
      projection_(parent.projection_),
      is_proj_(parent.is_proj_),
      root_conflict_(parent.root_conflict_) {
    (void)worker_tag;
    // Workers are plain serial counters: the driver wires up the shared
    // cache/budget/abort pointers after construction.
    config_.threads = 1;
    config_.cube_vars = 0;
    config_.pool = nullptr;
    val_.assign(static_cast<std::size_t>(num_vars_), -1);
    stamp_.assign(static_cast<std::size_t>(num_vars_), 0);
    slot_of_.assign(static_cast<std::size_t>(num_vars_), -1);
}

bool ProjectedCounter::decision_over_budget() {
    ++stats_.decisions;
    if (shared_abort_ && shared_abort_->load(std::memory_order_relaxed)) {
        aborted_ = true;
        return true;
    }
    bool over;
    if (shared_decisions_) {
        // The budget is global across cubes: the valve fires at the same
        // TOTAL work as a serial run would spend.
        over = shared_decisions_->fetch_add(1, std::memory_order_relaxed) +
                   1 >
               config_.max_decisions;
    } else {
        over = config_.max_decisions > 0 &&
               stats_.decisions > config_.max_decisions;
    }
    if (over) {
        aborted_ = true;
        if (shared_abort_) {
            shared_abort_->store(true, std::memory_order_relaxed);
        }
    }
    return over;
}

void ProjectedCounter::assign(Lit l) {
    assert(lit_value(l) == -1);
    val_[static_cast<std::size_t>(sat::lit_var(l))] =
        sat::lit_negated(l) ? 0 : 1;
    trail_.push_back(l);
    ++stats_.propagations;
}

void ProjectedCounter::undo_to(std::size_t mark) {
    while (trail_.size() > mark) {
        val_[static_cast<std::size_t>(sat::lit_var(trail_.back()))] = -1;
        trail_.pop_back();
    }
}

/// Unit propagation over the clause-index set, to fixpoint.  Returns false
/// on a conflict (a clause with every literal false).
bool ProjectedCounter::bcp(const std::vector<int>& cls) {
    std::vector<unsigned char> active(cls.size(), 1);
    bool again = true;
    while (again) {
        again = false;
        for (std::size_t i = 0; i < cls.size(); ++i) {
            if (!active[i]) continue;
            const std::vector<Lit>& c = db_[static_cast<std::size_t>(cls[i])];
            Lit unit = -1;
            int unassigned = 0;
            bool satisfied = false;
            for (const Lit l : c) {
                const int v = lit_value(l);
                if (v == 1) {
                    satisfied = true;
                    break;
                }
                if (v == -1) {
                    if (++unassigned > 1) break;
                    unit = l;
                }
            }
            if (satisfied) {
                active[i] = 0;
                continue;
            }
            if (unassigned == 0) return false;
            if (unassigned == 1) {
                assign(unit);
                active[i] = 0;
                again = true;
            }
        }
    }
    return true;
}

/// Cache key: the residual formula with variables renamed to their rank in
/// the component (plus a bitmask of which ranks are projection variables).
/// Renaming makes isomorphic components collide on purpose -- the CEGAR
/// enumeration instance stamps one circuit copy per I/O pattern, so
/// structurally identical subcircuits recur across copies under different
/// auxiliary variable ids, and equal keys imply a projection-preserving
/// isomorphism, hence equal counts.
std::vector<std::uint32_t> ProjectedCounter::encode(const Component& comp) {
    const int stamp = ++stamp_counter_;
    for (std::size_t i = 0; i < comp.vars.size(); ++i) {
        const Var v = comp.vars[i];
        stamp_[static_cast<std::size_t>(v)] = stamp;
        slot_of_[static_cast<std::size_t>(v)] = static_cast<int>(i);
    }
    std::vector<std::uint32_t> key;
    key.reserve(comp.vars.size() / 32 + comp.cls.size() * 4 + 2);
    key.push_back(static_cast<std::uint32_t>(comp.vars.size()));
    std::uint32_t word = 0;
    for (std::size_t i = 0; i < comp.vars.size(); ++i) {
        if (is_proj_[static_cast<std::size_t>(comp.vars[i])]) {
            word |= 1u << (i % 32);
        }
        if (i % 32 == 31) {
            key.push_back(word);
            word = 0;
        }
    }
    key.push_back(word);
    for (const int ci : comp.cls) {
        for (const Lit l : db_[static_cast<std::size_t>(ci)]) {
            if (lit_value(l) != -1) continue;
            const int local =
                slot_of_[static_cast<std::size_t>(sat::lit_var(l))];
            key.push_back(static_cast<std::uint32_t>(
                2 * local + (sat::lit_negated(l) ? 1 : 0) + 1));
        }
        key.push_back(0);  // clause separator (literals encode as >= 1)
    }
    return key;
}

void ProjectedCounter::cache_store(std::vector<std::uint32_t> key,
                                   const Count128& value) {
    if (shared_cache_) {
        std::uint64_t evicted = 0;
        if (shared_cache_->store(std::move(key), value, &evicted)) {
            ++stats_.cache_stores;
        }
        stats_.cache_evictions += evicted;
        return;
    }
    const std::size_t bytes = key.size() * sizeof(std::uint32_t) + 64;
    if (bytes > config_.cache_bytes / 4) return;  // would only thrash
    cache_bytes_ += bytes;
    cache_.emplace(std::move(key), value);
    ++stats_.cache_stores;
    stats_.cache_peak_bytes = std::max(stats_.cache_peak_bytes, cache_bytes_);
    if (cache_bytes_ <= config_.cache_bytes) return;
    // Budget exceeded: evict every other entry.  Counts never depend on
    // what is cached, so any victim choice is sound; alternating keeps the
    // sweep cheap and roughly halves the footprint.
    bool victim = false;
    for (auto it = cache_.begin(); it != cache_.end();) {
        if (victim) {
            cache_bytes_ -= it->first.size() * sizeof(std::uint32_t) + 64;
            it = cache_.erase(it);
            ++stats_.cache_evictions;
        } else {
            ++it;
        }
        victim = !victim;
    }
}

/// Plain DPLL existence check for components without projection variables.
bool ProjectedCounter::exists(const std::vector<int>& cls) {
    // Find a branch literal among the still-unsatisfied clauses.
    Lit branch = -1;
    for (const int ci : cls) {
        const std::vector<Lit>& c = db_[static_cast<std::size_t>(ci)];
        bool satisfied = false;
        Lit candidate = -1;
        for (const Lit l : c) {
            const int v = lit_value(l);
            if (v == 1) {
                satisfied = true;
                break;
            }
            if (v == -1 && candidate < 0) candidate = l;
        }
        if (!satisfied && candidate >= 0) {
            branch = candidate;
            break;
        }
    }
    if (branch < 0) return true;  // every clause satisfied
    // The budget applies to existence branching too: a projection-free
    // component can still hide an exponential DPLL.  The unwound result is
    // garbage, so aborted_ gates every consumer.
    if (decision_over_budget()) return false;
    for (int attempt = 0; attempt < 2; ++attempt) {
        const std::size_t mark = trail_.size();
        assign(attempt == 0 ? branch : sat::lit_not(branch));
        const bool found = bcp(cls) && exists(cls);
        undo_to(mark);
        if (found) return true;
    }
    return false;
}

/// Builds the residual of `parent` under the current assignment, splits it
/// into variable-connected components, and returns the product of their
/// counts times 2^k for the parent's projection variables that came free
/// (unassigned and no longer constrained by any clause).
Count128 ProjectedCounter::count_children(const Component& parent) {
    // Residual clauses and their unassigned variables.
    std::vector<int> residual;
    residual.reserve(parent.cls.size());
    for (const int ci : parent.cls) {
        const std::vector<Lit>& c = db_[static_cast<std::size_t>(ci)];
        bool satisfied = false;
        for (const Lit l : c) {
            if (lit_value(l) == 1) {
                satisfied = true;
                break;
            }
        }
        if (!satisfied) residual.push_back(ci);
    }

    // Union-find over the residual's variables.  slot_of_ maps a variable
    // to its dense index; entries are only read behind a matching stamp,
    // so the member array never needs clearing between calls.
    const int stamp = ++stamp_counter_;
    std::vector<Var> vars;
    std::vector<int> uf;
    const auto slot = [&](Var v) {
        if (stamp_[static_cast<std::size_t>(v)] != stamp) {
            stamp_[static_cast<std::size_t>(v)] = stamp;
            slot_of_[static_cast<std::size_t>(v)] =
                static_cast<int>(vars.size());
            vars.push_back(v);
            uf.push_back(static_cast<int>(uf.size()));
        }
        return slot_of_[static_cast<std::size_t>(v)];
    };
    const auto find = [&uf](int i) {
        while (uf[static_cast<std::size_t>(i)] != i) {
            uf[static_cast<std::size_t>(i)] =
                uf[static_cast<std::size_t>(uf[static_cast<std::size_t>(i)])];
            i = uf[static_cast<std::size_t>(i)];
        }
        return i;
    };
    for (const int ci : residual) {
        int first = -1;
        for (const Lit l : db_[static_cast<std::size_t>(ci)]) {
            if (lit_value(l) != -1) continue;
            const int s = slot(sat::lit_var(l));
            if (first < 0) {
                first = find(s);
            } else {
                uf[static_cast<std::size_t>(find(s))] = first;
                first = find(first);
            }
        }
    }

    // Projection variables of the parent that dropped out of every clause
    // multiply the count by 2 each.
    int free_proj = 0;
    for (const Var v : parent.vars) {
        if (!is_proj_[static_cast<std::size_t>(v)]) continue;
        if (val_[static_cast<std::size_t>(v)] >= 0) continue;
        if (stamp_[static_cast<std::size_t>(v)] == stamp) continue;
        ++free_proj;
    }
    Count128 total = Count128::one();
    total.shift_left(free_proj);
    if (residual.empty()) return total;

    // Group clauses (and then variables) by union-find root.
    std::vector<int> comp_of(vars.size(), -1);
    std::vector<Component> comps;
    for (const int ci : residual) {
        int root = -1;
        for (const Lit l : db_[static_cast<std::size_t>(ci)]) {
            if (lit_value(l) == -1) {
                root = find(
                    slot_of_[static_cast<std::size_t>(sat::lit_var(l))]);
                break;
            }
        }
        assert(root >= 0);
        if (comp_of[static_cast<std::size_t>(root)] < 0) {
            comp_of[static_cast<std::size_t>(root)] =
                static_cast<int>(comps.size());
            comps.emplace_back();
        }
        comps[static_cast<std::size_t>(
                  comp_of[static_cast<std::size_t>(root)])]
            .cls.push_back(ci);
    }
    for (std::size_t s = 0; s < vars.size(); ++s) {
        const int c = comp_of[static_cast<std::size_t>(find(static_cast<int>(s)))];
        assert(c >= 0);
        comps[static_cast<std::size_t>(c)].vars.push_back(vars[s]);
    }

    for (Component& comp : comps) {
        ++stats_.components;
        std::sort(comp.vars.begin(), comp.vars.end());
        // comp.cls is already sorted: residual preserves parent.cls order.
        total.mul(count_component(std::move(comp)));
        if (total.is_zero() && !total.saturated()) break;
        if (aborted_) break;
    }
    return total;
}

Count128 ProjectedCounter::count_component(Component&& comp) {
    if (aborted_) return Count128::zero();
    std::vector<std::uint32_t> key = encode(comp);
    if (shared_cache_) {
        Count128 hit;
        if (shared_cache_->lookup(key, &hit)) {
            ++stats_.cache_hits;
            return hit;
        }
    } else if (const auto it = cache_.find(key); it != cache_.end()) {
        ++stats_.cache_hits;
        return it->second;
    }

    // Branch on the projection variable whose occurrences sit in the
    // shortest residual clauses (score ~ sum over clauses of 2^-len, like
    // sharpSAT's clause-length weighting): on circuit instances that is
    // the propagation frontier -- a selector whose cell's pins are already
    // pinned down propagates its output through every copy and shatters
    // the component.  Ties go to the smallest variable id; deterministic.
    Var branch = -1;
    {
        std::vector<std::uint64_t> score(comp.vars.size(), 0);
        std::vector<std::size_t> proj_slots;
        for (const int ci : comp.cls) {
            proj_slots.clear();
            int len = 0;
            for (const Lit l : db_[static_cast<std::size_t>(ci)]) {
                if (lit_value(l) != -1) continue;
                ++len;
                const Var v = sat::lit_var(l);
                if (!is_proj_[static_cast<std::size_t>(v)]) continue;
                const auto it = std::lower_bound(comp.vars.begin(),
                                                 comp.vars.end(), v);
                proj_slots.push_back(static_cast<std::size_t>(
                    std::distance(comp.vars.begin(), it)));
            }
            const std::uint64_t w = 1ull << (len < 16 ? 32 - 2 * len : 0);
            for (const std::size_t s : proj_slots) score[s] += w;
        }
        std::uint64_t best = 0;
        for (std::size_t i = 0; i < comp.vars.size(); ++i) {
            if (score[i] > best) {
                best = score[i];
                branch = comp.vars[i];
            }
        }
    }
    if (branch < 0) {
        // No projection variable: the component only gates whether an
        // extension exists.
        ++stats_.sat_checks;
        const Count128 r =
            exists(comp.cls) ? Count128::one() : Count128::zero();
        if (aborted_) return Count128::zero();  // partial: never cache
        cache_store(std::move(key), r);
        return r;
    }

    Count128 total;
    for (int b = 0; b < 2; ++b) {
        if (decision_over_budget()) return Count128::zero();
        const std::size_t mark = trail_.size();
        assign(sat::mk_lit(branch, /*negated=*/b == 0));
        if (bcp(comp.cls)) {
            total.add(count_children(comp));
        }
        undo_to(mark);
        if (aborted_) return Count128::zero();
    }
    cache_store(std::move(key), total);
    return total;
}

Count128 ProjectedCounter::count_cube(const std::vector<Lit>& cube) {
    Component root;
    root.vars = projection_;
    root.cls.resize(db_.size());
    for (std::size_t i = 0; i < db_.size(); ++i) {
        root.cls[i] = static_cast<int>(i);
    }
    Count128 total;
    bool consistent = true;
    for (const Lit l : cube) {
        const int v = lit_value(l);
        if (v == 0) {
            consistent = false;
            break;
        }
        if (v == -1) assign(l);
    }
    if (consistent && bcp(root.cls)) {
        total = count_children(root);
    }
    undo_to(0);
    return total;
}

std::vector<Var> ProjectedCounter::pick_cube_vars(
    const std::vector<int>& root_cls, int k) {
    // The same clause-length-weighted activity count_component branches
    // on, computed once over the whole root residual: the k winners are
    // the variables serial search would split on early, so the cubes cut
    // where propagation bites instead of along dead selectors.
    std::vector<std::uint64_t> score(static_cast<std::size_t>(num_vars_), 0);
    for (const int ci : root_cls) {
        const std::vector<Lit>& c = db_[static_cast<std::size_t>(ci)];
        bool satisfied = false;
        int len = 0;
        for (const Lit l : c) {
            const int v = lit_value(l);
            if (v == 1) {
                satisfied = true;
                break;
            }
            if (v == -1) ++len;
        }
        if (satisfied || len == 0) continue;
        const std::uint64_t w = 1ull << (len < 16 ? 32 - 2 * len : 0);
        for (const Lit l : c) {
            if (lit_value(l) != -1) continue;
            const Var v = sat::lit_var(l);
            if (is_proj_[static_cast<std::size_t>(v)]) {
                score[static_cast<std::size_t>(v)] += w;
            }
        }
    }
    // Only constrained variables qualify (score > 0): splitting on a free
    // projection variable would just mirror every cube.
    std::vector<Var> picked;
    for (Var v = 0; v < num_vars_; ++v) {
        if (score[static_cast<std::size_t>(v)] > 0) picked.push_back(v);
    }
    std::sort(picked.begin(), picked.end(), [&score](Var a, Var b) {
        const std::uint64_t sa = score[static_cast<std::size_t>(a)];
        const std::uint64_t sb = score[static_cast<std::size_t>(b)];
        if (sa != sb) return sa > sb;
        return a < b;
    });
    if (static_cast<int>(picked.size()) > k) {
        picked.resize(static_cast<std::size_t>(k));
    }
    std::sort(picked.begin(), picked.end());  // deterministic cube bit order
    return picked;
}

void ProjectedCounter::count_cubes(Result* result) {
    Component root;
    root.vars = projection_;
    root.cls.resize(db_.size());
    for (std::size_t i = 0; i < db_.size(); ++i) {
        root.cls[i] = static_cast<int>(i);
    }
    if (!bcp(root.cls)) {
        undo_to(0);
        return;  // UNSAT at the root: count stays zero, exact
    }
    int k = config_.cube_vars;
    if (k <= 0) {
        // Auto width: at least 4 cubes per worker so one hard cube cannot
        // serialize the rest of the pool behind it.
        const int workers = std::max(1, config_.threads);
        k = 0;
        while ((1 << k) < 4 * workers && k < 10) ++k;
    }
    k = std::min(k, 16);
    const std::vector<Var> cube_vars = pick_cube_vars(root.cls, k);
    undo_to(0);
    const int kk = static_cast<int>(cube_vars.size());
    const std::size_t n_cubes = std::size_t{1} << kk;
    const int workers = std::max(
        1, std::min(config_.threads, static_cast<int>(n_cubes)));

    SharedComponentCache shared_cache(config_.cache_bytes,
                                      std::max(16, workers * 4));
    std::atomic<std::uint64_t> shared_decisions{0};
    std::atomic<bool> shared_abort{false};
    std::atomic<std::size_t> next_cube{0};
    std::vector<Count128> cube_counts(n_cubes);
    struct WorkerOut {
        CounterStats stats;
        bool aborted = false;
    };
    std::vector<WorkerOut> outs(static_cast<std::size_t>(workers));

    const auto run_worker = [&](int w) {
        ProjectedCounter child(*this, w);
        child.shared_cache_ = &shared_cache;
        child.shared_abort_ = &shared_abort;
        if (config_.max_decisions > 0) {
            child.shared_decisions_ = &shared_decisions;
        }
        std::vector<Lit> cube(static_cast<std::size_t>(kk));
        while (true) {
            const std::size_t i =
                next_cube.fetch_add(1, std::memory_order_relaxed);
            if (i >= n_cubes) break;
            for (int b = 0; b < kk; ++b) {
                cube[static_cast<std::size_t>(b)] = sat::mk_lit(
                    cube_vars[static_cast<std::size_t>(b)],
                    /*negated=*/((i >> b) & 1) == 0);
            }
            // Each slot is written by exactly one worker; no lock needed.
            cube_counts[i] = child.count_cube(cube);
            if (child.aborted_) break;
        }
        outs[static_cast<std::size_t>(w)] = {child.stats_, child.aborted_};
    };

    // The calling thread is always a member, and waiting on the submitted
    // futures HELPS (ThreadPool::run_one) instead of blocking -- so
    // sharing a pool whose workers are themselves inside count() cannot
    // starve (the nested-submission deadlock regression).
    std::unique_ptr<util::ThreadPool> local_pool;
    util::ThreadPool* pool = config_.pool;
    if (workers > 1 && pool == nullptr) {
        local_pool = std::make_unique<util::ThreadPool>(workers - 1);
        pool = local_pool.get();
    }
    std::vector<std::future<void>> futures;
    futures.reserve(static_cast<std::size_t>(workers - 1));
    for (int w = 1; w < workers; ++w) {
        futures.push_back(pool->submit([&run_worker, w] { run_worker(w); }));
    }
    run_worker(0);
    for (std::future<void>& f : futures) {
        while (f.wait_for(std::chrono::seconds(0)) !=
               std::future_status::ready) {
            if (!pool->run_one()) {
                f.wait_for(std::chrono::milliseconds(1));
            }
        }
        f.get();
    }

    // Deterministic merge: cube order is the fixed binary enumeration, and
    // Count128::add saturates stickily, so a saturated cube plus an UNSAT
    // cube renders exactly like the serial count's ">=" lower bound.
    Count128 total;
    for (const Count128& c : cube_counts) total.add(c);
    result->count = total;
    for (const WorkerOut& out : outs) {
        stats_.decisions += out.stats.decisions;
        stats_.propagations += out.stats.propagations;
        stats_.components += out.stats.components;
        stats_.cache_hits += out.stats.cache_hits;
        stats_.cache_stores += out.stats.cache_stores;
        stats_.cache_evictions += out.stats.cache_evictions;
        stats_.sat_checks += out.stats.sat_checks;
        aborted_ = aborted_ || out.aborted;
    }
    stats_.cache_entries = shared_cache.entries();
    stats_.cache_peak_bytes = shared_cache.peak_bytes();
}

ProjectedCounter::Result ProjectedCounter::count() {
    Result result;
    report::Json span_args;
    const bool cube_mode = config_.threads > 1 || config_.cube_vars > 0;
    if (obs::tracing()) {
        span_args = report::Json::object();
        span_args.set("projection",
                      static_cast<std::uint64_t>(projection_.size()));
        span_args.set("clauses", static_cast<std::uint64_t>(db_.size()));
        span_args.set("threads", cube_mode ? std::max(1, config_.threads) : 1);
    }
    obs::Span span("projected-count", "count", std::move(span_args));
    if (!root_conflict_) {
        if (cube_mode) {
            count_cubes(&result);
        } else {
            Component root;
            root.vars = projection_;
            root.cls.resize(db_.size());
            for (std::size_t i = 0; i < db_.size(); ++i) {
                root.cls[i] = static_cast<int>(i);
            }
            if (bcp(root.cls)) {
                result.count = count_children(root);
            }
            undo_to(0);
            stats_.cache_entries = cache_.size();
        }
    }
    result.exact = !aborted_ && !result.count.saturated();
    result.stats = stats_;
    if (span) {
        report::Json ea = report::Json::object();
        ea.set("count", result.count.to_string());
        ea.set("exact", result.exact);
        ea.set("decisions", stats_.decisions);
        ea.set("components", stats_.components);
        ea.set("cache_hits", stats_.cache_hits);
        ea.set("cache_stores", stats_.cache_stores);
        span.set_end_args(std::move(ea));
    }
    if (obs::metrics_enabled()) {
        obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
        reg.counter("count.exact_runs").add();
        reg.counter("count.decisions").add(stats_.decisions);
        reg.counter("count.components").add(stats_.components);
        reg.counter("count.cache_hits").add(stats_.cache_hits);
        reg.counter("count.cache_stores").add(stats_.cache_stores);
    }
    return result;
}

}  // namespace mvf::count
