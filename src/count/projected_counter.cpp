#include "count/projected_counter.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mvf::count {

using sat::Lit;
using sat::Var;

ProjectedCounter::ProjectedCounter(Cnf cnf, CounterConfig config)
    : config_(config), num_vars_(cnf.num_vars) {
    is_proj_.assign(static_cast<std::size_t>(num_vars_), false);
    projection_.reserve(cnf.projection.size());
    for (const Var v : cnf.projection) {
        assert(v >= 0 && v < num_vars_);
        if (!is_proj_[static_cast<std::size_t>(v)]) {
            is_proj_[static_cast<std::size_t>(v)] = true;
            projection_.push_back(v);
        }
    }
    std::sort(projection_.begin(), projection_.end());
    val_.assign(static_cast<std::size_t>(num_vars_), -1);
    stamp_.assign(static_cast<std::size_t>(num_vars_), 0);
    slot_of_.assign(static_cast<std::size_t>(num_vars_), -1);

    // Normalize into the immutable database: sorted deduplicated literals,
    // tautologies dropped, an empty clause marking the whole formula
    // unsatisfiable.
    db_.reserve(cnf.clauses.size());
    for (auto& in : cnf.clauses) {
        std::vector<Lit> c = std::move(in);
        std::sort(c.begin(), c.end());
        c.erase(std::unique(c.begin(), c.end()), c.end());
        bool tautology = false;
        for (std::size_t j = 0; j + 1 < c.size(); ++j) {
            if (c[j + 1] == sat::lit_not(c[j])) {
                tautology = true;
                break;
            }
        }
        if (tautology) continue;
        if (c.empty()) {
            root_conflict_ = true;
            break;
        }
        db_.push_back(std::move(c));
    }
}

void ProjectedCounter::assign(Lit l) {
    assert(lit_value(l) == -1);
    val_[static_cast<std::size_t>(sat::lit_var(l))] =
        sat::lit_negated(l) ? 0 : 1;
    trail_.push_back(l);
    ++stats_.propagations;
}

void ProjectedCounter::undo_to(std::size_t mark) {
    while (trail_.size() > mark) {
        val_[static_cast<std::size_t>(sat::lit_var(trail_.back()))] = -1;
        trail_.pop_back();
    }
}

/// Unit propagation over the clause-index set, to fixpoint.  Returns false
/// on a conflict (a clause with every literal false).
bool ProjectedCounter::bcp(const std::vector<int>& cls) {
    std::vector<unsigned char> active(cls.size(), 1);
    bool again = true;
    while (again) {
        again = false;
        for (std::size_t i = 0; i < cls.size(); ++i) {
            if (!active[i]) continue;
            const std::vector<Lit>& c = db_[static_cast<std::size_t>(cls[i])];
            Lit unit = -1;
            int unassigned = 0;
            bool satisfied = false;
            for (const Lit l : c) {
                const int v = lit_value(l);
                if (v == 1) {
                    satisfied = true;
                    break;
                }
                if (v == -1) {
                    if (++unassigned > 1) break;
                    unit = l;
                }
            }
            if (satisfied) {
                active[i] = 0;
                continue;
            }
            if (unassigned == 0) return false;
            if (unassigned == 1) {
                assign(unit);
                active[i] = 0;
                again = true;
            }
        }
    }
    return true;
}

/// Cache key: the residual formula with variables renamed to their rank in
/// the component (plus a bitmask of which ranks are projection variables).
/// Renaming makes isomorphic components collide on purpose -- the CEGAR
/// enumeration instance stamps one circuit copy per I/O pattern, so
/// structurally identical subcircuits recur across copies under different
/// auxiliary variable ids, and equal keys imply a projection-preserving
/// isomorphism, hence equal counts.
std::vector<std::uint32_t> ProjectedCounter::encode(const Component& comp) {
    const int stamp = ++stamp_counter_;
    for (std::size_t i = 0; i < comp.vars.size(); ++i) {
        const Var v = comp.vars[i];
        stamp_[static_cast<std::size_t>(v)] = stamp;
        slot_of_[static_cast<std::size_t>(v)] = static_cast<int>(i);
    }
    std::vector<std::uint32_t> key;
    key.reserve(comp.vars.size() / 32 + comp.cls.size() * 4 + 2);
    key.push_back(static_cast<std::uint32_t>(comp.vars.size()));
    std::uint32_t word = 0;
    for (std::size_t i = 0; i < comp.vars.size(); ++i) {
        if (is_proj_[static_cast<std::size_t>(comp.vars[i])]) {
            word |= 1u << (i % 32);
        }
        if (i % 32 == 31) {
            key.push_back(word);
            word = 0;
        }
    }
    key.push_back(word);
    for (const int ci : comp.cls) {
        for (const Lit l : db_[static_cast<std::size_t>(ci)]) {
            if (lit_value(l) != -1) continue;
            const int local =
                slot_of_[static_cast<std::size_t>(sat::lit_var(l))];
            key.push_back(static_cast<std::uint32_t>(
                2 * local + (sat::lit_negated(l) ? 1 : 0) + 1));
        }
        key.push_back(0);  // clause separator (literals encode as >= 1)
    }
    return key;
}

void ProjectedCounter::cache_store(std::vector<std::uint32_t> key,
                                   const Count128& value) {
    const std::size_t bytes = key.size() * sizeof(std::uint32_t) + 64;
    if (bytes > config_.cache_bytes / 4) return;  // would only thrash
    cache_bytes_ += bytes;
    cache_.emplace(std::move(key), value);
    ++stats_.cache_stores;
    stats_.cache_peak_bytes = std::max(stats_.cache_peak_bytes, cache_bytes_);
    if (cache_bytes_ <= config_.cache_bytes) return;
    // Budget exceeded: evict every other entry.  Counts never depend on
    // what is cached, so any victim choice is sound; alternating keeps the
    // sweep cheap and roughly halves the footprint.
    bool victim = false;
    for (auto it = cache_.begin(); it != cache_.end();) {
        if (victim) {
            cache_bytes_ -= it->first.size() * sizeof(std::uint32_t) + 64;
            it = cache_.erase(it);
            ++stats_.cache_evictions;
        } else {
            ++it;
        }
        victim = !victim;
    }
}

/// Plain DPLL existence check for components without projection variables.
bool ProjectedCounter::exists(const std::vector<int>& cls) {
    // Find a branch literal among the still-unsatisfied clauses.
    Lit branch = -1;
    for (const int ci : cls) {
        const std::vector<Lit>& c = db_[static_cast<std::size_t>(ci)];
        bool satisfied = false;
        Lit candidate = -1;
        for (const Lit l : c) {
            const int v = lit_value(l);
            if (v == 1) {
                satisfied = true;
                break;
            }
            if (v == -1 && candidate < 0) candidate = l;
        }
        if (!satisfied && candidate >= 0) {
            branch = candidate;
            break;
        }
    }
    if (branch < 0) return true;  // every clause satisfied
    ++stats_.decisions;
    if (config_.max_decisions > 0 && stats_.decisions > config_.max_decisions) {
        // The budget applies to existence branching too: a projection-free
        // component can still hide an exponential DPLL.  The unwound
        // result is garbage, so aborted_ gates every consumer.
        aborted_ = true;
        return false;
    }
    for (int attempt = 0; attempt < 2; ++attempt) {
        const std::size_t mark = trail_.size();
        assign(attempt == 0 ? branch : sat::lit_not(branch));
        const bool found = bcp(cls) && exists(cls);
        undo_to(mark);
        if (found) return true;
    }
    return false;
}

/// Builds the residual of `parent` under the current assignment, splits it
/// into variable-connected components, and returns the product of their
/// counts times 2^k for the parent's projection variables that came free
/// (unassigned and no longer constrained by any clause).
Count128 ProjectedCounter::count_children(const Component& parent) {
    // Residual clauses and their unassigned variables.
    std::vector<int> residual;
    residual.reserve(parent.cls.size());
    for (const int ci : parent.cls) {
        const std::vector<Lit>& c = db_[static_cast<std::size_t>(ci)];
        bool satisfied = false;
        for (const Lit l : c) {
            if (lit_value(l) == 1) {
                satisfied = true;
                break;
            }
        }
        if (!satisfied) residual.push_back(ci);
    }

    // Union-find over the residual's variables.  slot_of_ maps a variable
    // to its dense index; entries are only read behind a matching stamp,
    // so the member array never needs clearing between calls.
    const int stamp = ++stamp_counter_;
    std::vector<Var> vars;
    std::vector<int> uf;
    const auto slot = [&](Var v) {
        if (stamp_[static_cast<std::size_t>(v)] != stamp) {
            stamp_[static_cast<std::size_t>(v)] = stamp;
            slot_of_[static_cast<std::size_t>(v)] =
                static_cast<int>(vars.size());
            vars.push_back(v);
            uf.push_back(static_cast<int>(uf.size()));
        }
        return slot_of_[static_cast<std::size_t>(v)];
    };
    const auto find = [&uf](int i) {
        while (uf[static_cast<std::size_t>(i)] != i) {
            uf[static_cast<std::size_t>(i)] =
                uf[static_cast<std::size_t>(uf[static_cast<std::size_t>(i)])];
            i = uf[static_cast<std::size_t>(i)];
        }
        return i;
    };
    for (const int ci : residual) {
        int first = -1;
        for (const Lit l : db_[static_cast<std::size_t>(ci)]) {
            if (lit_value(l) != -1) continue;
            const int s = slot(sat::lit_var(l));
            if (first < 0) {
                first = find(s);
            } else {
                uf[static_cast<std::size_t>(find(s))] = first;
                first = find(first);
            }
        }
    }

    // Projection variables of the parent that dropped out of every clause
    // multiply the count by 2 each.
    int free_proj = 0;
    for (const Var v : parent.vars) {
        if (!is_proj_[static_cast<std::size_t>(v)]) continue;
        if (val_[static_cast<std::size_t>(v)] >= 0) continue;
        if (stamp_[static_cast<std::size_t>(v)] == stamp) continue;
        ++free_proj;
    }
    Count128 total = Count128::one();
    total.shift_left(free_proj);
    if (residual.empty()) return total;

    // Group clauses (and then variables) by union-find root.
    std::vector<int> comp_of(vars.size(), -1);
    std::vector<Component> comps;
    for (const int ci : residual) {
        int root = -1;
        for (const Lit l : db_[static_cast<std::size_t>(ci)]) {
            if (lit_value(l) == -1) {
                root = find(
                    slot_of_[static_cast<std::size_t>(sat::lit_var(l))]);
                break;
            }
        }
        assert(root >= 0);
        if (comp_of[static_cast<std::size_t>(root)] < 0) {
            comp_of[static_cast<std::size_t>(root)] =
                static_cast<int>(comps.size());
            comps.emplace_back();
        }
        comps[static_cast<std::size_t>(
                  comp_of[static_cast<std::size_t>(root)])]
            .cls.push_back(ci);
    }
    for (std::size_t s = 0; s < vars.size(); ++s) {
        const int c = comp_of[static_cast<std::size_t>(find(static_cast<int>(s)))];
        assert(c >= 0);
        comps[static_cast<std::size_t>(c)].vars.push_back(vars[s]);
    }

    for (Component& comp : comps) {
        ++stats_.components;
        std::sort(comp.vars.begin(), comp.vars.end());
        // comp.cls is already sorted: residual preserves parent.cls order.
        total.mul(count_component(std::move(comp)));
        if (total.is_zero() && !total.saturated()) break;
        if (aborted_) break;
    }
    return total;
}

Count128 ProjectedCounter::count_component(Component&& comp) {
    if (aborted_) return Count128::zero();
    std::vector<std::uint32_t> key = encode(comp);
    if (const auto it = cache_.find(key); it != cache_.end()) {
        ++stats_.cache_hits;
        return it->second;
    }

    // Branch on the projection variable whose occurrences sit in the
    // shortest residual clauses (score ~ sum over clauses of 2^-len, like
    // sharpSAT's clause-length weighting): on circuit instances that is
    // the propagation frontier -- a selector whose cell's pins are already
    // pinned down propagates its output through every copy and shatters
    // the component.  Ties go to the smallest variable id; deterministic.
    Var branch = -1;
    {
        std::vector<std::uint64_t> score(comp.vars.size(), 0);
        std::vector<std::size_t> proj_slots;
        for (const int ci : comp.cls) {
            proj_slots.clear();
            int len = 0;
            for (const Lit l : db_[static_cast<std::size_t>(ci)]) {
                if (lit_value(l) != -1) continue;
                ++len;
                const Var v = sat::lit_var(l);
                if (!is_proj_[static_cast<std::size_t>(v)]) continue;
                const auto it = std::lower_bound(comp.vars.begin(),
                                                 comp.vars.end(), v);
                proj_slots.push_back(static_cast<std::size_t>(
                    std::distance(comp.vars.begin(), it)));
            }
            const std::uint64_t w = 1ull << (len < 16 ? 32 - 2 * len : 0);
            for (const std::size_t s : proj_slots) score[s] += w;
        }
        std::uint64_t best = 0;
        for (std::size_t i = 0; i < comp.vars.size(); ++i) {
            if (score[i] > best) {
                best = score[i];
                branch = comp.vars[i];
            }
        }
    }
    if (branch < 0) {
        // No projection variable: the component only gates whether an
        // extension exists.
        ++stats_.sat_checks;
        const Count128 r =
            exists(comp.cls) ? Count128::one() : Count128::zero();
        if (aborted_) return Count128::zero();  // partial: never cache
        cache_store(std::move(key), r);
        return r;
    }

    Count128 total;
    for (int b = 0; b < 2; ++b) {
        ++stats_.decisions;
        if (config_.max_decisions > 0 &&
            stats_.decisions > config_.max_decisions) {
            aborted_ = true;
            return Count128::zero();
        }
        const std::size_t mark = trail_.size();
        assign(sat::mk_lit(branch, /*negated=*/b == 0));
        if (bcp(comp.cls)) {
            total.add(count_children(comp));
        }
        undo_to(mark);
        if (aborted_) return Count128::zero();
    }
    cache_store(std::move(key), total);
    return total;
}

ProjectedCounter::Result ProjectedCounter::count() {
    Result result;
    report::Json span_args;
    if (obs::tracing()) {
        span_args = report::Json::object();
        span_args.set("projection",
                      static_cast<std::uint64_t>(projection_.size()));
        span_args.set("clauses", static_cast<std::uint64_t>(db_.size()));
    }
    obs::Span span("projected-count", "count", std::move(span_args));
    if (!root_conflict_) {
        Component root;
        root.vars = projection_;
        root.cls.resize(db_.size());
        for (std::size_t i = 0; i < db_.size(); ++i) {
            root.cls[i] = static_cast<int>(i);
        }
        if (bcp(root.cls)) {
            result.count = count_children(root);
        }
        undo_to(0);
    }
    result.exact = !aborted_ && !result.count.saturated();
    stats_.cache_entries = cache_.size();
    result.stats = stats_;
    if (span) {
        report::Json ea = report::Json::object();
        ea.set("count", result.count.to_string());
        ea.set("exact", result.exact);
        ea.set("decisions", stats_.decisions);
        ea.set("components", stats_.components);
        ea.set("cache_hits", stats_.cache_hits);
        ea.set("cache_stores", stats_.cache_stores);
        span.set_end_args(std::move(ea));
    }
    if (obs::metrics_enabled()) {
        obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
        reg.counter("count.exact_runs").add();
        reg.counter("count.decisions").add(stats_.decisions);
        reg.counter("count.components").add(stats_.components);
        reg.counter("count.cache_hits").add(stats_.cache_hits);
        reg.counter("count.cache_stores").add(stats_.cache_stores);
    }
    return result;
}

}  // namespace mvf::count
