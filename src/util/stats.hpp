#pragma once
// Running statistics and simple histograms used by the experiment harnesses
// (Fig. 4a area distributions, Table I averages, ablation summaries).

#include <cstddef>
#include <string>
#include <vector>

namespace mvf::util {

/// Numerically stable accumulation of count/mean/variance/min/max
/// (Welford's algorithm).
class RunningStats {
public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;  ///< population variance
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); values outside clamp to the edge bins.
class Histogram {
public:
    Histogram(double lo, double hi, int num_bins);

    void add(double x);

    int num_bins() const { return static_cast<int>(bins_.size()); }
    std::size_t bin_count(int i) const { return bins_[static_cast<std::size_t>(i)]; }
    double bin_lo(int i) const;
    double bin_hi(int i) const;
    std::size_t total() const { return total_; }

    /// Multi-line ASCII rendering (one row per bin, '#' bars), used to print
    /// Fig. 4a-style distributions to the terminal.
    std::string render(int max_width = 50) const;

private:
    double lo_;
    double hi_;
    std::vector<std::size_t> bins_;
    std::size_t total_ = 0;
};

}  // namespace mvf::util
