#pragma once
// Deterministic pseudo-random number generation (xoshiro256**).
//
// All stochastic components of the flow (genetic algorithm, random pin
// assignment baselines, random camouflaging) draw from an explicitly seeded
// Rng so every experiment is reproducible from its seed.

#include <cstdint>
#include <span>
#include <vector>

namespace mvf::util {

/// Small, fast, seedable PRNG (xoshiro256**).  Not cryptographic; used only
/// to drive heuristics and workload generation.
class Rng {
public:
    /// Seeds the generator from a single 64-bit value via splitmix64.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /// Next raw 64-bit output.
    std::uint64_t next_u64();

    /// Uniform integer in the inclusive range [lo, hi].
    std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);

    /// Uniform integer in the inclusive range [lo, hi].
    int uniform_int(int lo, int hi);

    /// Uniform real in [0, 1).
    double uniform_real();

    /// Bernoulli trial with probability p of returning true.
    bool coin(double p);

    /// Fisher-Yates shuffle of the given span.
    template <typename T>
    void shuffle(std::span<T> items) {
        for (std::size_t i = items.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(
                uniform_u64(0, static_cast<std::uint64_t>(i - 1)));
            std::swap(items[i - 1], items[j]);
        }
    }

    /// A random permutation of {0, ..., n-1}.
    std::vector<int> permutation(int n);

    /// Derives an independently seeded child generator (for per-run streams).
    Rng split();

private:
    std::uint64_t state_[4];
};

}  // namespace mvf::util
