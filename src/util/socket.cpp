#include "util/socket.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace mvf::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un unix_sockaddr(const std::string& path) {
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (path.size() >= sizeof(sa.sun_path)) {
        throw std::invalid_argument("unix socket path too long: " + path);
    }
    std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
    return sa;
}

}  // namespace

SocketAddr SocketAddr::parse(const std::string& text) {
    SocketAddr a;
    if (text.rfind("unix:", 0) == 0) {
        a.is_unix = true;
        a.path = text.substr(5);
        if (a.path.empty()) {
            throw std::invalid_argument("unix socket address needs a path: " +
                                        text);
        }
        return a;
    }
    if (text.rfind("tcp:", 0) == 0) {
        a.is_unix = false;
        const std::string rest = text.substr(4);
        const std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == rest.size()) {
            throw std::invalid_argument(
                "tcp socket address must be tcp:host:port: " + text);
        }
        a.host = rest.substr(0, colon);
        try {
            std::size_t used = 0;
            a.port = std::stoi(rest.substr(colon + 1), &used);
            if (used != rest.size() - colon - 1) {
                throw std::invalid_argument(rest);
            }
        } catch (const std::exception&) {
            throw std::invalid_argument("tcp port is not a number: " + text);
        }
        if (a.port < 0 || a.port > 65535) {
            throw std::invalid_argument("tcp port out of range: " + text);
        }
        return a;
    }
    throw std::invalid_argument(
        "socket address must start with unix: or tcp: -- got \"" + text +
        "\"");
}

std::string SocketAddr::to_string() const {
    if (is_unix) return "unix:" + path;
    return "tcp:" + host + ":" + std::to_string(port);
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        buffer_ = std::move(other.buffer_);
        other.fd_ = -1;
    }
    return *this;
}

Socket Socket::connect(const SocketAddr& addr) {
    if (addr.is_unix) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) throw_errno("socket(AF_UNIX)");
        const sockaddr_un sa = unix_sockaddr(addr.path);
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa),
                      sizeof(sa)) != 0) {
            const int err = errno;
            ::close(fd);
            errno = err;
            throw_errno("connect " + addr.to_string());
        }
        return Socket(fd);
    }
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const std::string port = std::to_string(addr.port);
    const int rc = ::getaddrinfo(addr.host.c_str(), port.c_str(), &hints, &res);
    if (rc != 0) {
        throw std::runtime_error("resolve " + addr.to_string() + ": " +
                                 gai_strerror(rc));
    }
    int fd = -1;
    int last_errno = ECONNREFUSED;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_errno = errno;
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
        last_errno = errno;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        errno = last_errno;
        throw_errno("connect " + addr.to_string());
    }
    return Socket(fd);
}

bool Socket::send_all(std::string_view data) {
    while (!data.empty()) {
        const ssize_t n =
            ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

bool Socket::send_line(std::string_view data) {
    std::string line(data);
    line.push_back('\n');
    return send_all(line);
}

bool Socket::recv_line(std::string* line) {
    while (true) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            *line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            if (!line->empty() && line->back() == '\r') line->pop_back();
            return true;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return false;  // EOF or error; partial line is dropped
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

void Socket::shutdown_write() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

ListenSocket::~ListenSocket() { close(); }

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_), addr_(std::move(other.addr_)) {
    other.fd_ = -1;
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        port_ = other.port_;
        addr_ = std::move(other.addr_);
        other.fd_ = -1;
    }
    return *this;
}

ListenSocket ListenSocket::listen(const SocketAddr& addr, int backlog) {
    ListenSocket ls;
    ls.addr_ = addr;
    if (addr.is_unix) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) throw_errno("socket(AF_UNIX)");
        // A previous server that crashed leaves its socket file behind;
        // binding over it needs the unlink (a live server holds the file
        // locked only by convention -- callers pick per-run paths).
        ::unlink(addr.path.c_str());
        const sockaddr_un sa = unix_sockaddr(addr.path);
        if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) !=
            0) {
            const int err = errno;
            ::close(fd);
            errno = err;
            throw_errno("bind " + addr.to_string());
        }
        if (::listen(fd, backlog) != 0) {
            const int err = errno;
            ::close(fd);
            ::unlink(addr.path.c_str());
            errno = err;
            throw_errno("listen " + addr.to_string());
        }
        ls.fd_ = fd;
        return ls;
    }
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo* res = nullptr;
    const std::string port = std::to_string(addr.port);
    const int rc = ::getaddrinfo(addr.host.empty() ? nullptr : addr.host.c_str(),
                                 port.c_str(), &hints, &res);
    if (rc != 0) {
        throw std::runtime_error("resolve " + addr.to_string() + ": " +
                                 gai_strerror(rc));
    }
    int fd = -1;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) continue;
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, backlog) == 0) {
            break;
        }
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) throw_errno("bind " + addr.to_string());
    sockaddr_storage bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
        if (bound.ss_family == AF_INET) {
            ls.port_ = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
        } else if (bound.ss_family == AF_INET6) {
            ls.port_ =
                ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
        }
    }
    ls.addr_.port = ls.port_;
    ls.fd_ = fd;
    return ls;
}

Socket ListenSocket::accept() {
    while (true) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) return Socket(fd);
        if (errno == EINTR) continue;
        return Socket();
    }
}

void ListenSocket::close() {
    if (fd_ >= 0) {
        // shutdown() unblocks a concurrent accept() (it returns EINVAL)
        // without racing the fd number the way a bare close() would.
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
        if (addr_.is_unix && !addr_.path.empty()) {
            ::unlink(addr_.path.c_str());
        }
    }
}

void ignore_sigpipe() { ::signal(SIGPIPE, SIG_IGN); }

}  // namespace mvf::util
