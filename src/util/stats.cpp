#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mvf::util {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, int num_bins)
    : lo_(lo), hi_(hi), bins_(static_cast<std::size_t>(num_bins), 0) {}

void Histogram::add(double x) {
    const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
    int idx = static_cast<int>((x - lo_) / width);
    idx = std::clamp(idx, 0, static_cast<int>(bins_.size()) - 1);
    ++bins_[static_cast<std::size_t>(idx)];
    ++total_;
}

double Histogram::bin_lo(int i) const {
    const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
    return lo_ + width * i;
}

double Histogram::bin_hi(int i) const { return bin_lo(i + 1); }

std::string Histogram::render(int max_width) const {
    std::size_t peak = 1;
    for (const auto c : bins_) peak = std::max(peak, c);
    std::string out;
    char line[160];
    for (int i = 0; i < num_bins(); ++i) {
        const auto c = bins_[static_cast<std::size_t>(i)];
        const int bar = static_cast<int>(
            static_cast<double>(c) * max_width / static_cast<double>(peak));
        std::snprintf(line, sizeof line, "[%7.1f,%7.1f) %6zu |", bin_lo(i), bin_hi(i), c);
        out += line;
        out.append(static_cast<std::size_t>(bar), '#');
        out += '\n';
    }
    return out;
}

}  // namespace mvf::util
