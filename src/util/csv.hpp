#pragma once
// Minimal CSV emission for benchmark harnesses (--csv outputs).

#include <fstream>
#include <string>
#include <vector>

namespace mvf::util {

/// Writes rows of string/numeric fields to a CSV file.  Fields containing
/// commas or quotes are quoted per RFC 4180.
class CsvWriter {
public:
    /// Opens (truncates) `path`.  `ok()` reports whether the stream is usable.
    explicit CsvWriter(const std::string& path);

    bool ok() const { return static_cast<bool>(out_); }

    void write_row(const std::vector<std::string>& fields);

    /// Convenience: formats doubles with 6 significant digits.
    static std::string field(double v);
    static std::string field(int v);
    static std::string field(std::size_t v);

private:
    std::ofstream out_;
};

}  // namespace mvf::util
