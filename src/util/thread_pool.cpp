#include "util/thread_pool.hpp"

#include <algorithm>

namespace mvf::util {

ThreadPool::ThreadPool(int threads) {
    const int count = std::max(1, threads);
    shards_.resize(static_cast<std::size_t>(count));
    workers_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        workers_.emplace_back(
            [this, i] { worker_loop(static_cast<std::size_t>(i)); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::unique_lock lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();
    {
        std::unique_lock lock(mutex_);
        queue_.push(std::move(packaged));
        ++pending_;
    }
    work_ready_.notify_one();
    return future;
}

std::future<void> ThreadPool::submit_sharded(std::size_t shard,
                                             std::function<void()> task) {
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();
    {
        std::unique_lock lock(mutex_);
        shards_[shard % shards_.size()].push_back(std::move(packaged));
        ++pending_;
    }
    work_ready_.notify_one();
    return future;
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return pending_ == 0 && in_flight_ == 0; });
}

bool ThreadPool::run_one() {
    std::packaged_task<void()> task;
    {
        std::unique_lock lock(mutex_);
        if (pending_ == 0) return false;
        // External callers have no shard of their own: drain the shared
        // queue first, then relieve the fullest deque from the back (same
        // placement discipline as a steal, but not counted as one -- the
        // caller is helping, not idle-stealing).
        if (!queue_.empty()) {
            task = std::move(queue_.front());
            queue_.pop();
        } else {
            std::size_t victim = shards_.size();
            std::size_t victim_size = 0;
            for (std::size_t i = 0; i < shards_.size(); ++i) {
                if (shards_[i].size() > victim_size) {
                    victim = i;
                    victim_size = shards_[i].size();
                }
            }
            task = std::move(shards_[victim].back());
            shards_[victim].pop_back();
        }
        --pending_;
        ++in_flight_;
    }
    task();  // exceptions land in the task's future
    {
        std::unique_lock lock(mutex_);
        --in_flight_;
        if (pending_ == 0 && in_flight_ == 0) idle_.notify_all();
    }
    return true;
}

std::size_t ThreadPool::steals() const {
    std::unique_lock lock(mutex_);
    return steals_;
}

std::packaged_task<void()> ThreadPool::take_locked(std::size_t worker) {
    std::deque<std::packaged_task<void()>>& own = shards_[worker];
    if (!own.empty()) {
        std::packaged_task<void()> task = std::move(own.front());
        own.pop_front();
        return task;
    }
    if (!queue_.empty()) {
        std::packaged_task<void()> task = std::move(queue_.front());
        queue_.pop();
        return task;
    }
    // Steal from the back of the fullest other deque: the back is the work
    // its owner would reach last, so stealing there keeps each shard's own
    // FIFO order intact for as long as possible.
    std::size_t victim = worker;
    std::size_t victim_size = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (i != worker && shards_[i].size() > victim_size) {
            victim = i;
            victim_size = shards_[i].size();
        }
    }
    std::packaged_task<void()> task = std::move(shards_[victim].back());
    shards_[victim].pop_back();
    ++steals_;
    return task;
}

void ThreadPool::worker_loop(std::size_t worker) {
    while (true) {
        std::packaged_task<void()> task;
        {
            std::unique_lock lock(mutex_);
            work_ready_.wait(lock,
                             [this] { return stopping_ || pending_ > 0; });
            if (pending_ == 0) return;  // stopping_ and drained
            task = take_locked(worker);
            --pending_;
            ++in_flight_;
        }
        task();  // exceptions land in the task's future
        {
            std::unique_lock lock(mutex_);
            --in_flight_;
            if (pending_ == 0 && in_flight_ == 0) idle_.notify_all();
        }
    }
}

}  // namespace mvf::util
