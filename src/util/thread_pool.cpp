#include "util/thread_pool.hpp"

#include <algorithm>

namespace mvf::util {

ThreadPool::ThreadPool(int threads) {
    const int count = std::max(1, threads);
    workers_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::unique_lock lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();
    {
        std::unique_lock lock(mutex_);
        queue_.push(std::move(packaged));
    }
    work_ready_.notify_one();
    return future;
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
    while (true) {
        std::packaged_task<void()> task;
        {
            std::unique_lock lock(mutex_);
            work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop();
            ++in_flight_;
        }
        task();  // exceptions land in the task's future
        {
            std::unique_lock lock(mutex_);
            --in_flight_;
            if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
        }
    }
}

}  // namespace mvf::util
