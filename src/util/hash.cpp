#include "util/hash.hpp"

namespace mvf::util {

std::string hash_hex(std::uint64_t h) {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[h & 0xf];
        h >>= 4;
    }
    return out;
}

std::string fnv1a64_hex(std::string_view data) {
    return hash_hex(fnv1a64(data));
}

}  // namespace mvf::util
