// Portable, dependency-free SHA-256 (FIPS 180-4).
//
// The audit layer (src/audit/) binds transcripts and survivor claims to
// hash commitments that distrusting parties check against each other, so
// collision resistance is load-bearing there.  fnv1a64 (util/hash.hpp)
// stays the right tool for cache keys and spec hashes, where speed
// matters and an adversary gains nothing from a collision.

#ifndef MVF_UTIL_SHA256_HPP
#define MVF_UTIL_SHA256_HPP

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace mvf::util {

// Streaming SHA-256.  update() may be called any number of times with
// arbitrary-length chunks; finish() pads, returns the digest, and leaves
// the object finished (reset() rearms it).
class Sha256 {
public:
    static constexpr std::size_t kDigestBytes = 32;
    using Digest = std::array<std::uint8_t, kDigestBytes>;

    Sha256() { reset(); }

    void reset();
    void update(std::string_view data);
    void update(const std::uint8_t* data, std::size_t len);
    Digest finish();

    // One-shot helpers.
    static Digest digest(std::string_view data);
    static std::string hex(const Digest& d);

private:
    void compress(const std::uint8_t block[64]);

    std::array<std::uint32_t, 8> state_;
    std::uint64_t total_bytes_ = 0;
    std::uint8_t buffer_[64];
    std::size_t buffered_ = 0;
};

// Lowercase hex digest of `data` -- the common call shape in the audit
// layer, where every commitment is manipulated as a 64-char hex string.
std::string sha256_hex(std::string_view data);

}  // namespace mvf::util

#endif  // MVF_UTIL_SHA256_HPP
