#include "util/rng.hpp"

namespace mvf::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t s = seed;
    for (auto& w : state_) w = splitmix64(s);
    // Guard against the all-zero state, which is a fixed point of xoshiro.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return next_u64();  // full 64-bit range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = (~0ull) - ((~0ull) % span);
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return lo + (v % span);
}

int Rng::uniform_int(int lo, int hi) {
    return lo + static_cast<int>(uniform_u64(0, static_cast<std::uint64_t>(hi - lo)));
}

double Rng::uniform_real() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::coin(double p) { return uniform_real() < p; }

std::vector<int> Rng::permutation(int n) {
    std::vector<int> perm(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
    shuffle(std::span<int>(perm));
    return perm;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ull); }

}  // namespace mvf::util
