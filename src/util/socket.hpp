#pragma once
// Minimal POSIX stream sockets for the serve subsystem.
//
// Two address families behind one textual syntax:
//   unix:/path/to.sock     local filesystem socket (the default for serve)
//   tcp:host:port          TCP; port 0 asks the kernel for a free port
//                          (ListenSocket::bound_port reports the choice)
//
// Everything is blocking; the line protocol on top (serve/protocol.hpp)
// frames messages with '\n'.  Sends never raise SIGPIPE (MSG_NOSIGNAL):
// a peer that went away surfaces as a false return, which the server
// treats as "client disconnected" and drops the stream.

#include <string>
#include <string_view>

namespace mvf::util {

/// Parsed socket address.  parse() throws std::invalid_argument on
/// malformed syntax (unknown scheme, missing port, ...).
struct SocketAddr {
    bool is_unix = true;
    std::string path;  ///< unix: filesystem path
    std::string host;  ///< tcp: host
    int port = 0;      ///< tcp: port (0 = kernel-assigned)

    static SocketAddr parse(const std::string& text);
    std::string to_string() const;
};

/// One connected stream socket (owning; move-only).
class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket();
    Socket(Socket&& other) noexcept;
    Socket& operator=(Socket&& other) noexcept;
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /// Connects to `addr`; throws std::runtime_error with errno text on
    /// failure.
    static Socket connect(const SocketAddr& addr);

    /// Writes all of `data`; false when the peer is gone (no SIGPIPE).
    bool send_all(std::string_view data);
    /// Convenience: data + '\n'.
    bool send_line(std::string_view data);

    /// Reads up to the next '\n' (stripped; a trailing '\r' too).  False on
    /// EOF/error with no buffered line.
    bool recv_line(std::string* line);

    /// Half-closes the write side (peer sees EOF after draining).
    void shutdown_write();
    void close();

private:
    int fd_ = -1;
    std::string buffer_;  ///< bytes past the last returned line
};

/// Bound + listening socket.  For unix addresses, a stale socket file at
/// the path is unlinked before binding and the file is unlinked again on
/// close.
class ListenSocket {
public:
    ListenSocket() = default;
    ~ListenSocket();
    ListenSocket(ListenSocket&& other) noexcept;
    ListenSocket& operator=(ListenSocket&& other) noexcept;
    ListenSocket(const ListenSocket&) = delete;
    ListenSocket& operator=(const ListenSocket&) = delete;

    /// Binds and listens; throws std::runtime_error on failure.
    static ListenSocket listen(const SocketAddr& addr, int backlog = 16);

    bool valid() const { return fd_ >= 0; }
    /// The actual port (tcp with port 0 resolves here); 0 for unix.
    int bound_port() const { return port_; }
    const SocketAddr& addr() const { return addr_; }

    /// Blocks for one connection; an invalid Socket means the listener was
    /// closed (or errored) -- the accept loop's exit signal.
    Socket accept();

    /// Unblocks a concurrent accept() and releases the socket (and the
    /// unix socket file).
    void close();

private:
    int fd_ = -1;
    int port_ = 0;
    SocketAddr addr_;
};

/// Idempotently installs SIG_IGN for SIGPIPE (belt to MSG_NOSIGNAL's
/// braces: FILE*-wrapped sockets in the trace streamer bypass send()).
void ignore_sigpipe();

}  // namespace mvf::util
