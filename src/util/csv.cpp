#include "util/csv.hpp"

#include <cstdio>

namespace mvf::util {
namespace {

std::string escape(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i) out_ << ',';
        out_ << escape(fields[i]);
    }
    out_ << '\n';
}

std::string CsvWriter::field(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

std::string CsvWriter::field(int v) { return std::to_string(v); }
std::string CsvWriter::field(std::size_t v) { return std::to_string(v); }

}  // namespace mvf::util
