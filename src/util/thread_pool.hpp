#pragma once
// Fixed-size worker pool for embarrassingly parallel experiment batches.
//
// Deliberately minimal: tasks are type-erased void() thunks, submission
// returns a future for joining and exception propagation, and the pool
// joins its workers on destruction.  Determinism is the caller's job --
// BatchRunner achieves it by giving every scenario its own isolated
// context and seed so results are independent of scheduling order.
//
// Two submission paths:
//   submit()          one shared FIFO queue, any worker takes the oldest
//   submit_sharded()  per-worker deques with work-stealing: the task lands
//                     on deque `shard % num_threads`, its owner pops from
//                     the front (FIFO per shard), and an idle worker steals
//                     from the BACK of the fullest other deque -- so a
//                     shard stuck behind one long task drains through its
//                     neighbours instead of serializing.
//
// All queues share one mutex: at the granularity the pool is used for
// (whole scenarios, seconds each) queue contention is unmeasurable, and
// the single lock keeps wait_idle and shutdown trivially correct.  The
// stealing discipline is about *placement* (keeping related work on one
// worker until someone runs dry), not about lock-free throughput.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mvf::util {

class ThreadPool {
public:
    /// Spawns `threads` workers (clamped to >= 1).
    explicit ThreadPool(int threads);

    /// Drains outstanding tasks, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int num_threads() const { return static_cast<int>(workers_.size()); }

    /// Enqueues a task on the shared queue; the future resolves when it
    /// finishes (or rethrows what it threw).
    std::future<void> submit(std::function<void()> task);

    /// Enqueues a task on worker deque `shard % num_threads()`.  The owner
    /// drains its deque FIFO; idle workers steal from other deques' backs.
    std::future<void> submit_sharded(std::size_t shard,
                                     std::function<void()> task);

    /// Blocks until every task submitted so far has completed.
    void wait_idle();

    /// Runs one pending task on the CALLING thread if any is queued;
    /// returns false without blocking when every queue is empty.  This is
    /// the helping-wait primitive: a pool worker that blocks on futures of
    /// tasks it submitted to its own pool would deadlock once all workers
    /// wait in the same pattern -- instead it loops `run_one()` until its
    /// futures are ready, so the pending subtasks make progress on the
    /// waiter's own thread even with zero free workers.
    bool run_one();

    /// Tasks taken from another worker's deque (stealing actually
    /// happened); monotone, for tests and telemetry.
    std::size_t steals() const;

private:
    void worker_loop(std::size_t worker);
    /// Pops the next task for `worker` (own deque, shared queue, then
    /// steal); pending_ must be > 0.  Requires mutex_ held.
    std::packaged_task<void()> take_locked(std::size_t worker);

    mutable std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable idle_;
    std::queue<std::packaged_task<void()>> queue_;
    std::vector<std::deque<std::packaged_task<void()>>> shards_;
    std::vector<std::thread> workers_;
    std::size_t pending_ = 0;  ///< queued but not yet taken, all queues
    std::size_t in_flight_ = 0;
    std::size_t steals_ = 0;
    bool stopping_ = false;
};

}  // namespace mvf::util
