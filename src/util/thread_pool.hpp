#pragma once
// Fixed-size worker pool for embarrassingly parallel experiment batches.
//
// Deliberately minimal: tasks are type-erased void() thunks, submission
// returns a future for joining and exception propagation, and the pool
// joins its workers on destruction.  Determinism is the caller's job --
// BatchRunner achieves it by giving every scenario its own isolated
// context and seed so results are independent of scheduling order.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mvf::util {

class ThreadPool {
public:
    /// Spawns `threads` workers (clamped to >= 1).
    explicit ThreadPool(int threads);

    /// Drains outstanding tasks, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int num_threads() const { return static_cast<int>(workers_.size()); }

    /// Enqueues a task; the future resolves when it finishes (or rethrows
    /// what it threw).
    std::future<void> submit(std::function<void()> task);

    /// Blocks until every task submitted so far has completed.
    void wait_idle();

private:
    void worker_loop();

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable idle_;
    std::queue<std::packaged_task<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
};

}  // namespace mvf::util
