#pragma once
// Deterministic non-cryptographic hashing for cache keys and provenance.
//
// The experiment server keys its stage-result cache on a hash of the
// canonical scenario serialization, and reports carry the same hash as
// provenance (`spec_hash`).  Both uses need a hash that is stable across
// processes, platforms and library versions -- which std::hash explicitly
// is not -- so this is a fixed-parameter FNV-1a over bytes.  Collisions
// only cost a wrong cache association, never correctness of fresh runs,
// and 64 bits is plenty for the cache sizes involved.

#include <cstdint>
#include <string>
#include <string_view>

namespace mvf::util {

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// FNV-1a over the bytes of `data`, continuing from `seed` (chainable).
constexpr std::uint64_t fnv1a64(std::string_view data,
                                std::uint64_t seed = kFnvOffset) {
    std::uint64_t h = seed;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    return h;
}

/// Fixed-width (16 hex digits, lowercase) rendering of a 64-bit hash.
std::string hash_hex(std::uint64_t h);

/// hash_hex(fnv1a64(data)) -- the canonical spec-hash spelling.
std::string fnv1a64_hex(std::string_view data);

}  // namespace mvf::util
