#pragma once
// Metrics: named counters, gauges, and fixed-bucket latency histograms,
// snapshot-able into report::Json.
//
// Two consumers, one representation:
//   - the process-global MetricsRegistry (`MetricsRegistry::global()`),
//     filled by instrumentation sites when `metrics_enabled()` and dumped
//     by `mvf ... --metrics` (and into the batch report's "metrics"
//     block), and
//   - per-attack AttackMetrics, the plain-value snapshot AdversaryReport
//     carries (oracle-query and SAT-solve latency histograms), which
//     round-trips through JSON like every other report block.
//
// Histograms use fixed power-of-two buckets (bucket i counts samples in
// [2^(i-1), 2^i) of the recorded unit, microseconds at every in-tree
// site): cheap to record (one bit_width + one atomic increment), mergeable
// across threads and runs, and small enough to inline into JSON reports.
// Collection is gated the same way as tracing -- disabled metrics cost one
// relaxed atomic load and a branch per site.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "report/json.hpp"

namespace mvf::obs {

/// Monotonic event count.  Thread-safe.
class Counter {
public:
    void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.  Thread-safe.
class Gauge {
public:
    void set(double v) {
        v_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
    }
    double value() const {
        return std::bit_cast<double>(v_.load(std::memory_order_relaxed));
    }

private:
    std::atomic<std::uint64_t> v_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Plain-value histogram state: what snapshots, reports, and JSON carry.
struct HistogramSnapshot {
    static constexpr int kBuckets = 40;  ///< 2^39 us ~ 6.4 days; plenty

    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< meaningful only when count > 0
    double max = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};

    /// Bucket index for a sample: 0 holds values < 1, bucket i >= 1 holds
    /// [2^(i-1), 2^i), the last bucket everything beyond.
    static int bucket_of(double value) {
        if (!(value >= 1.0)) return 0;
        const auto v = static_cast<std::uint64_t>(value);
        return std::min(static_cast<int>(std::bit_width(v)), kBuckets - 1);
    }

    double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
    bool empty() const { return count == 0; }
    void merge(const HistogramSnapshot& o);

    /// {"count":N,"sum":S,"min":m,"max":M,"buckets":[[i,n],...]} with the
    /// bucket list sparse (zero buckets omitted).
    report::Json to_json() const;
    /// Inverse of to_json; throws report::JsonError on malformed input.
    static HistogramSnapshot from_json(const report::Json& j);

    bool operator==(const HistogramSnapshot&) const = default;
};

/// Concurrent fixed-bucket histogram (see HistogramSnapshot for the bucket
/// scheme).  observe() is wait-free; min/max converge via CAS loops.
class Histogram {
public:
    void observe(double value);
    HistogramSnapshot snapshot() const;

private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_bits_{std::bit_cast<std::uint64_t>(0.0)};
    std::atomic<std::uint64_t> min_bits_{
        std::bit_cast<std::uint64_t>(1e308)};
    std::atomic<std::uint64_t> max_bits_{
        std::bit_cast<std::uint64_t>(-1e308)};
    std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBuckets>
        buckets_{};
};

/// Name -> metric registry.  Lookup registers on first use and returns a
/// stable reference (metrics live as long as the registry); all methods
/// are thread-safe.  snapshot_json() flattens everything into one JSON
/// object for reports and the --metrics dump.
class MetricsRegistry {
public:
    /// The process-global registry the instrumentation sites feed.
    static MetricsRegistry& global();

    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    Histogram& histogram(std::string_view name);

    /// {"counters":{name:n,...},"gauges":{...},"histograms":{name:{...}}}
    /// with members in registration order.
    report::Json snapshot_json() const;

    /// Drops every registered metric (testing hook; the global registry
    /// accumulates for the process lifetime otherwise).
    void reset();

private:
    mutable std::mutex mu_;
    std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
    std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
    std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

/// Process-global collection switch (the CLI's --metrics flag).  Sites
/// check this exactly like tracing(): one relaxed load + branch when off.
extern std::atomic<bool> g_metrics_enabled;

inline bool metrics_enabled() {
    return g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool on);

/// Per-attack latency metrics: the plain-value block AdversaryReport (and
/// OracleAttackResult) carry.  Collected when the attack's
/// `collect_metrics` param or the global switch is on; empty() otherwise
/// and the JSON block is omitted.
struct AttackMetrics {
    HistogramSnapshot oracle_query_us;  ///< per oracle query()/query_block()
    HistogramSnapshot sat_solve_us;     ///< per CEGAR Solver::solve() call

    bool empty() const {
        return oracle_query_us.empty() && sat_solve_us.empty();
    }
    void merge(const AttackMetrics& o) {
        oracle_query_us.merge(o.oracle_query_us);
        sat_solve_us.merge(o.sat_solve_us);
    }

    report::Json to_json() const;
    /// Inverse of to_json; throws report::JsonError on malformed input.
    static AttackMetrics from_json(const report::Json& j);

    bool operator==(const AttackMetrics&) const = default;
};

}  // namespace mvf::obs
