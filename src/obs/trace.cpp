#include "obs/trace.hpp"

#include <utility>
#include <vector>

namespace mvf::obs {

std::atomic<TraceSink*> g_trace_sink{nullptr};

void set_trace_sink(TraceSink* sink) {
    g_trace_sink.store(sink, std::memory_order_release);
}

std::string_view trace_format_name(TraceFormat f) {
    switch (f) {
        case TraceFormat::kNdjson: return "ndjson";
        case TraceFormat::kChrome: return "chrome";
    }
    return "unknown";
}

bool trace_format_from_name(std::string_view name, TraceFormat* out) {
    if (name == "ndjson") *out = TraceFormat::kNdjson;
    else if (name == "chrome") *out = TraceFormat::kChrome;
    else return false;
    return true;
}

TraceSink::TraceSink(std::string path, TraceFormat format)
    : path_(std::move(path)),
      format_(format),
      epoch_(std::chrono::steady_clock::now()) {
    file_ = std::fopen(path_.c_str(), "w");
    if (file_ && format_ == TraceFormat::kChrome) {
        std::fputs("[\n", file_);
    }
}

TraceSink::TraceSink(std::FILE* stream, std::string label, TraceFormat format)
    : path_(std::move(label)),
      format_(format),
      file_(stream),
      epoch_(std::chrono::steady_clock::now()) {
    if (file_ && format_ == TraceFormat::kChrome) {
        std::fputs("[\n", file_);
    }
}

TraceSink::~TraceSink() {
    if (!file_) return;
    if (format_ == TraceFormat::kChrome) {
        std::fputs("\n]\n", file_);
    }
    std::fclose(file_);
}

void TraceSink::flush() {
    std::lock_guard<std::mutex> lock(mu_);
    if (file_) std::fflush(file_);
}

void TraceSink::begin(std::string_view name, std::string_view cat,
                      report::Json args) {
    emit('B', name, cat, args);
}

void TraceSink::end(std::string_view name, report::Json args) {
    emit('E', name, {}, args);
}

void TraceSink::instant(std::string_view name, std::string_view cat,
                        report::Json args) {
    emit('i', name, cat, args);
}

void TraceSink::counter(std::string_view name, report::Json values) {
    emit('C', name, {}, values);
}

void TraceSink::emit(char phase, std::string_view name, std::string_view cat,
                     const report::Json& args) {
    if (!file_) return;
    // Build the record outside the lock except for the timestamp: sampling
    // `ts` under the lock makes records non-decreasing in file order, a
    // property validate_trace checks and downstream stream consumers rely
    // on.
    report::Json rec = report::Json::object();
    rec.set("ts", 0.0);  // placeholder, patched under the lock below
    rec.set("tid", 0);
    rec.set("pid", 1);
    rec.set("ph", std::string(1, phase));
    rec.set("name", std::string(name));
    if (!cat.empty()) rec.set("cat", std::string(cat));
    if (phase == 'i') rec.set("s", "t");  // thread-scoped instant
    if (!args.is_null()) rec.set("args", args);

    std::lock_guard<std::mutex> lock(mu_);
    const double ts =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - epoch_)
            .count();
    rec.set("ts", ts);
    int tid;
    {
        const auto it = tids_.find(std::this_thread::get_id());
        if (it != tids_.end()) {
            tid = it->second;
        } else {
            tid = static_cast<int>(tids_.size()) + 1;
            tids_.emplace(std::this_thread::get_id(), tid);
        }
    }
    rec.set("tid", tid);
    const std::string line = rec.dump();
    if (format_ == TraceFormat::kNdjson) {
        std::fputs(line.c_str(), file_);
        std::fputc('\n', file_);
    } else {
        if (!first_record_) std::fputs(",\n", file_);
        first_record_ = false;
        std::fputs(line.c_str(), file_);
    }
    events_.fetch_add(1, std::memory_order_relaxed);
}

namespace {

/// Per-record checks shared by both formats; returns false and fills
/// `error` on the first violation.  `stacks` tracks open spans per tid.
bool check_record(const report::Json& rec, int index, double* last_ts,
                  std::unordered_map<int, std::vector<std::string>>* stacks,
                  std::string* error) {
    const auto fail = [&](const std::string& what) {
        *error = "record " + std::to_string(index) + ": " + what;
        return false;
    };
    if (!rec.is_object()) return fail("not a JSON object");
    const report::Json* ts = rec.find("ts");
    const report::Json* tid = rec.find("tid");
    const report::Json* ph = rec.find("ph");
    const report::Json* name = rec.find("name");
    if (!ts || !ts->is_number()) return fail("missing numeric \"ts\"");
    if (!tid || !tid->is_number()) return fail("missing numeric \"tid\"");
    if (!ph || !ph->is_string()) return fail("missing string \"ph\"");
    if (!name || !name->is_string()) return fail("missing string \"name\"");
    if (ts->as_number() < *last_ts) {
        return fail("timestamp regressed (" + std::to_string(ts->as_number()) +
                    " after " + std::to_string(*last_ts) + ")");
    }
    *last_ts = ts->as_number();
    const std::string& phase = ph->as_string();
    const int t = static_cast<int>(tid->as_int());
    if (phase == "B") {
        (*stacks)[t].push_back(name->as_string());
    } else if (phase == "E") {
        auto& stack = (*stacks)[t];
        if (stack.empty()) {
            return fail("end \"" + name->as_string() +
                        "\" with no open span on tid " + std::to_string(t));
        }
        if (stack.back() != name->as_string()) {
            return fail("end \"" + name->as_string() +
                        "\" does not match open span \"" + stack.back() +
                        "\" on tid " + std::to_string(t));
        }
        stack.pop_back();
    } else if (phase != "i" && phase != "C") {
        return fail("unknown phase \"" + phase + "\"");
    }
    return true;
}

}  // namespace

TraceValidation validate_trace(const std::string& text) {
    TraceValidation v;
    double last_ts = -1.0;
    std::unordered_map<int, std::vector<std::string>> stacks;

    // Chrome export: one JSON array of records.
    std::size_t start = 0;
    while (start < text.size() &&
           (text[start] == ' ' || text[start] == '\n' || text[start] == '\r' ||
            text[start] == '\t')) {
        ++start;
    }
    if (start < text.size() && text[start] == '[') {
        report::Json doc;
        try {
            doc = report::Json::parse(text);
        } catch (const report::JsonError& e) {
            v.error = std::string("malformed trace array: ") + e.what();
            return v;
        }
        for (const report::Json& rec : doc.items()) {
            if (!check_record(rec, v.records, &last_ts, &stacks, &v.error)) {
                return v;
            }
            ++v.records;
        }
    } else {
        // NDJSON: one object per line, blank lines ignored.
        std::size_t pos = 0;
        int line_no = 0;
        while (pos <= text.size()) {
            const std::size_t nl = text.find('\n', pos);
            const std::string line = text.substr(
                pos, nl == std::string::npos ? std::string::npos : nl - pos);
            pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
            ++line_no;
            if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
            report::Json rec;
            try {
                rec = report::Json::parse(line);
            } catch (const report::JsonError& e) {
                v.error = "line " + std::to_string(line_no) +
                          ": malformed JSON: " + e.what();
                return v;
            }
            if (!check_record(rec, v.records, &last_ts, &stacks, &v.error)) {
                return v;
            }
            ++v.records;
        }
    }
    for (const auto& [tid, stack] : stacks) {
        v.open_spans += static_cast<int>(stack.size());
    }
    if (v.open_spans > 0) {
        v.error = std::to_string(v.open_spans) +
                  " span(s) left open at end of trace";
        return v;
    }
    v.ok = true;
    return v;
}

}  // namespace mvf::obs
