#pragma once
// Structured tracing: a thread-safe NDJSON span/event writer with a
// Chrome/Perfetto `trace_event` exporter.
//
// The paper's core experiment (de-camouflaging cost vs. obfuscation
// parameters, Figs. 1/3/4) is a time-series question, but until this layer
// existed the repo could only report end-of-run aggregates.  TraceSink
// turns a run into a stream of timestamped records -- span begin/end,
// instant events, counter samples -- one JSON object per line (NDJSON), or
// wrapped as a Chrome `trace_event` array so a whole `mvf batch` run opens
// directly in Perfetto / chrome://tracing.
//
// Record schema (shared by both formats; Chrome just wraps it in `[...]`):
//   {"ts": 12.5,          microseconds since the sink opened (monotonic;
//                         sampled under the writer lock, so records are
//                         non-decreasing in file order)
//    "tid": 1,            small per-thread id, assigned on first event
//    "pid": 1,            constant (one process per trace)
//    "ph": "B"|"E"|"i"|"C",  begin / end / instant / counter
//    "name": "...", "cat": "...",
//    "args": {...}}       optional structured payload
//
// Instrumentation contract: sites are gated on the process-global sink
// (`obs::tracing()`), so DISABLED tracing costs one relaxed atomic load and
// a branch per event site -- bench_oracle_attack asserts the aggregate
// overhead stays under 2% in-harness.  Span is the RAII begin/end pair;
// because spans nest per thread, every well-formed program produces
// balanced per-thread B/E sequences (validate_trace / `mvf check-trace`
// verify this, plus per-line JSON validity and timestamp monotonicity).
//
// The layer is dependency-free (report::Json only) by design: every hot
// layer links it, so it must not pull anything in.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "report/json.hpp"

namespace mvf::obs {

enum class TraceFormat {
    kNdjson,  ///< one JSON object per line (streamable; the default)
    kChrome,  ///< Chrome `trace_event` JSON array (open in Perfetto)
};

std::string_view trace_format_name(TraceFormat f);
/// Inverse of trace_format_name; returns false on unknown names.
bool trace_format_from_name(std::string_view name, TraceFormat* out);

/// Thread-safe trace writer.  One instance per output file; all event
/// methods may be called concurrently from any thread.  Destruction
/// flushes and (for kChrome) closes the JSON array.
class TraceSink {
public:
    explicit TraceSink(std::string path,
                       TraceFormat format = TraceFormat::kNdjson);
    /// Adopts an already-open stream (closed on destruction) -- the serve
    /// subsystem points a per-job sink at a client socket via
    /// fdopen(dup(fd)).  `label` stands in for path() in diagnostics.
    explicit TraceSink(std::FILE* stream, std::string label = "<stream>",
                       TraceFormat format = TraceFormat::kNdjson);
    ~TraceSink();
    TraceSink(const TraceSink&) = delete;
    TraceSink& operator=(const TraceSink&) = delete;

    /// False when the output file could not be opened (events are then
    /// dropped silently; callers should check after construction).
    bool ok() const { return file_ != nullptr; }
    const std::string& path() const { return path_; }
    TraceFormat format() const { return format_; }

    /// Span boundaries ("ph":"B"/"E").  `name`/`cat` must outlive the call
    /// (string literals at every in-tree site).  End events match the most
    /// recent unmatched begin of the same thread, Chrome-style.
    void begin(std::string_view name, std::string_view cat,
               report::Json args = {});
    void end(std::string_view name, report::Json args = {});
    /// Point event ("ph":"i", thread scope).
    void instant(std::string_view name, std::string_view cat,
                 report::Json args = {});
    /// Counter sample ("ph":"C"); `values` should be an object of numbers
    /// (each member becomes one counter series in the viewer).
    void counter(std::string_view name, report::Json values);

    void flush();

    /// Events written so far (testing/telemetry hook).
    std::uint64_t events() const {
        return events_.load(std::memory_order_relaxed);
    }

private:
    void emit(char phase, std::string_view name, std::string_view cat,
              const report::Json& args);

    std::string path_;
    TraceFormat format_;
    std::FILE* file_ = nullptr;
    std::mutex mu_;
    bool first_record_ = true;                       // kChrome comma state
    std::chrono::steady_clock::time_point epoch_;
    std::unordered_map<std::thread::id, int> tids_;  // under mu_
    std::atomic<std::uint64_t> events_{0};
};

/// Process-global sink used by every instrumentation site.  Not owned:
/// the installer (CLI, test, bench) keeps the TraceSink alive and must
/// uninstall (set nullptr) before destroying it.
extern std::atomic<TraceSink*> g_trace_sink;

inline TraceSink* tracing() {
    return g_trace_sink.load(std::memory_order_acquire);
}
void set_trace_sink(TraceSink* sink);

/// RAII span against the global sink: begin at construction, end at
/// destruction.  When tracing is disabled the constructor is one atomic
/// load + branch and the destructor one branch.  `name`/`cat` must outlive
/// the span (string literals at every in-tree site).
class Span {
public:
    Span(std::string_view name, std::string_view cat) : sink_(tracing()), name_(name) {
        if (sink_) sink_->begin(name_, cat);
    }
    Span(std::string_view name, std::string_view cat, report::Json args)
        : sink_(tracing()), name_(name) {
        if (sink_) sink_->begin(name_, cat, std::move(args));
    }
    ~Span() {
        if (sink_) sink_->end(name_, std::move(end_args_));
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// True when tracing is live -- gate arg-building work on this so the
    /// disabled path never allocates.
    explicit operator bool() const { return sink_ != nullptr; }

    /// Attaches args to the end event (overwrites earlier set_end_args).
    void set_end_args(report::Json args) {
        if (sink_) end_args_ = std::move(args);
    }

private:
    TraceSink* sink_;
    std::string_view name_;
    report::Json end_args_;
};

/// Validation verdict for a recorded trace (the `mvf check-trace`
/// backend, also exercised directly by the tests).
struct TraceValidation {
    bool ok = false;
    std::string error;   ///< first problem found (empty when ok)
    int records = 0;     ///< events examined
    int open_spans = 0;  ///< begins left unmatched at end of trace
};

/// Validates a trace document: NDJSON (one object per line, blank lines
/// ignored) or, when the text starts with '[', a Chrome trace_event
/// array.  Checks per-record shape (ts/tid/ph/name present and typed),
/// global timestamp monotonicity in record order, and balanced,
/// name-matched per-thread B/E nesting.
TraceValidation validate_trace(const std::string& text);

}  // namespace mvf::obs
