#include "obs/metrics.hpp"

#include <algorithm>

namespace mvf::obs {

std::atomic<bool> g_metrics_enabled{false};

void set_metrics_enabled(bool on) {
    g_metrics_enabled.store(on, std::memory_order_relaxed);
}

// --- HistogramSnapshot -----------------------------------------------------

void HistogramSnapshot::merge(const HistogramSnapshot& o) {
    if (o.count == 0) return;
    if (count == 0) {
        *this = o;
        return;
    }
    count += o.count;
    sum += o.sum;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
    for (int i = 0; i < kBuckets; ++i) buckets[i] += o.buckets[i];
}

report::Json HistogramSnapshot::to_json() const {
    report::Json j = report::Json::object();
    j.set("count", count);
    j.set("sum", sum);
    j.set("min", count > 0 ? min : 0.0);
    j.set("max", count > 0 ? max : 0.0);
    report::Json bs = report::Json::array();
    for (int i = 0; i < kBuckets; ++i) {
        if (buckets[i] == 0) continue;
        report::Json pair = report::Json::array();
        pair.push_back(i);
        pair.push_back(buckets[i]);
        bs.push_back(std::move(pair));
    }
    j.set("buckets", std::move(bs));
    return j;
}

HistogramSnapshot HistogramSnapshot::from_json(const report::Json& j) {
    if (!j.is_object()) throw report::JsonError("histogram: not an object");
    HistogramSnapshot h;
    h.count = j.at("count").as_uint();
    h.sum = j.at("sum").as_number();
    h.min = j.at("min").as_number();
    h.max = j.at("max").as_number();
    for (const report::Json& pair : j.at("buckets").items()) {
        if (!pair.is_array() || pair.size() != 2) {
            throw report::JsonError("histogram: bucket entry is not a pair");
        }
        const std::int64_t idx = pair.at(std::size_t{0}).as_int();
        if (idx < 0 || idx >= kBuckets) {
            throw report::JsonError("histogram: bucket index out of range");
        }
        h.buckets[static_cast<std::size_t>(idx)] =
            pair.at(std::size_t{1}).as_uint();
    }
    return h;
}

// --- Histogram -------------------------------------------------------------

void Histogram::observe(double value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    buckets_[static_cast<std::size_t>(HistogramSnapshot::bucket_of(value))]
        .fetch_add(1, std::memory_order_relaxed);
    // sum/min/max converge via CAS; contention here is negligible (a few
    // thousand samples per attack) and readers only see snapshots.
    std::uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
    while (!sum_bits_.compare_exchange_weak(
        cur, std::bit_cast<std::uint64_t>(std::bit_cast<double>(cur) + value),
        std::memory_order_relaxed)) {
    }
    cur = min_bits_.load(std::memory_order_relaxed);
    while (value < std::bit_cast<double>(cur) &&
           !min_bits_.compare_exchange_weak(
               cur, std::bit_cast<std::uint64_t>(value),
               std::memory_order_relaxed)) {
    }
    cur = max_bits_.load(std::memory_order_relaxed);
    while (value > std::bit_cast<double>(cur) &&
           !max_bits_.compare_exchange_weak(
               cur, std::bit_cast<std::uint64_t>(value),
               std::memory_order_relaxed)) {
    }
}

HistogramSnapshot Histogram::snapshot() const {
    HistogramSnapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
    if (s.count > 0) {
        s.min = std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
        s.max = std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
    }
    for (int i = 0; i < HistogramSnapshot::kBuckets; ++i) {
        s.buckets[static_cast<std::size_t>(i)] =
            buckets_[static_cast<std::size_t>(i)].load(
                std::memory_order_relaxed);
    }
    return s;
}

// --- MetricsRegistry -------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry r;
    return r;
}

namespace {

template <typename T>
T& find_or_create(
    std::vector<std::pair<std::string, std::unique_ptr<T>>>* entries,
    std::string_view name) {
    for (auto& [n, p] : *entries) {
        if (n == name) return *p;
    }
    entries->emplace_back(std::string(name), std::make_unique<T>());
    return *entries->back().second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    return find_or_create(&counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    return find_or_create(&gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    return find_or_create(&histograms_, name);
}

report::Json MetricsRegistry::snapshot_json() const {
    std::lock_guard<std::mutex> lock(mu_);
    report::Json j = report::Json::object();
    report::Json counters = report::Json::object();
    for (const auto& [name, c] : counters_) counters.set(name, c->value());
    j.set("counters", std::move(counters));
    report::Json gauges = report::Json::object();
    for (const auto& [name, g] : gauges_) gauges.set(name, g->value());
    j.set("gauges", std::move(gauges));
    report::Json hists = report::Json::object();
    for (const auto& [name, h] : histograms_) {
        hists.set(name, h->snapshot().to_json());
    }
    j.set("histograms", std::move(hists));
    return j;
}

void MetricsRegistry::reset() {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

// --- AttackMetrics ---------------------------------------------------------

report::Json AttackMetrics::to_json() const {
    report::Json j = report::Json::object();
    j.set("oracle_query_us", oracle_query_us.to_json());
    j.set("sat_solve_us", sat_solve_us.to_json());
    return j;
}

AttackMetrics AttackMetrics::from_json(const report::Json& j) {
    if (!j.is_object()) throw report::JsonError("metrics: not an object");
    AttackMetrics m;
    // Tolerant-absence: future metric families may add members here; an
    // old reader of a new report just skips what it does not know.
    if (const report::Json* q = j.find("oracle_query_us")) {
        m.oracle_query_us = HistogramSnapshot::from_json(*q);
    }
    if (const report::Json* s = j.find("sat_solve_us")) {
        m.sat_solve_us = HistogramSnapshot::from_json(*s);
    }
    return m;
}

}  // namespace mvf::obs
