#include "map/netlist.hpp"

namespace mvf::tech {

int Netlist::add_pi(std::string name, bool is_select) {
    Node n;
    n.kind = NodeKind::kPi;
    n.name = std::move(name);
    n.is_select = is_select;
    nodes_.push_back(std::move(n));
    pis_.push_back(num_nodes() - 1);
    return num_nodes() - 1;
}

int Netlist::add_const(bool value) {
    Node n;
    n.kind = value ? NodeKind::kConst1 : NodeKind::kConst0;
    nodes_.push_back(std::move(n));
    return num_nodes() - 1;
}

int Netlist::add_cell(int cell_id, std::vector<int> fanins) {
    assert(cell_id >= 0 && cell_id < library_.num_cells());
    assert(static_cast<int>(fanins.size()) == library_.cell(cell_id).num_inputs);
    for (const int f : fanins) assert(f >= 0 && f < num_nodes());
    Node n;
    n.kind = NodeKind::kCell;
    n.cell_id = cell_id;
    n.fanins = std::move(fanins);
    nodes_.push_back(std::move(n));
    return num_nodes() - 1;
}

void Netlist::add_po(int node, std::string name) {
    assert(node >= 0 && node < num_nodes());
    pos_.push_back(node);
    po_names_.push_back(std::move(name));
}

int Netlist::num_selects() const {
    int n = 0;
    for (const int pi_node : pis_) {
        if (node(pi_node).is_select) ++n;
    }
    return n;
}

double Netlist::area() const {
    double total = 0.0;
    for (const Node& n : nodes_) {
        if (n.kind == NodeKind::kCell) total += library_.cell(n.cell_id).area;
    }
    return total;
}

int Netlist::num_cells() const {
    int count = 0;
    for (const Node& n : nodes_) {
        if (n.kind == NodeKind::kCell) ++count;
    }
    return count;
}

std::vector<int> Netlist::fanout_counts() const {
    std::vector<int> counts(static_cast<std::size_t>(num_nodes()), 0);
    for (const Node& n : nodes_) {
        for (const int f : n.fanins) ++counts[static_cast<std::size_t>(f)];
    }
    for (const int po : pos_) ++counts[static_cast<std::size_t>(po)];
    return counts;
}

bool Netlist::validate() const {
    for (int id = 0; id < num_nodes(); ++id) {
        const Node& n = node(id);
        if (n.kind == NodeKind::kCell) {
            if (n.cell_id < 0 || n.cell_id >= library_.num_cells()) return false;
            if (static_cast<int>(n.fanins.size()) !=
                library_.cell(n.cell_id).num_inputs)
                return false;
            for (const int f : n.fanins) {
                if (f < 0 || f >= id) return false;  // topological order
            }
        }
    }
    for (const int po : pos_) {
        if (po < 0 || po >= num_nodes()) return false;
    }
    return true;
}

}  // namespace mvf::tech
