#pragma once
// Gate-level mapped netlist.
//
// Output of technology mapping (Phase I/II area numbers are measured on
// this) and input to the camouflage covering of Phase III (Algorithm 1
// splits it into fanout-free trees).  Nodes are stored in topological
// order; primary inputs carry an `is_select` flag so later phases know
// which inputs are the function-select signals to be eliminated.

#include <cassert>
#include <string>
#include <vector>

#include "map/gate_library.hpp"

namespace mvf::tech {

class Netlist {
public:
    enum class NodeKind { kConst0, kConst1, kPi, kCell };

    struct Node {
        NodeKind kind = NodeKind::kCell;
        int cell_id = -1;            ///< into the library, for kCell
        std::vector<int> fanins;     ///< node ids, in cell pin order
        std::string name;            ///< for kPi
        bool is_select = false;      ///< for kPi
    };

    explicit Netlist(GateLibrary library) : library_(std::move(library)) {}

    const GateLibrary& library() const { return library_; }

    int add_pi(std::string name, bool is_select = false);
    int add_const(bool value);
    int add_cell(int cell_id, std::vector<int> fanins);
    void add_po(int node, std::string name = "");

    int num_nodes() const { return static_cast<int>(nodes_.size()); }
    const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }

    int num_pis() const { return static_cast<int>(pis_.size()); }
    int pi(int i) const { return pis_[static_cast<std::size_t>(i)]; }
    /// Number of PIs flagged as select inputs.
    int num_selects() const;

    int num_pos() const { return static_cast<int>(pos_.size()); }
    int po(int i) const { return pos_[static_cast<std::size_t>(i)]; }
    const std::string& po_name(int i) const { return po_names_[static_cast<std::size_t>(i)]; }

    /// Total cell area in GE.
    double area() const;

    /// Number of kCell nodes.
    int num_cells() const;

    /// Fanout count per node (PO references included).
    std::vector<int> fanout_counts() const;

    /// Structural sanity: topological order, pin counts match cell arity.
    bool validate() const;

private:
    GateLibrary library_;
    std::vector<Node> nodes_;
    std::vector<int> pis_;
    std::vector<int> pos_;
    std::vector<std::string> po_names_;
};

}  // namespace mvf::tech
