#include "map/gate_library.hpp"

namespace mvf::tech {

using logic::TruthTable;

namespace {

TruthTable and_n(int n) {
    TruthTable t = TruthTable::ones(n);
    for (int i = 0; i < n; ++i) t &= TruthTable::var(i, n);
    return t;
}

TruthTable or_n(int n) {
    TruthTable t = TruthTable::zeros(n);
    for (int i = 0; i < n; ++i) t |= TruthTable::var(i, n);
    return t;
}

}  // namespace

GateLibrary GateLibrary::standard() {
    GateLibrary lib;
    lib.inv_id_ = lib.add_cell({"INV", 1, 0.67, ~TruthTable::var(0, 1)});
    lib.buf_id_ = lib.add_cell({"BUF", 1, 1.00, TruthTable::var(0, 1)});

    // Area ratios follow typical commercial standard-cell libraries.
    const double nand_area[3] = {1.00, 1.33, 1.67};
    const double and_area[3] = {1.33, 1.67, 2.00};
    for (int n = 2; n <= 4; ++n) {
        const double na = nand_area[n - 2];
        const double aa = and_area[n - 2];
        lib.add_cell({"NAND" + std::to_string(n), n, na, ~and_n(n)});
        lib.add_cell({"NOR" + std::to_string(n), n, na, ~or_n(n)});
        lib.add_cell({"AND" + std::to_string(n), n, aa, and_n(n)});
        lib.add_cell({"OR" + std::to_string(n), n, aa, or_n(n)});
    }
    return lib;
}

int GateLibrary::find(std::string_view name) const {
    for (int i = 0; i < num_cells(); ++i) {
        if (cells_[static_cast<std::size_t>(i)].name == name) return i;
    }
    return -1;
}

int GateLibrary::add_cell(GateCell cell) {
    cells_.push_back(std::move(cell));
    return num_cells() - 1;
}

}  // namespace mvf::tech
