#pragma once
// Area-oriented structural technology mapping (AIG -> gate netlist).
//
// Matches 4-feasible cut functions against library cells (all input
// permutations and input negations; negated inputs request the negative
// phase of the leaf) and covers the AIG by dynamic programming over
// (node, phase) with area-flow costs, followed by cover extraction and
// optional area-recovery iterations using exact usage counts.  This plays
// the role of ABC's standard-cell mapper in the paper's flow: the "GA" and
// "random" columns of Table I are areas of the netlists this pass emits.

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "map/gate_library.hpp"
#include "map/netlist.hpp"
#include "net/aig.hpp"
#include "net/cuts.hpp"

namespace mvf::tech {

/// One way of realizing a cut function with a library cell: cell pin p
/// connects to cut leaf position pin_leaf_pos[p], complemented if pin_neg[p].
struct CellMatch {
    int cell_id = -1;
    std::array<std::uint8_t, 4> pin_leaf_pos{};
    std::array<bool, 4> pin_neg{};
};

/// Memoized cut-function -> cell-match table.  Construction is cheap; the
/// table fills lazily.  Share one instance across many tech_map calls (the
/// genetic algorithm performs thousands of mapping runs against the same
/// library, and the set of distinct cut functions saturates quickly).
class MatchCache {
public:
    explicit MatchCache(GateLibrary library) : lib_(std::move(library)) {}

    const GateLibrary& library() const { return lib_; }

    /// All single-cell realizations of the given 16-bit cut function.
    const std::vector<CellMatch>& matches(std::uint16_t tt);

private:
    std::vector<CellMatch> compute(std::uint16_t tt) const;

    GateLibrary lib_;
    std::unordered_map<std::uint16_t, std::vector<CellMatch>> memo_;
};

struct TechMapParams {
    net::CutParams cuts{4, 8, true};
    /// Area-recovery rounds after the initial area-flow pass.
    int recovery_iterations = 1;
};

/// Maps `aig` onto the cache's library.  `pi_names` / `pi_is_select` (same
/// length as the AIG's PI count, may be empty) annotate the netlist inputs;
/// select flags are consumed later by the camouflage covering.
Netlist tech_map(const net::Aig& aig, MatchCache& cache,
                 const TechMapParams& params = {},
                 const std::vector<std::string>& pi_names = {},
                 const std::vector<bool>& pi_is_select = {});

/// One-shot convenience that builds a private cache.
Netlist tech_map(const net::Aig& aig, const GateLibrary& library,
                 const TechMapParams& params = {},
                 const std::vector<std::string>& pi_names = {},
                 const std::vector<bool>& pi_is_select = {});

/// Convenience: mapped area in GE.
double mapped_area(const net::Aig& aig, MatchCache& cache,
                   const TechMapParams& params = {});

/// Support variables (within the first `k`) of a 16-bit cut function.
std::vector<int> tt16_support(std::uint16_t tt, int k);

}  // namespace mvf::tech
