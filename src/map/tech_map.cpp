#include "map/tech_map.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace mvf::tech {

using net::Aig;
using net::Cut;
using net::CutSet;
using net::Lit;

std::vector<int> tt16_support(std::uint16_t tt, int k) {
    static constexpr std::uint16_t kMask[4] = {0x5555, 0x3333, 0x0f0f, 0x00ff};
    static constexpr int kShift[4] = {1, 2, 4, 8};
    std::vector<int> support;
    for (int v = 0; v < k; ++v) {
        const std::uint16_t lo = static_cast<std::uint16_t>(tt & kMask[v]);
        const std::uint16_t hi =
            static_cast<std::uint16_t>((tt >> kShift[v]) & kMask[v]);
        if (lo != hi) support.push_back(v);
    }
    return support;
}

namespace {

// Evaluates the function obtained by connecting cell pin p to variable
// vars[p] of the 4-var cut space, complemented per `neg_mask`.
std::uint16_t realize_tt(const logic::TruthTable& cell_fn, int num_pins,
                         const std::array<std::uint8_t, 4>& vars,
                         std::uint32_t neg_mask) {
    std::uint16_t out = 0;
    for (std::uint32_t m = 0; m < 16; ++m) {
        std::uint32_t pins = 0;
        for (int p = 0; p < num_pins; ++p) {
            const std::uint32_t bit =
                ((m >> vars[static_cast<std::size_t>(p)]) & 1) ^ ((neg_mask >> p) & 1);
            pins |= bit << p;
        }
        if (cell_fn.bit(pins)) out |= static_cast<std::uint16_t>(1u << m);
    }
    return out;
}

}  // namespace

const std::vector<CellMatch>& MatchCache::matches(std::uint16_t tt) {
    const auto it = memo_.find(tt);
    if (it != memo_.end()) return it->second;
    return memo_.emplace(tt, compute(tt)).first->second;
}

std::vector<CellMatch> MatchCache::compute(std::uint16_t tt) const {
    std::vector<CellMatch> result;
    const std::vector<int> support = tt16_support(tt, 4);
    const int k = static_cast<int>(support.size());
    for (int cell_id = 0; cell_id < lib_.num_cells(); ++cell_id) {
        const GateCell& cell = lib_.cell(cell_id);
        if (cell.num_inputs != k || k == 0) continue;
        std::vector<int> perm(support.begin(), support.end());
        do {
            std::array<std::uint8_t, 4> vars{};
            for (int p = 0; p < k; ++p) {
                vars[static_cast<std::size_t>(p)] =
                    static_cast<std::uint8_t>(perm[static_cast<std::size_t>(p)]);
            }
            for (std::uint32_t neg = 0; neg < (1u << k); ++neg) {
                if (realize_tt(cell.function, k, vars, neg) == tt) {
                    CellMatch m;
                    m.cell_id = cell_id;
                    for (int p = 0; p < k; ++p) {
                        m.pin_leaf_pos[static_cast<std::size_t>(p)] =
                            vars[static_cast<std::size_t>(p)];
                        m.pin_neg[static_cast<std::size_t>(p)] = (neg >> p) & 1;
                    }
                    result.push_back(m);
                }
            }
        } while (std::next_permutation(perm.begin(), perm.end()));
    }
    return result;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Choice {
    bool valid = false;
    bool via_inverter = false;  ///< realize from the opposite phase + INV
    Cut cut;
    CellMatch match;
};

struct Mapper {
    const Aig& aig;
    const GateLibrary& lib;
    MatchCache& cache;
    CutSet cut_set;

    std::vector<std::array<double, 2>> cost;    // [node][phase]
    std::vector<std::array<Choice, 2>> choice;  // [node][phase]
    std::vector<double> refs;                   // fanout estimate (area flow)

    Mapper(const Aig& a, MatchCache& c, const TechMapParams& p)
        : aig(a), lib(c.library()), cache(c), cut_set(a, p.cuts) {
        const auto counts = aig.reference_counts();
        refs.assign(counts.size(), 1.0);
        for (std::size_t i = 0; i < counts.size(); ++i) {
            refs[i] = std::max(1, counts[i]);
        }
    }

    void compute_costs() {
        const int n_nodes = aig.num_nodes();
        cost.assign(static_cast<std::size_t>(n_nodes), {kInf, kInf});
        choice.assign(static_cast<std::size_t>(n_nodes), {});

        cost[0] = {0.0, 0.0};  // constants become tie nodes outside cells
        for (int i = 0; i < aig.num_pis(); ++i) {
            const auto node = static_cast<std::size_t>(i + 1);
            cost[node][0] = 0.0;
            cost[node][1] = lib.inv_area();
            choice[node][1].valid = true;
            choice[node][1].via_inverter = true;
        }

        for (int n = aig.num_pis() + 1; n < aig.num_nodes(); ++n) {
            const auto idx = static_cast<std::size_t>(n);
            for (const Cut& cut : cut_set.cuts_of(n)) {
                if (cut.size() == 1 && cut.leaves[0] == n) continue;  // trivial
                for (int phase = 0; phase < 2; ++phase) {
                    const std::uint16_t target =
                        phase ? static_cast<std::uint16_t>(~cut.function)
                              : cut.function;
                    for (const CellMatch& m : cache.matches(target)) {
                        const double c = match_cost(cut, m);
                        if (c < cost[idx][static_cast<std::size_t>(phase)]) {
                            cost[idx][static_cast<std::size_t>(phase)] = c;
                            auto& ch = choice[idx][static_cast<std::size_t>(phase)];
                            ch.valid = true;
                            ch.via_inverter = false;
                            ch.cut = cut;
                            ch.match = m;
                        }
                    }
                }
            }
            // Phase relaxation through inverters (two rounds settle both).
            for (int round = 0; round < 2; ++round) {
                for (int phase = 0; phase < 2; ++phase) {
                    const double via =
                        cost[idx][static_cast<std::size_t>(1 - phase)] + lib.inv_area();
                    if (via < cost[idx][static_cast<std::size_t>(phase)]) {
                        cost[idx][static_cast<std::size_t>(phase)] = via;
                        auto& ch = choice[idx][static_cast<std::size_t>(phase)];
                        ch.valid = true;
                        ch.via_inverter = true;
                    }
                }
            }
            assert(cost[idx][0] < kInf && cost[idx][1] < kInf &&
                   "every AND node must be coverable by the library");
        }
    }

    double match_cost(const Cut& cut, const CellMatch& m) const {
        const GateCell& cell = lib.cell(m.cell_id);
        double c = cell.area;
        for (int p = 0; p < cell.num_inputs; ++p) {
            const int leaf_pos = m.pin_leaf_pos[static_cast<std::size_t>(p)];
            const int leaf = cut.leaves[static_cast<std::size_t>(leaf_pos)];
            const int ph = m.pin_neg[static_cast<std::size_t>(p)] ? 1 : 0;
            c += cost[static_cast<std::size_t>(leaf)][static_cast<std::size_t>(ph)] /
                 refs[static_cast<std::size_t>(leaf)];
        }
        return c;
    }

    Netlist extract(const std::vector<std::string>& pi_names,
                    const std::vector<bool>& pi_is_select,
                    std::vector<std::array<double, 2>>* usage) {
        Netlist netlist(lib);
        std::unordered_map<std::uint64_t, int> built;  // (node<<1|phase) -> id
        std::array<int, 2> const_nodes{-1, -1};

        std::vector<int> pi_ids(static_cast<std::size_t>(aig.num_pis()));
        for (int i = 0; i < aig.num_pis(); ++i) {
            std::string name = i < static_cast<int>(pi_names.size())
                                   ? pi_names[static_cast<std::size_t>(i)]
                                   : "i" + std::to_string(i);
            const bool sel = i < static_cast<int>(pi_is_select.size()) &&
                             pi_is_select[static_cast<std::size_t>(i)];
            pi_ids[static_cast<std::size_t>(i)] = netlist.add_pi(std::move(name), sel);
        }

        const auto build = [&](auto&& self, int node, int phase) -> int {
            const std::uint64_t key =
                (static_cast<std::uint64_t>(node) << 1) | static_cast<unsigned>(phase);
            const auto it = built.find(key);
            if (it != built.end()) return it->second;
            if (usage) {
                (*usage)[static_cast<std::size_t>(node)]
                        [static_cast<std::size_t>(phase)] += 1.0;
            }

            int id = -1;
            if (aig.is_const0(node)) {
                auto& cn = const_nodes[static_cast<std::size_t>(phase)];
                if (cn < 0) cn = netlist.add_const(phase != 0);
                id = cn;
            } else if (aig.is_pi(node)) {
                if (phase == 0) {
                    id = pi_ids[static_cast<std::size_t>(node - 1)];
                } else {
                    const int pos = self(self, node, 0);
                    id = netlist.add_cell(lib.inv_id(), {pos});
                }
            } else {
                const Choice& ch = choice[static_cast<std::size_t>(node)]
                                         [static_cast<std::size_t>(phase)];
                assert(ch.valid);
                if (ch.via_inverter) {
                    const int other = self(self, node, 1 - phase);
                    id = netlist.add_cell(lib.inv_id(), {other});
                } else {
                    const GateCell& cell = lib.cell(ch.match.cell_id);
                    std::vector<int> fanins(static_cast<std::size_t>(cell.num_inputs));
                    for (int p = 0; p < cell.num_inputs; ++p) {
                        const int leaf_pos =
                            ch.match.pin_leaf_pos[static_cast<std::size_t>(p)];
                        const int leaf =
                            ch.cut.leaves[static_cast<std::size_t>(leaf_pos)];
                        const int ph =
                            ch.match.pin_neg[static_cast<std::size_t>(p)] ? 1 : 0;
                        fanins[static_cast<std::size_t>(p)] = self(self, leaf, ph);
                    }
                    id = netlist.add_cell(ch.match.cell_id, std::move(fanins));
                }
            }
            built.emplace(key, id);
            return id;
        };

        for (int i = 0; i < aig.num_pos(); ++i) {
            const Lit po = aig.po(i);
            const int id =
                build(build, Aig::lit_node(po), Aig::lit_complemented(po) ? 1 : 0);
            netlist.add_po(id, "o" + std::to_string(i));
        }
        return netlist;
    }
};

}  // namespace

Netlist tech_map(const net::Aig& aig, MatchCache& cache,
                 const TechMapParams& params,
                 const std::vector<std::string>& pi_names,
                 const std::vector<bool>& pi_is_select) {
    Mapper mapper(aig, cache, params);
    mapper.compute_costs();

    std::vector<std::array<double, 2>> usage(
        static_cast<std::size_t>(aig.num_nodes()), {0.0, 0.0});
    Netlist best = mapper.extract(pi_names, pi_is_select, &usage);

    for (int iter = 0; iter < params.recovery_iterations; ++iter) {
        // Area recovery: redo the DP with reference estimates taken from the
        // actual cover usage, which sharpens the area-flow division.
        for (std::size_t i = 0; i < usage.size(); ++i) {
            mapper.refs[i] = std::max(1.0, usage[i][0] + usage[i][1]);
        }
        mapper.compute_costs();
        std::vector<std::array<double, 2>> next_usage(
            static_cast<std::size_t>(aig.num_nodes()), {0.0, 0.0});
        Netlist candidate = mapper.extract(pi_names, pi_is_select, &next_usage);
        if (candidate.area() < best.area()) {
            best = std::move(candidate);
            usage = std::move(next_usage);
        } else {
            break;
        }
    }
    return best;
}

Netlist tech_map(const net::Aig& aig, const GateLibrary& library,
                 const TechMapParams& params,
                 const std::vector<std::string>& pi_names,
                 const std::vector<bool>& pi_is_select) {
    MatchCache cache(library);
    return tech_map(aig, cache, params, pi_names, pi_is_select);
}

double mapped_area(const net::Aig& aig, MatchCache& cache,
                   const TechMapParams& params) {
    return tech_map(aig, cache, params).area();
}

}  // namespace mvf::tech
