#pragma once
// Standard-cell library for technology mapping.
//
// The paper maps synthesized circuits to "inverters, buffers, and 2-4 input
// NAND, NOR, AND, OR gates" and reports area in gate equivalents (GE,
// normalized to NAND2).  This module provides exactly that library with a
// generic GE area table; the camouflage library (src/camo) derives its
// look-alike cells from these nominal cells.

#include <string>
#include <string_view>
#include <vector>

#include "logic/truth_table.hpp"

namespace mvf::tech {

struct GateCell {
    std::string name;
    int num_inputs = 0;
    double area = 0.0;  ///< in GE (NAND2 = 1.0)
    logic::TruthTable function;  ///< over pins 0..num_inputs-1
};

class GateLibrary {
public:
    /// INV, BUF, {NAND,NOR,AND,OR} x {2,3,4} with generic GE areas.
    static GateLibrary standard();

    int num_cells() const { return static_cast<int>(cells_.size()); }
    const GateCell& cell(int id) const { return cells_[static_cast<std::size_t>(id)]; }

    /// Index of the cell with the given name, or -1.
    int find(std::string_view name) const;

    int inv_id() const { return inv_id_; }
    int buf_id() const { return buf_id_; }
    double inv_area() const { return cell(inv_id_).area; }

    /// Registers a cell; returns its id.  Used by tests and custom setups.
    int add_cell(GateCell cell);

private:
    std::vector<GateCell> cells_;
    int inv_id_ = -1;
    int buf_id_ = -1;
};

}  // namespace mvf::tech
