#include "sim/netlist_sim.hpp"

#include <cassert>

#include "camo/absfunc.hpp"  // compose()

namespace mvf::sim {

using logic::TruthTable;

std::vector<TruthTable> simulate(const tech::Netlist& netlist,
                                 std::span<const TruthTable> pi_values) {
    assert(static_cast<int>(pi_values.size()) == netlist.num_pis());
    const int nv = pi_values.empty() ? 0 : pi_values[0].num_vars();
    std::vector<TruthTable> value(static_cast<std::size_t>(netlist.num_nodes()),
                                  TruthTable::zeros(nv));
    for (int i = 0; i < netlist.num_pis(); ++i) {
        value[static_cast<std::size_t>(netlist.pi(i))] =
            pi_values[static_cast<std::size_t>(i)];
    }
    for (int id = 0; id < netlist.num_nodes(); ++id) {
        const tech::Netlist::Node& n = netlist.node(id);
        switch (n.kind) {
            case tech::Netlist::NodeKind::kConst0:
                value[static_cast<std::size_t>(id)] = TruthTable::zeros(nv);
                break;
            case tech::Netlist::NodeKind::kConst1:
                value[static_cast<std::size_t>(id)] = TruthTable::ones(nv);
                break;
            case tech::Netlist::NodeKind::kPi:
                break;
            case tech::Netlist::NodeKind::kCell: {
                std::vector<TruthTable> pins;
                pins.reserve(n.fanins.size());
                for (const int f : n.fanins) {
                    pins.push_back(value[static_cast<std::size_t>(f)]);
                }
                value[static_cast<std::size_t>(id)] = camo::compose(
                    netlist.library().cell(n.cell_id).function, pins);
                break;
            }
        }
    }
    std::vector<TruthTable> out;
    out.reserve(static_cast<std::size_t>(netlist.num_pos()));
    for (int i = 0; i < netlist.num_pos(); ++i) {
        out.push_back(value[static_cast<std::size_t>(netlist.po(i))]);
    }
    return out;
}

std::vector<TruthTable> simulate_full(const tech::Netlist& netlist) {
    std::vector<TruthTable> pis;
    pis.reserve(static_cast<std::size_t>(netlist.num_pis()));
    for (int i = 0; i < netlist.num_pis(); ++i) {
        pis.push_back(TruthTable::var(i, netlist.num_pis()));
    }
    return simulate(netlist, pis);
}

std::vector<TruthTable> simulate_camo(const camo::CamoNetlist& netlist,
                                      const std::vector<int>& config,
                                      std::span<const TruthTable> pi_values) {
    assert(static_cast<int>(pi_values.size()) == netlist.num_pis());
    assert(static_cast<int>(config.size()) == netlist.num_nodes());
    const int nv = pi_values.empty() ? 0 : pi_values[0].num_vars();
    std::vector<TruthTable> value(static_cast<std::size_t>(netlist.num_nodes()),
                                  TruthTable::zeros(nv));
    for (int i = 0; i < netlist.num_pis(); ++i) {
        value[static_cast<std::size_t>(netlist.pi(i))] =
            pi_values[static_cast<std::size_t>(i)];
    }
    for (int id = 0; id < netlist.num_nodes(); ++id) {
        const camo::CamoNetlist::Node& n = netlist.node(id);
        if (n.kind != camo::CamoNetlist::NodeKind::kCell) continue;
        const camo::CamoCell& cell = netlist.library().cell(n.camo_cell_id);
        const int choice = config[static_cast<std::size_t>(id)];
        assert(choice >= 0 && choice < static_cast<int>(cell.plausible.size()));
        std::vector<TruthTable> pins;
        pins.reserve(n.fanins.size());
        for (const int f : n.fanins) {
            pins.push_back(value[static_cast<std::size_t>(f)]);
        }
        value[static_cast<std::size_t>(id)] =
            camo::compose(cell.plausible[static_cast<std::size_t>(choice)], pins);
    }
    std::vector<TruthTable> out;
    out.reserve(static_cast<std::size_t>(netlist.num_pos()));
    for (int i = 0; i < netlist.num_pos(); ++i) {
        out.push_back(value[static_cast<std::size_t>(netlist.po(i))]);
    }
    return out;
}

void simulate_camo_pattern_into(const camo::CamoNetlist& netlist,
                                const std::vector<int>& config,
                                const std::vector<bool>& inputs,
                                std::vector<bool>* outputs,
                                WordSimScratch* scratch) {
    assert(static_cast<int>(inputs.size()) == netlist.num_pis());
    assert(static_cast<int>(config.size()) == netlist.num_nodes());
    std::vector<std::uint64_t>& value = scratch->value;
    value.assign(static_cast<std::size_t>(netlist.num_nodes()), 0);
    for (int i = 0; i < netlist.num_pis(); ++i) {
        value[static_cast<std::size_t>(netlist.pi(i))] =
            inputs[static_cast<std::size_t>(i)] ? 1u : 0u;
    }
    for (int id = 0; id < netlist.num_nodes(); ++id) {
        const camo::CamoNetlist::Node& n = netlist.node(id);
        if (n.kind != camo::CamoNetlist::NodeKind::kCell) continue;
        const camo::CamoCell& cell = netlist.library().cell(n.camo_cell_id);
        const int choice = config[static_cast<std::size_t>(id)];
        assert(choice >= 0 && choice < static_cast<int>(cell.plausible.size()));
        std::uint32_t pins = 0;
        for (std::size_t p = 0; p < n.fanins.size(); ++p) {
            if (value[static_cast<std::size_t>(n.fanins[p])]) pins |= 1u << p;
        }
        value[static_cast<std::size_t>(id)] =
            cell.plausible[static_cast<std::size_t>(choice)].bit(pins) ? 1u : 0u;
    }
    outputs->resize(static_cast<std::size_t>(netlist.num_pos()));
    for (int i = 0; i < netlist.num_pos(); ++i) {
        (*outputs)[static_cast<std::size_t>(i)] =
            value[static_cast<std::size_t>(netlist.po(i))] != 0;
    }
}

std::vector<bool> simulate_camo_pattern(const camo::CamoNetlist& netlist,
                                        const std::vector<int>& config,
                                        const std::vector<bool>& inputs) {
    WordSimScratch scratch;
    std::vector<bool> out;
    simulate_camo_pattern_into(netlist, config, inputs, &out, &scratch);
    return out;
}

void simulate_camo_words(const camo::CamoNetlist& netlist,
                         const std::vector<int>& config,
                         std::span<const std::uint64_t> pi_words,
                         std::span<std::uint64_t> po_words,
                         WordSimScratch* scratch) {
    assert(static_cast<int>(pi_words.size()) == netlist.num_pis());
    assert(static_cast<int>(po_words.size()) == netlist.num_pos());
    assert(static_cast<int>(config.size()) == netlist.num_nodes());
    std::vector<std::uint64_t>& value = scratch->value;
    value.assign(static_cast<std::size_t>(netlist.num_nodes()), 0);
    for (int i = 0; i < netlist.num_pis(); ++i) {
        value[static_cast<std::size_t>(netlist.pi(i))] =
            pi_words[static_cast<std::size_t>(i)];
    }
    for (int id = 0; id < netlist.num_nodes(); ++id) {
        const camo::CamoNetlist::Node& n = netlist.node(id);
        if (n.kind != camo::CamoNetlist::NodeKind::kCell) continue;
        const camo::CamoCell& cell = netlist.library().cell(n.camo_cell_id);
        const int choice = config[static_cast<std::size_t>(id)];
        assert(choice >= 0 && choice < static_cast<int>(cell.plausible.size()));
        const logic::TruthTable& f =
            cell.plausible[static_cast<std::size_t>(choice)];
        // Library cells have <= 6 pins, so the whole plausible function
        // fits in the table's first word; testing minterms locally keeps
        // the hot loop free of function calls.
        const std::size_t pins = n.fanins.size();
        assert(pins <= 6);
        const std::uint32_t num_minterms = 1u << pins;
        const std::uint64_t full =
            num_minterms == 64 ? ~0ull : (1ull << num_minterms) - 1;
        std::uint64_t bits = f.word(0);
        std::uint64_t out;
        if (bits == 0 || bits == full) {
            out = bits == 0 ? 0 : ~0ull;
        } else {
            // Sum-of-minterms over the pin words: every lane (pattern)
            // evaluates the cell function simultaneously.  Only the SET
            // minterms are visited, and a majority-ones function is
            // evaluated through its complement, so typical gates cost a
            // handful of AND/OR words (a NAND is one term, inverted).
            const bool invert =
                2 * __builtin_popcountll(bits) > static_cast<int>(num_minterms);
            if (invert) bits = ~bits & full;
            out = 0;
            do {
                const int m = __builtin_ctzll(bits);
                bits &= bits - 1;
                std::uint64_t term = ~0ull;
                for (std::size_t p = 0; p < pins; ++p) {
                    const std::uint64_t w =
                        value[static_cast<std::size_t>(n.fanins[p])];
                    term &= (m >> p) & 1u ? w : ~w;
                }
                out |= term;
            } while (bits != 0);
            if (invert) out = ~out;
        }
        value[static_cast<std::size_t>(id)] = out;
    }
    for (int i = 0; i < netlist.num_pos(); ++i) {
        po_words[static_cast<std::size_t>(i)] =
            value[static_cast<std::size_t>(netlist.po(i))];
    }
}

std::vector<TruthTable> simulate_camo_full(const camo::CamoNetlist& netlist,
                                           const std::vector<int>& config) {
    std::vector<TruthTable> pis;
    pis.reserve(static_cast<std::size_t>(netlist.num_pis()));
    for (int i = 0; i < netlist.num_pis(); ++i) {
        pis.push_back(TruthTable::var(i, netlist.num_pis()));
    }
    return simulate_camo(netlist, config, pis);
}

}  // namespace mvf::sim
