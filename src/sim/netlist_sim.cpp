#include "sim/netlist_sim.hpp"

#include <cassert>

#include "camo/absfunc.hpp"  // compose()

namespace mvf::sim {

using logic::TruthTable;

std::vector<TruthTable> simulate(const tech::Netlist& netlist,
                                 std::span<const TruthTable> pi_values) {
    assert(static_cast<int>(pi_values.size()) == netlist.num_pis());
    const int nv = pi_values.empty() ? 0 : pi_values[0].num_vars();
    std::vector<TruthTable> value(static_cast<std::size_t>(netlist.num_nodes()),
                                  TruthTable::zeros(nv));
    for (int i = 0; i < netlist.num_pis(); ++i) {
        value[static_cast<std::size_t>(netlist.pi(i))] =
            pi_values[static_cast<std::size_t>(i)];
    }
    for (int id = 0; id < netlist.num_nodes(); ++id) {
        const tech::Netlist::Node& n = netlist.node(id);
        switch (n.kind) {
            case tech::Netlist::NodeKind::kConst0:
                value[static_cast<std::size_t>(id)] = TruthTable::zeros(nv);
                break;
            case tech::Netlist::NodeKind::kConst1:
                value[static_cast<std::size_t>(id)] = TruthTable::ones(nv);
                break;
            case tech::Netlist::NodeKind::kPi:
                break;
            case tech::Netlist::NodeKind::kCell: {
                std::vector<TruthTable> pins;
                pins.reserve(n.fanins.size());
                for (const int f : n.fanins) {
                    pins.push_back(value[static_cast<std::size_t>(f)]);
                }
                value[static_cast<std::size_t>(id)] = camo::compose(
                    netlist.library().cell(n.cell_id).function, pins);
                break;
            }
        }
    }
    std::vector<TruthTable> out;
    out.reserve(static_cast<std::size_t>(netlist.num_pos()));
    for (int i = 0; i < netlist.num_pos(); ++i) {
        out.push_back(value[static_cast<std::size_t>(netlist.po(i))]);
    }
    return out;
}

std::vector<TruthTable> simulate_full(const tech::Netlist& netlist) {
    std::vector<TruthTable> pis;
    pis.reserve(static_cast<std::size_t>(netlist.num_pis()));
    for (int i = 0; i < netlist.num_pis(); ++i) {
        pis.push_back(TruthTable::var(i, netlist.num_pis()));
    }
    return simulate(netlist, pis);
}

std::vector<TruthTable> simulate_camo(const camo::CamoNetlist& netlist,
                                      const std::vector<int>& config,
                                      std::span<const TruthTable> pi_values) {
    assert(static_cast<int>(pi_values.size()) == netlist.num_pis());
    assert(static_cast<int>(config.size()) == netlist.num_nodes());
    const int nv = pi_values.empty() ? 0 : pi_values[0].num_vars();
    std::vector<TruthTable> value(static_cast<std::size_t>(netlist.num_nodes()),
                                  TruthTable::zeros(nv));
    for (int i = 0; i < netlist.num_pis(); ++i) {
        value[static_cast<std::size_t>(netlist.pi(i))] =
            pi_values[static_cast<std::size_t>(i)];
    }
    for (int id = 0; id < netlist.num_nodes(); ++id) {
        const camo::CamoNetlist::Node& n = netlist.node(id);
        if (n.kind != camo::CamoNetlist::NodeKind::kCell) continue;
        const camo::CamoCell& cell = netlist.library().cell(n.camo_cell_id);
        const int choice = config[static_cast<std::size_t>(id)];
        assert(choice >= 0 && choice < static_cast<int>(cell.plausible.size()));
        std::vector<TruthTable> pins;
        pins.reserve(n.fanins.size());
        for (const int f : n.fanins) {
            pins.push_back(value[static_cast<std::size_t>(f)]);
        }
        value[static_cast<std::size_t>(id)] =
            camo::compose(cell.plausible[static_cast<std::size_t>(choice)], pins);
    }
    std::vector<TruthTable> out;
    out.reserve(static_cast<std::size_t>(netlist.num_pos()));
    for (int i = 0; i < netlist.num_pos(); ++i) {
        out.push_back(value[static_cast<std::size_t>(netlist.po(i))]);
    }
    return out;
}

std::vector<bool> simulate_camo_pattern(const camo::CamoNetlist& netlist,
                                        const std::vector<int>& config,
                                        const std::vector<bool>& inputs) {
    assert(static_cast<int>(inputs.size()) == netlist.num_pis());
    assert(static_cast<int>(config.size()) == netlist.num_nodes());
    std::vector<bool> value(static_cast<std::size_t>(netlist.num_nodes()), false);
    for (int i = 0; i < netlist.num_pis(); ++i) {
        value[static_cast<std::size_t>(netlist.pi(i))] =
            inputs[static_cast<std::size_t>(i)];
    }
    for (int id = 0; id < netlist.num_nodes(); ++id) {
        const camo::CamoNetlist::Node& n = netlist.node(id);
        if (n.kind != camo::CamoNetlist::NodeKind::kCell) continue;
        const camo::CamoCell& cell = netlist.library().cell(n.camo_cell_id);
        const int choice = config[static_cast<std::size_t>(id)];
        assert(choice >= 0 && choice < static_cast<int>(cell.plausible.size()));
        std::uint32_t pins = 0;
        for (std::size_t p = 0; p < n.fanins.size(); ++p) {
            if (value[static_cast<std::size_t>(n.fanins[p])]) pins |= 1u << p;
        }
        value[static_cast<std::size_t>(id)] =
            cell.plausible[static_cast<std::size_t>(choice)].bit(pins);
    }
    std::vector<bool> out;
    out.reserve(static_cast<std::size_t>(netlist.num_pos()));
    for (int i = 0; i < netlist.num_pos(); ++i) {
        out.push_back(value[static_cast<std::size_t>(netlist.po(i))]);
    }
    return out;
}

std::vector<TruthTable> simulate_camo_full(const camo::CamoNetlist& netlist,
                                           const std::vector<int>& config) {
    std::vector<TruthTable> pis;
    pis.reserve(static_cast<std::size_t>(netlist.num_pis()));
    for (int i = 0; i < netlist.num_pis(); ++i) {
        pis.push_back(TruthTable::var(i, netlist.num_pis()));
    }
    return simulate_camo(netlist, config, pis);
}

}  // namespace mvf::sim
