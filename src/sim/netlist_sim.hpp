#pragma once
// Truth-table simulation of mapped and camouflaged netlists.
//
// This is the repo's ModelSim substitute: exhaustive input-space evaluation
// used to (a) check that technology mapping preserved the synthesized
// functions, and (b) validate that the camouflaged circuit implements each
// viable function when the recorded dopant configuration is applied.

#include <span>
#include <vector>

#include "camo/camo_netlist.hpp"
#include "logic/truth_table.hpp"
#include "map/netlist.hpp"

namespace mvf::sim {

/// Evaluates every PO of the netlist with PI i bound to `pi_values[i]`.
std::vector<logic::TruthTable> simulate(
    const tech::Netlist& netlist, std::span<const logic::TruthTable> pi_values);

/// Evaluates over the full input space (PI i = variable i).
std::vector<logic::TruthTable> simulate_full(const tech::Netlist& netlist);

/// Evaluates the camouflaged netlist with each cell realizing the plausible
/// function selected by `config` (per-node indices, -1 for non-cells; see
/// CamoNetlist::configuration_for_code).
std::vector<logic::TruthTable> simulate_camo(
    const camo::CamoNetlist& netlist, const std::vector<int>& config,
    std::span<const logic::TruthTable> pi_values);

/// Camouflaged netlist over the full input space.
std::vector<logic::TruthTable> simulate_camo_full(
    const camo::CamoNetlist& netlist, const std::vector<int>& config);

/// Single-pattern evaluation of the camouflaged netlist: `inputs[i]` is the
/// value of PI i; returns one bool per PO.  This is the oracle-query path of
/// the CEGAR attacker (a working chip evaluated on one input vector), so it
/// avoids truth-table allocation entirely and runs in O(nodes).
std::vector<bool> simulate_camo_pattern(const camo::CamoNetlist& netlist,
                                        const std::vector<int>& config,
                                        const std::vector<bool>& inputs);

/// Reusable per-node value buffer for the word-parallel evaluator below.
/// Owning it across calls (attack::SimOracle does) removes the per-query
/// allocation of the scalar path entirely.
struct WordSimScratch {
    std::vector<std::uint64_t> value;
};

/// Word-parallel evaluation of up to 64 input patterns in ONE O(nodes)
/// pass: bit k of `pi_words[i]` is pattern k's value of PI i, and on return
/// bit k of `po_words[q]` is pattern k's value of PO q.  `pi_words` must
/// have num_pis() entries and `po_words` num_pos() entries.  Bits at
/// positions >= the caller's pattern count are evaluated like any other
/// lane (garbage in, garbage out); callers simply ignore them.
void simulate_camo_words(const camo::CamoNetlist& netlist,
                         const std::vector<int>& config,
                         std::span<const std::uint64_t> pi_words,
                         std::span<std::uint64_t> po_words,
                         WordSimScratch* scratch);

/// simulate_camo_pattern on caller-owned scratch: no per-call allocation
/// (`outputs` is resized to num_pos()).  The scalar oracle path of
/// attack::SimOracle.
void simulate_camo_pattern_into(const camo::CamoNetlist& netlist,
                                const std::vector<int>& config,
                                const std::vector<bool>& inputs,
                                std::vector<bool>* outputs,
                                WordSimScratch* scratch);

}  // namespace mvf::sim
