#pragma once
// Truth-table simulation of mapped and camouflaged netlists.
//
// This is the repo's ModelSim substitute: exhaustive input-space evaluation
// used to (a) check that technology mapping preserved the synthesized
// functions, and (b) validate that the camouflaged circuit implements each
// viable function when the recorded dopant configuration is applied.

#include <span>
#include <vector>

#include "camo/camo_netlist.hpp"
#include "logic/truth_table.hpp"
#include "map/netlist.hpp"

namespace mvf::sim {

/// Evaluates every PO of the netlist with PI i bound to `pi_values[i]`.
std::vector<logic::TruthTable> simulate(
    const tech::Netlist& netlist, std::span<const logic::TruthTable> pi_values);

/// Evaluates over the full input space (PI i = variable i).
std::vector<logic::TruthTable> simulate_full(const tech::Netlist& netlist);

/// Evaluates the camouflaged netlist with each cell realizing the plausible
/// function selected by `config` (per-node indices, -1 for non-cells; see
/// CamoNetlist::configuration_for_code).
std::vector<logic::TruthTable> simulate_camo(
    const camo::CamoNetlist& netlist, const std::vector<int>& config,
    std::span<const logic::TruthTable> pi_values);

/// Camouflaged netlist over the full input space.
std::vector<logic::TruthTable> simulate_camo_full(
    const camo::CamoNetlist& netlist, const std::vector<int>& config);

/// Single-pattern evaluation of the camouflaged netlist: `inputs[i]` is the
/// value of PI i; returns one bool per PO.  This is the oracle-query path of
/// the CEGAR attacker (a working chip evaluated on one input vector), so it
/// avoids truth-table allocation entirely and runs in O(nodes).
std::vector<bool> simulate_camo_pattern(const camo::CamoNetlist& netlist,
                                        const std::vector<int>& config,
                                        const std::vector<bool>& inputs);

}  // namespace mvf::sim
