#pragma once
// Genetic algorithm over pin assignments (paper section III-B).
//
// DEAP-style permutation GA: tournament selection, PMX crossover, swap
// mutation, elitism.  The fitness of a genotype is the synthesized area of
// the merged circuit (lower is better) as reported by technology mapping --
// "we are using repeated logic synthesis in our exploration of pin
// assignments".  Generation-by-generation history feeds Fig. 4b.

#include <cstdint>
#include <functional>
#include <vector>

#include "ga/genotype.hpp"

namespace mvf::ga {

struct GaParams {
    int population = 48;
    int generations = 60;
    double crossover_prob = 0.9;
    /// Per-permutation swap-mutation probability.
    double mutation_prob = 0.25;
    int tournament_size = 3;
    int elite = 2;
    std::uint64_t seed = 1;
};

struct GaHistory {
    std::vector<double> best_per_generation;  ///< running best (Fig. 4b line)
    std::vector<double> avg_per_generation;
    int evaluations = 0;  ///< total fitness evaluations performed
};

struct GaResult {
    PinAssignment best;
    double best_area = 0.0;
    GaHistory history;
};

/// Area-returning fitness (lower is better).
using FitnessFn = std::function<double(const PinAssignment&)>;

GaResult run_ga(int num_functions, int num_inputs, int num_outputs,
                const FitnessFn& fitness, const GaParams& params);

struct RandomSearchResult {
    PinAssignment best;
    double best_area = 0.0;
    double avg_area = 0.0;
    std::vector<double> all_areas;  ///< one per sample (Fig. 4a histogram)
};

/// Equal-budget baseline: `count` uniformly random pin assignments.
RandomSearchResult random_search(int num_functions, int num_inputs,
                                 int num_outputs, const FitnessFn& fitness,
                                 int count, std::uint64_t seed);

}  // namespace mvf::ga
