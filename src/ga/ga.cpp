#include "ga/ga.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace mvf::ga {
namespace {

struct Individual {
    PinAssignment genes;
    double area = std::numeric_limits<double>::infinity();
};

}  // namespace

GaResult run_ga(int num_functions, int num_inputs, int num_outputs,
                const FitnessFn& fitness, const GaParams& params) {
    util::Rng rng(params.seed);
    GaResult result;
    result.best_area = std::numeric_limits<double>::infinity();

    std::vector<Individual> pop(static_cast<std::size_t>(params.population));
    for (auto& ind : pop) {
        ind.genes =
            PinAssignment::random(num_functions, num_inputs, num_outputs, rng);
        ind.area = fitness(ind.genes);
        ++result.history.evaluations;
    }

    const auto by_area = [](const Individual& a, const Individual& b) {
        return a.area < b.area;
    };

    const auto tournament = [&](util::Rng& r) -> const Individual& {
        const Individual* best = nullptr;
        for (int t = 0; t < params.tournament_size; ++t) {
            const Individual& cand = pop[static_cast<std::size_t>(
                r.uniform_int(0, params.population - 1))];
            if (!best || cand.area < best->area) best = &cand;
        }
        return *best;
    };

    for (int gen = 0; gen < params.generations; ++gen) {
        std::sort(pop.begin(), pop.end(), by_area);
        // History snapshot (running best + population average).
        double sum = 0.0;
        for (const auto& ind : pop) sum += ind.area;
        result.best_area = std::min(result.best_area, pop.front().area);
        if (pop.front().area <= result.best_area) result.best = pop.front().genes;
        result.history.best_per_generation.push_back(result.best_area);
        result.history.avg_per_generation.push_back(
            sum / static_cast<double>(params.population));

        std::vector<Individual> next;
        next.reserve(pop.size());
        for (int e = 0; e < params.elite && e < params.population; ++e) {
            next.push_back(pop[static_cast<std::size_t>(e)]);  // no re-eval
        }
        while (static_cast<int>(next.size()) < params.population) {
            Individual child;
            const Individual& p1 = tournament(rng);
            const Individual& p2 = tournament(rng);
            child.genes = p1.genes;
            if (rng.coin(params.crossover_prob)) {
                for (int k = 0; k < num_functions; ++k) {
                    child.genes.input_perms[static_cast<std::size_t>(k)] =
                        pmx_crossover(
                            p1.genes.input_perms[static_cast<std::size_t>(k)],
                            p2.genes.input_perms[static_cast<std::size_t>(k)], rng);
                    child.genes.output_perms[static_cast<std::size_t>(k)] =
                        pmx_crossover(
                            p1.genes.output_perms[static_cast<std::size_t>(k)],
                            p2.genes.output_perms[static_cast<std::size_t>(k)], rng);
                }
            }
            for (int k = 0; k < num_functions; ++k) {
                if (rng.coin(params.mutation_prob)) {
                    swap_mutation(
                        &child.genes.input_perms[static_cast<std::size_t>(k)], rng);
                }
                if (rng.coin(params.mutation_prob)) {
                    swap_mutation(
                        &child.genes.output_perms[static_cast<std::size_t>(k)], rng);
                }
            }
            child.area = fitness(child.genes);
            ++result.history.evaluations;
            next.push_back(std::move(child));
        }
        pop = std::move(next);
    }

    std::sort(pop.begin(), pop.end(), by_area);
    if (pop.front().area < result.best_area) {
        result.best_area = pop.front().area;
        result.best = pop.front().genes;
    }
    result.history.best_per_generation.push_back(result.best_area);
    double sum = 0.0;
    for (const auto& ind : pop) sum += ind.area;
    result.history.avg_per_generation.push_back(
        sum / static_cast<double>(params.population));
    return result;
}

RandomSearchResult random_search(int num_functions, int num_inputs,
                                 int num_outputs, const FitnessFn& fitness,
                                 int count, std::uint64_t seed) {
    util::Rng rng(seed);
    RandomSearchResult result;
    result.best_area = std::numeric_limits<double>::infinity();
    result.all_areas.reserve(static_cast<std::size_t>(count));
    double sum = 0.0;
    for (int i = 0; i < count; ++i) {
        PinAssignment pa =
            PinAssignment::random(num_functions, num_inputs, num_outputs, rng);
        const double area = fitness(pa);
        result.all_areas.push_back(area);
        sum += area;
        if (area < result.best_area) {
            result.best_area = area;
            result.best = std::move(pa);
        }
    }
    result.avg_area = count > 0 ? sum / count : 0.0;
    return result;
}

}  // namespace mvf::ga
