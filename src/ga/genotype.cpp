#include "ga/genotype.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mvf::ga {

PinAssignment PinAssignment::identity(int num_functions, int num_inputs,
                                      int num_outputs) {
    PinAssignment pa;
    std::vector<int> in(static_cast<std::size_t>(num_inputs));
    std::iota(in.begin(), in.end(), 0);
    std::vector<int> out(static_cast<std::size_t>(num_outputs));
    std::iota(out.begin(), out.end(), 0);
    pa.input_perms.assign(static_cast<std::size_t>(num_functions), in);
    pa.output_perms.assign(static_cast<std::size_t>(num_functions), out);
    return pa;
}

PinAssignment PinAssignment::random(int num_functions, int num_inputs,
                                    int num_outputs, util::Rng& rng) {
    PinAssignment pa;
    pa.input_perms.reserve(static_cast<std::size_t>(num_functions));
    pa.output_perms.reserve(static_cast<std::size_t>(num_functions));
    for (int k = 0; k < num_functions; ++k) {
        pa.input_perms.push_back(rng.permutation(num_inputs));
        pa.output_perms.push_back(rng.permutation(num_outputs));
    }
    return pa;
}

namespace {

bool is_permutation_of_n(const std::vector<int>& v) {
    std::vector<bool> seen(v.size(), false);
    for (const int x : v) {
        if (x < 0 || x >= static_cast<int>(v.size()) ||
            seen[static_cast<std::size_t>(x)])
            return false;
        seen[static_cast<std::size_t>(x)] = true;
    }
    return true;
}

}  // namespace

bool PinAssignment::valid() const {
    if (input_perms.size() != output_perms.size()) return false;
    for (const auto& p : input_perms) {
        if (!is_permutation_of_n(p)) return false;
    }
    for (const auto& p : output_perms) {
        if (!is_permutation_of_n(p)) return false;
    }
    return true;
}

std::vector<int> pmx_crossover(const std::vector<int>& a,
                               const std::vector<int>& b, util::Rng& rng) {
    assert(a.size() == b.size());
    const int n = static_cast<int>(a.size());
    if (n < 2) return a;
    int lo = rng.uniform_int(0, n - 1);
    int hi = rng.uniform_int(0, n - 1);
    if (lo > hi) std::swap(lo, hi);

    std::vector<int> child(a.size(), -1);
    std::vector<int> pos_in_a(a.size());
    for (int i = 0; i < n; ++i) pos_in_a[static_cast<std::size_t>(a[static_cast<std::size_t>(i)])] = i;

    // Copy the mapping section from parent a.
    for (int i = lo; i <= hi; ++i) child[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)];

    // Place parent b's values, following the PMX repair chain on conflicts.
    std::vector<bool> used(a.size(), false);
    for (int i = lo; i <= hi; ++i) used[static_cast<std::size_t>(a[static_cast<std::size_t>(i)])] = true;
    for (int i = 0; i < n; ++i) {
        if (i >= lo && i <= hi) continue;
        int v = b[static_cast<std::size_t>(i)];
        while (used[static_cast<std::size_t>(v)]) {
            v = b[static_cast<std::size_t>(pos_in_a[static_cast<std::size_t>(v)])];
        }
        child[static_cast<std::size_t>(i)] = v;
        used[static_cast<std::size_t>(v)] = true;
    }
    return child;
}

void swap_mutation(std::vector<int>* perm, util::Rng& rng) {
    const int n = static_cast<int>(perm->size());
    if (n < 2) return;
    const int i = rng.uniform_int(0, n - 1);
    int j = rng.uniform_int(0, n - 2);
    if (j >= i) ++j;
    std::swap((*perm)[static_cast<std::size_t>(i)], (*perm)[static_cast<std::size_t>(j)]);
}

}  // namespace mvf::ga
