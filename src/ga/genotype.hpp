#pragma once
// Pin-assignment genotypes for Phase II (paper section III-B).
//
// The adversary cannot tell which physical wire carries which logical pin,
// so the designer is free to permute, per viable function, (a) which shared
// circuit input feeds each function input and (b) which merged output
// position carries each function output.  A genotype is exactly this family
// of permutations (Fig. 3's "Genotype" row).

#include <vector>

#include "util/rng.hpp"

namespace mvf::ga {

struct PinAssignment {
    /// input_perms[k][j] = shared-input index wired to input j of function k.
    std::vector<std::vector<int>> input_perms;
    /// output_perms[k][j] = merged-output position driven by output j of
    /// function k.
    std::vector<std::vector<int>> output_perms;

    int num_functions() const { return static_cast<int>(input_perms.size()); }

    static PinAssignment identity(int num_functions, int num_inputs,
                                  int num_outputs);
    static PinAssignment random(int num_functions, int num_inputs,
                                int num_outputs, util::Rng& rng);

    /// Every row is a permutation of the right size.
    bool valid() const;

    bool operator==(const PinAssignment&) const = default;
};

/// Partially-mapped crossover (PMX) of two parent permutations.
std::vector<int> pmx_crossover(const std::vector<int>& a,
                               const std::vector<int>& b, util::Rng& rng);

/// Swaps two random positions in place.
void swap_mutation(std::vector<int>* perm, util::Rng& rng);

}  // namespace mvf::ga
