// Tests for cross-output shared-divisor extraction.

#include <gtest/gtest.h>

#include "flow/merged_spec.hpp"
#include "net/aig_sim.hpp"
#include "sbox/sbox_data.hpp"
#include "synth/extract.hpp"
#include "util/rng.hpp"

namespace mvf::synth {
namespace {

using logic::TruthTable;
using net::Aig;
using net::Lit;

std::vector<Lit> pis(const Aig& aig) {
    std::vector<Lit> v;
    for (int i = 0; i < aig.num_pis(); ++i) v.push_back(aig.pi(i));
    return v;
}

TEST(Extract, SingleFunctionIsExact) {
    util::Rng rng(3);
    for (int n = 2; n <= 8; ++n) {
        for (int t = 0; t < 10; ++t) {
            TruthTable f(n);
            for (std::uint32_t m = 0; m < f.num_bits(); ++m) {
                if (rng.coin(0.5)) f.set_bit(m, true);
            }
            Aig aig(n);
            const std::vector<TruthTable> fns{f};
            const auto outs = build_shared_extract(fns, pis(aig), &aig);
            ASSERT_EQ(outs.size(), 1u);
            aig.add_po(outs[0]);
            EXPECT_EQ(net::simulate_full(aig)[0], f) << "n=" << n;
        }
    }
}

TEST(Extract, MultiOutputGroupIsExact) {
    util::Rng rng(7);
    for (int t = 0; t < 10; ++t) {
        const int n = 6;
        std::vector<TruthTable> fns;
        for (int k = 0; k < 6; ++k) {
            TruthTable f(n);
            for (std::uint32_t m = 0; m < f.num_bits(); ++m) {
                if (rng.coin(0.4)) f.set_bit(m, true);
            }
            fns.push_back(f);
        }
        Aig aig(n);
        const auto outs = build_shared_extract(fns, pis(aig), &aig);
        for (const Lit o : outs) aig.add_po(o);
        const auto sim = net::simulate_full(aig);
        for (std::size_t k = 0; k < fns.size(); ++k) {
            EXPECT_EQ(sim[k], fns[k]) << "output " << k;
        }
    }
}

TEST(Extract, SharedProductIsBuiltOnce) {
    // f0 = abc, f1 = abd: the divisor ab must be extracted, so the whole
    // group needs only 4 AND nodes (ab, ab&c, ab&d ... plus none extra).
    const int n = 4;
    const TruthTable a = TruthTable::var(0, n);
    const TruthTable b = TruthTable::var(1, n);
    const TruthTable c = TruthTable::var(2, n);
    const TruthTable d = TruthTable::var(3, n);
    const std::vector<TruthTable> fns{a & b & c, a & b & d};
    Aig aig(n);
    ExtractStats stats;
    const auto outs = build_shared_extract(fns, pis(aig), &aig, &stats);
    for (const Lit o : outs) aig.add_po(o);
    EXPECT_GE(stats.divisors_extracted, 1);
    EXPECT_LT(stats.literals_after, stats.literals_before);
    EXPECT_EQ(aig.count_live_ands(), 3);  // ab, (ab)c, (ab)d
    const auto sim = net::simulate_full(aig);
    EXPECT_EQ(sim[0], fns[0]);
    EXPECT_EQ(sim[1], fns[1]);
}

TEST(Extract, StatsLiteralAccounting) {
    const int n = 3;
    const TruthTable f = TruthTable::var(0, n) & TruthTable::var(1, n);
    const std::vector<TruthTable> fns{f};
    Aig aig(n);
    ExtractStats stats;
    build_shared_extract(fns, pis(aig), &aig, &stats);
    EXPECT_EQ(stats.literals_before, 2);
    EXPECT_EQ(stats.divisors_extracted, 0);  // single occurrence: no gain
    EXPECT_EQ(stats.literals_after, 2);
}

TEST(Extract, ConstantsAndComplementedCovers) {
    const int n = 3;
    // Nearly-tautological function: best polarity covers the complement.
    TruthTable f = TruthTable::ones(n);
    f.set_bit(5, false);
    const std::vector<TruthTable> fns{f, TruthTable::zeros(n), TruthTable::ones(n)};
    Aig aig(n);
    const auto outs = build_shared_extract(fns, pis(aig), &aig);
    for (const Lit o : outs) aig.add_po(o);
    const auto sim = net::simulate_full(aig);
    EXPECT_EQ(sim[0], f);
    EXPECT_TRUE(sim[1].is_zero());
    EXPECT_TRUE(sim[2].is_ones());
}

TEST(Extract, SboxGroupSharesAcrossFunctions) {
    // All outputs of 8 DES S-boxes: extraction must reduce literal count
    // substantially and preserve every function.
    std::vector<TruthTable> fns;
    for (int i = 0; i < 8; ++i) {
        for (const TruthTable& t : sbox::des_sbox(i).output_tts()) fns.push_back(t);
    }
    Aig aig(6);
    ExtractStats stats;
    const auto outs = build_shared_extract(fns, pis(aig), &aig, &stats);
    for (const Lit o : outs) aig.add_po(o);
    EXPECT_GT(stats.divisors_extracted, 20);
    EXPECT_LT(stats.literals_after, stats.literals_before / 2);
    const auto sim = net::simulate_full(aig);
    for (std::size_t k = 0; k < fns.size(); ++k) {
        EXPECT_EQ(sim[k], fns[k]) << "output " << k;
    }
}

TEST(MergedSpecBuildStyle, SharedExtractMatchesReference) {
    util::Rng rng(11);
    for (int n : {2, 4, 8}) {
        const auto fns =
            flow::from_sboxes(sbox::present_viable_set(n));
        const auto pa = ga::PinAssignment::random(n, 4, 4, rng);
        const flow::MergedSpec spec(fns, pa);
        const net::Aig aig = spec.build_aig(flow::BuildStyle::kSharedExtract);
        EXPECT_EQ(net::simulate_full(aig), spec.reference_tts()) << "n=" << n;
    }
}

TEST(MergedSpecBuildStyle, DesSharedExtractMatchesReference) {
    const auto fns = flow::from_sboxes(sbox::des_viable_set(3));
    const auto pa = ga::PinAssignment::identity(3, 6, 4);
    const flow::MergedSpec spec(fns, pa);
    const net::Aig aig = spec.build_aig(flow::BuildStyle::kSharedExtract);
    EXPECT_EQ(net::simulate_full(aig), spec.reference_tts());
}

}  // namespace
}  // namespace mvf::synth
