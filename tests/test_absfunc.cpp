// Tests for subtree enumeration and the ABSFUNC select abstraction.

#include <gtest/gtest.h>

#include <algorithm>

#include "camo/absfunc.hpp"
#include "map/gate_library.hpp"

namespace mvf::camo {
namespace {

using logic::TruthTable;
using tech::GateLibrary;
using tech::Netlist;

// Builds the canonical Phase-III test subject: a 2:1 mux out = s? a : b
// decomposed into gates  n1 = AND(a, s), n2 = INV(s), n3 = AND(b, n2),
// out = OR(n1, n3); s is a select input.
struct MuxNetlist {
    Netlist nl;
    int a, b, s, n_and1, n_inv, n_and2, n_or;

    MuxNetlist() : nl(GateLibrary::standard()) {
        const GateLibrary& lib = nl.library();
        a = nl.add_pi("a");
        b = nl.add_pi("b");
        s = nl.add_pi("s", /*is_select=*/true);
        n_and1 = nl.add_cell(lib.find("AND2"), {a, s});
        n_inv = nl.add_cell(lib.find("INV"), {s});
        n_and2 = nl.add_cell(lib.find("AND2"), {b, n_inv});
        n_or = nl.add_cell(lib.find("OR2"), {n_and1, n_and2});
        nl.add_po(n_or, "out");
    }
};

TEST(Compose, EvaluatesCellOverPinFunctions) {
    const GateLibrary lib = GateLibrary::standard();
    const TruthTable x = TruthTable::var(0, 3);
    const TruthTable y = TruthTable::var(1, 3);
    const TruthTable z = TruthTable::var(2, 3);
    const TruthTable nand2 =
        compose(lib.cell(lib.find("NAND2")).function, {x & y, z});
    EXPECT_EQ(nand2, ~((x & y) & z));
    const TruthTable inv = compose(lib.cell(lib.find("INV")).function, {x ^ y});
    EXPECT_EQ(inv, ~(x ^ y));
}

TEST(Subtree, Depth1LeavesAreFanins) {
    MuxNetlist m;
    const auto fanouts = m.nl.fanout_counts();
    SubtreeParams params;
    params.max_depth = 1;
    const auto subtrees = enumerate_subtrees(m.nl, m.n_or, fanouts, params);
    ASSERT_EQ(subtrees.size(), 1u);
    EXPECT_EQ(subtrees[0].internal, (std::vector<int>{m.n_or}));
    EXPECT_EQ(subtrees[0].signal_leaves,
              (std::vector<int>{m.n_and1, m.n_and2}));
    EXPECT_TRUE(subtrees[0].select_leaves.empty());
}

TEST(Subtree, DeeperEnumerationReachesSelects) {
    MuxNetlist m;
    const auto fanouts = m.nl.fanout_counts();
    SubtreeParams params;
    params.max_depth = 3;
    const auto subtrees = enumerate_subtrees(m.nl, m.n_or, fanouts, params);
    EXPECT_GT(subtrees.size(), 1u);
    // The full-mux subtree must be among the candidates: internal nodes all
    // four gates, signal leaves {a, b}, select leaves {s}.
    const auto full = std::find_if(
        subtrees.begin(), subtrees.end(), [&](const Subtree& t) {
            return t.internal.size() == 4 &&
                   t.signal_leaves == std::vector<int>{m.a, m.b} &&
                   t.select_leaves == std::vector<int>{m.s};
        });
    ASSERT_NE(full, subtrees.end());
}

TEST(Subtree, NeverExpandsMultiFanoutNodes) {
    // Make n_and1 multi-fanout by adding a second consumer.
    MuxNetlist m;
    // (rebuild with an extra consumer)
    Netlist nl(GateLibrary::standard());
    const GateLibrary& lib = nl.library();
    const int a = nl.add_pi("a");
    const int b = nl.add_pi("b");
    const int x = nl.add_cell(lib.find("AND2"), {a, b});
    const int y = nl.add_cell(lib.find("INV"), {x});
    const int z = nl.add_cell(lib.find("OR2"), {x, y});
    nl.add_po(z, "o");
    const auto fanouts = nl.fanout_counts();
    SubtreeParams params;
    params.max_depth = 3;
    for (const Subtree& t : enumerate_subtrees(nl, z, fanouts, params)) {
        // x has fanout 2 -> can only ever appear as a leaf.
        EXPECT_EQ(std::find(t.internal.begin(), t.internal.end(), x),
                  t.internal.end());
    }
}

TEST(Subtree, RespectsSignalLeafBudget) {
    Netlist nl(GateLibrary::standard());
    const GateLibrary& lib = nl.library();
    std::vector<int> pis;
    for (int i = 0; i < 8; ++i) pis.push_back(nl.add_pi("i" + std::to_string(i)));
    const int g1 = nl.add_cell(lib.find("AND4"), {pis[0], pis[1], pis[2], pis[3]});
    const int g2 = nl.add_cell(lib.find("AND4"), {pis[4], pis[5], pis[6], pis[7]});
    const int g3 = nl.add_cell(lib.find("AND2"), {g1, g2});
    nl.add_po(g3, "o");
    const auto fanouts = nl.fanout_counts();
    SubtreeParams params;
    params.max_depth = 3;
    params.max_signal_leaves = 4;
    for (const Subtree& t : enumerate_subtrees(nl, g3, fanouts, params)) {
        EXPECT_LE(static_cast<int>(t.signal_leaves.size()), 4);
    }
}

TEST(AbsFunc, MuxAbstractsToBothDataInputs) {
    MuxNetlist m;
    const auto fanouts = m.nl.fanout_counts();
    SubtreeParams params;
    params.max_depth = 3;
    const auto subtrees = enumerate_subtrees(m.nl, m.n_or, fanouts, params);
    const auto full = std::find_if(
        subtrees.begin(), subtrees.end(),
        [&](const Subtree& t) { return t.internal.size() == 4; });
    ASSERT_NE(full, subtrees.end());

    const TruthTable f = subtree_function(m.nl, *full);
    // Variables: 0 = a, 1 = b, 2 = s; f = s? a : b.
    const TruthTable expected =
        (TruthTable::var(2, 3) & TruthTable::var(0, 3)) |
        (~TruthTable::var(2, 3) & TruthTable::var(1, 3));
    EXPECT_EQ(f, expected);

    const auto fns = abs_func(*full, f);
    // ABSFUNC({mux}) = { a, b } over the two signal leaves.
    ASSERT_EQ(fns.size(), 2u);
    EXPECT_NE(std::find(fns.begin(), fns.end(), TruthTable::var(0, 2)), fns.end());
    EXPECT_NE(std::find(fns.begin(), fns.end(), TruthTable::var(1, 2)), fns.end());
}

TEST(AbsFunc, NoSelectsYieldsSingleton) {
    MuxNetlist m;
    const auto fanouts = m.nl.fanout_counts();
    SubtreeParams params;
    params.max_depth = 1;
    const auto subtrees = enumerate_subtrees(m.nl, m.n_and1, fanouts, params);
    // n_and1 = AND(a, s): the select is a direct fanin.
    ASSERT_EQ(subtrees.size(), 1u);
    const Subtree& t = subtrees[0];
    EXPECT_EQ(t.select_leaves, std::vector<int>{m.s});
    const TruthTable f = subtree_function(m.nl, t);
    const auto fns = abs_func(t, f);
    // {a & 1, a & 0} = {a, 0}.
    ASSERT_EQ(fns.size(), 2u);
    EXPECT_NE(std::find(fns.begin(), fns.end(), TruthTable::var(0, 1)), fns.end());
    EXPECT_NE(std::find(fns.begin(), fns.end(), TruthTable::zeros(1)), fns.end());
}

TEST(AbsFunc, SelectOnlyConeAbstractsToConstants) {
    Netlist nl(GateLibrary::standard());
    const GateLibrary& lib = nl.library();
    nl.add_pi("a");
    const int s0 = nl.add_pi("s0", true);
    const int s1 = nl.add_pi("s1", true);
    const int g = nl.add_cell(lib.find("NAND2"), {s0, s1});
    nl.add_po(g, "o");
    const auto fanouts = nl.fanout_counts();
    SubtreeParams params;
    const auto subtrees = enumerate_subtrees(nl, g, fanouts, params);
    ASSERT_FALSE(subtrees.empty());
    const Subtree& t = subtrees[0];
    EXPECT_TRUE(t.signal_leaves.empty());
    const auto fns = abs_func(t, subtree_function(nl, t));
    ASSERT_EQ(fns.size(), 2u);  // {0, 1} over zero variables
    for (const TruthTable& f : fns) EXPECT_EQ(f.num_vars(), 0);
}

TEST(AbsFunc, ConstantFaninsFoldIntoFunction) {
    Netlist nl(GateLibrary::standard());
    const GateLibrary& lib = nl.library();
    const int a = nl.add_pi("a");
    const int one = nl.add_const(true);
    const int g = nl.add_cell(lib.find("NAND2"), {a, one});
    nl.add_po(g, "o");
    const auto fanouts = nl.fanout_counts();
    const auto subtrees = enumerate_subtrees(nl, g, fanouts, SubtreeParams{});
    ASSERT_FALSE(subtrees.empty());
    const Subtree& t = subtrees[0];
    EXPECT_EQ(t.signal_leaves, std::vector<int>{a});
    EXPECT_EQ(subtree_function(nl, t), ~TruthTable::var(0, 1));
}

}  // namespace
}  // namespace mvf::camo
